/**
 * @file
 * Figure 12 reproduction: broadcast performance. PR, SSSP and SpMV
 * in their broadcast formulations on MCN-BC, ABC-DIMM, AIM-BC and
 * DIMM-Link, for 2-DPC and 3-DPC systems.
 *
 * Expected shape: AIM-BC > DIMM-Link > ABC-DIMM > MCN-BC, with
 * ABC-DIMM only modestly above MCN-BC at practical DPC
 * (DIMM-Link ~2.6x MCN-BC and ~1.8x ABC-DIMM in the paper).
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig12_broadcast");
    struct SystemShape
    {
        const char *label;
        unsigned dimms;
        unsigned channels;
    };
    // 2 DIMMs/channel and 3 DIMMs/channel shapes (8 DIMMs total,
    // and a 12-DIMM 3DPC variant).
    const SystemShape shapes[] = {{"8D 2DPC", 8, 4},
                                  {"12D 3DPC", 12, 4}};

    const struct
    {
        const char *label;
        IdcMethod method;
    } variants[] = {
        {"MCN-BC", IdcMethod::CpuForwarding},
        {"ABC-DIMM", IdcMethod::ChannelBroadcast},
        {"AIM-BC", IdcMethod::DedicatedBus},
        {"DIMM-Link", IdcMethod::DimmLink},
    };

    std::printf("=== Figure 12: broadcast performance (speedup "
                "over MCN-BC) ===\n\n");

    std::map<std::string, std::vector<double>> geo;

    for (const auto &shape : shapes) {
        std::printf("--- %s ---\n", shape.label);
        std::printf("%-9s", "workload");
        for (const auto &v : variants)
            std::printf(" %10s", v.label);
        std::printf("\n");
        printRule(9 + 4 * 11);

        for (const auto &wl : workloads::broadcastWorkloadNames()) {
            SystemConfig base;
            base.numDimms = shape.dimms;
            base.numChannels = shape.channels;
            base.host.numChannels = shape.channels;

            RunResult mcn;
            std::printf("%-9s", wl.c_str());
            for (const auto &v : variants) {
                SystemConfig cfg = base;
                cfg.idcMethod = v.method;
                cfg.pollingMode = v.method == IdcMethod::DimmLink
                                      ? PollingMode::Proxy
                                      : PollingMode::Baseline;
                cfg.syncScheme =
                    v.method == IdcMethod::DimmLink
                        ? SyncScheme::Hierarchical
                        : SyncScheme::Centralized;
                const RunResult r =
                    runNmp(cfg, wl, /*broadcast=*/true);
                if (v.method == IdcMethod::CpuForwarding)
                    mcn = r;
                const double sp = speedup(mcn, r);
                geo[v.label].push_back(sp);
                std::printf(" %9.2fx", sp);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }

    std::printf("=== Geomean speedups over MCN-BC ===\n");
    for (const auto &v : variants)
        std::printf("  %-10s %6.2fx\n", v.label,
                    geomean(geo[v.label]));
    std::printf("\n  DIMM-Link vs MCN-BC   : %.2fx (paper: 2.58x)\n",
                geomean(geo["DIMM-Link"]));
    std::printf("  DIMM-Link vs ABC-DIMM : %.2fx (paper: 1.77x)\n",
                geomean(geo["DIMM-Link"]) /
                    geomean(geo["ABC-DIMM"]));
    return 0;
}
