/**
 * @file
 * google-benchmark microbenches of the hot simulator components:
 * CRC-32, packet encode/decode, the MCMF placement solver, the DRAM
 * controller, the router network, and the event queue itself.
 */

#include <benchmark/benchmark.h>

#include "common/crc32.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "dram/dram_controller.hh"
#include "mapping/placement.hh"
#include "noc/network.hh"
#include "proto/codec.hh"
#include "sim/event_queue.hh"

using namespace dimmlink;

static void
BM_Crc32(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(data.data(), data.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(16)->Arg(272)->Arg(4096);

static void
BM_PacketEncodeDecode(benchmark::State &state)
{
    const proto::Packet p = proto::Codec::makeWriteReq(
        1, 2, 0x1000, 3,
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        const auto wire = proto::encode(p);
        proto::Packet out;
        benchmark::DoNotOptimize(proto::decode(wire, out));
    }
}
BENCHMARK(BM_PacketEncodeDecode)->Arg(0)->Arg(64)->Arg(256);

static void
BM_McmfPlacement(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    const auto dimms = static_cast<unsigned>(state.range(1));
    mapping::TrafficProfiler prof(threads, dimms);
    Rng rng(1);
    for (ThreadId t = 0; t < threads; ++t)
        for (DimmId d = 0; d < dimms; ++d)
            prof.record(t, d,
                        static_cast<std::uint32_t>(rng.below(1000)));
    auto dist = [](DimmId j, DimmId k) {
        return std::abs(static_cast<int>(j) - static_cast<int>(k));
    };
    for (auto _ : state)
        benchmark::DoNotOptimize(
            mapping::solvePlacement(prof, dist, 4));
    // The paper quotes ~2 ms for 64 threads / 16 DIMMs on a 5950X.
}
BENCHMARK(BM_McmfPlacement)
    ->Args({16, 4})
    ->Args({32, 8})
    ->Args({64, 16});

static void
BM_DramControllerThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        stats::Registry reg;
        dram::DramController ctrl(
            eq, "c", dram::Timing::preset("DDR4_2400"), 2, 64,
            reg.group("c"));
        Rng rng(7);
        unsigned done = 0;
        constexpr unsigned total = 1000;
        unsigned submitted = 0;
        std::function<void()> pump = [&] {
            while (submitted < total) {
                dram::DramRequest req;
                req.local = rng.below(1 << 24) & ~Addr(63);
                req.isWrite = rng.chance(0.3);
                req.done = [&] { ++done; };
                if (!ctrl.enqueue(std::move(req)))
                    return;
                ++submitted;
            }
        };
        ctrl.setUnblockCallback(pump);
        pump();
        while (done < total && eq.step()) {
        }
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_DramControllerThroughput);

static void
BM_NetworkRandomTraffic(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        stats::Registry reg;
        LinkConfig lc;
        noc::Network net(eq, "n", lc,
                         static_cast<unsigned>(state.range(0)),
                         reg);
        Rng rng(3);
        unsigned delivered = 0;
        constexpr unsigned total = 500;
        for (unsigned i = 0; i < total; ++i) {
            noc::Message m;
            m.src = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(state.range(0))));
            m.dst = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(state.range(0))));
            m.flits = 1 + static_cast<unsigned>(rng.below(16));
            m.deliver = [&](int) { ++delivered; };
            while (!net.tryInject(m))
                eq.step();
        }
        while (delivered < total && eq.step()) {
        }
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 500);
}
BENCHMARK(BM_NetworkRandomTraffic)->Arg(4)->Arg(8);

static void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 997),
                        [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueChurn);
