/**
 * @file
 * Ablations of DIMM-Link design choices beyond the paper's figures
 * (DESIGN.md calls these out): router buffer depth, the NMP cores'
 * MSHR window, the host forwarding latency, and the DLL retry
 * machinery under injected link errors.
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "proto/codec.hh"
#include "proto/dll.hh"

using namespace benchutil;

namespace {

void
bufferSweep()
{
    std::printf("--- Ablation A: router buffer depth (16D-8C, "
                "BFS, speedup vs 36 flits) ---\n");
    std::printf("%12s %10s\n", "bufferFlits", "speedup");
    double base = 0;
    for (unsigned flits : {36u, 48u, 64u, 96u, 128u}) {
        SystemConfig cfg = fabricConfig("16D-8C",
                                        IdcMethod::DimmLink);
        cfg.link.bufferFlits = flits;
        const RunResult r = runNmp(cfg, "bfs");
        if (base == 0)
            base = static_cast<double>(r.kernelTicks);
        std::printf("%12u %9.3fx\n", flits,
                    base / static_cast<double>(r.kernelTicks));
        std::fflush(stdout);
    }
    std::printf("\n");
}

void
mshrSweep()
{
    std::printf("--- Ablation B: NMP MSHR window (16D-8C, "
                "PageRank, speedup vs 4) ---\n");
    std::printf("%12s %10s\n", "MSHRs", "speedup");
    double base = 0;
    for (unsigned mshrs : {4u, 8u, 16u, 32u, 64u}) {
        SystemConfig cfg = fabricConfig("16D-8C",
                                        IdcMethod::DimmLink);
        cfg.dimm.maxOutstanding = mshrs;
        const RunResult r = runNmp(cfg, "pagerank");
        if (base == 0)
            base = static_cast<double>(r.kernelTicks);
        std::printf("%12u %9.3fx\n", mshrs,
                    base / static_cast<double>(r.kernelTicks));
        std::fflush(stdout);
    }
    std::printf("\n");
}

void
forwardLatencySweep()
{
    std::printf("--- Ablation C: host forwarding latency (16D-8C, "
                "PageRank, slowdown vs 60 ns) ---\n");
    std::printf("%12s %10s\n", "fwd ns", "slowdown");
    double base = 0;
    for (unsigned ns : {60u, 120u, 240u, 480u, 960u}) {
        SystemConfig cfg = fabricConfig("16D-8C",
                                        IdcMethod::DimmLink);
        cfg.host.forwardLatencyPs = ns * tickPerNs;
        const RunResult r = runNmp(cfg, "pagerank");
        if (base == 0)
            base = static_cast<double>(r.kernelTicks);
        std::printf("%12u %9.3fx\n", ns,
                    static_cast<double>(r.kernelTicks) / base);
        std::fflush(stdout);
    }
    std::printf("\n");
}

void
dllErrorSweep()
{
    std::printf("--- Ablation D: DLL retry under injected link "
                "errors (10k packets) ---\n");
    std::printf("%12s %12s %12s %12s\n", "error rate", "retries",
                "delivered", "goodput");

    for (const double rate : {0.0, 0.001, 0.01, 0.05, 0.2}) {
        EventQueue eq;
        stats::Registry reg;
        proto::RetrySender tx(eq, 500 * tickPerNs, 16,
                              reg.group("tx"));
        proto::RetryReceiver rx(reg.group("rx"));
        Rng rng(7);
        unsigned delivered = 0;
        constexpr unsigned total = 10000;

        for (unsigned i = 0; i < total; ++i) {
            const proto::Packet p = proto::Codec::makeWriteReq(
                0, 1, (i * 64) & 0xffffff,
                static_cast<std::uint8_t>(i & 0x3f), 64);
            tx.send(p,
                    [&](const proto::Packet &wp) {
                        const auto wire = proto::encode(wp);
                        std::vector<proto::Packet> out;
                        std::optional<proto::Packet> ctrl;
                        rx.onArrive(wire, rng.chance(rate), out, ctrl);
                        delivered += static_cast<unsigned>(out.size());
                        if (ctrl)
                            tx.onControl(*ctrl);
                    },
                    nullptr);
        }
        eq.run();
        const double sent = reg.scalar("tx.dllSent") +
                            reg.scalar("tx.dllRetries");
        std::printf("%12.3f %12.0f %12u %11.1f%%\n", rate,
                    reg.scalar("tx.dllRetries"), delivered,
                    100.0 * delivered / sent);
        std::fflush(stdout);
    }
    std::printf("\nEvery packet is eventually delivered exactly "
                "once; goodput degrades by the\nretransmission "
                "overhead (the CRC + NACK path of Section "
                "III-B).\n");
}

} // namespace

int
main()
{
    std::printf("=== Design-choice ablations ===\n\n");
    bufferSweep();
    mshrSweep();
    forwardLatencySweep();
    dllErrorSweep();
    return 0;
}
