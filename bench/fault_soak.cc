/**
 * @file
 * Fault-injection soak: sweep the link bit-error rate and report how
 * the DLL retry machinery absorbs it. For each BER the BFS kernel
 * runs on the single-group 4D-2C DIMM-Link system (all IDC traffic
 * stays on the bridge, so every injected corruption exercises the
 * NACK/timeout retransmission path) and the table shows the recovery
 * cost: corrupted wire images, retransmissions, duplicate
 * suppressions, and the kernel-time slowdown relative to the
 * fault-free run.
 *
 * Expected shape: kernel-time slowdown grows steadily with BER — a
 * corrupted packet stalls its stream for a NACK round-trip (or a
 * full retry timeout when the header was unreadable), and on the
 * critical path of a BFS level that wait is large relative to packet
 * serialization. Failed transfers must stay 0 at every point — the
 * retry budget is sized so a soak at these rates never exhausts it.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    const double bers[] = {0, 1e-6, 1e-5, 5e-5, 1e-4, 2e-4};

    std::printf("=== DLL fault-injection soak: BFS on 4D-2C vs link "
                "BER (faults.seed=7) ===\n\n");
    std::printf("%9s %9s %9s %9s %9s %9s %9s\n", "BER", "slowdown",
                "sent", "corrupt", "retries", "dups", "failed");
    printRule(9 + 6 * 10);

    double base_ticks = 0;
    for (const double ber : bers) {
        SystemConfig cfg = fabricConfig("4D-2C", IdcMethod::DimmLink);
        if (ber > 0) {
            cfg.faults.model = "ber";
            cfg.faults.ber = ber;
            cfg.faults.seed = 7;
        }

        System sys(cfg);
        auto wl = workloads::makeWorkload(
            "bfs", nmpParams(cfg, "bfs"), sys.addressMap());
        Runner runner(sys, *wl);
        const RunResult r = runner.run();
        if (!r.verified)
            std::fprintf(stderr, "WARNING: bfs did not verify at "
                         "BER %g\n", ber);
        if (ber == 0)
            base_ticks = static_cast<double>(r.kernelTicks);

        const auto &reg = sys.stats();
        std::printf("%9.0e %8.3fx %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                    ber,
                    static_cast<double>(r.kernelTicks) / base_ticks,
                    reg.sumScalar("fabric.dl", "dllSent"),
                    reg.sumScalar("fabric.dl", "dllCorrupt"),
                    reg.sumScalar("fabric.dl", "dllRetries"),
                    reg.sumScalar("fabric.dl", "dllDuplicates"),
                    reg.sumScalar("fabric.dl", "dllFailedTransfers"));
        std::fflush(stdout);
    }

    std::printf("\nThe BER=0 row uses the fast flit-count path (no "
                "DLL packets); every other\nrow carries the same "
                "payload bytes through the reliable transport with "
                "real\nwire images and CRC validation at the far "
                "end.\n");
    return 0;
}
