/**
 * @file
 * Fault-injection soak: sweep the link bit-error rate and report how
 * the DLL retry machinery absorbs it. For each BER the BFS kernel
 * runs on the single-group 4D-2C DIMM-Link system (all IDC traffic
 * stays on the bridge, so every injected corruption exercises the
 * NACK/timeout retransmission path) and the table shows the recovery
 * cost: corrupted wire images, retransmissions, duplicate
 * suppressions, and the kernel-time slowdown relative to the
 * fault-free run.
 *
 * Expected shape: kernel-time slowdown grows steadily with BER — a
 * corrupted packet stalls its stream for a NACK round-trip (or a
 * full retry timeout when the header was unreadable), and on the
 * critical path of a BFS level that wait is large relative to packet
 * serialization. Failed transfers must stay 0 at every point — the
 * retry budget is sized so a soak at these rates never exhausts it.
 *
 * The second table holds one direction of the 1<->2 bridge link down
 * for the whole run — past the retry budget — and shows the recovery
 * layer instead: the link-health machine taking the link out of the
 * tables, exhausted transfers failing over to the host path, and the
 * degraded-mode cost (slowdown and achieved IDC bandwidth) on the
 * chain topology (which disconnects and must lean on the host) vs the
 * ring (which routes around over the surviving direction).
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    const double bers[] = {0, 1e-6, 1e-5, 5e-5, 1e-4, 2e-4};

    std::printf("=== DLL fault-injection soak: BFS on 4D-2C vs link "
                "BER (faults.seed=7) ===\n\n");
    std::printf("%9s %9s %9s %9s %9s %9s %9s\n", "BER", "slowdown",
                "sent", "corrupt", "retries", "dups", "failed");
    printRule(9 + 6 * 10);

    double base_ticks = 0;
    for (const double ber : bers) {
        SystemConfig cfg = fabricConfig("4D-2C", IdcMethod::DimmLink);
        if (ber > 0) {
            cfg.faults.model = "ber";
            cfg.faults.ber = ber;
            cfg.faults.seed = 7;
        }

        System sys(cfg);
        auto wl = workloads::makeWorkload(
            "bfs", nmpParams(cfg, "bfs"), sys.addressMap());
        Runner runner(sys, *wl);
        const RunResult r = runner.run();
        if (!r.verified)
            std::fprintf(stderr, "WARNING: bfs did not verify at "
                         "BER %g\n", ber);
        if (ber == 0)
            base_ticks = static_cast<double>(r.kernelTicks);

        const auto &reg = sys.stats();
        std::printf("%9.0e %8.3fx %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                    ber,
                    static_cast<double>(r.kernelTicks) / base_ticks,
                    reg.sumScalar("fabric.dl", "dllSent"),
                    reg.sumScalar("fabric.dl", "dllCorrupt"),
                    reg.sumScalar("fabric.dl", "dllRetries"),
                    reg.sumScalar("fabric.dl", "dllDuplicates"),
                    reg.sumScalar("fabric.dl", "dllFailedTransfers"));
        std::fflush(stdout);
    }

    std::printf("\nThe BER=0 row uses the fast flit-count path (no "
                "DLL packets); every other\nrow carries the same "
                "payload bytes through the reliable transport with "
                "real\nwire images and CRC validation at the far "
                "end.\n");

    std::printf("\n=== Degraded mode: link 1->2 permanently stuck "
                "(BFS, faults.onExhausted=failover) ===\n\n");
    std::printf("%9s %9s %9s %9s %9s %9s %9s %11s\n", "topology",
                "slowdown", "failover", "reroutes", "downs", "suspect",
                "failed", "IDC GB/s");
    printRule(9 + 6 * 10 + 12);

    for (const Topology topo : {Topology::HalfRing, Topology::Ring}) {
        SystemConfig cfg = fabricConfig("4D-2C", IdcMethod::DimmLink);
        cfg.link.topology = topo;
        // Small problem: a dead link serializes every exhausted
        // transfer behind its full retry budget.
        workloads::WorkloadParams p = nmpParams(cfg, "bfs");
        p.scale = 8;
        p.rounds = 1;

        double healthy_ticks = 0;
        double ticks = 0, failover = 0, reroutes = 0, downs = 0,
               suspects = 0, failed = 0, idc_bytes = 0;
        for (const bool stuck : {false, true}) {
            if (stuck) {
                cfg.faults.model = "stuck";
                cfg.faults.stuckAtPs = 0;
                cfg.faults.stuckForPs = 400000000000000ull;
                cfg.faults.stuckPeriodPs = 0;
                cfg.faults.linkFilter = "link1to2";
                cfg.faults.seed = 7;
            }
            System sys(cfg);
            auto wl =
                workloads::makeWorkload("bfs", p, sys.addressMap());
            Runner runner(sys, *wl);
            const RunResult r = runner.run();
            if (!r.verified)
                std::fprintf(stderr, "WARNING: bfs did not verify "
                             "(stuck=%d)\n", stuck);
            if (!stuck) {
                healthy_ticks = static_cast<double>(r.kernelTicks);
                continue;
            }
            ticks = static_cast<double>(r.kernelTicks);
            const auto &reg = sys.stats();
            failover = reg.sumScalar("fabric.dl", "dllFailovers");
            reroutes = reg.sumScalar("fabric.dl", "hostReroutes");
            downs = reg.sumScalar("fabric.dl", "linkDownEvents");
            suspects =
                reg.sumScalar("fabric.dl", "linkSuspectEvents");
            failed =
                reg.sumScalar("fabric.dl", "dllFailedTransfers");
            idc_bytes = r.linkBytes + r.hostBytes;
        }
        std::printf("%9s %8.3fx %9.0f %9.0f %9.0f %9.0f %9.0f %11.3f\n",
                    toString(topo), ticks / healthy_ticks, failover,
                    reroutes, downs, suspects, failed,
                    idc_bytes * 1e12 / ticks / 1e9);
        std::fflush(stdout);
    }

    std::printf("\nEvery transfer still completes and verifies: "
                "exhausted sends re-enter through\nthe host forwarder "
                "and unreachable destinations are rerouted at submit "
                "time,\nso a dead link degrades bandwidth instead of "
                "losing data.\n");
    return 0;
}
