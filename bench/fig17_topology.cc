/**
 * @file
 * Figure 17 / Section VI reproduction: topology exploration. The
 * DIMMs of each DL group connected as Half-Ring (baseline), Ring,
 * Mesh, or Torus, at 16D-8C, reported as P2P speedup over the
 * Half-Ring per workload and geomean.
 *
 * Expected shape: Ring ~1.11x, Mesh ~1.19x, Torus ~1.27x over the
 * Half-Ring baseline.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig17_topology");
    const Topology topos[] = {Topology::HalfRing, Topology::Ring,
                              Topology::Mesh, Topology::Torus};

    std::printf("=== Figure 17: intra-group topology exploration "
                "(16D-8C, speedup over Half-Ring) ===\n\n");
    std::printf("%-9s", "workload");
    for (const Topology t : topos)
        std::printf(" %9s", toString(t));
    std::printf("\n");
    printRule(9 + 4 * 10);

    std::map<Topology, std::vector<double>> geo;
    for (const auto &wl : workloads::p2pWorkloadNames()) {
        RunResult base;
        std::printf("%-9s", wl.c_str());
        for (const Topology t : topos) {
            SystemConfig cfg =
                fabricConfig("16D-8C", IdcMethod::DimmLink);
            cfg.link.topology = t;
            const RunResult r = runNmp(cfg, wl);
            if (t == Topology::HalfRing)
                base = r;
            const double sp = speedup(base, r);
            geo[t].push_back(sp);
            std::printf(" %8.2fx", sp);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    printRule(9 + 4 * 10);
    std::printf("%-9s", "geomean");
    for (const Topology t : topos)
        std::printf(" %8.2fx", geomean(geo[t]));
    std::printf("\n\nPaper: Ring 1.11x, Mesh 1.19x, Torus 1.27x. "
                "The Half-Ring stays the practical\nchoice: Ring "
                "needs a long-reach link, Mesh/Torus multiply "
                "ports and P&R cost.\n");
    return 0;
}
