/**
 * @file
 * Figure 16 reproduction: DIMM-Link bandwidth exploration. The
 * per-link bandwidth swept from 4 to 64 GB/s for each system size,
 * reported as speedup relative to the 4 GB/s point (geomean over
 * BFS and Hotspot, the workloads the paper highlights).
 *
 * Expected shape: bandwidth sensitivity grows with system size; at
 * 16D-8C the HS/BFS curves are near-linear in the paper.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig16_bandwidth");
    const std::vector<std::string> presets = {"4D-2C", "8D-4C",
                                              "12D-6C", "16D-8C"};
    const double bws[] = {4, 8, 16, 25, 32, 64};
    const std::vector<std::string> wls = {"bfs", "hotspot"};

    std::printf("=== Figure 16: DIMM-Link per-link bandwidth sweep "
                "(speedup vs 4 GB/s) ===\n\n");
    std::printf("%10s", "GB/s/link");
    for (const auto &p : presets)
        std::printf(" %9s", p.c_str());
    std::printf("\n");
    printRule(10 + 4 * 10);

    std::map<std::string, double> base_time;
    for (const double bw : bws) {
        std::printf("%10.0f", bw);
        for (const auto &preset : presets) {
            double total = 0;
            for (const auto &wl : wls) {
                SystemConfig cfg =
                    fabricConfig(preset, IdcMethod::DimmLink);
                cfg.link.linkGBps = bw;
                const RunResult r = runNmp(cfg, wl);
                total += static_cast<double>(r.kernelTicks);
            }
            if (bw == bws[0])
                base_time[preset] = total;
            std::printf(" %8.2fx", base_time[preset] / total);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\nBandwidth sensitivity appears wherever IDC "
                "traffic stays on the bridge: the\nsingle-group "
                "4D-2C system is link-bound and scales ~3x, while "
                "the multi-group\nsystems bottleneck on host-"
                "forwarded inter-group traffic instead (see\n"
                "EXPERIMENTS.md on how this relates to the paper's "
                "Fig. 16).\n");
    return 0;
}
