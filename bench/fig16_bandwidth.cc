/**
 * @file
 * Figure 16 reproduction: DIMM-Link bandwidth exploration. The
 * per-link bandwidth swept from 4 to 64 GB/s for each system size,
 * reported as speedup relative to the 4 GB/s point (geomean over
 * BFS and Hotspot, the workloads the paper highlights).
 *
 * Expected shape: bandwidth sensitivity grows with system size; at
 * 16D-8C the HS/BFS curves are near-linear in the paper.
 *
 * `--standards [out]` runs the cross-standard memory sweep instead:
 * the same DIMM-Link machine under each registered DRAM family, with
 * enough NMP cores that the kernels are memory-bound, written as
 * BENCH_dram.json (docs/dram_timing.md).
 */

#include "bench_util.hh"

#include "dram/timing.hh"

using namespace benchutil;

namespace {

/** One (standard, workload) cell of the cross-standard sweep. */
struct StdRow {
    std::string family;
    std::string preset;
    std::string workload;
    Tick kernelTicks = 0;
    double speedupVsDdr4 = 0;
};

int
runStandardsSweep(const std::string &out_path)
{
    ScopedWallReport wall("fig16_bandwidth --standards");
    const std::vector<std::string> families = {"ddr4", "ddr5",
                                               "lpddr5x", "hbm2"};
    const std::vector<std::string> wls = {"stream", "bfs"};

    std::printf("=== DRAM standards sweep (4D-2C DIMM-Link, "
                "16 NMP cores/DIMM) ===\n\n");
    std::printf("%9s %13s", "standard", "preset");
    for (const auto &wl : wls)
        std::printf(" %12s", (wl + " ms").c_str());
    std::printf(" %12s\n", "vs ddr4");
    printRule(9 + 14 + 13 * (wls.size() + 1));

    std::vector<StdRow> rows;
    std::map<std::string, double> ddr4_time;
    for (const auto &family : families) {
        const std::string preset = dram::Timing::resolveName(family);
        double total = 0, base_total = 0;
        std::printf("%9s %13s", family.c_str(), preset.c_str());
        for (const auto &wl : wls) {
            SystemConfig cfg =
                fabricConfig("4D-2C", IdcMethod::DimmLink);
            cfg.dramPreset = preset;
            // 16 cores per DIMM makes the kernels memory-bound, so
            // the standards separate instead of hitting the common
            // compute floor of the paper's 4-core DIMM.
            cfg.dimm.numCores = 16;
            const RunResult r = runNmp(cfg, wl);
            StdRow row;
            row.family = family;
            row.preset = preset;
            row.workload = wl;
            row.kernelTicks = r.kernelTicks;
            rows.push_back(row);
            if (family == families[0])
                ddr4_time[wl] = static_cast<double>(r.kernelTicks);
            total += static_cast<double>(r.kernelTicks);
            base_total += ddr4_time[wl];
            std::printf(" %12.3f",
                        static_cast<double>(r.kernelTicks) /
                            static_cast<double>(tickPerMs));
            std::fflush(stdout);
        }
        std::printf(" %11.2fx\n", base_total / total);
    }
    for (StdRow &row : rows)
        row.speedupVsDdr4 =
            ddr4_time[row.workload] /
            static_cast<double>(row.kernelTicks);

    FILE *out = out_path == "-" ? stdout
                                : std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"dram_standards\",\n");
    std::fprintf(out, "  \"machine\": \"4D-2C DIMM-Link\",\n");
    std::fprintf(out, "  \"dimmNumCores\": 16,\n");
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const StdRow &r = rows[i];
        std::fprintf(
            out,
            "    {\"standard\": \"%s\", \"preset\": \"%s\", "
            "\"workload\": \"%s\", \"kernelTicks\": %llu, "
            "\"kernelMs\": %.4f, \"speedupVsDdr4\": %.3f}%s\n",
            r.family.c_str(), r.preset.c_str(), r.workload.c_str(),
            static_cast<unsigned long long>(r.kernelTicks),
            static_cast<double>(r.kernelTicks) /
                static_cast<double>(tickPerMs),
            r.speedupVsDdr4, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout)
        std::fclose(out);
    if (out != stdout)
        std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "--standards")
        return runStandardsSweep(argc > 2 ? argv[2]
                                          : "BENCH_dram.json");

    ScopedWallReport wall("fig16_bandwidth");
    const std::vector<std::string> presets = {"4D-2C", "8D-4C",
                                              "12D-6C", "16D-8C"};
    const double bws[] = {4, 8, 16, 25, 32, 64};
    const std::vector<std::string> wls = {"bfs", "hotspot"};

    std::printf("=== Figure 16: DIMM-Link per-link bandwidth sweep "
                "(speedup vs 4 GB/s) ===\n\n");
    std::printf("%10s", "GB/s/link");
    for (const auto &p : presets)
        std::printf(" %9s", p.c_str());
    std::printf("\n");
    printRule(10 + 4 * 10);

    std::map<std::string, double> base_time;
    for (const double bw : bws) {
        std::printf("%10.0f", bw);
        for (const auto &preset : presets) {
            double total = 0;
            for (const auto &wl : wls) {
                SystemConfig cfg =
                    fabricConfig(preset, IdcMethod::DimmLink);
                cfg.link.linkGBps = bw;
                const RunResult r = runNmp(cfg, wl);
                total += static_cast<double>(r.kernelTicks);
            }
            if (bw == bws[0])
                base_time[preset] = total;
            std::printf(" %8.2fx", base_time[preset] / total);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\nBandwidth sensitivity appears wherever IDC "
                "traffic stays on the bridge: the\nsingle-group "
                "4D-2C system is link-bound and scales ~3x, while "
                "the multi-group\nsystems bottleneck on host-"
                "forwarded inter-group traffic instead (see\n"
                "EXPERIMENTS.md on how this relates to the paper's "
                "Fig. 16).\n");
    return 0;
}
