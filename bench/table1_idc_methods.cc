/**
 * @file
 * Table I reproduction: the four IDC methods compared on hardware
 * modification scope, supported modes, and maximum bandwidth — the
 * analytic model next to bandwidth measured on this simulator.
 *
 *   CPU-forwarding : #Channel x beta / 2
 *   Intra-channel broadcast : #DIMM x beta (effective, broadcast)
 *   Dedicated bus  : beta
 *   DIMM-Link      : #Link x beta_link
 */

#include "bench_util.hh"

#include "idc/fabric.hh"

using namespace benchutil;

namespace {

/** Aggregate IDC bandwidth: all DIMMs stream to a partner at once. */
double
aggregateBandwidth(SystemConfig cfg)
{
    System sys(cfg);
    sys.enterNmpMode();
    const std::uint64_t per_pair = 4 * 1024 * 1024;
    const unsigned pairs = cfg.numDimms / 2;

    unsigned done_pairs = 0;
    Tick end = 0;
    const Tick start = sys.queue().now();

    for (unsigned p = 0; p < pairs; ++p) {
        const DimmId src = static_cast<DimmId>(2 * p);
        const DimmId dst = static_cast<DimmId>(2 * p + 1);
        auto issued = std::make_shared<std::uint64_t>(0);
        auto completed = std::make_shared<std::uint64_t>(0);
        const std::uint64_t lines = per_pair / 256;
        auto pump = std::make_shared<std::function<void()>>();
        *pump = [&, issued, completed, lines, src, dst, pump] {
            while (*issued < lines && *issued - *completed < 32) {
                idc::Transaction t;
                t.type = idc::Transaction::Type::RemoteWrite;
                t.src = src;
                t.dst = dst;
                t.addr = (*issued * 256) % (1 << 26);
                t.bytes = 256;
                t.onComplete = [&, completed, lines, pump] {
                    if (++*completed == lines) {
                        if (++done_pairs == pairs)
                            end = sys.queue().now();
                    } else {
                        (*pump)();
                    }
                };
                ++*issued;
                sys.fabric().submit(std::move(t));
            }
        };
        (*pump)();
    }
    while (done_pairs < pairs && sys.queue().step()) {
    }
    sys.exitNmpMode();
    const double bytes =
        static_cast<double>(per_pair) * pairs;
    return bytes / (static_cast<double>(end - start) / tickPerS) /
           1e9;
}

} // namespace

int
main()
{
    const auto base = SystemConfig::preset("16D-8C");
    const double beta = base.host.channelGBps;

    std::printf("=== Table I: comparison of inter-DIMM "
                "communication methods (16D-8C) ===\n\n");
    std::printf("%-14s %-22s %-26s %12s %12s\n", "method",
                "hw modification", "IDC modes", "model GB/s",
                "meas. GB/s");
    printRule(92);

    struct Row
    {
        const char *name;
        IdcMethod method;
        const char *hw;
        const char *modes;
        double model;
    };
    const unsigned links = 2 * (base.groupSize() - 1) *
                           base.numGroups();
    const Row rows[] = {
        {"CPU-Fwd (MCN)", IdcMethod::CpuForwarding, "DIMM modules",
         "P2P", base.numChannels * beta / 2},
        {"ABC-DIMM", IdcMethod::ChannelBroadcast,
         "host CPU + DIMMs", "broadcast",
         base.numDimms * beta},
        {"AIM bus", IdcMethod::DedicatedBus, "DIMM modules", "P2P",
         beta},
        {"DIMM-Link", IdcMethod::DimmLink, "DIMM modules",
         "P2P + broadcast", links / 2 * base.link.linkGBps},
    };

    for (const auto &row : rows) {
        const double meas =
            aggregateBandwidth(fabricConfig("16D-8C", row.method));
        std::printf("%-14s %-22s %-26s %12.1f %12.1f\n", row.name,
                    row.hw, row.modes, row.model, meas);
        std::fflush(stdout);
    }

    std::printf("\nNotes: the model column is Table I's analytic "
                "peak; the measured column\nstreams 256-byte remote "
                "writes between disjoint DIMM pairs. DIMM-Link's\n"
                "measured aggregate uses adjacent pairs (one link "
                "hop each); AIM is bounded\nby the single shared "
                "bus; MCN by channel occupancy both ways.\n");
    return 0;
}
