/**
 * @file
 * Figure 14 reproduction: synchronization performance.
 * (a) the sync microkernel swept over barrier intervals (instructions
 *     between barriers) for MCN, AIM, DIMM-Link-Central and
 *     DIMM-Link-Hier;
 * (b) the TS.Pow end-to-end workload (SynCron's kernel).
 *
 * Expected shape: the hierarchical scheme's advantage grows as the
 * interval shrinks (~5.3x over MCN and ~2.2x over AIM at a
 * 500-instruction interval); TS.Pow end-to-end ~1.5-1.7x over MCN.
 */

#include "bench_util.hh"

using namespace benchutil;

namespace {

struct Variant
{
    const char *label;
    IdcMethod method;
    SyncScheme scheme;
};

const Variant variants[] = {
    {"MCN", IdcMethod::CpuForwarding, SyncScheme::Centralized},
    {"AIM", IdcMethod::DedicatedBus, SyncScheme::Centralized},
    {"DL-Central", IdcMethod::DimmLink, SyncScheme::Centralized},
    {"DL-Hier", IdcMethod::DimmLink, SyncScheme::Hierarchical},
};

RunResult
runSync(const Variant &v, const char *wl, std::uint64_t interval)
{
    SystemConfig cfg = fabricConfig("16D-8C", v.method);
    cfg.syncScheme = v.scheme;
    System sys(cfg);
    workloads::WorkloadParams p = nmpParams(cfg, wl);
    p.syncIntervalInstr = interval;
    p.rounds = 24;
    auto w = workloads::makeWorkload(wl, p, sys.addressMap());
    Runner runner(sys, *w);
    return runner.run();
}

} // namespace

int
main()
{
    ScopedWallReport wall("fig14_sync");
    std::printf("=== Figure 14-(a): barrier microkernel, speedup "
                "over MCN per sync interval ===\n\n");
    std::printf("%10s", "interval");
    for (const auto &v : variants)
        std::printf(" %11s", v.label);
    std::printf("\n");
    printRule(10 + 4 * 12);

    for (std::uint64_t interval :
         {500ull, 2000ull, 8000ull, 32000ull, 128000ull}) {
        RunResult mcn;
        std::printf("%10llu",
                    static_cast<unsigned long long>(interval));
        for (const auto &v : variants) {
            const RunResult r = runSync(v, "syncbench", interval);
            if (std::string(v.label) == "MCN")
                mcn = r;
            std::printf(" %10.2fx", speedup(mcn, r));
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\n=== Figure 14-(b): TS.Pow end-to-end, speedup "
                "over MCN ===\n\n");
    RunResult mcn;
    for (const auto &v : variants) {
        const RunResult r = runSync(v, "tspow", 0);
        if (std::string(v.label) == "MCN")
            mcn = r;
        std::printf("  %-11s %6.2fx%s\n", v.label, speedup(mcn, r),
                    std::string(v.label) == "DL-Hier"
                        ? "  (paper: 1.46x-1.74x over MCN)"
                        : "");
        std::fflush(stdout);
    }
    return 0;
}
