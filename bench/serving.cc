/**
 * @file
 * Serving-frontend sweep (docs/serving.md): offered load vs achieved
 * throughput and tail latency for the request-level workloads (kv,
 * embed) on DIMM-Link against the host-forwarded MCN baseline.
 *
 * For each workload a closed-loop run on each fabric measures its
 * saturation throughput; the open-loop sweep then offers fixed
 * fractions of the DIMM-Link capacity (0.25x .. 1.25x) to both
 * fabrics, so the grid brackets saturation: the top points exceed
 * even DIMM-Link's capacity, and the baseline saturates earlier.
 *
 * Emits a JSON report (default BENCH_serving.json, or argv[1]; "-"
 * for stdout). All latencies are picoseconds.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace dimmlink;
using namespace benchutil;

namespace {

struct Row
{
    std::string workload;
    std::string fabric;
    std::string mode;
    double offeredQps = 0; ///< 0 for closed-loop rows.
    double loadFrac = 0;   ///< Offered / DIMM-Link capacity.
    double achievedQps = 0;
    double p50Ps = 0, p95Ps = 0, p99Ps = 0;
    double reqWaitPs = 0;
    Tick kernelTicks = 0;
    bool verified = false;
};

SystemConfig
servingConfig(IdcMethod method, const std::string &wl)
{
    SystemConfig cfg = fabricConfig("4D-2C", method);
    cfg.serve.requests = wl == "embed" ? 1024 : 2048;
    cfg.serve.keys = 65536;
    return cfg;
}

Row
runPoint(IdcMethod method, const std::string &wl, double offered_qps)
{
    SystemConfig cfg = servingConfig(method, wl);
    if (offered_qps > 0) {
        cfg.serve.mode = "open";
        cfg.serve.offeredQps = offered_qps;
    } else {
        cfg.serve.mode = "closed";
    }

    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wload = workloads::makeWorkload(wl, p, sys.addressMap());
    Runner runner(sys, *wload);
    const RunResult r = runner.run();

    const auto &reg = sys.stats();
    Row row;
    row.workload = wl;
    row.fabric = toString(method);
    row.mode = cfg.serve.mode;
    row.offeredQps = offered_qps;
    row.achievedQps = reg.scalar("serve.achievedQps");
    row.p50Ps = reg.scalar("serve.latencyP50Ps");
    row.p95Ps = reg.scalar("serve.latencyP95Ps");
    row.p99Ps = reg.scalar("serve.latencyP99Ps");
    row.reqWaitPs = reg.scalar("serve.reqWaitPs");
    row.kernelTicks = r.kernelTicks;
    row.verified = r.verified;
    if (!r.verified)
        std::fprintf(stderr, "WARNING: %s did not verify on %s\n",
                     wl.c_str(), toString(method));
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ScopedWallReport wall("serving");
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_serving.json";

    const std::vector<std::string> wls = {"kv", "embed"};
    const std::vector<IdcMethod> fabrics = {IdcMethod::DimmLink,
                                            IdcMethod::CpuForwarding};
    const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0,
                                           1.25};

    std::vector<Row> rows;
    for (const auto &wl : wls) {
        // Closed-loop capacity per fabric (reported for reference;
        // the DIMM-Link one anchors the sweep grid).
        double dl_capacity = 0;
        for (IdcMethod m : fabrics) {
            Row cap = runPoint(m, wl, 0);
            std::printf("%-6s %-16s closed-loop capacity: "
                        "%.3g qps  (p50 %.2f us, p99 %.2f us)\n",
                        wl.c_str(), cap.fabric.c_str(),
                        cap.achievedQps, cap.p50Ps / 1e6,
                        cap.p99Ps / 1e6);
            std::fflush(stdout);
            if (m == IdcMethod::DimmLink)
                dl_capacity = cap.achievedQps;
            rows.push_back(std::move(cap));
        }
        for (double f : fractions) {
            for (IdcMethod m : fabrics) {
                Row r = runPoint(m, wl, f * dl_capacity);
                r.loadFrac = f;
                std::printf("%-6s %-16s %4.2fx load (%.3g qps): "
                            "achieved %.3g qps  p50 %.2f us  "
                            "p95 %.2f us  p99 %.2f us\n",
                            wl.c_str(), r.fabric.c_str(), f,
                            r.offeredQps, r.achievedQps,
                            r.p50Ps / 1e6, r.p95Ps / 1e6,
                            r.p99Ps / 1e6);
                std::fflush(stdout);
                rows.push_back(std::move(r));
            }
        }
    }

    FILE *out = out_path == "-" ? stdout
                                : std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"serving\",\n");
    std::fprintf(out, "  \"preset\": \"4D-2C\",\n");
    std::fprintf(out, "  \"zipfTheta\": 0.99,\n");
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            out,
            "    {\"workload\": \"%s\", \"fabric\": \"%s\", "
            "\"mode\": \"%s\", \"offeredQps\": %.6g, "
            "\"loadFrac\": %.6g, \"achievedQps\": %.6g, "
            "\"p50Ps\": %.6g, \"p95Ps\": %.6g, \"p99Ps\": %.6g, "
            "\"reqWaitPs\": %.6g, \"kernelTicks\": %llu, "
            "\"verified\": %s}%s\n",
            r.workload.c_str(), r.fabric.c_str(), r.mode.c_str(),
            r.offeredQps, r.loadFrac, r.achievedQps, r.p50Ps,
            r.p95Ps, r.p99Ps, r.reqWaitPs,
            static_cast<unsigned long long>(r.kernelTicks),
            r.verified ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}
