/**
 * @file
 * Table V reproduction: the evaluated system configurations, printed
 * from the same SystemConfig objects every bench uses.
 */

#include <iostream>

#include "common/config.hh"
#include "dram/timing.hh"

using namespace dimmlink;

int
main()
{
    std::cout << "=== Table V: system configurations ===\n\n";
    for (const char *preset :
         {"4D-2C", "8D-4C", "12D-6C", "16D-8C"}) {
        std::cout << "[" << preset << "]\n";
        SystemConfig::preset(preset).print(std::cout);
        std::cout << "\n";
    }

    const auto t = dram::Timing::preset("DDR4_2400");
    std::cout << "DRAM timing (" << t.name << ", tCK = "
              << t.clkPeriod() << " ps):\n"
              << "  tRCD=" << t.tRCD << " tRP=" << t.tRP
              << " tCL=" << t.tCL << " tCWL=" << t.tCWL
              << " tRAS=" << t.tRAS << " tRC=" << t.tRC << "\n"
              << "  tCCD_S/L=" << t.tCCDs << "/" << t.tCCDl
              << " tRRD_S/L=" << t.tRRDs << "/" << t.tRRDl
              << " tFAW=" << t.tFAW << " tWR=" << t.tWR
              << " tWTR_S/L=" << t.tWTRs << "/" << t.tWTRl << "\n"
              << "  tRTP=" << t.tRTP << " tREFI=" << t.tREFI
              << " tRFC=" << t.tRFC << "\n";

    const SystemConfig cfg;
    std::cout << "\nEnergy constants (Section V-C):\n"
              << "  GRS link      : " << cfg.energy.linkPjPerBit
              << " pJ/b\n"
              << "  DDR RD/WR     : " << cfg.energy.ddrRdWrPjPerBit
              << " pJ/b\n"
              << "  bus IO        : " << cfg.energy.busIoPjPerBit
              << " pJ/b\n"
              << "  ACT           : " << cfg.energy.activateNj
              << " nJ\n"
              << "  NMP processor : "
              << cfg.energy.nmpCoreWatt * 4 << " W per DIMM\n";
    return 0;
}
