/**
 * @file
 * Shared helpers for the table/figure reproduction benches: system
 * construction, workload runs, geometric means, and table printing.
 */

#ifndef DIMMLINK_BENCH_BENCH_UTIL_HH
#define DIMMLINK_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace benchutil {

using namespace dimmlink;

/**
 * Wall-clock stopwatch for the benches. Always steady_clock: bench
 * timing must be monotonic, never the adjustable system_clock.
 */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    void reset() { start = std::chrono::steady_clock::now(); }

    double
    elapsedNs() const
    {
        return std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    double elapsedMs() const { return elapsedNs() / 1e6; }
    double elapsedSec() const { return elapsedNs() / 1e9; }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * Uniform wall-clock footer for the fig and table drivers: declare
 * one at the top of main() and every run ends with the same
 * "[wall] <name>: N.NN s" line, so sweep scripts can compare driver
 * cost across machines without each driver rolling its own timing.
 */
class ScopedWallReport
{
  public:
    explicit ScopedWallReport(const char *name) : name(name) {}

    ~ScopedWallReport()
    {
        std::printf("\n[wall] %s: %.2f s\n", name,
                    timer.elapsedSec());
    }

  private:
    const char *name;
    WallTimer timer;
};

/** Problem-size knob: DIMMLINK_SCALE=small|default|large. */
inline int
scaleBoost()
{
    const char *env = std::getenv("DIMMLINK_SCALE");
    if (!env)
        return 0;
    const std::string s = env;
    if (s == "small")
        return -1;
    if (s == "large")
        return 1;
    return 0;
}

/** Per-workload scale defaults tuned for minutes-long benches. */
inline std::uint64_t
workloadScale(const std::string &name)
{
    static const std::map<std::string, std::uint64_t> base = {
        {"bfs", 15},     {"pagerank", 15}, {"sssp", 15},
        {"spmv", 15},    {"hotspot", 5},   {"kmeans", 5},
        {"nw", 3},       {"tspow", 4},     {"syncbench", 1},
    };
    const auto it = base.find(name);
    const std::int64_t s =
        static_cast<std::int64_t>(it == base.end() ? 1 : it->second)
        + scaleBoost();
    return static_cast<std::uint64_t>(std::max<std::int64_t>(1, s));
}

inline workloads::WorkloadParams
nmpParams(const SystemConfig &cfg, const std::string &wl,
          bool broadcast = false)
{
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = workloadScale(wl);
    p.rounds = 4;
    p.broadcastMode = broadcast;
    return p;
}

/** Run a workload on an NMP system. */
inline RunResult
runNmp(SystemConfig cfg, const std::string &wl_name,
       bool broadcast = false)
{
    System sys(cfg);
    auto wl = workloads::makeWorkload(
        wl_name, nmpParams(cfg, wl_name, broadcast),
        sys.addressMap());
    Runner runner(sys, *wl);
    RunResult r = runner.run();
    if (!r.verified)
        std::fprintf(stderr,
                     "WARNING: %s did not verify on %s\n",
                     wl_name.c_str(), toString(cfg.idcMethod));
    return r;
}

/** Run the 16-core host-CPU baseline on the same problem. */
inline RunResult
runCpu(SystemConfig cfg, const std::string &wl_name,
       bool broadcast = false)
{
    HostRunner host(cfg);
    workloads::WorkloadParams p = nmpParams(cfg, wl_name, broadcast);
    p.numThreads = cfg.host.numCores;
    dram::GlobalAddressMap gmap(cfg.numDimms,
                                cfg.dimm.capacityBytes);
    auto wl = workloads::makeWorkload(wl_name, p, gmap);
    return host.run(*wl);
}

inline double
speedup(const RunResult &base, const RunResult &x)
{
    return static_cast<double>(base.kernelTicks) /
           static_cast<double>(x.kernelTicks);
}

inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Standard fabric configs used across the benches. */
inline SystemConfig
fabricConfig(const std::string &preset, IdcMethod method,
             bool mapping = false)
{
    SystemConfig cfg = SystemConfig::preset(preset);
    cfg.idcMethod = method;
    cfg.distanceAwareMapping = mapping;
    // The paper pairs DIMM-Link with the polling proxy and the
    // baselines with per-DIMM polling.
    cfg.pollingMode = method == IdcMethod::DimmLink
                          ? PollingMode::Proxy
                          : PollingMode::Baseline;
    cfg.syncScheme = method == IdcMethod::DimmLink
                         ? SyncScheme::Hierarchical
                         : SyncScheme::Centralized;
    return cfg;
}

inline void
printRule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace benchutil

#endif // DIMMLINK_BENCH_BENCH_UTIL_HH
