/**
 * @file
 * Chaos serving bench (docs/serving.md, "Reliability & graceful
 * degradation"): open-loop kv at 1.0x offered load on a two-host rack
 * with the cross-host route forced through the host forwarders, while
 * a mid-run outage kills host 1's rack port (and, in the worst cell,
 * its gateway bridge too). Each chaos cell runs twice: bare (no
 * reliability layer) and with deadlines + retries + load shedding
 * armed.
 *
 * The claim under test: with the layer armed, tail latency stays
 * bounded by the deadline and goodput holds within 70% of the
 * fault-free run, while the bare run's p99 blows past the deadline --
 * requests caught on the dead route sit out the retry storm instead
 * of being cut loose.
 *
 * Emits a JSON report (default BENCH_chaos.json, or argv[1]; "-" for
 * stdout). All latencies are picoseconds.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace dimmlink;
using namespace benchutil;

namespace {

/** Per-request latency budget of the reliability cells (us). */
constexpr double kDeadlineUs = 25;

struct Row
{
    std::string fault;  ///< "none" | "host" | "host+gateway"
    bool reliable = false;
    double goodputQps = 0;
    double errorRate = 0;
    double p50Ps = 0, p99Ps = 0;
    double requests = 0;
    double misses = 0, shed = 0, retries = 0, fastFails = 0,
           failed = 0;
    double parked = 0; ///< transfers parked on a dead rack edge
    bool verified = false;
};

Row
runCell(const std::string &fault, bool reliable)
{
    // The rack_2host.json machine: the paper's 8-DIMM box split into
    // two hosts of one DL group each. Forwarded cross-host routing
    // plus a long DLL retry timeout make the outage maximally
    // painful: every crossing rides the path the fault kills.
    SystemConfig cfg = SystemConfig::preset("8D-4C");
    cfg.rack.hosts = 2;
    cfg.rack.idcMode = "forwarded";
    cfg.link.retryTimeoutPs = 40000000;
    cfg.serve.mode = "open";
    cfg.serve.offeredQps = 2e6;
    cfg.serve.requests = 4096;
    cfg.serve.keys = 65536;
    if (fault != "none") {
        cfg.rack.hostDownId = 1;
        cfg.rack.hostDownAtPs = 500000000;
        cfg.rack.hostDownForPs = 60000000;
    }
    if (fault == "host+gateway") {
        cfg.rack.nodeDownId = 1;
        cfg.rack.nodeDownAtPs = 500000000;
        cfg.rack.nodeDownForPs = 60000000;
    }
    if (reliable) {
        cfg.serve.deadlineUs = kDeadlineUs;
        cfg.serve.maxRetries = 3;
        cfg.serve.backoffUs = 5;
        cfg.serve.maxInflight = 128;
    }
    cfg.validate();

    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("kv", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();

    const auto &reg = sys.stats();
    auto sv = [&](const char *key) {
        return reg.hasScalar(key) ? reg.scalar(key) : 0.0;
    };
    Row row;
    row.fault = fault;
    row.reliable = reliable;
    // Bare cells have no goodput scalar; their goodput is achieved
    // throughput (every completion counts, however late).
    row.goodputQps = reliable ? sv("serve.goodputQps")
                              : sv("serve.achievedQps");
    row.errorRate = sv("serve.errorRate");
    row.p50Ps = sv("serve.latencyP50Ps");
    row.p99Ps = sv("serve.latencyP99Ps");
    row.requests = sv("serve.requests");
    row.misses = sv("serve.deadlineMisses");
    row.shed = sv("serve.shedRequests");
    row.retries = sv("serve.retries");
    row.fastFails = sv("serve.breakerFastFails");
    row.failed = sv("serve.failedRequests");
    row.parked = sv("rack.parkedTransfers");
    row.verified = r.verified;
    if (!r.verified)
        std::fprintf(stderr, "WARNING: kv did not verify at "
                     "fault=%s reliable=%d\n", fault.c_str(),
                     reliable);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ScopedWallReport wall("chaos_serving");
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_chaos.json";

    const std::vector<std::string> faults = {"none", "host",
                                             "host+gateway"};
    std::vector<Row> rows;
    for (const auto &fault : faults) {
        for (const bool reliable : {false, true}) {
            Row r = runCell(fault, reliable);
            std::printf("%-13s %-8s: goodput %.3g qps  p50 %6.2f us  "
                        "p99 %6.2f us  (miss %.0f shed %.0f retry "
                        "%.0f fastfail %.0f fail %.0f)\n",
                        fault.c_str(), reliable ? "reliable" : "bare",
                        r.goodputQps, r.p50Ps / 1e6, r.p99Ps / 1e6,
                        r.misses, r.shed, r.retries, r.fastFails,
                        r.failed);
            std::fflush(stdout);
            rows.push_back(std::move(r));
        }
    }

    // The acceptance gates. Row order: none/bare, none/reliable,
    // host/bare, host/reliable, host+gateway/bare,
    // host+gateway/reliable.
    const Row &ff_rel = rows[1];
    const Row &chaos_bare = rows[2];
    const Row &chaos_rel = rows[3];
    const double deadline_ps = kDeadlineUs * 1e6;
    const bool goodput_holds =
        chaos_rel.goodputQps >= 0.7 * ff_rel.goodputQps;
    const bool tail_bounded = chaos_rel.p99Ps <= deadline_ps;
    const bool bare_blows_budget = chaos_bare.p99Ps > deadline_ps;
    const bool outage_bites = chaos_rel.misses + chaos_rel.shed +
                              chaos_rel.failed > 0;
    bool all_verified = true;
    for (const Row &r : rows)
        all_verified = all_verified && r.verified;

    std::printf("\ngoodput under outage >= 70%% of fault-free: %s "
                "(%.3g vs %.3g qps)\n",
                goodput_holds ? "yes" : "NO", chaos_rel.goodputQps,
                ff_rel.goodputQps);
    std::printf("reliable p99 bounded by the %g us deadline: %s "
                "(%.2f us)\n", kDeadlineUs,
                tail_bounded ? "yes" : "NO", chaos_rel.p99Ps / 1e6);
    std::printf("bare p99 blows the budget during the outage: %s "
                "(%.2f us)\n", bare_blows_budget ? "yes" : "NO",
                chaos_bare.p99Ps / 1e6);

    FILE *out = out_path == "-" ? stdout
                                : std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"chaos_serving\",\n");
    std::fprintf(out, "  \"preset\": \"8D-4C\",\n");
    std::fprintf(out, "  \"hosts\": 2,\n");
    std::fprintf(out, "  \"idcMode\": \"forwarded\",\n");
    std::fprintf(out, "  \"workload\": \"kv\",\n");
    std::fprintf(out, "  \"offeredQps\": 2e6,\n");
    std::fprintf(out, "  \"deadlineUs\": %g,\n", kDeadlineUs);
    std::fprintf(out, "  \"goodputHolds\": %s,\n",
                 goodput_holds ? "true" : "false");
    std::fprintf(out, "  \"tailBounded\": %s,\n",
                 tail_bounded ? "true" : "false");
    std::fprintf(out, "  \"bareBlowsBudget\": %s,\n",
                 bare_blows_budget ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            out,
            "    {\"fault\": \"%s\", \"reliable\": %s, "
            "\"goodputQps\": %.6g, \"errorRate\": %.6g, "
            "\"p50Ps\": %.6g, \"p99Ps\": %.6g, "
            "\"requests\": %.6g, \"deadlineMisses\": %.6g, "
            "\"shedRequests\": %.6g, \"retries\": %.6g, "
            "\"breakerFastFails\": %.6g, \"failedRequests\": %.6g, "
            "\"parkedTransfers\": %.6g, \"verified\": %s}%s\n",
            r.fault.c_str(), r.reliable ? "true" : "false",
            r.goodputQps, r.errorRate, r.p50Ps, r.p99Ps, r.requests,
            r.misses, r.shed, r.retries, r.fastFails, r.failed,
            r.parked, r.verified ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout)
        std::fclose(out);
    return goodput_holds && tail_bounded && bare_blows_budget &&
                   outage_bites && all_verified
               ? 0
               : 1;
}
