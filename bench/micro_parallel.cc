/**
 * @file
 * Shards-vs-threads sweep of the parallel event kernel: for each
 * system shape (= shard count) run the same workload under
 * sim.shard=group at 1..N OS threads, plus the classic unsharded
 * kernel as the overhead reference, and report wall time, executed
 * events/s, and speedup over the 1-thread sharded run.
 *
 * Emits a JSON report (default BENCH_parallel.json, or argv[1]; "-"
 * for stdout). Speedups are measured on whatever machine runs the
 * bench and the report records hardware_concurrency for honest
 * reading: a 2-CPU container cannot show more than ~2x regardless of
 * shard count.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "sim/shard.hh"

using namespace dimmlink;

namespace {

struct Shape
{
    const char *label;
    const char *preset;
    unsigned dimmsPerGroup; ///< 0 = preset default.
};

struct Row
{
    std::string config;
    unsigned shards = 1;
    unsigned threads = 1;
    std::string mode; ///< "none" (classic kernel) or "group".
    double wallSec = 0;
    std::uint64_t events = 0;
    double eventsPerSec = 0;
    double speedupVs1T = 0; ///< vs the 1-thread sharded run; 0 = n/a.
    Tick kernelTicks = 0;
};

SystemConfig
shapeConfig(const Shape &s, unsigned threads)
{
    SystemConfig cfg =
        benchutil::fabricConfig(s.preset, IdcMethod::DimmLink);
    if (s.dimmsPerGroup)
        cfg.dimmsPerGroup = s.dimmsPerGroup;
    if (threads > 0) {
        cfg.sim.shard = "group";
        cfg.sim.threads = threads;
    }
    return cfg;
}

Row
runOnce(const Shape &s, unsigned threads, const std::string &wl_name,
        std::uint64_t scale, unsigned rounds)
{
    const SystemConfig cfg = shapeConfig(s, threads);
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = scale;
    p.rounds = rounds;
    auto wl =
        workloads::makeWorkload(wl_name, p, sys.addressMap());
    Runner runner(sys, *wl);

    benchutil::WallTimer timer;
    const RunResult r = runner.run();
    const double sec = timer.elapsedSec();
    if (!r.verified)
        std::fprintf(stderr, "WARNING: %s did not verify on %s\n",
                     wl_name.c_str(), s.label);

    Row row;
    row.config = s.label;
    row.shards = sys.shards() ? sys.shards()->numShards() : 1;
    row.threads = threads;
    row.mode = threads > 0 ? "group" : "none";
    row.wallSec = sec;
    row.events = sys.queue().executed();
    if (ShardSet *sh = sys.shards()) {
        row.events = 0;
        for (unsigned i = 0; i < sh->numShards(); ++i)
            row.events += sh->queue(i).executed();
    }
    row.eventsPerSec =
        sec > 0 ? static_cast<double>(row.events) / sec : 0;
    row.kernelTicks = r.kernelTicks;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_parallel.json";
    const std::string wl_name = "pagerank";
    const std::uint64_t scale = benchutil::workloadScale(wl_name) - 3;
    const unsigned rounds = 2;

    const std::vector<Shape> shapes = {
        {"8D-4C/g4", "8D-4C", 0},   // 2 groups -> 3 shards
        {"8D-4C/g2", "8D-4C", 2},   // 4 groups -> 5 shards
        {"16D-8C/g2", "16D-8C", 2}, // 8 groups -> 9 shards
    };
    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

    std::vector<Row> rows;
    for (const Shape &s : shapes) {
        // Classic kernel reference: shows the windowing overhead the
        // sharded mode pays even before any parallel win.
        rows.push_back(runOnce(s, 0, wl_name, scale, rounds));
        double base_sec = 0;
        for (unsigned t : thread_counts) {
            Row r = runOnce(s, t, wl_name, scale, rounds);
            if (t == 1)
                base_sec = r.wallSec;
            else if (r.wallSec > 0)
                r.speedupVs1T = base_sec / r.wallSec;
            rows.push_back(r);
            std::fprintf(stderr,
                         "%-10s shards=%u threads=%u  %8.3fs  "
                         "%12.0f ev/s  speedup %.2fx\n",
                         r.config.c_str(), r.shards, r.threads,
                         r.wallSec, r.eventsPerSec, r.speedupVs1T);
        }
    }

    FILE *out = out_path == "-" ? stdout
                                : std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"micro_parallel\",\n");
    std::fprintf(out, "  \"workload\": \"%s\",\n", wl_name.c_str());
    std::fprintf(out, "  \"scale\": %llu,\n",
                 static_cast<unsigned long long>(scale));
    std::fprintf(out, "  \"rounds\": %u,\n", rounds);
    std::fprintf(out, "  \"hostCpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            out,
            "    {\"config\": \"%s\", \"shards\": %u, \"mode\": "
            "\"%s\", \"threads\": %u, \"wallSec\": %.4f, "
            "\"events\": %llu, \"eventsPerSec\": %.0f, "
            "\"speedupVs1T\": %.3f, \"kernelTicks\": %llu}%s\n",
            r.config.c_str(), r.shards, r.mode.c_str(), r.threads,
            r.wallSec, static_cast<unsigned long long>(r.events),
            r.eventsPerSec, r.speedupVs1T,
            static_cast<unsigned long long>(r.kernelTicks),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}
