/**
 * @file
 * Figure 1 reproduction: IDC performance exploration on a
 * CPU-forwarding (UPMEM-style) platform. (a) point-to-point IDC
 * bandwidth vs transfer size; (b) aggregate NMP bandwidth vs
 * achievable P2P IDC bandwidth on a 16-DIMM system.
 *
 * Expected shape: P2P IDC bandwidth saturates at a few GB/s only for
 * bulk transfers, and aggregate NMP bandwidth exceeds aggregate IDC
 * bandwidth by more than an order of magnitude (51x in the paper's
 * UPMEM measurement).
 */

#include "bench_util.hh"

#include "idc/fabric.hh"

using namespace benchutil;

namespace {

/** Measured bandwidth of one bulk IDC transfer of @p bytes. */
double
p2pBandwidth(System &sys, std::uint64_t bytes)
{
    sys.enterNmpMode();
    bool done = false;
    const Tick start = sys.queue().now();
    Tick end = 0;

    // Issue the transfer as back-to-back line-sized remote reads
    // from DIMM 0 to DIMM 1 through the fabric, 64 outstanding.
    std::uint64_t issued = 0, completed = 0;
    const std::uint64_t total_lines = bytes / 256;
    std::function<void()> pump = [&] {
        while (issued < total_lines &&
               issued - completed < 64) {
            idc::Transaction t;
            t.type = idc::Transaction::Type::RemoteRead;
            t.src = 0;
            t.dst = 1;
            t.addr = (issued * 256) % (1 << 26);
            t.bytes = 256;
            t.onComplete = [&] {
                ++completed;
                if (completed == total_lines) {
                    done = true;
                    end = sys.queue().now();
                } else {
                    pump();
                }
            };
            ++issued;
            sys.fabric().submit(std::move(t));
        }
    };
    pump();
    while (!done && sys.queue().step()) {
    }
    sys.exitNmpMode();
    const double seconds =
        static_cast<double>(end - start) / tickPerS;
    return static_cast<double>(bytes) / seconds / 1e9;
}

} // namespace

int
main()
{
    ScopedWallReport wall("fig01_idc_bandwidth");
    std::printf("=== Figure 1-(a): P2P IDC bandwidth vs transfer "
                "size (CPU-forwarding) ===\n\n");
    std::printf("%12s %14s\n", "transfer", "bandwidth");

    auto cfg = fabricConfig("16D-8C", IdcMethod::CpuForwarding);
    for (std::uint64_t kb : {4, 16, 64, 256, 1024, 4096, 16384}) {
        System sys(cfg);
        // Remote memory access stub path goes through real DRAM via
        // the system wiring.
        const double gbps = p2pBandwidth(sys, kb * 1024);
        std::printf("%9lluKB %11.2fGB/s\n",
                    static_cast<unsigned long long>(kb), gbps);
        std::fflush(stdout);
    }

    std::printf("\n=== Figure 1-(b): aggregate NMP vs IDC bandwidth, "
                "16 DIMMs ===\n\n");
    // Aggregate NMP bandwidth: rank-parallel local DRAM across all
    // DIMMs (2 ranks x 19.2 GB/s per DIMM nominal peak).
    const double nmp_bw = 16 * 2 * 19.2;
    // Aggregate IDC bandwidth: every channel can forward at beta/2.
    System sys(cfg);
    const double p2p = p2pBandwidth(sys, 16 * 1024 * 1024);
    const double idc_bw = p2p * cfg.numChannels / 2;
    std::printf("  aggregate NMP bandwidth : %8.1f GB/s\n", nmp_bw);
    std::printf("  aggregate IDC bandwidth : %8.1f GB/s\n", idc_bw);
    std::printf("  ratio                   : %8.1fx  "
                "(paper: ~51x on UPMEM)\n", nmp_bw / idc_bw);
    return 0;
}
