/**
 * @file
 * Rack-scale pooling sweep (docs/rack.md): closed-loop kv serving
 * throughput across the CXL.mem latency range (300-1500 ns) for the
 * two cross-host IDC routes -- host-forwarded (descend to the source
 * host, cross the rack fabric, descend again) vs. pooled DIMM-Link
 * bridges (direct gateway-to-gateway lanes that bypass both hosts) --
 * at 1, 2 and 4 hosts sharing the same 16-DIMM, 4-group pool.
 *
 * The single-host rows are the no-rack baseline: the rack layer is
 * disabled, so the latency and route columns are inert and the row
 * repeats flat -- the reference the multi-host rows are read against.
 *
 * Emits a JSON report (default BENCH_rack.json, or argv[1]; "-" for
 * stdout). All latencies are picoseconds.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace dimmlink;
using namespace benchutil;

namespace {

struct Row
{
    unsigned hosts = 1;
    std::string route; ///< "none" | "forwarded" | "pooled"
    double latencyNs = 0;
    double achievedQps = 0;
    double p50Ps = 0, p99Ps = 0;
    double crossings = 0;       ///< host-forwarded rack crossings
    double pooledTransfers = 0; ///< bridge-lane crossings
    Tick kernelTicks = 0;
    bool verified = false;
};

Row
runPoint(unsigned hosts, const std::string &mode, double latency_ns)
{
    // The same machine in every row: 16 NMP-DIMMs in four DL groups,
    // partitioned into 1, 2 or 4 hosts. Closed-loop kv saturates the
    // fabric, so the cross-host route is what moves the numbers.
    SystemConfig cfg = SystemConfig::preset("16D-8C");
    cfg.dimmsPerGroup = 4;
    cfg.serve.mode = "closed";
    cfg.serve.requests = 2048;
    cfg.serve.keys = 65536;
    if (hosts > 1) {
        cfg.rack.hosts = hosts;
        cfg.rack.idcMode = mode;
        cfg.rack.latencyPs = static_cast<Tick>(latency_ns * 1000);
    }
    cfg.validate();

    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("kv", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();

    const auto &reg = sys.stats();
    Row row;
    row.hosts = hosts;
    row.route = hosts > 1 ? mode : "none";
    row.latencyNs = hosts > 1 ? latency_ns : 0;
    row.achievedQps = reg.scalar("serve.achievedQps");
    row.p50Ps = reg.scalar("serve.latencyP50Ps");
    row.p99Ps = reg.scalar("serve.latencyP99Ps");
    if (hosts > 1) {
        row.crossings = reg.scalar("rack.crossings");
        row.pooledTransfers = reg.scalar("rack.pooledTransfers");
    }
    row.kernelTicks = r.kernelTicks;
    row.verified = r.verified;
    if (!r.verified)
        std::fprintf(stderr, "WARNING: kv did not verify at "
                     "hosts=%u mode=%s\n", hosts, mode.c_str());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ScopedWallReport wall("rack_scale");
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_rack.json";

    const std::vector<double> latencies = {300, 700, 1100, 1500};
    const std::vector<std::string> routes = {"forwarded", "pooled"};

    std::vector<Row> rows;
    const Row base = runPoint(1, "pooled", 0);
    std::printf("1 host  (no rack):           %.3g qps  "
                "(p50 %.2f us, p99 %.2f us)\n",
                base.achievedQps, base.p50Ps / 1e6, base.p99Ps / 1e6);
    std::fflush(stdout);
    rows.push_back(base);

    bool pooled_always_wins = true;
    for (const unsigned hosts : {2u, 4u}) {
        for (const double lat : latencies) {
            double forwarded_qps = 0;
            for (const auto &route : routes) {
                Row r = runPoint(hosts, route, lat);
                std::printf("%u hosts %-9s CXL %4.0f ns: %.3g qps  "
                            "(p50 %.2f us, p99 %.2f us)\n",
                            hosts, route.c_str(), lat, r.achievedQps,
                            r.p50Ps / 1e6, r.p99Ps / 1e6);
                std::fflush(stdout);
                if (route == "forwarded")
                    forwarded_qps = r.achievedQps;
                else if (r.achievedQps <= forwarded_qps)
                    pooled_always_wins = false;
                rows.push_back(std::move(r));
            }
        }
    }
    std::printf("pooled bridges beat host-forwarded at every point: "
                "%s\n", pooled_always_wins ? "yes" : "NO");

    FILE *out = out_path == "-" ? stdout
                                : std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"rack_scale\",\n");
    std::fprintf(out, "  \"preset\": \"16D-8C\",\n");
    std::fprintf(out, "  \"dimmsPerGroup\": 4,\n");
    std::fprintf(out, "  \"workload\": \"kv\",\n");
    std::fprintf(out, "  \"mode\": \"closed\",\n");
    std::fprintf(out, "  \"pooledAlwaysWins\": %s,\n",
                 pooled_always_wins ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            out,
            "    {\"hosts\": %u, \"route\": \"%s\", "
            "\"latencyNs\": %.6g, \"achievedQps\": %.6g, "
            "\"p50Ps\": %.6g, \"p99Ps\": %.6g, "
            "\"crossings\": %.6g, \"pooledTransfers\": %.6g, "
            "\"kernelTicks\": %llu, \"verified\": %s}%s\n",
            r.hosts, r.route.c_str(), r.latencyNs, r.achievedQps,
            r.p50Ps, r.p99Ps, r.crossings, r.pooledTransfers,
            static_cast<unsigned long long>(r.kernelTicks),
            r.verified ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout)
        std::fclose(out);
    return pooled_always_wins ? 0 : 1;
}
