/**
 * @file
 * Microworkload ablation: STREAM (all-local, bandwidth-bound) and
 * GUPS (all-remote, fine-grained random updates) across the four IDC
 * fabrics. STREAM bounds what the local substrate delivers when IDC
 * plays no role; GUPS is the worst case that separates the fabrics
 * the most.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    const struct
    {
        const char *label;
        IdcMethod method;
    } variants[] = {
        {"MCN", IdcMethod::CpuForwarding},
        {"AIM", IdcMethod::DedicatedBus},
        {"ABC-DIMM", IdcMethod::ChannelBroadcast},
        {"DIMM-Link", IdcMethod::DimmLink},
    };

    std::printf("=== Microworkload ablation (16D-8C) ===\n\n");

    // STREAM: fabric-independent by construction.
    std::printf("STREAM triad (all-local):\n");
    std::printf("%-11s %12s %14s\n", "fabric", "time", "agg. BW");
    for (const auto &v : variants) {
        SystemConfig cfg = fabricConfig("16D-8C", v.method);
        System sys(cfg);
        workloads::WorkloadParams p = nmpParams(cfg, "stream");
        p.scale = 3;
        auto wl = workloads::makeWorkload("stream", p,
                                          sys.addressMap());
        Runner runner(sys, *wl);
        const RunResult r = runner.run();
        // 3 arrays x 8 B x elems x iterations.
        const double bytes = static_cast<double>(131072ull << 3) *
                             3 * 8 * 4 / 8; // per approxMemRefs note
        (void)bytes;
        const double gbps =
            (r.localBytes + r.linkBytes + r.hostBytes) /
            (static_cast<double>(r.kernelTicks) / tickPerS) / 1e9;
        std::printf("%-11s %9.3f ms %11.1f GB/s%s\n", v.label,
                    r.kernelTicks / 1e9, gbps,
                    r.verified ? "" : "  (VERIFY FAILED)");
        std::fflush(stdout);
    }

    // GUPS: the fabric is everything.
    std::printf("\nGUPS random updates (almost all-remote):\n");
    std::printf("%-11s %12s %14s %10s\n", "fabric", "time",
                "updates/s", "vs MCN");
    double mcn_time = 0;
    for (const auto &v : variants) {
        SystemConfig cfg = fabricConfig("16D-8C", v.method);
        System sys(cfg);
        workloads::WorkloadParams p = nmpParams(cfg, "gups");
        p.scale = 2;
        auto wl = workloads::makeWorkload("gups", p,
                                          sys.addressMap());
        Runner runner(sys, *wl);
        const RunResult r = runner.run();
        const double updates = 64.0 * (2048ull << 2);
        const double ups =
            updates /
            (static_cast<double>(r.kernelTicks) / tickPerS);
        if (mcn_time == 0)
            mcn_time = static_cast<double>(r.kernelTicks);
        std::printf("%-11s %9.3f ms %11.2f M/s %9.2fx%s\n", v.label,
                    r.kernelTicks / 1e9, ups / 1e6,
                    mcn_time / static_cast<double>(r.kernelTicks),
                    r.verified ? "" : "  (VERIFY FAILED)");
        std::fflush(stdout);
    }
    return 0;
}
