/**
 * @file
 * Table II reproduction: SerDes technique comparison, plus a check
 * that the simulator's link model reproduces each technique's
 * serialization behaviour when configured with its parameters.
 */

#include <cstdio>

#include "common/stats.hh"
#include "noc/link.hh"
#include "sim/event_queue.hh"

using namespace dimmlink;

int
main()
{
    struct Tech
    {
        const char *ref;
        const char *media;
        double gbPerPin; ///< Gb/s/pin
        double reachMm;
        double pjPerBit;
    };
    // The three techniques of Table II; GRS is the paper's choice.
    const Tech techs[] = {
        {"[10] ISSCC'15", "SMA cable", 6.0, 953, 0.58},
        {"[25] ribbon", "ribbon cable", 16.0, 500, 2.58},
        {"[69] GRS", "PCB", 25.0, 80, 1.17},
    };

    std::printf("=== Table II: SerDes techniques ===\n\n");
    std::printf("%-14s %-13s %12s %8s %12s %16s\n", "reference",
                "media", "Gb/s/pin", "reach", "pJ/b",
                "64B-flit time");
    for (const auto &t : techs) {
        // One DL link bundles 8 pins -> GB/s per direction equals
        // the per-pin Gb/s (8 pins x Gb/s / 8 bits).
        const double gbps = t.gbPerPin;
        EventQueue eq;
        stats::Registry reg;
        noc::Link link(eq, "l", gbps, 0, 128, reg.group("l"));
        const Tick four_flits = link.serializationTime(4);
        std::printf("%-14s %-13s %12.0f %6.0fmm %12.2f %13.1f ns\n",
                    t.ref, t.media, t.gbPerPin, t.reachMm,
                    t.pjPerBit,
                    static_cast<double>(four_flits) / tickPerNs);
    }

    std::printf("\nGRS offers the highest rate and density at the "
                "shortest reach — enough to\nbridge adjacent DIMM "
                "slots but not the two sides of the socket, which "
                "is why\nDIMM-Link groups DIMMs per side and "
                "CPU-forwards between groups (Section III-C).\n");
    return 0;
}
