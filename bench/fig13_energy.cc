/**
 * @file
 * Figure 13 reproduction: energy comparison of MCN, AIM and
 * DIMM-Link at 16D-8C, broken into DRAM / IDC / NMP-core
 * components.
 *
 * Expected shape: DIMM-Link ~1.76x less total energy than MCN
 * (mostly from reduced IDC energy) and ~1.07x less than AIM (from
 * end-to-end speedup; AIM's per-bit IDC energy is lowest).
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig13_energy");
    const struct
    {
        const char *label;
        IdcMethod method;
        bool mapping;
    } variants[] = {
        {"MCN", IdcMethod::CpuForwarding, false},
        {"AIM", IdcMethod::DedicatedBus, false},
        {"DIMM-Link", IdcMethod::DimmLink, true},
    };

    std::printf("=== Figure 13: energy consumption (16D-8C), "
                "millijoules ===\n\n");
    std::printf("%-9s", "workload");
    for (const auto &v : variants)
        std::printf("  %9s(dram/idc/core)", v.label);
    std::printf("\n");
    printRule(9 + 3 * 27);

    std::map<std::string, double> totals;
    for (const auto &wl : workloads::p2pWorkloadNames()) {
        std::printf("%-9s", wl.c_str());
        for (const auto &v : variants) {
            const RunResult r = runNmp(
                fabricConfig("16D-8C", v.method, v.mapping), wl);
            const auto &e = r.energy;
            totals[v.label] += e.total();
            std::printf("  %7.2f (%5.2f/%5.2f/%5.2f)",
                        e.total() / 1e9, e.dramPj / 1e9,
                        e.idc() / 1e9, e.nmpCorePj / 1e9);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    printRule(9 + 3 * 27);

    std::printf("\n=== Totals over all workloads ===\n");
    for (const auto &v : variants)
        std::printf("  %-10s %8.2f mJ\n", v.label,
                    totals[v.label] / 1e9);
    std::printf("\n  MCN / DIMM-Link : %.2fx  (paper: 1.76x)\n",
                totals["MCN"] / totals["DIMM-Link"]);
    std::printf("  AIM / DIMM-Link : %.2fx  (paper: 1.07x)\n",
                totals["AIM"] / totals["DIMM-Link"]);
    return 0;
}
