/**
 * @file
 * Figure 11 reproduction: data transfer breakdown of DIMM-Link-opt —
 * the fraction of traffic served locally, routed over the DL-Bridge,
 * and CPU-forwarded between groups, per workload at 16D-8C.
 *
 * Expected shape: with the distance-aware mapping, only a minority
 * (~29% of inter-DIMM traffic in the paper) still crosses the host.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig11_breakdown");
    std::printf("=== Figure 11: data transfer breakdown of "
                "DIMM-Link-opt (16D-8C) ===\n\n");
    std::printf("%-9s %10s %10s %10s   %8s %8s %8s %10s\n",
                "workload", "local MB", "link MB", "host MB",
                "local%", "link%", "host%", "idc-host%");
    printRule(88);

    double sum_link = 0, sum_host = 0;
    for (const auto &wl : workloads::p2pWorkloadNames()) {
        const RunResult r = runNmp(
            fabricConfig("16D-8C", IdcMethod::DimmLink, true), wl);
        const double total =
            r.localBytes + r.linkBytes + r.hostBytes;
        const double idc = r.linkBytes + r.hostBytes;
        sum_link += r.linkBytes;
        sum_host += r.hostBytes;
        std::printf("%-9s %10.2f %10.2f %10.2f   %7.1f%% %7.1f%% "
                    "%7.1f%% %9.1f%%\n",
                    wl.c_str(), r.localBytes / 1e6,
                    r.linkBytes / 1e6, r.hostBytes / 1e6,
                    100 * r.localBytes / total,
                    100 * r.linkBytes / total,
                    100 * r.hostBytes / total,
                    idc > 0 ? 100 * r.hostBytes / idc : 0.0);
        std::fflush(stdout);
    }
    printRule(88);
    std::printf("\nCPU-forwarded share of inter-DIMM traffic: "
                "%.1f%%  (paper: ~29%%)\n",
                100 * sum_host / (sum_link + sum_host));
    return 0;
}
