/**
 * @file
 * Figure 15 / Table III reproduction: polling strategies at 16D-8C.
 * (a) end-to-end performance of Base, Base+Itrpt, P-P, P-P+Itrpt
 *     (normalized to Base);
 * (b) memory-bus occupation of each strategy.
 *
 * Expected shape: Base has the highest occupancy (~32% in the
 * paper); interrupts and the proxy each cut it drastically;
 * P-P+Itrpt is lowest (~0.2%); P-P gives the best end-to-end time
 * (interrupt entry adds forwarding latency).
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig15_polling");
    const PollingMode modes[] = {
        PollingMode::Baseline, PollingMode::BaselineInterrupt,
        PollingMode::Proxy, PollingMode::ProxyInterrupt};

    std::printf("=== Figure 15: polling strategies (16D-8C, "
                "DIMM-Link) ===\n\n");
    std::printf("%-12s %14s %16s\n", "strategy", "rel. perf",
                "bus occupancy");
    printRule(46);

    // Average over the P2P workloads with substantial inter-group
    // traffic.
    const std::vector<std::string> wls = {"bfs", "pagerank",
                                          "kmeans"};
    double base_time = 0;
    for (const PollingMode mode : modes) {
        double total_time = 0;
        double occupancy = 0;
        for (const auto &wl : wls) {
            SystemConfig cfg =
                fabricConfig("16D-8C", IdcMethod::DimmLink);
            cfg.pollingMode = mode;
            const RunResult r = runNmp(cfg, wl);
            total_time += static_cast<double>(r.kernelTicks);
            occupancy += r.busOccupancy;
        }
        occupancy /= wls.size();
        if (mode == PollingMode::Baseline)
            base_time = total_time;
        std::printf("%-12s %13.2fx %15.2f%%\n", toString(mode),
                    base_time / total_time, 100 * occupancy);
        std::fflush(stdout);
    }

    std::printf("\nPaper: Base ~32%% occupancy; P-P comparable to "
                "Base+Itrpt; P-P+Itrpt ~0.2%%;\nP-P best end-to-end "
                "(no interrupt-entry latency on the forwarding "
                "path).\n");
    return 0;
}
