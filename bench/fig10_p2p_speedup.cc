/**
 * @file
 * Figure 10 reproduction: P2P IDC performance. For each system size
 * (4D-2C, 8D-4C, 12D-6C, 16D-8C) and each workload (BFS, HS, KM, NW,
 * PR, SSSP), the speedup over the 16-core host CPU of MCN, AIM,
 * DIMM-Link-base, and DIMM-Link-opt, plus the ratio of non-overlapped
 * IDC cycles (the line plot in the paper).
 *
 * Expected shape: DIMM-Link-opt ~5-6x geomean over the CPU; ~2.4x
 * over MCN, ~1.9x over AIM, ~1.1x over DIMM-Link-base; MCN improves
 * with channels; AIM degrades as DIMMs grow.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main()
{
    ScopedWallReport wall("fig10_p2p_speedup");
    const std::vector<std::string> presets = {"4D-2C", "8D-4C",
                                              "12D-6C", "16D-8C"};
    const auto workloads = workloads::p2pWorkloadNames();

    struct Variant
    {
        const char *label;
        IdcMethod method;
        bool mapping;
    };
    const Variant variants[] = {
        {"MCN", IdcMethod::CpuForwarding, false},
        {"AIM", IdcMethod::DedicatedBus, false},
        {"DL-base", IdcMethod::DimmLink, false},
        {"DL-opt", IdcMethod::DimmLink, true},
    };

    std::printf("=== Figure 10: P2P IDC performance "
                "(speedup over 16-core CPU | non-overlapped IDC "
                "cycle ratio) ===\n\n");

    std::map<std::string, std::vector<double>> geo_speedups;

    for (const auto &preset : presets) {
        std::printf("--- %s ---\n", preset.c_str());
        std::printf("%-9s", "workload");
        for (const auto &v : variants)
            std::printf(" %9s %6s", v.label, "idc%");
        std::printf("\n");
        printRule(9 + 4 * 17);

        for (const auto &wl : workloads) {
            const RunResult cpu =
                runCpu(SystemConfig::preset(preset), wl);
            std::printf("%-9s", wl.c_str());
            for (const auto &v : variants) {
                const RunResult r = runNmp(
                    fabricConfig(preset, v.method, v.mapping), wl);
                const double sp = speedup(cpu, r);
                geo_speedups[std::string(v.label) + "@" + preset]
                    .push_back(sp);
                geo_speedups[v.label].push_back(sp);
                std::printf(" %8.2fx %5.1f%%", sp,
                            100.0 * r.idcStallRatio());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
        std::printf("%-9s", "geomean");
        for (const auto &v : variants)
            std::printf(" %8.2fx %6s",
                        geomean(geo_speedups[std::string(v.label) +
                                             "@" + preset]),
                        "");
        std::printf("\n\n");
    }

    std::printf("=== Overall geomean speedups over the CPU "
                "baseline ===\n");
    for (const auto &v : variants)
        std::printf("  %-8s %6.2fx\n", v.label,
                    geomean(geo_speedups[v.label]));
    const double dl_opt = geomean(geo_speedups["DL-opt"]);
    std::printf("\n  DL-opt vs MCN     : %.2fx  (paper: 2.42x)\n",
                dl_opt / geomean(geo_speedups["MCN"]));
    std::printf("  DL-opt vs AIM     : %.2fx  (paper: 1.87x)\n",
                dl_opt / geomean(geo_speedups["AIM"]));
    std::printf("  DL-opt vs DL-base : %.2fx  (paper: 1.12x)\n",
                dl_opt / geomean(geo_speedups["DL-base"]));
    std::printf("  DL-opt vs CPU     : %.2fx  (paper: 5.93x)\n",
                dl_opt);
    return 0;
}
