/**
 * @file
 * Section V-A reproduction: the FPGA-prototype packet-path
 * observations. The prototype packetizes a memory write in ~1.2 us at
 * 100 MHz with an HLS CRC dominating; without CRC, generation and
 * decoding finish in 18 cycles. We print the same quantities from
 * the functional NW-interface path: control-FSM cycles, CRC cycles,
 * and the wall-clock equivalents at 100 MHz (FPGA) and 2 GHz (ASIC
 * buffer chip).
 */

#include <cstdio>

#include "bench_util.hh"
#include "proto/codec.hh"
#include "proto/packet.hh"

using namespace dimmlink;
using namespace dimmlink::proto;

int
main()
{
    std::printf("=== Section V-A: prototype packet-path latency ===\n");
    std::printf("(control FSM: %u cycles; pipelined CRC: %u "
                "cycles/flit)\n\n",
                Codec::controlCycles, Codec::crcCyclesPerFlit);
    std::printf("%-22s %8s %10s %14s %14s\n", "packet", "flits",
                "cycles", "@100MHz(ns)", "@2GHz(ns)");

    const struct
    {
        const char *name;
        unsigned payload;
    } cases[] = {
        {"read request", 0},
        {"64B write", 64},
        {"256B write (max)", 256},
    };

    for (const auto &c : cases) {
        const Packet p =
            Codec::makeWriteReq(0, 1, 0x1000, 0, c.payload);
        const unsigned cycles = Codec::packetizeCycles(p);
        std::printf("%-22s %8u %10u %14.1f %14.1f\n", c.name,
                    p.numFlits(), cycles, cycles * 10.0,
                    cycles * 0.5);
    }

    // Functional round-trip cost in host nanoseconds (the software
    // model itself), for reference.
    const Packet big = Codec::makeWriteReq(2, 5, 0xbeef, 3, 256);
    const benchutil::WallTimer timer;
    constexpr int iters = 100000;
    std::size_t sink = 0;
    for (int i = 0; i < iters; ++i) {
        const auto wire = encode(big);
        Packet out;
        if (!decode(wire, out))
            return 1;
        sink += out.payload.size();
    }
    const double ns = timer.elapsedNs() / iters;
    std::printf("\nsoftware encode+decode of a max packet: %.0f ns "
                "(checksum %zu)\n", ns, sink);
    std::printf("\nPaper observation: ~1.2 us/packet on the 100 MHz "
                "FPGA (HLS CRC-bound);\n18-cycle gen/decode without "
                "CRC -- matching the control-FSM constant above.\n");
    return 0;
}
