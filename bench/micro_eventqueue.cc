/**
 * @file
 * Event-kernel microbench: the timing-wheel EventQueue vs. the original
 * std::function + priority_queue + unordered_set kernel (embedded below
 * as legacy::EventQueue) on three workloads:
 *
 *   - schedule-heavy:   schedule a burst of events, drain, repeat; the
 *                       second (steady-state) burst also reports heap
 *                       allocations per schedule() call.
 *   - deschedule-heavy: schedule a burst, cancel most of it, drain.
 *   - mixed:            router-like traffic -- self-rescheduling kick
 *                       events that arm/cancel/re-arm timers and emit
 *                       delivery events, the dominant pattern in the
 *                       simulator's NoC and DRAM models.
 *
 * Counters: events_per_s (rate), steady_allocs_per_sched (schedule-heavy
 * only; must be 0.0 for the wheel kernel -- proof the hot path never
 * touches the heap), allocs_per_event (whole-workload amortised).
 *
 * Run: ./micro_eventqueue --benchmark_format=json
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"

// The replaced global new/delete below are a matched malloc/free pair;
// GCC's allocator-pairing checker cannot see that and warns at every
// inlined call site in this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// ---------------------------------------------------------------------
// Global allocation counter. Every heap allocation in the process goes
// through here, so deltas around a workload count its allocations.
// ---------------------------------------------------------------------

namespace {
std::uint64_t g_allocs = 0;
}

void *
operator new(std::size_t n)
{
    ++g_allocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    ++g_allocs;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     (n + static_cast<std::size_t>(al) -
                                      1) &
                                         ~(static_cast<std::size_t>(al) -
                                           1)))
        return p;
    throw std::bad_alloc{};
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

// ---------------------------------------------------------------------
// The pre-rewrite kernel, verbatim in spirit: type-erased callbacks via
// std::function, a binary heap of whole events, and an unordered_set of
// live ids giving O(1)-amortised (but allocating) deschedule.
// ---------------------------------------------------------------------

namespace legacy {

using dimmlink::EventPriority;
using dimmlink::Tick;

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    std::uint64_t
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        const std::uint64_t id = nextSeq++;
        heap.push(
            Event{when, static_cast<int>(prio), id, std::move(cb)});
        pending.insert(id);
        return id;
    }

    std::uint64_t
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(currentTick + delta, std::move(cb), prio);
    }

    void deschedule(std::uint64_t id) { pending.erase(id); }

    Tick now() const { return currentTick; }
    bool empty() const { return pending.empty(); }

    bool
    step()
    {
        while (!heap.empty() && pending.count(heap.top().seq) == 0)
            heap.pop();
        if (heap.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(heap.top()));
        heap.pop();
        pending.erase(ev.seq);
        currentTick = ev.when;
        ev.cb();
        return true;
    }

    Tick
    run()
    {
        while (step()) {
        }
        return currentTick;
    }

  private:
    struct Event
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    std::unordered_set<std::uint64_t> pending;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace legacy

namespace {

using dimmlink::EventPriority;
using dimmlink::Rng;
using dimmlink::Tick;

/**
 * Realistic capture: a router callback holds its object pointer plus a
 * few words of context. 40 bytes exceeds libstdc++'s std::function
 * small-object buffer (16 bytes) but fits the wheel kernel's inline
 * storage, so the comparison exercises both type-erasure strategies as
 * the simulator actually uses them.
 */
struct Ctx
{
    std::uint64_t *fired;
    std::uint64_t a, b, c, d;
};

constexpr EventPriority kPrios[3] = {EventPriority::Delivery,
                                     EventPriority::Control,
                                     EventPriority::Core};

template <typename Q>
std::uint64_t
burstSchedule(Q &q, Rng &rng, unsigned n, std::uint64_t *fired)
{
    for (unsigned i = 0; i < n; ++i) {
        const Ctx ctx{fired, i, i + 1, i + 2, i + 3};
        q.scheduleIn(rng.range(1, 5000),
                     [ctx] {
                         ++*ctx.fired;
                         benchmark::DoNotOptimize(ctx.a + ctx.d);
                     },
                     kPrios[i % 3]);
    }
    return n;
}

/** Burst of schedules, drain, then a measured steady-state burst. */
template <typename Q>
void
BM_ScheduleHeavy(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    std::uint64_t events = 0;
    std::uint64_t steadyAllocs = 0;
    std::uint64_t steadyScheds = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Q q;
        Rng rng(7);
        events += burstSchedule(q, rng, n, &fired);
        q.run(); // Warm pools/containers, then measure the next burst.
        const std::uint64_t a0 = g_allocs;
        events += burstSchedule(q, rng, n, &fired);
        steadyAllocs += g_allocs - a0;
        steadyScheds += n;
        q.run();
    }
    benchmark::DoNotOptimize(fired);
    state.counters["events_per_s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["steady_allocs_per_sched"] =
        static_cast<double>(steadyAllocs) /
        static_cast<double>(steadyScheds);
}

/** Schedule a burst, cancel ~80% of it, drain the rest. */
template <typename Q>
void
BM_DescheduleHeavy(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    std::uint64_t ops = 0;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> ids;
    ids.reserve(n);
    for (auto _ : state) {
        Q q;
        Rng rng(11);
        ids.clear();
        for (unsigned i = 0; i < n; ++i) {
            const Ctx ctx{&fired, i, 0, 0, 0};
            ids.push_back(q.scheduleIn(rng.range(1, 100000),
                                       [ctx] { ++*ctx.fired; },
                                       kPrios[i % 3]));
        }
        for (unsigned i = 0; i < n; ++i)
            if (i % 5 != 0)
                q.deschedule(ids[i]);
        q.run();
        ops += 2 * n - n / 5;
    }
    benchmark::DoNotOptimize(fired);
    state.counters["events_per_s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}

/**
 * Router-like steady state: every fired kick re-arms itself a few
 * cycles out, cancels and re-arms a standing timer (the scheduleKick /
 * armTimer pattern from src/noc and src/proto), and emits a
 * short-deadline delivery event.
 */
template <typename Q>
struct MixedDriver
{
    Q q;
    Rng rng{23};
    std::uint64_t fired = 0;
    std::uint64_t timerId = 0;
    std::uint64_t budget;

    explicit MixedDriver(std::uint64_t b) : budget(b) {}

    void
    kick()
    {
        ++fired;
        if (budget == 0)
            return;
        --budget;
        // Cancel-and-re-arm the standing timer.
        q.deschedule(timerId);
        const Ctx tctx{&fired, 1, 2, 3, 4};
        timerId = q.scheduleIn(rng.range(500, 1500),
                               [tctx] { ++*tctx.fired; },
                               EventPriority::Control);
        // Emit a delivery a few cycles out.
        const Ctx dctx{&fired, 5, 6, 7, 8};
        q.scheduleIn(rng.range(1, 8),
                     [dctx] {
                         ++*dctx.fired;
                         benchmark::DoNotOptimize(dctx.b);
                     },
                     EventPriority::Delivery);
        // Re-arm the kick itself.
        q.scheduleIn(rng.range(1, 64), [this] { kick(); },
                     EventPriority::Core);
    }
};

template <typename Q>
void
BM_Mixed(benchmark::State &state)
{
    const auto chains = static_cast<unsigned>(state.range(0));
    const std::uint64_t perChain = 2000;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        MixedDriver<Q> d(chains * perChain);
        const std::uint64_t a0 = g_allocs;
        for (unsigned i = 0; i < chains; ++i)
            d.q.scheduleIn(i + 1, [&d] { d.kick(); },
                           EventPriority::Core);
        d.q.run();
        allocs += g_allocs - a0;
        events += d.fired;
    }
    state.counters["events_per_s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["allocs_per_event"] =
        static_cast<double>(allocs) / static_cast<double>(events);
}

} // namespace

BENCHMARK_TEMPLATE(BM_ScheduleHeavy, dimmlink::EventQueue)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ScheduleHeavy, legacy::EventQueue)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_DescheduleHeavy, dimmlink::EventQueue)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_DescheduleHeavy, legacy::EventQueue)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Mixed, dimmlink::EventQueue)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Mixed, legacy::EventQueue)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
