/** @file Tests for the timeline observability subsystem: tracer ring
 * semantics, category parsing, Chrome-trace export content, the
 * periodic sampler, and the zero-perturbation guarantee (tracing and
 * sampling must never change simulated results). */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats_json.hh"
#include "obs/chrome_trace.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

TEST(ObsCategories, MaskParsing)
{
    EXPECT_EQ(obs::categoryMaskFromString("all"), obs::CatAll);
    EXPECT_EQ(obs::categoryMaskFromString(""), obs::CatAll);
    EXPECT_EQ(obs::categoryMaskFromString("dram"), obs::CatDram);
    EXPECT_EQ(obs::categoryMaskFromString("dram,noc"),
              obs::CatDram | obs::CatNoc);
    EXPECT_EQ(obs::categoryMaskFromString("core,dll,host,counter"),
              obs::CatCore | obs::CatDll | obs::CatHost |
                  obs::CatCounter);
    EXPECT_STREQ(obs::categoryName(obs::CatDram), "dram");
    EXPECT_STREQ(obs::categoryName(obs::CatNoc), "noc");
}

TEST(ObsTracer, EnabledFollowsMask)
{
    obs::Tracer t(obs::CatDram | obs::CatCore, 16);
    EXPECT_TRUE(t.enabled(obs::CatDram));
    EXPECT_TRUE(t.enabled(obs::CatCore));
    EXPECT_FALSE(t.enabled(obs::CatNoc));
    EXPECT_FALSE(t.enabled(obs::CatDll));
}

TEST(ObsTracer, InternIsStable)
{
    obs::Tracer t(obs::CatAll, 16);
    const auto a = t.intern("act");
    const auto b = t.intern("pre");
    EXPECT_NE(a, b);
    EXPECT_EQ(t.intern("act"), a);
    EXPECT_EQ(t.names()[a], "act");
    // Id 0 is the reserved unnamed sentinel.
    EXPECT_NE(a, 0);
}

TEST(ObsTracer, RingOverwritesOldestAndCountsDrops)
{
    obs::Tracer t(obs::CatAll, 4);
    const auto trk = t.track("p", "t", obs::CatDram);
    const auto nm = t.intern("ev");
    for (std::uint64_t i = 0; i < 10; ++i)
        t.instant(trk, nm, /*t=*/i * 100, /*arg=*/i);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    EXPECT_EQ(t.droppedOn(trk), 6u);

    // The surviving records are the newest four, oldest first.
    std::vector<std::uint64_t> args;
    t.forEachRecord(trk, [&](const obs::Record &r) {
        args.push_back(r.arg);
    });
    EXPECT_EQ(args, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(ObsTracer, DottedTrackNamesSplitAtLastDot)
{
    obs::Tracer t(obs::CatAll, 16);
    const auto a = t.track("dimm0.mc.rank1", obs::CatDram);
    EXPECT_EQ(t.tracks()[a].process, "dimm0.mc");
    EXPECT_EQ(t.tracks()[a].thread, "rank1");
    const auto b = t.track("sampler", obs::CatCounter);
    EXPECT_EQ(t.tracks()[b].process, "sampler");
    EXPECT_EQ(t.tracks()[b].thread, "sampler");
}

/** Run one small bfs kernel, optionally traced/sampled. */
RunResult
runSmall(SystemConfig &cfg, System &sys, std::string *stats_json)
{
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 4;
    p.rounds = 1;
    auto wl = workloads::makeWorkload("bfs", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);
    if (stats_json) {
        std::ostringstream os;
        stats::dumpJson(sys.stats(), os, /*include_empty=*/false,
                        &cfg);
        *stats_json = os.str();
    }
    return r;
}

TEST(ObsSystem, TracedRunExportsAllLayers)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.obs.trace = true;
    System sys(cfg);
    ASSERT_NE(sys.tracer(), nullptr);
    runSmall(cfg, sys, nullptr);

    EXPECT_GT(sys.tracer()->recorded(), 0u);

    std::ostringstream os;
    obs::writeChromeTrace(*sys.tracer(), os);
    const std::string j = os.str();

    // Valid array-format skeleton with viewer metadata.
    EXPECT_EQ(j.front(), '[');
    EXPECT_NE(j.find("\"process_name\""), std::string::npos);
    EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
    // The acceptance layers all produced spans on a default run.
    EXPECT_NE(j.find("\"cat\":\"dram\""), std::string::npos);
    EXPECT_NE(j.find("\"cat\":\"noc\""), std::string::npos);
    EXPECT_NE(j.find("\"cat\":\"dll\""), std::string::npos);
    EXPECT_NE(j.find("\"cat\":\"core\""), std::string::npos);
    // Both span flavours made it out.
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));
}

TEST(ObsSystem, TracingNeverPerturbsSimulation)
{
    // Same config and workload; only obs settings differ. The stats
    // JSON (which embeds the config header) must be byte-identical:
    // tracing and sampling read simulation state but never alter it,
    // and obs.* keys are excluded from the config description.
    auto plain_cfg = SystemConfig::preset("4D-2C");
    System plain_sys(plain_cfg);
    std::string plain;
    runSmall(plain_cfg, plain_sys, &plain);

    auto traced_cfg = SystemConfig::preset("4D-2C");
    traced_cfg.obs.trace = true;
    traced_cfg.obs.sampleIntervalPs = 500000; // 0.5 us cadence
    System traced_sys(traced_cfg);
    std::string traced;
    runSmall(traced_cfg, traced_sys, &traced);

    ASSERT_FALSE(plain.empty());
    EXPECT_EQ(plain, traced);
}

TEST(ObsSystem, SamplerEmitsTimeSeries)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.obs.sampleIntervalPs = 500000;
    System sys(cfg);
    ASSERT_NE(sys.sampler(), nullptr);
    // Sampling works with tracing off (no CatCounter track).
    EXPECT_EQ(sys.tracer(), nullptr);
    runSmall(cfg, sys, nullptr);

    const obs::Sampler &sm = *sys.sampler();
    EXPECT_FALSE(sm.probeNames().empty());
    ASSERT_FALSE(sm.rows().empty());
    for (const obs::Sampler::Row &row : sm.rows())
        EXPECT_EQ(row.values.size(), sm.probeNames().size());
    // Something happened during the kernel: at least one non-zero
    // sample across the whole series.
    bool any_nonzero = false;
    for (const obs::Sampler::Row &row : sm.rows())
        for (double v : row.values)
            if (v != 0)
                any_nonzero = true;
    EXPECT_TRUE(any_nonzero);

    std::ostringstream os;
    sm.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("tickPs,", 0), 0u);
    EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'),
              static_cast<long>(sm.rows().size()));
}

} // namespace
} // namespace dimmlink
