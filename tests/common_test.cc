/** @file Unit tests for common utilities: bitfields, RNG, CRC32,
 * statistics and configuration. */

#include <gtest/gtest.h>

#include <cmath>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>

#include "common/bitfield.hh"
#include "common/config.hh"
#include "common/crc32.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/stats_json.hh"

#include <algorithm>

namespace dimmlink {
namespace {

TEST(Bitfield, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeefull, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeefull, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeefull, 28, 4), 0xdu);
    EXPECT_EQ(bits(0xffull, 4, 0), 0u);

    std::uint64_t v = 0;
    v = insertBits(v, 4, 8, 0xab);
    EXPECT_EQ(v, 0xab0ull);
    v = insertBits(v, 4, 8, 0xcd);
    EXPECT_EQ(v, 0xcd0ull);
    // Field wider than value: masked.
    v = insertBits(0, 0, 4, 0xff);
    EXPECT_EQ(v, 0xfull);
}

TEST(Bitfield, PowersAndLogs)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(65, 64), 64u);
    EXPECT_EQ(divCeil(10, 3), 4u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(17);
        ASSERT_LT(v, 17u);
        seen.insert(v);
    }
    // All 17 values should appear in 10k draws.
    EXPECT_EQ(seen.size(), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double r = rng.real();
        ASSERT_GE(r, 0.0);
        ASSERT_LT(r, 1.0);
        sum += r;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Crc32, KnownVectors)
{
    // The canonical CRC-32 check value.
    const char *s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    const char *q = "The quick brown fox jumps over the lazy dog";
    EXPECT_EQ(crc32(q, 43), 0x414fa339u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data = "hello, dimm-link world";
    const auto full = crc32(data.data(), data.size());
    auto inc = crc32Update(0, data.data(), 5);
    inc = crc32Update(inc, data.data() + 5, data.size() - 5);
    EXPECT_EQ(full, inc);
}

class CrcBitFlip : public ::testing::TestWithParam<int>
{
};

TEST_P(CrcBitFlip, DetectsSingleBitFlips)
{
    std::vector<std::uint8_t> data(32);
    for (unsigned i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 37 + 5);
    const auto orig = crc32(data.data(), data.size());
    const int bit = GetParam();
    data[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32(data.data(), data.size()), orig);
}

INSTANTIATE_TEST_SUITE_P(AllBits, CrcBitFlip,
                         ::testing::Range(0, 256));

TEST(Stats, ScalarAndDistribution)
{
    stats::Registry reg;
    auto &g = reg.group("g");
    auto &s = g.scalar("count");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(reg.scalar("g.count"), 5.0);
    EXPECT_TRUE(reg.hasScalar("g.count"));
    EXPECT_FALSE(reg.hasScalar("g.other"));
    EXPECT_FALSE(reg.hasScalar("nogroup.x"));

    auto &d = g.distribution("lat");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Stats, SumScalarOverPrefix)
{
    stats::Registry reg;
    reg.group("dimm0.mc").scalar("reads") += 3;
    reg.group("dimm1.mc").scalar("reads") += 4;
    reg.group("host").scalar("reads") += 100;
    EXPECT_DOUBLE_EQ(reg.sumScalar("dimm", "reads"), 7.0);
    EXPECT_DOUBLE_EQ(reg.sumScalar("host", "reads"), 100.0);
    EXPECT_DOUBLE_EQ(reg.sumScalar("nope", "reads"), 0.0);
}

TEST(Stats, ResetClearsEverything)
{
    stats::Registry reg;
    reg.group("a").scalar("x") += 7;
    reg.group("a").distribution("d").sample(1);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.scalar("a.x"), 0.0);
    EXPECT_EQ(reg.group("a").distribution("d").count(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h(10.0, 4);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100); // overflow
    EXPECT_EQ(h.data()[0], 1u);
    EXPECT_EQ(h.data()[1], 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramPercentiles)
{
    stats::Histogram h(10.0, 10);
    // 100 samples, one per unit of [0, 100): sample k lands in
    // bucket k/10, so percentiles interpolate to p * 100.
    for (int k = 0; k < 100; ++k)
        h.sample(k);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Stats, HistogramPercentileEdgeCases)
{
    stats::Histogram empty(10.0, 4);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    // A single sample: every percentile falls inside its bucket.
    stats::Histogram one(10.0, 4);
    one.sample(25);
    EXPECT_GE(one.percentile(0.5), 20.0);
    EXPECT_LE(one.percentile(0.5), 30.0);

    // All samples overflow: percentiles clamp to the upper edge.
    stats::Histogram over(10.0, 4);
    over.sample(1000);
    over.sample(2000);
    EXPECT_DOUBLE_EQ(over.percentile(0.5), 40.0);
    EXPECT_DOUBLE_EQ(over.percentile(0.99), 40.0);
}

TEST(Stats, HistogramUnderflowIsNotOverflow)
{
    // Negative samples used to land in the overflow counter (the
    // negative quotient wrapped through the size_t cast); they are
    // their own region now.
    stats::Histogram h(10.0, 4);
    h.sample(-5);
    h.sample(-1e18);
    h.sample(5);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.data()[0], 1u);
    EXPECT_EQ(h.total(), 3u);

    // Underflow ranks below bucket 0: with 2 of 3 samples negative,
    // the median sits in the underflow region (the lower edge), while
    // p99 reaches the real bucket-0 sample.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_GT(h.percentile(0.99), 0.0);
    EXPECT_LE(h.percentile(0.99), 10.0);
}

TEST(Stats, HistogramHugeSampleIsOverflowNotUB)
{
    // Regression: v / bucketSize beyond the size_t range must be
    // classified as overflow, not fed through static_cast (UB that
    // landed in an arbitrary bucket on some targets).
    stats::Histogram h(10.0, 4);
    h.sample(1e300);
    h.sample(static_cast<double>(
        std::numeric_limits<std::uint64_t>::max()));
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.underflow(), 0u);
    for (const auto c : h.data())
        EXPECT_EQ(c, 0u);
    // NaN never compares inside the bucket range: overflow, not UB.
    h.sample(std::nan(""));
    EXPECT_EQ(h.overflow(), 3u);
}

TEST(Stats, HistogramMerge)
{
    stats::Histogram a(10.0, 4), b(10.0, 4);
    a.sample(5);
    a.sample(-1);
    b.sample(15);
    b.sample(1000);
    b.sample(5);
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.data()[0], 2u);
    EXPECT_EQ(a.data()[1], 1u);
}

TEST(Config, PresetsMatchPaper)
{
    for (const char *name : {"4D-2C", "8D-4C", "12D-6C", "16D-8C"}) {
        const auto cfg = SystemConfig::preset(name);
        cfg.validate();
        EXPECT_EQ(cfg.dimmsPerChannel(), 2u) << name;
    }
    const auto cfg = SystemConfig::preset("16D-8C");
    EXPECT_EQ(cfg.numDimms, 16u);
    EXPECT_EQ(cfg.numChannels, 8u);
    EXPECT_EQ(cfg.numGroups(), 2u);
    EXPECT_EQ(cfg.groupSize(), 8u);
}

TEST(Config, GroupAndChannelMapping)
{
    auto cfg = SystemConfig::preset("8D-4C");
    EXPECT_EQ(cfg.groupOf(0), 0u);
    EXPECT_EQ(cfg.groupOf(3), 0u);
    EXPECT_EQ(cfg.groupOf(4), 1u);
    EXPECT_EQ(cfg.groupOf(7), 1u);
    EXPECT_EQ(cfg.channelOf(0), 0u);
    EXPECT_EQ(cfg.channelOf(1), 0u);
    EXPECT_EQ(cfg.channelOf(2), 1u);
    EXPECT_EQ(cfg.channelOf(7), 3u);
}

TEST(Config, SmallSystemIsOneGroup)
{
    auto cfg = SystemConfig::preset("4D-2C");
    EXPECT_EQ(cfg.numGroups(), 1u);
    EXPECT_EQ(cfg.groupSize(), 4u);
}

TEST(Config, PrintMentionsKeyFields)
{
    auto cfg = SystemConfig::preset("4D-2C");
    std::ostringstream os;
    cfg.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("DIMM-Link"), std::string::npos);
    EXPECT_NE(s.find("25 GB/s"), std::string::npos);
}

TEST(StatsJson, EscapesAndSerializes)
{
    EXPECT_EQ(stats::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(stats::jsonEscape("x\ny"), "x\\ny");

    stats::Registry reg;
    reg.group("g.one").scalar("count") += 5;
    reg.group("g.one").distribution("lat").sample(2.0);
    reg.group("g.one").distribution("lat").sample(4.0);
    reg.group("empty"); // omitted by default

    std::ostringstream os;
    stats::dumpJson(reg, os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"g.one\""), std::string::npos);
    EXPECT_NE(j.find("\"count\": 5"), std::string::npos);
    EXPECT_NE(j.find("\"mean\": 3"), std::string::npos);
    EXPECT_EQ(j.find("\"empty\""), std::string::npos);
    // Balanced braces (cheap well-formedness check).
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
}

TEST(StatsJson, HistogramRoundTrip)
{
    stats::Registry reg;
    auto &h = reg.group("g").histogram("lat", 10.0, 4);
    for (int k = 0; k < 40; ++k)
        h.sample(k);
    h.sample(1000); // overflow

    std::ostringstream os;
    stats::dumpJson(reg, os);
    const std::string j = os.str();

    // Raw shape fields survive...
    EXPECT_NE(j.find("\"lat\""), std::string::npos);
    EXPECT_NE(j.find("\"bucketWidth\": 10"), std::string::npos);
    EXPECT_NE(j.find("\"total\": 41"), std::string::npos);
    EXPECT_NE(j.find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"counts\": [10, 10, 10, 10]"),
              std::string::npos);
    // ...and the percentile summaries sit next to them.
    std::ostringstream p50, p95, p99;
    p50 << "\"p50\": " << std::setprecision(15) << h.percentile(0.50);
    p95 << "\"p95\": " << std::setprecision(15) << h.percentile(0.95);
    p99 << "\"p99\": " << std::setprecision(15) << h.percentile(0.99);
    EXPECT_NE(j.find(p50.str()), std::string::npos);
    EXPECT_NE(j.find(p95.str()), std::string::npos);
    EXPECT_NE(j.find(p99.str()), std::string::npos);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
}

TEST(Log, StrFormat)
{
    EXPECT_EQ(strFormat("x=%d y=%s", 5, "z"), "x=5 y=z");
}

} // namespace
} // namespace dimmlink
