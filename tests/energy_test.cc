/** @file Energy-model tests: snapshot/delta accounting and the exact
 * Section V-C constants. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/stats.hh"
#include "energy/energy_model.hh"

namespace dimmlink {
namespace {

class EnergyFixture : public ::testing::Test
{
  protected:
    EnergyFixture() : model(cfg) {}

    SystemConfig cfg;
    stats::Registry reg;
    EnergyModel model;
};

TEST_F(EnergyFixture, DramEnergyUsesPaperConstants)
{
    model.snapshotFrom(reg);
    reg.group("dimm0.mc.rank0").scalar("reads") += 1000;
    reg.group("dimm0.mc.rank0").scalar("writes") += 500;
    reg.group("dimm0.mc.rank0").scalar("activates") += 100;

    const EnergyReport r = model.report(reg, 0, 0);
    // 1500 accesses x 64 B x 8 b x 14 pJ/b + 100 x 2.1 nJ.
    const double expect =
        1500.0 * 64 * 8 * 14.0 + 100.0 * 2.1 * 1e3;
    EXPECT_DOUBLE_EQ(r.dramPj, expect);
    EXPECT_DOUBLE_EQ(r.linkPj, 0.0);
    EXPECT_DOUBLE_EQ(r.forwardPj, 0.0);
}

TEST_F(EnergyFixture, LinkEnergyAtGrsRate)
{
    model.snapshotFrom(reg);
    reg.group("fabric.dl").scalar("bytesViaLink") += 1e6;
    const EnergyReport r = model.report(reg, 0, 0);
    EXPECT_DOUBLE_EQ(r.linkPj, 1e6 * 8 * 1.17);
}

TEST_F(EnergyFixture, HostSideEnergy)
{
    model.snapshotFrom(reg);
    reg.group("host.channel0").scalar("bytes") += 1000;
    reg.group("host.polling").scalar("polls") += 10;
    reg.group("host.forwarder").scalar("forwards") += 5;
    const EnergyReport r = model.report(reg, 0, 0);
    EXPECT_DOUBLE_EQ(r.hostIoPj,
                     1000.0 * 8 * 22.0 + 10.0 * 8.0 * 1e3);
    EXPECT_DOUBLE_EQ(r.forwardPj, 5.0 * 60.0 * 1e3);
}

TEST_F(EnergyFixture, NmpCorePowerIntegratesOverTime)
{
    model.snapshotFrom(reg);
    // 4 DIMMs x 4 cores x 0.45 W for 1 ms = 7.2 mJ.
    const EnergyReport r = model.report(reg, 1 * tickPerMs, 4);
    EXPECT_NEAR(r.nmpCorePj, 7.2e9, 1e3);
}

TEST_F(EnergyFixture, SnapshotMakesReportsDeltas)
{
    reg.group("dimm0.mc.rank0").scalar("reads") += 777;
    model.snapshotFrom(reg);
    // No change since the snapshot: everything zero.
    EnergyReport r = model.report(reg, 0, 0);
    EXPECT_DOUBLE_EQ(r.dramPj, 0.0);

    reg.group("dimm0.mc.rank0").scalar("reads") += 3;
    r = model.report(reg, 0, 0);
    EXPECT_DOUBLE_EQ(r.dramPj, 3.0 * 64 * 8 * 14.0);
}

TEST_F(EnergyFixture, AimBusEnergySeparateFromHostIo)
{
    model.snapshotFrom(reg);
    reg.group("fabric.aim").scalar("bytesViaBus") += 100;
    const EnergyReport r = model.report(reg, 0, 0);
    EXPECT_DOUBLE_EQ(r.busPj, 100.0 * 8 * 22.0);
    EXPECT_DOUBLE_EQ(r.hostIoPj, 0.0);
    EXPECT_DOUBLE_EQ(r.idc(), r.busPj);
}

} // namespace
} // namespace dimmlink
