/** @file Host-side model tests: channels, the forwarding controller,
 * and the four polling mechanisms of Table III. */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "host/channel.hh"
#include "host/forwarder.hh"
#include "host/polling.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace host {
namespace {

TEST(Channel, TransferTimeMatchesBandwidth)
{
    EventQueue eq;
    stats::Registry reg;
    Channel ch(eq, "ch", 19.2, reg.group("ch"));
    // 19200 bytes at 19.2 GB/s = 1 us.
    EXPECT_EQ(ch.transfer(19200), 1000000u);
    // Second transfer queues behind the first.
    EXPECT_EQ(ch.transfer(19200), 2000000u);
    EXPECT_DOUBLE_EQ(reg.scalar("ch.bytes"), 38400.0);
}

TEST(Channel, OccupyHonoursEarliest)
{
    EventQueue eq;
    stats::Registry reg;
    Channel ch(eq, "ch", 19.2, reg.group("ch"));
    EXPECT_EQ(ch.occupy(100, 5000), 5100u);
    EXPECT_EQ(ch.occupy(100, 0), 5200u); // busy until 5100
}

class HostFixture : public ::testing::Test
{
  protected:
    void
    build(PollingMode mode, unsigned dimms = 4, unsigned chans = 2)
    {
        cfg = SystemConfig::preset(dimms == 4 ? "4D-2C" : "8D-4C");
        (void)chans;
        cfg.pollingMode = mode;
        for (unsigned c = 0; c < cfg.numChannels; ++c) {
            const std::string n = "ch" + std::to_string(c);
            channels.push_back(std::make_unique<Channel>(
                eq, n, cfg.host.channelGBps, reg.group(n)));
            ptrs.push_back(channels.back().get());
        }
    }

    EventQueue eq;
    stats::Registry reg;
    SystemConfig cfg;
    std::vector<std::unique_ptr<Channel>> channels;
    std::vector<Channel *> ptrs;
};

TEST_F(HostFixture, ForwarderMovesDataBetweenChannels)
{
    build(PollingMode::Baseline);
    Forwarder fwd(eq, cfg, ptrs, reg);
    Tick done_at = 0;
    fwd.forward(0, 2, 272, [&] { done_at = eq.now(); });
    eq.run();
    // src read + 120 ns forward + dst write.
    EXPECT_GT(done_at, cfg.host.forwardLatencyPs);
    EXPECT_DOUBLE_EQ(reg.scalar("host.forwarder.forwards"), 1.0);
    EXPECT_DOUBLE_EQ(reg.scalar("ch0.bytes"), 0.0); // occupies, not
                                                    // byte-transfers
    EXPECT_GT(reg.scalar("ch0.busyPs"), 0.0);
    EXPECT_GT(reg.scalar("ch1.busyPs"), 0.0);
}

TEST_F(HostFixture, ForwarderPipelinesAcrossWorkers)
{
    build(PollingMode::Baseline);
    Forwarder fwd(eq, cfg, ptrs, reg);
    Tick first = 0, second = 0;
    fwd.forward(0, 2, 1024, [&] { first = eq.now(); });
    fwd.forward(1, 3, 1024, [&] { second = eq.now(); });
    eq.run();
    // Disjoint channel pairs overlap: the second packet finishes
    // within one issue slot of the first, not a full latency later.
    EXPECT_LT(second, first + cfg.host.forwardLatencyPs);
    EXPECT_GE(second, first);
}

TEST_F(HostFixture, ForwarderThroughputBoundedByIssueRate)
{
    build(PollingMode::Baseline);
    Forwarder fwd(eq, cfg, ptrs, reg);
    constexpr unsigned n = 64;
    unsigned done = 0;
    Tick last = 0;
    for (unsigned i = 0; i < n; ++i)
        fwd.forward(0, 2, 64, [&] {
            ++done;
            last = eq.now();
        });
    eq.run();
    EXPECT_EQ(done, n);
    // n packets need at least n/workers issue slots.
    const Tick min_span =
        n / cfg.host.pollThreads * cfg.host.forwardIssuePs;
    EXPECT_GE(last, min_span);
}

TEST_F(HostFixture, BaselinePollingDiscoversRequests)
{
    build(PollingMode::Baseline);
    std::vector<DimmId> targets{0, 1, 2, 3};
    const auto poll_p = makePollingEngine(eq, cfg, ptrs, targets, reg);
    PollingEngine &poll = *poll_p;
    DimmId discovered = invalidDimm;
    Tick at = 0;
    poll.setDiscoverHandler([&](DimmId d) {
        discovered = d;
        at = eq.now();
    });
    poll.start();
    eq.scheduleIn(100, [&] { poll.requestRaised(2); });
    eq.runUntil(20 * cfg.host.pollIntervalPs);
    poll.stop();
    EXPECT_EQ(discovered, 2);
    // Discovered within two sweep periods.
    EXPECT_LE(at, 3 * cfg.host.pollIntervalPs);
}

TEST_F(HostFixture, IdlePollingStillCostsBusTime)
{
    build(PollingMode::Baseline);
    std::vector<DimmId> targets{0, 1, 2, 3};
    const auto poll_p = makePollingEngine(eq, cfg, ptrs, targets, reg);
    PollingEngine &poll = *poll_p;
    poll.start();
    eq.runUntil(10 * cfg.host.pollIntervalPs);
    poll.stop();
    EXPECT_GT(reg.scalar("host.polling.idlePolls"), 30.0);
    EXPECT_GT(reg.scalar("ch0.busyPs"), 0.0);
}

TEST_F(HostFixture, ProxyPollingTouchesOnlyProxyChannels)
{
    build(PollingMode::Proxy);
    // One proxy per group; 4D-2C has a single group, proxy DIMM 2.
    std::vector<DimmId> targets{2};
    const auto poll_p = makePollingEngine(eq, cfg, ptrs, targets, reg);
    PollingEngine &poll = *poll_p;
    poll.start();
    eq.runUntil(10 * cfg.host.pollIntervalPs);
    poll.stop();
    // DIMM 2 sits on channel 1; channel 0 must stay untouched.
    EXPECT_DOUBLE_EQ(reg.scalar("ch0.busyPs"), 0.0);
    EXPECT_GT(reg.scalar("ch1.busyPs"), 0.0);
}

TEST_F(HostFixture, InterruptModeHasNoIdlePolling)
{
    build(PollingMode::BaselineInterrupt);
    std::vector<DimmId> targets{0, 1, 2, 3};
    const auto poll_p = makePollingEngine(eq, cfg, ptrs, targets, reg);
    PollingEngine &poll = *poll_p;
    DimmId discovered = invalidDimm;
    poll.setDiscoverHandler([&](DimmId d) { discovered = d; });
    poll.start();
    eq.runUntil(5 * cfg.host.pollIntervalPs);
    EXPECT_DOUBLE_EQ(reg.scalar("host.polling.polls"), 0.0);

    poll.requestRaised(3);
    eq.runUntil(eq.now() + 10 * cfg.host.interruptLatencyPs);
    poll.stop();
    EXPECT_EQ(discovered, 3);
    EXPECT_GE(reg.scalar("host.polling.interrupts"), 1.0);
    // The handler scanned only DIMM 3's channel: 2 polls.
    EXPECT_DOUBLE_EQ(reg.scalar("host.polling.polls"), 2.0);
}

TEST_F(HostFixture, InterruptLatencyDelaysDiscovery)
{
    build(PollingMode::ProxyInterrupt);
    std::vector<DimmId> targets{2};
    const auto poll_p = makePollingEngine(eq, cfg, ptrs, targets, reg);
    PollingEngine &poll = *poll_p;
    Tick at = 0;
    poll.setDiscoverHandler([&](DimmId) { at = eq.now(); });
    poll.start();
    eq.scheduleIn(50, [&] { poll.requestRaised(2); });
    eq.run();
    poll.stop();
    EXPECT_GE(at, 50 + cfg.host.interruptLatencyPs);
}

TEST_F(HostFixture, PollingOccupancyOrdering)
{
    // Property from Table III / Fig. 15-(b): bus occupation
    // Base >> P-P > P-P+Itrpt over an idle window.
    auto measure = [](PollingMode mode,
                      std::vector<DimmId> targets) {
        EventQueue eq;
        stats::Registry reg;
        auto cfg = SystemConfig::preset("4D-2C");
        cfg.pollingMode = mode;
        std::vector<std::unique_ptr<Channel>> chs;
        std::vector<Channel *> ps;
        for (unsigned c = 0; c < cfg.numChannels; ++c) {
            chs.push_back(std::make_unique<Channel>(
                eq, "ch" + std::to_string(c), cfg.host.channelGBps,
                reg.group("ch" + std::to_string(c))));
            ps.push_back(chs.back().get());
        }
        const auto poll_p =
            makePollingEngine(eq, cfg, ps, targets, reg);
        PollingEngine &poll = *poll_p;
        poll.start();
        eq.runUntil(50 * cfg.host.pollIntervalPs);
        poll.stop();
        double busy = 0;
        for (auto &c : chs)
            busy += c->busyPs();
        return busy;
    };

    const double base =
        measure(PollingMode::Baseline, {0, 1, 2, 3});
    const double proxy = measure(PollingMode::Proxy, {2});
    const double proxy_itrpt =
        measure(PollingMode::ProxyInterrupt, {2});
    EXPECT_GT(base, 2 * proxy);
    EXPECT_EQ(proxy_itrpt, 0.0); // no traffic without requests
}

} // namespace
} // namespace host
} // namespace dimmlink
