/** @file Whole-system determinism: two identical runs must produce
 * byte-identical statistics, proving the event kernel imposes a total
 * (tick, priority, sequence) order with no hidden nondeterminism. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/stats_json.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

std::string
runAndDumpStats(const std::string &wl_name)
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.idcMethod = IdcMethod::DimmLink;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 8;
    p.rounds = 4;
    auto wl = workloads::makeWorkload(wl_name, p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified) << wl_name;
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    os << "\nkernelTicks=" << r.kernelTicks
       << "\nexecuted=" << sys.queue().executed()
       << "\nfinalTick=" << sys.queue().now();
    return os.str();
}

TEST(Determinism, IdenticalRunsProduceByteIdenticalStatsJson)
{
    const std::string first = runAndDumpStats("bfs");
    const std::string second = runAndDumpStats("bfs");
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(Determinism, SyncHeavyWorkloadIsDeterministicToo)
{
    const std::string first = runAndDumpStats("syncbench");
    const std::string second = runAndDumpStats("syncbench");
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace dimmlink
