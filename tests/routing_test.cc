/** @file Routing-policy tests: XY row-first paths on grids, bubble
 * flow control on rings, and the cyclic-topology flag. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "dram/timing.hh"
#include "noc/topology.hh"

namespace dimmlink {
namespace noc {
namespace {

TEST(XyRouting, MeshGoesRowFirstThenColumn)
{
    // 2 x 4 mesh: nodes 0..3 on row 0, 4..7 on row 1.
    TopologyGraph g(Topology::Mesh, 8);
    // 0 -> 6 (row 0 col 0 -> row 1 col 2): walk the path.
    std::vector<int> path;
    int cur = 0;
    while (cur != 6) {
        cur = g.nextHop(cur, 6);
        path.push_back(cur);
    }
    // Row-first: 0 -> 1 -> 2 -> 6 (column hop last).
    EXPECT_EQ(path, (std::vector<int>{1, 2, 6}));
}

TEST(XyRouting, TorusUsesTheShorterWrapDirection)
{
    // 2 x 6 torus: rows wrap. 0 -> 5 is 1 hop left via the wrap.
    TopologyGraph g(Topology::Torus, 12);
    EXPECT_EQ(g.distance(0, 5), 1u);
    EXPECT_EQ(g.nextHop(0, 5), 5);
    // 0 -> 3 is 3 hops either way; direction is deterministic.
    EXPECT_EQ(g.distance(0, 3), 3u);
}

TEST(XyRouting, ColumnHopIsAlwaysLast)
{
    TopologyGraph g(Topology::Torus, 12); // rows 0..5 / 6..11
    const unsigned cols = 6;
    for (int s = 0; s < 12; ++s) {
        for (int d = 0; d < 12; ++d) {
            if (s == d)
                continue;
            // Once the path changes row, it must terminate.
            int cur = s;
            bool changed_row = false;
            while (cur != d) {
                const int nxt = g.nextHop(cur, d);
                const bool row_change =
                    (static_cast<unsigned>(cur) / cols) !=
                    (static_cast<unsigned>(nxt) / cols);
                ASSERT_FALSE(changed_row && row_change)
                    << s << "->" << d;
                if (row_change) {
                    changed_row = true;
                    ASSERT_EQ(nxt, d) << "column hop must be last";
                }
                cur = nxt;
            }
        }
    }
}

TEST(CyclicFlag, MatchesTopologyStructure)
{
    EXPECT_FALSE(TopologyGraph(Topology::HalfRing, 8).cyclic());
    EXPECT_TRUE(TopologyGraph(Topology::Ring, 8).cyclic());
    EXPECT_FALSE(TopologyGraph(Topology::Ring, 2).cyclic());
    EXPECT_FALSE(TopologyGraph(Topology::Mesh, 8).cyclic());
    EXPECT_TRUE(TopologyGraph(Topology::Torus, 12).cyclic());
    // 2x2 torus degenerates to a square without row wrap links.
    EXPECT_FALSE(TopologyGraph(Topology::Torus, 4).cyclic());
}

TEST(Ddr3200, PresetIsSelfConsistent)
{
    const auto t = dram::Timing::preset("DDR4_3200");
    EXPECT_EQ(t.clkMHz, 1600.0);
    // Wall-clock latencies roughly match the 2400 preset.
    const auto base = dram::Timing::preset("DDR4_2400");
    EXPECT_NEAR(static_cast<double>(t.cyc(t.tRCD)),
                static_cast<double>(base.cyc(base.tRCD)), 1500.0);
    EXPECT_GT(t.tCL, base.tCL); // more cycles at the faster clock
}

} // namespace
} // namespace noc
} // namespace dimmlink
