/** @file Rack-scale memory pooling (docs/rack.md): the single-host
 * invisibility contract (no rack section -> byte-identical stats
 * JSON), multi-host determinism across sim.threads counts, pooled
 * vs. host-forwarded cross-host routing, host-death and gateway-death
 * failover with nonzero reroute counters, and validate() rejections
 * for bad rack knobs. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/stats_json.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

/** The paper's 8-DIMM machine as a two-host rack: one DL group (and
 * two channels) per host, kv serving across the whole pool. */
SystemConfig
twoHostConfig()
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.rack.hosts = 2;
    cfg.serve.requests = 256;
    cfg.serve.keys = 8192;
    return cfg;
}

struct RackRun
{
    std::unique_ptr<System> sys;
    RunResult result;

    double
    stat(const std::string &dotted) const
    {
        return sys->stats().scalar(dotted);
    }

    std::string
    json() const
    {
        std::ostringstream os;
        stats::dumpJson(sys->stats(), os, /*include_empty=*/true);
        os << "\nkernelTicks=" << result.kernelTicks;
        return os.str();
    }
};

RackRun
runKv(const SystemConfig &cfg)
{
    RackRun run;
    run.sys = std::make_unique<System>(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("kv", p, run.sys->addressMap());
    Runner runner(*run.sys, *wl);
    run.result = runner.run();
    EXPECT_TRUE(run.result.verified);
    return run;
}

TEST(RackConfig, KeysAreHiddenFromDescribe)
{
    // Like sim.* and obs.*: the config header embedded in stats JSON
    // must keep its pre-rack shape.
    const auto cfg = twoHostConfig();
    EXPECT_EQ(cfg.describe().find("rack."), std::string::npos);
    for (const auto &[key, value] : cfg.describeEntries()) {
        (void)value;
        EXPECT_NE(key.substr(0, 5), "rack.");
    }
}

TEST(RackConfig, PartitionHelpers)
{
    const auto cfg = twoHostConfig();
    ASSERT_EQ(cfg.numGroups(), 2u);
    EXPECT_EQ(cfg.groupsPerHost(), 1u);
    EXPECT_EQ(cfg.hostOf(0), 0u);
    EXPECT_EQ(cfg.hostOf(3), 0u);
    EXPECT_EQ(cfg.hostOf(4), 1u);
    EXPECT_EQ(cfg.hostOf(7), 1u);
    EXPECT_EQ(cfg.gatewayGroupOf(1), 1u);

    // Single-host configs degenerate to host 0 everywhere.
    const auto one = SystemConfig::preset("8D-4C");
    EXPECT_FALSE(one.rackEnabled());
    EXPECT_EQ(one.hostOf(7), 0u);
}

TEST(Rack, DisabledLayerIsByteInvisible)
{
    // A config that never mentions the rack and one with every rack
    // knob twiddled but hosts = 1 must produce byte-identical stats
    // JSON: the layer builds nothing when unused.
    auto plain = SystemConfig::preset("8D-4C");
    plain.serve.requests = 128;
    plain.serve.keys = 8192;
    auto tweaked = plain;
    tweaked.rack.fabric = "direct";
    tweaked.rack.idcMode = "forwarded";
    tweaked.rack.latencyPs = 1500000;
    tweaked.rack.portGBps = 8.0;
    tweaked.validate();
    EXPECT_EQ(runKv(plain).json(), runKv(tweaked).json());
}

TEST(Rack, PooledModeCrossesOnBridges)
{
    const auto run = runKv(twoHostConfig());
    // Keys hash across the pool: both hosts serve, and cross-host
    // traffic rides the pooled lanes, never the host path.
    EXPECT_GT(run.stat("rack.pooledTransfers"), 0.0);
    EXPECT_GT(run.stat("rack.pooledBytes"), 0.0);
    EXPECT_DOUBLE_EQ(run.stat("rack.crossings"), 0.0);
    EXPECT_DOUBLE_EQ(run.stat("rack.reroutes"), 0.0);
    // Per-host SLO percentiles partition the rack-wide count.
    const double h0 = run.stat("serve.host0.requests");
    const double h1 = run.stat("serve.host1.requests");
    EXPECT_GT(h0, 0.0);
    EXPECT_GT(h1, 0.0);
    EXPECT_DOUBLE_EQ(h0 + h1, run.stat("serve.requests"));
    EXPECT_GT(run.stat("serve.host0.latencyP99Ps"), 0.0);
    EXPECT_GE(run.stat("serve.host1.latencyP99Ps"),
              run.stat("serve.host1.latencyP50Ps"));
}

TEST(Rack, ForwardedModeCrossesTheFabric)
{
    auto cfg = twoHostConfig();
    cfg.rack.idcMode = "forwarded";
    const auto run = runKv(cfg);
    EXPECT_GT(run.stat("rack.crossings"), 0.0);
    EXPECT_GT(run.stat("rack.forwardedBytes"), 0.0);
    EXPECT_DOUBLE_EQ(run.stat("rack.pooledTransfers"), 0.0);
}

TEST(Rack, PooledBridgesBeatHostForwarding)
{
    // The paper's point at rack scale: direct bridges skip polling
    // discovery, the host copy machinery and the switch hops, so the
    // same closed-loop run finishes sooner -- across the whole
    // 300-1500 ns CXL sweep (BENCH_rack.json extends this).
    for (const Tick lat : {300000ull, 1500000ull}) {
        auto pooled = twoHostConfig();
        pooled.serve.mode = "closed";
        pooled.rack.latencyPs = lat;
        auto forwarded = pooled;
        forwarded.rack.idcMode = "forwarded";
        const auto rp = runKv(pooled);
        const auto rf = runKv(forwarded);
        EXPECT_LT(rp.result.kernelTicks, rf.result.kernelTicks)
            << "latencyPs=" << lat;
    }
}

TEST(RackDeterminism, ThreadCountInvariant)
{
    // The sharded contract extends to the rack: within
    // sim.shard=group, stats JSON is byte-identical at every thread
    // count (all rack state is single-writer on the host shard).
    std::string ref;
    for (const unsigned threads : {1u, 2u, 4u}) {
        auto cfg = twoHostConfig();
        cfg.sim.shard = "group";
        cfg.sim.threads = threads;
        const std::string js = runKv(cfg).json();
        if (ref.empty())
            ref = js;
        else
            EXPECT_EQ(ref, js) << "threads=" << threads;
    }
}

TEST(RackDeterminism, RepeatRunsAreByteIdentical)
{
    auto cfg = twoHostConfig();
    cfg.rack.hostDownId = 1;
    cfg.rack.hostDownAtPs = 20000000;
    EXPECT_EQ(runKv(cfg).json(), runKv(cfg).json());
}

TEST(RackFailover, HostDeathReroutesOntoPooledBridges)
{
    // Forwarded primary; host 1's rack port dies 20 us in. Traffic
    // keeps flowing (the run completes) over the pooled lanes, and
    // every post-death crossing counts a reroute.
    auto cfg = twoHostConfig();
    cfg.rack.idcMode = "forwarded";
    cfg.serve.requests = 512;
    cfg.rack.hostDownId = 1;
    cfg.rack.hostDownAtPs = 20000000;
    const auto run = runKv(cfg);
    EXPECT_GT(run.stat("rack.portDownEvents"), 0.0);
    EXPECT_GT(run.stat("rack.reroutes"), 0.0);
    EXPECT_GT(run.stat("rack.pooledTransfers"), 0.0);
    EXPECT_GT(run.stat("rack.healthProbesSent"), 0.0);
    EXPECT_GT(run.stat("rack.healthProbesFailed"), 0.0);
    EXPECT_DOUBLE_EQ(run.stat("serve.requests"), 512.0);
}

TEST(RackFailover, GatewayDeathReroutesOntoHostPath)
{
    // Pooled primary; host 1's gateway pool node loses its bridge
    // attach. Cross-host traffic falls back to the host-forwarded
    // path through the rack fabric.
    auto cfg = twoHostConfig();
    cfg.serve.requests = 512;
    cfg.rack.nodeDownId = 1;
    cfg.rack.nodeDownAtPs = 20000000;
    const auto run = runKv(cfg);
    EXPECT_GT(run.stat("rack.portDownEvents"), 0.0);
    EXPECT_GT(run.stat("rack.reroutes"), 0.0);
    EXPECT_GT(run.stat("rack.crossings"), 0.0);
    EXPECT_DOUBLE_EQ(run.stat("serve.requests"), 512.0);
}

TEST(RackValidateDeathTest, RejectsBadKnobs)
{
    const auto base = twoHostConfig();
    const auto dies = [](const SystemConfig &bad, const char *what) {
        EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                    what);
    };

    auto bad = base;
    bad.rack.hosts = 4; // more hosts than DL groups
    dies(bad, "exceeds the number of DL groups");

    // Hosts that fit but do not divide the groups evenly.
    bad = SystemConfig::preset("16D-8C");
    bad.dimmsPerGroup = 4; // four groups
    bad.rack.hosts = 3;
    dies(bad, "cover[\n ]+the 4 DL groups exactly");

    bad = base;
    bad.idcMethod = IdcMethod::CpuForwarding;
    dies(bad, "requires the DIMM-Link fabric");

    bad = base;
    bad.rack.fabric = "infiniband";
    dies(bad, "unknown inter-host fabric 'infiniband'");

    bad = base;
    bad.rack.idcMode = "teleport";
    dies(bad, "rack.idcMode must be 'pooled' or 'forwarded'");

    bad = base;
    bad.rack.latencyPs = 0;
    dies(bad, "rack.latencyPs must be positive");

    bad = base;
    bad.rack.portGBps = 0;
    dies(bad, "pooledGBps must be");

    bad = base;
    bad.rack.hostDownId = 2;
    bad.rack.hostDownAtPs = 1;
    dies(bad, "hostDownId.*out of range");

    // A non-gateway pool node has no bridge attach to kill.
    bad = SystemConfig::preset("16D-8C");
    bad.rack.hosts = 2;
    bad.dimmsPerGroup = 4; // four groups, two per host
    bad.rack.nodeDownId = 1;
    bad.rack.nodeDownAtPs = 1;
    dies(bad, "not a gateway");

    // An explicit lookahead wider than the rack crossing would let
    // the conservative window overrun cross-host events.
    bad = base;
    bad.sim.shard = "group";
    bad.sim.lookaheadPs = 2 * bad.rack.latencyPs;
    dies(bad, "exceeds rack.latencyPs");

    // The unknown-key error now names the rack section.
    auto cfg = base;
    EXPECT_EXIT(cfg.set("rack.bogus", "1"),
                ::testing::ExitedWithCode(1),
                "keys in section 'rack'");
}

} // namespace
} // namespace dimmlink
