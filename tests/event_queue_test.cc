/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Control);
    eq.schedule(5, [&] { order.push_back(3); },
                EventPriority::Control);
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Delivery);
    eq.schedule(5, [&] { order.push_back(4); }, EventPriority::Core);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayRescheduleThemselves)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 5)
            eq.scheduleIn(10, tick);
    };
    eq.scheduleIn(10, tick);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, DescheduleCancelsAndIsIdempotent)
{
    EventQueue eq;
    bool fired = false;
    const auto id = eq.schedule(10, [&] { fired = true; });
    eq.deschedule(id);
    eq.deschedule(id); // idempotent
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "before now");
}

TEST(Clocked, CycleTickConversions)
{
    ClockDomain clk(2000.0); // 2 GHz -> 500 ps
    EXPECT_EQ(clk.period(), 500u);
    EXPECT_EQ(clk.cyclesToTicks(4), 2000u);
    EXPECT_EQ(clk.ticksToCycles(1400), 3u); // rounds up
}

TEST(Clocked, ClockEdgeAlignsUp)
{
    EventQueue eq;
    Clocked c(eq, "c", 1000.0); // 1 ns period
    eq.schedule(1500, [&] {
        EXPECT_EQ(c.clockEdge(), 2000u);
        EXPECT_EQ(c.clockEdge(2), 4000u);
    });
    eq.run();
}

TEST(Types, SerializationTicksRoundsUp)
{
    // 64 bytes at 25 GB/s = 2.56 ns -> 2560 ps.
    EXPECT_EQ(serializationTicks(64, 25.0), 2560u);
    // 1 byte at 19.2 GB/s = 52.08.. ps -> rounds up to 53.
    EXPECT_EQ(serializationTicks(1, 19.2), 53u);
}

} // namespace
} // namespace dimmlink
