/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Control);
    eq.schedule(5, [&] { order.push_back(3); },
                EventPriority::Control);
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Delivery);
    eq.schedule(5, [&] { order.push_back(4); }, EventPriority::Core);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayRescheduleThemselves)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 5)
            eq.scheduleIn(10, tick);
    };
    eq.scheduleIn(10, tick);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, DescheduleCancelsAndIsIdempotent)
{
    EventQueue eq;
    bool fired = false;
    const auto id = eq.schedule(10, [&] { fired = true; });
    eq.deschedule(id);
    eq.deschedule(id); // idempotent
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "before now");
}

TEST(EventQueue, RunUntilAdvancesNowToLimit)
{
    // Regression: callers comparing now() to the limit used to see
    // the tick of the last executed event instead of the limit.
    EventQueue eq;
    bool fired = false;
    eq.schedule(10, [&] { fired = true; });
    EXPECT_EQ(eq.runUntil(100), 100u);
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilWithNoEventsAdvancesNow)
{
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(42), 42u);
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, RunUntilDoesNotRewindNow)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_EQ(eq.runUntil(20), 50u);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, DescheduleAcrossWheelLevelsAndSpill)
{
    // Exercise cancellation of events parked in the L0 wheel, the L1
    // wheel, and the far-future spill heap.
    EventQueue eq;
    std::vector<int> order;
    const auto near = eq.schedule(100, [&] { order.push_back(0); });
    const auto mid = eq.schedule(1u << 16, [&] { order.push_back(1); });
    const auto far =
        eq.schedule(Tick(1) << 30, [&] { order.push_back(2); });
    eq.schedule(101, [&] { order.push_back(3); });
    eq.schedule(1u << 17, [&] { order.push_back(4); });
    eq.schedule((Tick(1) << 30) + 1, [&] { order.push_back(5); });
    EXPECT_EQ(eq.size(), 6u);
    eq.deschedule(near);
    eq.deschedule(mid);
    eq.deschedule(far);
    EXPECT_EQ(eq.size(), 3u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 4, 5}));
    EXPECT_EQ(eq.executed(), 3u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StaleIdForRecycledSlotIsNoOp)
{
    // After an event fires, its slot may be recycled; the generation
    // tag in the old id must keep deschedule() from cancelling the
    // slot's new tenant.
    EventQueue eq;
    const auto id1 = eq.schedule(1, [] {});
    eq.run();
    bool fired = false;
    const auto id2 = eq.schedule(2, [&] { fired = true; });
    eq.deschedule(id1); // Stale: must not touch id2's event.
    EXPECT_NE(id1, id2);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, SameTickEventsScheduledMidDrainInterleaveByPriority)
{
    // A low-priority-value (earlier) event scheduled during the drain
    // of its own tick must still fire before remaining higher-value
    // events, exactly like the seed kernel's global (prio, seq) order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5,
                [&] {
                    order.push_back(0);
                    eq.schedule(5, [&] { order.push_back(1); },
                                EventPriority::Delivery);
                },
                EventPriority::Control);
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Core);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, LargeCapturesExecuteViaPooledStorage)
{
    // Captures beyond EventCallback's inline buffer go through the
    // slab pool; they must still run and destruct exactly once.
    EventQueue eq;
    auto guard = std::make_shared<int>(7);
    std::weak_ptr<int> watch = guard;
    struct Big
    {
        std::uint64_t pad[12];
        std::shared_ptr<int> p;
    };
    static_assert(sizeof(Big) > EventCallback::inlineCapacity);
    int seen = 0;
    eq.schedule(3, [big = Big{{}, std::move(guard)}, &seen] {
        seen = *big.p;
    });
    eq.run();
    EXPECT_EQ(seen, 7);
    EXPECT_TRUE(watch.expired()); // Capture destroyed after firing.
}

TEST(EventQueue, DescheduledCallbackIsEventuallyDestroyed)
{
    EventQueue eq;
    auto guard = std::make_shared<int>(1);
    std::weak_ptr<int> watch = guard;
    const auto id = eq.schedule(10, [g = std::move(guard)] {});
    eq.deschedule(id);
    eq.schedule(11, [] {});
    eq.run(); // Walking tick 10's bucket reclaims the tombstone.
    EXPECT_TRUE(watch.expired());
}

/**
 * Naive reference implementation of the kernel's ordering contract:
 * a flat vector scanned for the (tick, prio, seq) minimum each step.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(Tick when, std::function<void()> cb, EventPriority prio)
    {
        events.push_back(Ev{when, static_cast<int>(prio), nextSeq,
                            std::move(cb)});
        return nextSeq++;
    }

    void
    deschedule(std::uint64_t id)
    {
        for (auto it = events.begin(); it != events.end(); ++it) {
            if (it->seq == id) {
                events.erase(it);
                return;
            }
        }
    }

    Tick now() const { return currentTick; }

    bool
    step()
    {
        if (events.empty())
            return false;
        auto best = events.begin();
        for (auto it = events.begin(); it != events.end(); ++it) {
            if (it->when < best->when ||
                (it->when == best->when &&
                 (it->prio < best->prio ||
                  (it->prio == best->prio && it->seq < best->seq))))
                best = it;
        }
        Ev ev = std::move(*best);
        events.erase(best);
        currentTick = ev.when;
        ev.cb();
        return true;
    }

  private:
    struct Ev
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        std::function<void()> cb;
    };
    std::vector<Ev> events;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
};

/**
 * Drives one queue implementation through a randomized
 * schedule/deschedule/reschedule scenario. All decisions flow from
 * deterministic Rng streams (one for the outer driver, one derived
 * from each event's label), so two queues that execute events in the
 * same order make bit-identical decisions.
 */
template <typename Q>
class ScenarioDriver
{
  public:
    ScenarioDriver(Q &q_, std::uint64_t seed_) : q(q_), seed(seed_) {}

    std::vector<std::uint64_t>
    run()
    {
        Rng rng(seed);
        for (int i = 0; i < 400; ++i) {
            scheduleOne(rng);
            if (rng.chance(0.25) && !ids.empty())
                q.deschedule(ids[rng.below(ids.size())]);
        }
        while (q.step()) {
        }
        return fired;
    }

  private:
    static constexpr EventPriority prios[5] = {
        EventPriority::Delivery, EventPriority::Control,
        EventPriority::Core, EventPriority::Stat,
        EventPriority::Default};

    Tick
    randomDelta(Rng &rng)
    {
        switch (rng.below(8)) {
          case 0:
            return 0; // Same-tick burst.
          case 1:
            return rng.range(1, 16); // Near events.
          case 2:
            return rng.range(500, 3000); // Router/DRAM latencies.
          case 3:
            return rng.range(4090, 4102); // L0/L1 wheel boundary.
          case 4:
            return rng.range(1u << 15, 1u << 20); // Deep L1.
          case 5:
            // L1/spill boundary.
            return rng.range((1u << 24) - 8, (1u << 24) + 8);
          case 6:
            return rng.range(Tick(1) << 25, Tick(1) << 28); // Spill.
          default:
            return rng.range(1, 4096);
        }
    }

    void
    scheduleOne(Rng &rng)
    {
        if (budget == 0)
            return;
        --budget;
        const Tick when = q.now() + randomDelta(rng);
        const EventPriority prio = prios[rng.below(5)];
        const std::uint64_t label = nextLabel++;
        ids.push_back(q.schedule(
            when, [this, label] { onFire(label); }, prio));
    }

    void
    onFire(std::uint64_t label)
    {
        fired.push_back(label);
        // Per-label stream: both queues reach this label with the
        // same history, so both derive identical follow-up actions.
        Rng r(seed ^ (label * 0x9e3779b97f4a7c15ull));
        const std::uint64_t n = r.below(3);
        for (std::uint64_t i = 0; i < n; ++i)
            scheduleOne(r);
        if (r.chance(0.35) && !ids.empty())
            q.deschedule(ids[r.below(ids.size())]);
    }

    Q &q;
    std::uint64_t seed;
    std::vector<std::uint64_t> fired;
    std::vector<std::uint64_t> ids;
    std::uint64_t nextLabel = 0;
    int budget = 1500;
};

TEST(EventQueueStress, ExecutionOrderMatchesReferenceQueue)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        EventQueue wheel;
        ReferenceQueue ref;
        const auto wheelOrder =
            ScenarioDriver<EventQueue>(wheel, seed).run();
        const auto refOrder =
            ScenarioDriver<ReferenceQueue>(ref, seed).run();
        ASSERT_FALSE(wheelOrder.empty());
        ASSERT_EQ(wheelOrder, refOrder) << "seed " << seed;
        EXPECT_EQ(wheel.now(), ref.now()) << "seed " << seed;
        EXPECT_TRUE(wheel.empty());
    }
}

TEST(Clocked, CycleTickConversions)
{
    ClockDomain clk(2000.0); // 2 GHz -> 500 ps
    EXPECT_EQ(clk.period(), 500u);
    EXPECT_EQ(clk.cyclesToTicks(4), 2000u);
    EXPECT_EQ(clk.ticksToCycles(1400), 3u); // rounds up
}

TEST(Clocked, ClockEdgeAlignsUp)
{
    EventQueue eq;
    Clocked c(eq, "c", 1000.0); // 1 ns period
    eq.schedule(1500, [&] {
        EXPECT_EQ(c.clockEdge(), 2000u);
        EXPECT_EQ(c.clockEdge(2), 4000u);
    });
    eq.run();
}

TEST(Types, SerializationTicksRoundsUp)
{
    // 64 bytes at 25 GB/s = 2.56 ns -> 2560 ps.
    EXPECT_EQ(serializationTicks(64, 25.0), 2560u);
    // 1 byte at 19.2 GB/s = 52.08.. ps -> rounds up to 53.
    EXPECT_EQ(serializationTicks(1, 19.2), 53u);
}

} // namespace
} // namespace dimmlink
