/** @file Cache tag-model tests: hits, LRU, writebacks, flush. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "dimm/cache.hh"

namespace dimmlink {
namespace {

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : cache("c", 1024, 2, 64, reg.group("c")) {}
    // 1 KB, 2-way, 64B lines -> 8 sets.
    stats::Registry reg;
    Cache cache;
};

TEST_F(CacheTest, Geometry)
{
    EXPECT_EQ(cache.numSets(), 8u);
    EXPECT_EQ(cache.associativity(), 2u);
    EXPECT_EQ(cache.lineBytes(), 64u);
}

TEST_F(CacheTest, MissThenHit)
{
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit); // same line
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_TRUE(cache.probe(0x1000));
}

TEST_F(CacheTest, LruEviction)
{
    // Set 0 lines: addresses with set bits == 0.
    const Addr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);          // a is MRU
    const auto r = cache.access(c, false); // evicts b
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST_F(CacheTest, DirtyVictimReportsWriteback)
{
    const Addr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.access(a, true); // dirty
    cache.access(b, false);
    cache.access(b, false);
    // Evict a (LRU): must report writeback of a's line address.
    const auto r = cache.access(c, false);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, a);
}

TEST_F(CacheTest, CleanVictimNoWriteback)
{
    const Addr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.access(a, false);
    cache.access(b, false);
    const auto r = cache.access(c, false);
    EXPECT_FALSE(r.writeback);
}

TEST_F(CacheTest, WriteHitMarksDirty)
{
    const Addr a = 0 << 6, b = 8 << 6, c = 16 << 6;
    cache.access(a, false);
    cache.access(a, true); // now dirty via write hit
    cache.access(b, false);
    cache.access(b, false);
    const auto r = cache.access(c, false);
    EXPECT_TRUE(r.writeback);
}

TEST_F(CacheTest, FlushInvalidatesAndCountsDirty)
{
    // Three different sets so nothing evicts (8 sets, 64B lines).
    cache.access(0x0, true);
    cache.access(0x40, false);
    cache.access(0x80, true);
    EXPECT_EQ(cache.flush(), 2u);
    EXPECT_FALSE(cache.probe(0x0));
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_EQ(cache.flush(), 0u);
}

TEST_F(CacheTest, HitRate)
{
    cache.access(0x40, false);
    cache.access(0x40, false);
    cache.access(0x40, false);
    cache.access(0x40, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}

struct CacheShape
{
    unsigned size;
    unsigned assoc;
};

class CacheShapes : public ::testing::TestWithParam<CacheShape>
{
};

TEST_P(CacheShapes, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup)
{
    const auto [size, assoc] = GetParam();
    stats::Registry reg;
    Cache cache("c", size, assoc, 64, reg.group("c"));
    const unsigned lines = size / 64;
    // Warm up with exactly the capacity working set.
    for (unsigned i = 0; i < lines; ++i)
        cache.access(static_cast<Addr>(i) * 64, false);
    for (unsigned i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(static_cast<Addr>(i) * 64, false)
                        .hit);
}

TEST_P(CacheShapes, RandomStressKeepsAccounting)
{
    const auto [size, assoc] = GetParam();
    stats::Registry reg;
    Cache cache("c", size, assoc, 64, reg.group("c"));
    Rng rng(99);
    unsigned writebacks = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.below(1 << 18) & ~Addr(63);
        const auto r = cache.access(a, rng.chance(0.5));
        if (r.writeback) {
            ++writebacks;
            // A victim's address must map to the same set as some
            // line-aligned address.
            EXPECT_EQ(r.victimAddr % 64, 0u);
        }
    }
    EXPECT_GT(writebacks, 0u);
    EXPECT_DOUBLE_EQ(reg.scalar("c.writebacks"),
                     static_cast<double>(writebacks));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheShapes,
    ::testing::Values(CacheShape{1024, 1}, CacheShape{1024, 2},
                      CacheShape{4096, 4}, CacheShape{16384, 8},
                      CacheShape{131072, 8}));

} // namespace
} // namespace dimmlink
