/** @file Tests for the implementation registries: the generic Factory
 * machinery, the built-in registrations, the pluggable DRAM scheduler,
 * and registry-vs-direct construction determinism. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/config.hh"
#include "common/factory.hh"
#include "common/stats.hh"
#include "common/stats_json.hh"
#include "dram/address_map.hh"
#include "dram/dram_controller.hh"
#include "dram/sched_policy.hh"
#include "host/polling.hh"
#include "idc/abc_fabric.hh"
#include "idc/aim_fabric.hh"
#include "idc/dl_fabric.hh"
#include "idc/fabric.hh"
#include "idc/mcn_fabric.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"
#include "workloads/workload.hh"

namespace dimmlink {

// ---- generic Factory machinery ----------------------------------------

namespace {

struct Widget
{
    virtual ~Widget() = default;
    virtual int value() const = 0;
};

struct FortyTwo : Widget
{
    int value() const override { return 42; }
};

struct Seven : Widget
{
    int value() const override { return 7; }
};

} // namespace

template <>
struct FactoryTraits<Widget>
{
    static constexpr const char *noun = "widget";
};

namespace {

using WidgetFactory = Factory<Widget>;

WidgetFactory::Registrar regFortyTwo("forty-two", []()
    -> std::unique_ptr<Widget> { return std::make_unique<FortyTwo>(); });
WidgetFactory::Registrar regSeven("seven", []()
    -> std::unique_ptr<Widget> { return std::make_unique<Seven>(); });

TEST(Factory, CreatesRegisteredImplementations)
{
    auto &f = WidgetFactory::instance();
    EXPECT_TRUE(f.contains("forty-two"));
    EXPECT_TRUE(f.contains("seven"));
    EXPECT_FALSE(f.contains("eight"));
    EXPECT_EQ(f.create("forty-two")->value(), 42);
    EXPECT_EQ(f.create("seven")->value(), 7);
}

TEST(Factory, KnownNamesAreSorted)
{
    const auto names = WidgetFactory::instance().known();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "forty-two");
    EXPECT_EQ(names[1], "seven");
    EXPECT_EQ(WidgetFactory::instance().knownList(),
              "forty-two, seven");
}

TEST(FactoryDeathTest, UnknownNameFatalsListingRegistered)
{
    EXPECT_EXIT(WidgetFactory::instance().create("gizmo"),
                ::testing::ExitedWithCode(1),
                "unknown widget 'gizmo' \\(registered: "
                "forty-two, seven\\)");
}

TEST(FactoryDeathTest, DuplicateRegistrationPanics)
{
    EXPECT_DEATH(WidgetFactory::instance().add(
                     "seven",
                     []() -> std::unique_ptr<Widget> {
                         return std::make_unique<Seven>();
                     }),
                 "duplicate widget registration 'seven'");
}

// ---- the built-in registries are populated ----------------------------

TEST(Registries, BuiltInImplementationsAreRegistered)
{
    const std::vector<std::string> fabrics =
        idc::FabricFactory::instance().known();
    EXPECT_EQ(fabrics, (std::vector<std::string>{
                           "ABC-DIMM", "AIM", "DIMM-Link", "MCN"}));

    const std::vector<std::string> topos =
        noc::TopologyFactory::instance().known();
    EXPECT_EQ(topos, (std::vector<std::string>{"HalfRing", "Mesh",
                                               "Ring", "Torus"}));

    const std::vector<std::string> polls =
        host::PollingEngineFactory::instance().known();
    EXPECT_EQ(polls, (std::vector<std::string>{
                         "Base", "Base+Itrpt", "P-P", "P-P+Itrpt"}));

    const std::vector<std::string> scheds =
        dram::SchedPolicyFactory::instance().known();
    EXPECT_EQ(scheds, (std::vector<std::string>{"FCFS", "FRFCFS"}));

    const std::vector<std::string> wls = workloads::knownWorkloads();
    EXPECT_EQ(wls, (std::vector<std::string>{
                       "bfs", "embed", "gups", "hotspot", "kmeans",
                       "kv", "nw", "pagerank", "spmv", "sssp",
                       "stream", "syncbench", "tspow"}));
}

TEST(Registries, EveryEnumNameResolvesInItsRegistry)
{
    for (auto m : {IdcMethod::CpuForwarding, IdcMethod::DedicatedBus,
                   IdcMethod::ChannelBroadcast, IdcMethod::DimmLink})
        EXPECT_TRUE(idc::FabricFactory::instance().contains(
            toString(m)));
    for (auto t : {Topology::HalfRing, Topology::Ring, Topology::Mesh,
                   Topology::Torus})
        EXPECT_TRUE(noc::TopologyFactory::instance().contains(
            toString(t)));
    for (auto p : {PollingMode::Baseline, PollingMode::BaselineInterrupt,
                   PollingMode::Proxy, PollingMode::ProxyInterrupt})
        EXPECT_TRUE(host::PollingEngineFactory::instance().contains(
            toString(p)));
}

TEST(RegistriesDeathTest, UnknownTopologyListsAlternatives)
{
    EXPECT_EXIT(noc::TopologyGraph(static_cast<Topology>(99), 4),
                ::testing::ExitedWithCode(1),
                "unknown NoC topology");
}

// ---- DRAM scheduling policies -----------------------------------------

namespace {

/** Drive one single-rank controller and record completion order. */
class SchedFixture
{
  public:
    explicit SchedFixture(const std::string &policy)
        : timing(dram::Timing::preset("DDR4_2400")),
          map(timing, 1, 64),
          ctrl(eq, "ctl", timing, 1, 64, reg.group("ctl"), policy)
    {}

    /** Find an address on bank 0 with the given row (column 0/1). */
    Addr
    addrAt(unsigned row, unsigned column)
    {
        for (Addr a = 0; a < (Addr{1} << 34); a += 64) {
            const dram::DramCoord c = map.decode(a);
            if (c.rank == 0 && c.bankGroup == 0 && c.bank == 0 &&
                c.row == row && c.column == column)
                return a;
        }
        ADD_FAILURE() << "no address with row " << row;
        return 0;
    }

    void
    read(Addr a, char tag)
    {
        dram::DramRequest req;
        req.local = a;
        req.done = [this, tag] { order.push_back(tag); };
        ASSERT_TRUE(ctrl.enqueue(std::move(req)));
    }

    EventQueue eq;
    stats::Registry reg;
    dram::Timing timing;
    dram::LocalAddressMap map;
    dram::DramController ctrl;
    std::string order;
};

} // namespace

TEST(SchedPolicy, FrFcfsServesReadyRowHitFirst)
{
    SchedFixture f("FRFCFS");
    f.read(f.addrAt(0, 0), 'A'); // opens row 0
    f.read(f.addrAt(1, 0), 'B'); // row conflict
    f.read(f.addrAt(0, 1), 'C'); // hit on the row A opened
    f.eq.runUntil(f.eq.now() + 2 * tickPerUs);
    EXPECT_EQ(f.order, "ACB");
}

TEST(SchedPolicy, FcfsServesStrictlyInOrder)
{
    SchedFixture f("FCFS");
    f.read(f.addrAt(0, 0), 'A');
    f.read(f.addrAt(1, 0), 'B');
    f.read(f.addrAt(0, 1), 'C');
    f.eq.runUntil(f.eq.now() + 2 * tickPerUs);
    EXPECT_EQ(f.order, "ABC");
}

TEST(SchedPolicyDeathTest, UnknownPolicyListsRegistered)
{
    EventQueue eq;
    stats::Registry reg;
    const dram::Timing t = dram::Timing::preset("DDR4_2400");
    EXPECT_EXIT(dram::DramController(eq, "ctl", t, 1, 64,
                                     reg.group("ctl"), "LIFO"),
                ::testing::ExitedWithCode(1),
                "unknown DRAM scheduling policy 'LIFO' "
                "\\(registered: FCFS, FRFCFS\\)");
}

// ---- registry-built fabrics behave identically to direct builds -------

namespace {

/** Build a fabric, drive a fixed transaction mix, dump the stats. */
std::string
driveFabric(const SystemConfig &cfg, bool via_registry)
{
    EventQueue eq;
    stats::Registry reg;
    std::vector<std::unique_ptr<host::Channel>> channels;
    std::vector<host::Channel *> ptrs;
    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        const std::string n = "host.channel" + std::to_string(c);
        channels.push_back(std::make_unique<host::Channel>(
            eq, n, cfg.host.channelGBps, reg.group(n)));
        ptrs.push_back(channels.back().get());
    }

    std::unique_ptr<idc::Fabric> fabric;
    if (via_registry) {
        fabric = idc::makeFabric(eq, cfg, ptrs, reg);
    } else {
        switch (cfg.idcMethod) {
          case IdcMethod::CpuForwarding:
            fabric = std::make_unique<idc::McnFabric>(eq, cfg, ptrs,
                                                      reg);
            break;
          case IdcMethod::DedicatedBus:
            fabric = std::make_unique<idc::AimFabric>(eq, cfg, ptrs,
                                                      reg);
            break;
          case IdcMethod::ChannelBroadcast:
            fabric = std::make_unique<idc::AbcFabric>(eq, cfg, ptrs,
                                                      reg);
            break;
          case IdcMethod::DimmLink:
            fabric = std::make_unique<idc::DlFabric>(eq, cfg, ptrs,
                                                     reg);
            break;
        }
    }

    fabric->setMemAccess([&eq](DimmId, Addr, std::uint32_t, bool,
                               std::function<void()> done) {
        eq.scheduleIn(60 * tickPerNs, std::move(done));
    });
    fabric->enterNmpMode();

    unsigned outstanding = 0;
    auto submit = [&](idc::Transaction::Type type, DimmId src,
                      DimmId dst, std::uint32_t bytes) {
        idc::Transaction t;
        t.type = type;
        t.src = src;
        t.dst = dst;
        t.bytes = bytes;
        t.onComplete = [&outstanding] { --outstanding; };
        ++outstanding;
        fabric->submit(std::move(t));
    };

    submit(idc::Transaction::Type::RemoteRead, 0, 1, 256);
    submit(idc::Transaction::Type::RemoteWrite, 3, 0, 4096);
    submit(idc::Transaction::Type::SyncMessage, 2, 1, 8);
    submit(idc::Transaction::Type::Broadcast, 1, 0, 1024);
    while (outstanding > 0 && eq.step()) {
    }
    EXPECT_EQ(outstanding, 0u);
    fabric->exitNmpMode();

    std::ostringstream os;
    stats::dumpJson(reg, os, true);
    return os.str();
}

} // namespace

TEST(Registries, FabricsMatchDirectConstructionByteForByte)
{
    for (auto m : {IdcMethod::CpuForwarding, IdcMethod::DedicatedBus,
                   IdcMethod::ChannelBroadcast, IdcMethod::DimmLink}) {
        SystemConfig cfg = SystemConfig::preset("4D-2C");
        cfg.idcMethod = m;
        const std::string direct = driveFabric(cfg, false);
        const std::string registry = driveFabric(cfg, true);
        EXPECT_EQ(direct, registry) << "fabric " << toString(m);
        EXPECT_NE(direct.find("\"transactions\": 4"),
                  std::string::npos)
            << "fabric " << toString(m);
    }
}

} // namespace
} // namespace dimmlink
