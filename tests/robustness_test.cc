/** @file End-to-end link-failure recovery: the link-health state
 * machine, topology route-around, the exhaustion fallback policies,
 * the hang watchdog, decoder/parser fuzzing, and whole-system runs
 * with a permanently stuck link that must still complete and verify
 * under every recovery policy. */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/stats_json.hh"
#include "dimm/dl_controller.hh"
#include "fault/link_health.hh"
#include "noc/topology.hh"
#include "proto/codec.hh"
#include "proto/dll.hh"
#include "proto/packet.hh"
#include "sim/event_queue.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "system/watchdog.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

using fault::LinkState;
using proto::Packet;

// ---------------------------------------------------------------------
// Link health state machine.
// ---------------------------------------------------------------------

struct HealthHarness
{
    EventQueue eq;
    // suspect after 2 blames, reprobe every 1000 ps, probe timeout 500.
    fault::LinkHealth h{eq, 2, 1000, 500};

    struct Probe
    {
        int a, b;
        std::uint64_t id;
    };
    std::vector<Probe> probes;
    std::vector<std::tuple<int, int, LinkState, LinkState>> transitions;
    unsigned probeFailures = 0;

    HealthHarness()
    {
        fault::LinkHealth::Callbacks cb;
        cb.sendProbe = [this](int a, int b, std::uint64_t id) {
            probes.push_back({a, b, id});
        };
        cb.onTransition = [this](int a, int b, LinkState f,
                                 LinkState t) {
            transitions.emplace_back(a, b, f, t);
        };
        cb.onProbeFailed = [this](int, int) { ++probeFailures; };
        h.setCallbacks(std::move(cb));
        h.addEdge(0, 1);
    }

    void blame() { h.noteExhausted({{0, 1}}); }

    /** Step until @p pred holds or @p max_events ran. */
    template <typename Pred>
    bool
    stepUntil(Pred pred, unsigned max_events = 64)
    {
        for (unsigned i = 0; i < max_events; ++i) {
            if (pred())
                return true;
            if (!eq.step())
                return pred();
        }
        return pred();
    }
};

TEST(LinkHealth, StaysUpBelowSuspectThreshold)
{
    HealthHarness t;
    t.blame();
    EXPECT_EQ(t.h.state(0, 1), LinkState::Up);
    EXPECT_TRUE(t.probes.empty());
    EXPECT_TRUE(t.transitions.empty());
    EXPECT_EQ(t.h.numSuspectOrDown(), 0u);
}

TEST(LinkHealth, SuspectThenProbeTimeoutTakesTheLinkDown)
{
    HealthHarness t;
    t.blame();
    t.blame();
    EXPECT_EQ(t.h.state(0, 1), LinkState::Suspect);
    ASSERT_EQ(t.probes.size(), 1u);

    // Never answer the probe: the timeout fires, the link goes down,
    // and re-probes start (so the queue never drains on its own).
    ASSERT_TRUE(t.stepUntil(
        [&] { return t.h.state(0, 1) == LinkState::Down; }));
    EXPECT_GE(t.probeFailures, 1u);
    EXPECT_EQ(t.h.numSuspectOrDown(), 1u);
    EXPECT_NE(t.h.dump().find("down"), std::string::npos);

    // A re-probe goes out; answering it cleanly recovers the link.
    ASSERT_TRUE(t.stepUntil([&] { return t.probes.size() >= 2; }));
    t.h.probeResult(0, 1, t.probes.back().id, /*clean=*/true);
    EXPECT_EQ(t.h.state(0, 1), LinkState::Up);
    while (t.eq.step()) {
    } // Recovery cancels the probe cycle: the queue drains.

    ASSERT_EQ(t.transitions.size(), 3u);
    EXPECT_EQ(std::get<3>(t.transitions[0]), LinkState::Suspect);
    EXPECT_EQ(std::get<3>(t.transitions[1]), LinkState::Down);
    EXPECT_EQ(std::get<3>(t.transitions[2]), LinkState::Up);
}

TEST(LinkHealth, CleanProbeRecoversSuspectAndResetsTheBlameCount)
{
    HealthHarness t;
    t.blame();
    t.blame();
    ASSERT_EQ(t.probes.size(), 1u);
    t.h.probeResult(0, 1, t.probes[0].id, /*clean=*/true);
    EXPECT_EQ(t.h.state(0, 1), LinkState::Up);

    // consecFails was reset: one more blame is below the threshold.
    t.blame();
    EXPECT_EQ(t.h.state(0, 1), LinkState::Up);
    t.blame();
    EXPECT_EQ(t.h.state(0, 1), LinkState::Suspect);
    ASSERT_EQ(t.probes.size(), 2u);
    t.h.probeResult(0, 1, t.probes[1].id, /*clean=*/true);
    while (t.eq.step()) {
    }
}

TEST(LinkHealth, AckedTrafficResetsTheBlameCount)
{
    HealthHarness t;
    // Blames interleaved with successes never reach the threshold:
    // "consecutive" failures really are consecutive, not cumulative
    // over the whole run.
    for (int i = 0; i < 8; ++i) {
        t.blame();
        t.h.noteSuccess({{0, 1}});
    }
    EXPECT_EQ(t.h.state(0, 1), LinkState::Up);
    EXPECT_TRUE(t.transitions.empty());

    t.blame();
    t.blame();
    EXPECT_EQ(t.h.state(0, 1), LinkState::Suspect);
    // Once the edge leaves Up the probe cycle owns it: a success
    // report must not mask the pending probe verdict.
    t.h.noteSuccess({{0, 1}});
    EXPECT_EQ(t.h.state(0, 1), LinkState::Suspect);
    // Unknown edges are ignored.
    t.h.noteSuccess({{3, 4}});
}

TEST(LinkHealth, StaleProbeIdsAreIgnored)
{
    HealthHarness t;
    t.blame();
    t.blame();
    ASSERT_EQ(t.probes.size(), 1u);
    t.h.probeResult(0, 1, t.probes[0].id + 1234, /*clean=*/true);
    EXPECT_EQ(t.h.state(0, 1), LinkState::Suspect); // not recovered
    t.h.probeResult(0, 1, t.probes[0].id, /*clean=*/true);
    EXPECT_EQ(t.h.state(0, 1), LinkState::Up);
}

TEST(LinkHealth, CorruptedProbeCountsAsFailure)
{
    HealthHarness t;
    t.blame();
    t.blame();
    ASSERT_EQ(t.probes.size(), 1u);
    t.h.probeResult(0, 1, t.probes[0].id, /*clean=*/false);
    EXPECT_EQ(t.h.state(0, 1), LinkState::Down);
    EXPECT_EQ(t.probeFailures, 1u);
}

TEST(LinkHealth, BlamingADownEdgeDoesNotRetransition)
{
    HealthHarness t;
    t.blame();
    t.blame();
    t.h.probeResult(0, 1, t.probes[0].id, /*clean=*/false);
    ASSERT_EQ(t.h.state(0, 1), LinkState::Down);
    const auto n = t.transitions.size();
    t.blame();
    t.blame();
    t.blame();
    EXPECT_EQ(t.transitions.size(), n);
    EXPECT_EQ(t.h.state(0, 1), LinkState::Down);
}

// ---------------------------------------------------------------------
// Topology route-around.
// ---------------------------------------------------------------------

TEST(RouteAround, RingTakesTheOtherDirection)
{
    noc::TopologyGraph g(Topology::Ring, 4);
    EXPECT_EQ(g.nextHop(0, 1), 1);
    EXPECT_EQ(g.distance(0, 1), 1u);

    g.setEdgeDown(0, 1, true);
    EXPECT_TRUE(g.edgeDown(0, 1));
    EXPECT_FALSE(g.edgeDown(1, 0)); // directed mask
    EXPECT_EQ(g.numDownEdges(), 1u);

    // 0 -> 1 routes the long way round; the reverse is untouched.
    EXPECT_EQ(g.nextHop(0, 1), 3);
    EXPECT_EQ(g.distance(0, 1), 3u);
    EXPECT_TRUE(g.reachable(0, 1));
    EXPECT_EQ(g.nextHop(1, 0), 0);
    EXPECT_EQ(g.distance(1, 0), 1u);

    g.setEdgeDown(0, 1, false);
    EXPECT_EQ(g.numDownEdges(), 0u);
    EXPECT_EQ(g.nextHop(0, 1), 1);
    EXPECT_EQ(g.distance(0, 1), 1u);
}

TEST(RouteAround, HalfRingCutDisconnectsInsteadOfPanicking)
{
    noc::TopologyGraph g(Topology::HalfRing, 4); // chain 0-1-2-3
    g.setEdgeDown(1, 2, true);

    EXPECT_FALSE(g.reachable(1, 2));
    EXPECT_EQ(g.nextHop(1, 2), -1);
    EXPECT_EQ(g.distance(1, 2), noc::TopologyGraph::unreachable);
    EXPECT_FALSE(g.reachable(0, 3)); // 0 -> 3 needed 1 -> 2

    // The reverse direction still works.
    EXPECT_TRUE(g.reachable(2, 1));
    EXPECT_TRUE(g.reachable(3, 0));
    EXPECT_EQ(g.nextHop(2, 1), 1);

    g.setEdgeDown(1, 2, false);
    EXPECT_TRUE(g.reachable(0, 3));
    EXPECT_EQ(g.distance(0, 3), 3u);
}

TEST(RouteAround, BroadcastTreeSkipsUnreachableNodes)
{
    noc::TopologyGraph g(Topology::HalfRing, 4);
    g.setEdgeDown(1, 2, true);

    // Collect the nodes the tree rooted at 0 actually reaches.
    std::vector<int> reached{0};
    for (std::size_t i = 0; i < reached.size(); ++i)
        for (int c : g.broadcastChildren(0, reached[i]))
            reached.push_back(c);
    std::sort(reached.begin(), reached.end());
    EXPECT_EQ(reached, (std::vector<int>{0, 1}));
}

TEST(RouteAround, MeshFallsBackFromXyRoutingToBfs)
{
    noc::TopologyGraph g(Topology::Mesh, 4); // 2x2 grid
    const int xy_hop = g.nextHop(0, 3);
    g.setEdgeDown(0, xy_hop, true);
    // The XY walk would use the dead link; BFS routes around it.
    const int hop = g.nextHop(0, 3);
    EXPECT_NE(hop, xy_hop);
    EXPECT_NE(hop, -1);
    EXPECT_EQ(g.distance(0, 3), 2u);
    g.setEdgeDown(0, xy_hop, false);
    EXPECT_EQ(g.nextHop(0, 3), xy_hop);
}

// ---------------------------------------------------------------------
// Rate-limited warnings.
// ---------------------------------------------------------------------

TEST(WarnRateLimit, CountsEveryCallAndKeysAreIndependent)
{
    resetWarnCounts();
    EXPECT_EQ(warnCount("robustness-test-a"), 0u);
    for (int i = 0; i < 10; ++i)
        warnRateLimited("robustness-test-a", 4, "warn %d", i);
    DIMMLINK_WARN_ONCE("robustness-test-b", "only printed once");
    DIMMLINK_WARN_ONCE("robustness-test-b", "only printed once");
    EXPECT_EQ(warnCount("robustness-test-a"), 10u);
    EXPECT_EQ(warnCount("robustness-test-b"), 2u);
    resetWarnCounts();
    EXPECT_EQ(warnCount("robustness-test-a"), 0u);
}

// ---------------------------------------------------------------------
// Exhaustion fallback policies on the retry sender.
// ---------------------------------------------------------------------

TEST(ExhaustFallback, DropWarnsAndReleasesTheWindow)
{
    EventQueue eq;
    stats::Registry reg;
    proto::RetrySender sender(eq, 100, 1, reg.group("dll"), 8,
                              proto::ExhaustFallback::Drop);
    resetWarnCounts();
    Packet p = proto::Codec::makeWriteReq(0, 1, 0x40, 1, 64);
    bool acked = false;
    sender.send(
        p, [](const Packet &) { /* wire eats every transmission */ },
        [&acked] { acked = true; });
    while (eq.step()) {
    }
    EXPECT_FALSE(acked);
    EXPECT_EQ(sender.inFlight(), 0u); // entry retired, window open
    EXPECT_GE(warnCount("dll-exhausted"), 1u);
    resetWarnCounts();
}

TEST(ExhaustFallbackDeathTest, PanicPreservesFailStop)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            stats::Registry reg;
            proto::RetrySender sender(eq, 100, 1, reg.group("dll"), 8,
                                      proto::ExhaustFallback::Panic);
            Packet p = proto::Codec::makeWriteReq(0, 1, 0x40, 1, 64);
            sender.send(p, [](const Packet &) {}, [] {});
            while (eq.step()) {
            }
        },
        "failed permanently");
}

// ---------------------------------------------------------------------
// Receiver stream resync: the exhaustion policy retires a sequence
// the receiver still expects, and skipTo() moves the stream past the
// permanent gap.
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
wireWithSeq(std::uint8_t src, std::uint8_t dst, std::uint16_t seq)
{
    Packet p = proto::Codec::makeWriteReq(src, dst, 0x40,
                                          seq & 0x3f, 32);
    p.dll = seq;
    return proto::encode(p);
}

TEST(ReceiverResync, SkipReleasesHeldPacketsAndReopensTheStream)
{
    stats::Registry reg;
    proto::RetryReceiver rx(reg.group("dll"), 8);
    std::vector<Packet> out;
    std::optional<Packet> ack;

    // Sequences 1 and 3 arrive ahead of the gap at 0 and are held.
    rx.onArrive(wireWithSeq(1, 2, 1), false, out, ack);
    rx.onArrive(wireWithSeq(1, 2, 3), false, out, ack);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(rx.bufferedPackets(), 2u);

    // The sender retired 0 and 2 (exhaustion); skipping to 2 must
    // release the whole held run, in order.
    rx.skipTo(1, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dll & 0xffff, 1u);
    out.clear();
    rx.skipTo(1, 2, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dll & 0xffff, 3u);
    EXPECT_EQ(rx.bufferedPackets(), 0u);

    // The stream continues in order right after the resync point.
    out.clear();
    rx.onArrive(wireWithSeq(1, 2, 4), false, out, ack);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dll & 0xffff, 4u);
}

TEST(ReceiverResync, StaleSkipsAreNoOps)
{
    stats::Registry reg;
    proto::RetryReceiver rx(reg.group("dll"), 8);
    std::vector<Packet> out;
    std::optional<Packet> ack;

    rx.onArrive(wireWithSeq(1, 2, 0), false, out, ack);
    ASSERT_EQ(out.size(), 1u);
    out.clear();

    // Skipping an already-delivered sequence (a duplicated or late
    // resync notification) must not rewind or re-deliver anything.
    rx.skipTo(1, 0, out);
    EXPECT_TRUE(out.empty());
    rx.onArrive(wireWithSeq(1, 2, 1), false, out, ack);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dll & 0xffff, 1u);
}

TEST(ReceiverResync, SkipIsPerSourceStream)
{
    stats::Registry reg;
    proto::RetryReceiver rx(reg.group("dll"), 8);
    std::vector<Packet> out;
    std::optional<Packet> ack;

    rx.skipTo(1, 3, out); // source 1 jumps to 4 ...
    rx.onArrive(wireWithSeq(5, 2, 0), false, out, ack);
    ASSERT_EQ(out.size(), 1u); // ... source 5 still starts at 0
    EXPECT_EQ(out[0].src, 5);
}

TEST(ReceiverResync, LateCopyOfASkippedSequenceSurfacesAsStale)
{
    stats::Registry reg;
    proto::RetryReceiver rx(reg.group("dll"), 8);
    std::vector<Packet> out;
    std::optional<Packet> ack;

    // The skip jumps over sequence 1 while its only copy is still in
    // flight (it was never exhausted, the resync for a later
    // sequence just overtook it).
    rx.skipTo(1, 2, out);
    EXPECT_TRUE(out.empty());

    // Its arrival classifies behind the window: re-ACKed so the
    // sender retires it, not re-delivered, but surfaced through the
    // stale list so the caller can fire the pending completion.
    std::vector<Packet> stale;
    rx.onArrive(wireWithSeq(1, 2, 1), false, out, ack, &stale);
    EXPECT_TRUE(out.empty());
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].dll & 0xffff, 1u);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->cmd, proto::DlCommand::DllAck);
}

// ---------------------------------------------------------------------
// Hang watchdog.
// ---------------------------------------------------------------------

TEST(WatchdogDeathTest, FiresWhenNothingMoves)
{
    EXPECT_EXIT(
        {
            EventQueue eq;
            Watchdog wd(eq, 1000);
            double counter = 0;
            wd.addProgress("stalled", [&counter] { return counter; });
            wd.addDumper([] { return std::string("dump-marker\n"); });
            wd.arm();
            while (eq.step()) {
            }
        },
        testing::ExitedWithCode(1), "hang watchdog");
}

TEST(WatchdogDeathTest, FiringMessageCarriesTheDiagnostics)
{
    EXPECT_EXIT(
        {
            EventQueue eq;
            Watchdog wd(eq, 1000);
            wd.addProgress("stalled", [] { return 7.0; });
            wd.addDumper([] { return std::string("dump-marker\n"); });
            wd.arm();
            while (eq.step()) {
            }
        },
        testing::ExitedWithCode(1), "dump-marker");
}

TEST(WatchdogDeathTest, RejectsZeroStall)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            Watchdog wd(eq, 0);
        },
        "stallPs");
}

TEST(Watchdog, StaysQuietWhileAnyCounterMoves)
{
    EventQueue eq;
    Watchdog wd(eq, 1000);
    double counter = 0;
    wd.addProgress("moving", [&counter] { return counter; });

    // A heartbeat that outlives several stall intervals, then stops;
    // disarm before the beat dies so the final idle gap is legal.
    std::function<void(int)> beat = [&](int left) {
        ++counter;
        if (left > 0)
            eq.scheduleIn(400, [&beat, left] { beat(left - 1); });
        else
            wd.disarm();
    };
    wd.arm();
    eq.scheduleIn(400, [&beat] { beat(12); });
    while (eq.step()) {
    }
    EXPECT_FALSE(wd.armed());
    EXPECT_GT(counter, 10.0);
    EXPECT_GT(eq.now(), 4000u); // several check intervals elapsed
}

TEST(Watchdog, DiagnosticsListCountersAndDumpers)
{
    EventQueue eq;
    Watchdog wd(eq, 500);
    wd.addProgress("myCounter", [] { return 3.0; });
    wd.addDumper([] { return std::string("extra-state\n"); });
    const std::string d = wd.diagnostics();
    EXPECT_NE(d.find("myCounter"), std::string::npos);
    EXPECT_NE(d.find("extra-state"), std::string::npos);
    EXPECT_EQ(wd.stallPs(), 500u);
    EXPECT_FALSE(wd.armed());
}

TEST(Watchdog, SystemBuildsOneOnlyWhenConfigured)
{
    auto cfg = SystemConfig::preset("4D-2C");
    {
        System sys(cfg);
        EXPECT_EQ(sys.watchdog(), nullptr);
        EXPECT_NE(sys.hangDiagnostics().find("queue:"),
                  std::string::npos);
    }
    cfg.watchdog.stallPs = 1000000;
    {
        System sys(cfg);
        ASSERT_NE(sys.watchdog(), nullptr);
        EXPECT_EQ(sys.watchdog()->stallPs(), 1000000u);
        EXPECT_FALSE(sys.watchdog()->armed());
        sys.enterNmpMode();
        EXPECT_TRUE(sys.watchdog()->armed());
        sys.exitNmpMode();
        EXPECT_FALSE(sys.watchdog()->armed());
    }
}

// ---------------------------------------------------------------------
// Decoder and receiver fuzzing (deterministic, seeded corpus).
// ---------------------------------------------------------------------

TEST(Fuzz, DecodeSurvivesRandomImages)
{
    Rng rng(0xfeedf00d);
    Packet out;
    for (int i = 0; i < 3000; ++i) {
        std::vector<std::uint8_t> wire(rng.below(600));
        for (auto &b : wire)
            b = static_cast<std::uint8_t>(rng.below(256));
        decode(wire, out); // must neither crash nor read OOB
    }
    SUCCEED();
}

TEST(Fuzz, DecodeRejectsEveryTruncation)
{
    const Packet p = proto::Codec::makeWriteReq(2, 5, 0x1234, 9, 64);
    const auto wire = proto::encode(p);
    Packet out;
    ASSERT_TRUE(proto::decode(wire, out));
    for (std::size_t len = 0; len < wire.size(); ++len) {
        std::vector<std::uint8_t> cut(wire.begin(),
                                      wire.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              len));
        EXPECT_FALSE(proto::decode(cut, out)) << "length " << len;
    }
}

TEST(Fuzz, DecodeRejectsEverySingleBitFlip)
{
    // The CRC covers header, payload, and the DLL word, so any single
    // flip anywhere in the image must fail validation.
    const Packet p = proto::Codec::makeWriteReq(1, 3, 0x40, 4, 32);
    auto wire = proto::encode(p);
    Packet out;
    ASSERT_TRUE(proto::decode(wire, out));
    for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(proto::decode(wire, out)) << "bit " << bit;
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    EXPECT_TRUE(proto::decode(wire, out)); // restored image still good
}

TEST(Fuzz, ControllerReceivePathSurvivesGarbage)
{
    EventQueue eq;
    stats::Registry reg;
    DlController ctl(eq, "fuzz.dl", 0, 1000, 2, reg);
    Rng rng(0xc0ffee);

    unsigned controls = 0, delivered = 0;
    const auto send_control = [&controls](const Packet &) {
        ++controls;
    };
    const auto deliver = [&delivered](Packet) { ++delivered; };

    // Pure noise, then damaged variants of a valid image.
    for (int i = 0; i < 1500; ++i) {
        std::vector<std::uint8_t> wire(rng.below(400));
        for (auto &b : wire)
            b = static_cast<std::uint8_t>(rng.below(256));
        ctl.onWireArrive(wire, /*corrupted=*/(i & 1) != 0,
                         send_control, deliver);
    }
    const auto valid =
        proto::encode(proto::Codec::makeWriteReq(1, 0, 0x80, 2, 48));
    for (int i = 0; i < 500; ++i) {
        auto wire = valid;
        const auto bit = rng.below(wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ctl.onWireArrive(wire, false, send_control, deliver);
    }
    while (eq.step()) {
    }
    EXPECT_EQ(delivered, 0u); // nothing valid ever arrived
    EXPECT_EQ(ctl.receiverBuffered(), 0u);
}

// ---------------------------------------------------------------------
// Config parser fuzzing.
// ---------------------------------------------------------------------

TEST(JsonFuzz, ValidDocumentParses)
{
    const auto entries = json::parseFlat(
        "{ \"a\": 1, \"s\": \"x\", \"b\": { \"c\": true } }", "test");
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].key, "a");
    EXPECT_EQ(entries[1].value, "x");
    EXPECT_TRUE(entries[1].wasString);
    EXPECT_EQ(entries[2].key, "b.c");
}

TEST(JsonFuzzDeathTest, MalformedDocumentsExitGracefully)
{
    const char *bad[] = {
        "",
        "{",
        "}",
        "nonsense",
        "{\"a\":}",
        "{\"a\" 1}",
        "{\"a\": 1",
        "{\"a\": null}",
        "{\"a\": [1, 2]}",
        "{\"a\": 1 \"b\": 2}",
        "{a: 1}",
        "{\"a\": \"unterminated}",
        "{\"a\": {\"b\": 1}",
        "{\"a\": 1,}",
    };
    for (const char *doc : bad)
        EXPECT_EXIT(json::parseFlat(doc, "fuzz"),
                    testing::ExitedWithCode(1), "")
            << "doc: " << doc;
}

TEST(JsonFuzzDeathTest, EveryStrictPrefixOfAValidDocIsRejected)
{
    const std::string doc =
        "{\"link\": {\"gbps\": 25.0}, \"name\": \"x\"}";
    const auto full = json::parseFlat(doc, "test");
    ASSERT_EQ(full.size(), 2u);
    // Sample prefixes (a death test per byte would fork ~40 times).
    for (std::size_t len = 1; len < doc.size(); len += 5)
        EXPECT_EXIT(json::parseFlat(doc.substr(0, len), "fuzz"),
                    testing::ExitedWithCode(1), "")
            << "prefix length " << len;
}

TEST(ConfigDeathTest, RejectsUnknownExhaustPolicy)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.faults.onExhausted = "bogus";
    EXPECT_DEATH(cfg.validate(), "onExhausted");
}

TEST(Config, AcceptsAllExhaustPolicies)
{
    for (const char *p : {"failover", "drop", "panic"}) {
        auto cfg = SystemConfig::preset("4D-2C");
        cfg.faults.onExhausted = p;
        cfg.validate();
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// Off-by-default invisibility.
// ---------------------------------------------------------------------

TEST(Invisibility, RecoveryKeysAreHiddenFromDescribe)
{
    const auto d = SystemConfig::preset("4D-2C").describe();
    EXPECT_EQ(d.find("suspectAfter"), std::string::npos);
    EXPECT_EQ(d.find("reprobeIntervalPs"), std::string::npos);
    EXPECT_EQ(d.find("onExhausted"), std::string::npos);
    EXPECT_EQ(d.find("watchdog"), std::string::npos);
}

TEST(Invisibility, FaultFreeRunEmitsNoRecoveryStats)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.idcMethod = IdcMethod::DimmLink;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 5;
    p.rounds = 1;
    auto wl = workloads::makeWorkload("bfs", p, sys.addressMap());
    Runner runner(sys, *wl);
    EXPECT_TRUE(runner.run().verified);

    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    const std::string json = os.str();
    for (const char *stat :
         {"dllFailovers", "failoverBytes", "hostReroutes",
          "proxyNotifyFallbacks", "linkSuspectEvents",
          "linkDownEvents", "linkRecoveredEvents", "healthProbesSent",
          "healthProbesFailed", "droppedUnroutable"})
        EXPECT_EQ(json.find(stat), std::string::npos) << stat;
}

// ---------------------------------------------------------------------
// Whole-system degradation: a permanently stuck link.
// ---------------------------------------------------------------------

struct StuckResult
{
    bool verified = false;
    std::string json;
    Tick finalTick = 0;
    double failovers = 0, reroutes = 0, suspects = 0, downs = 0,
           recoveries = 0, failed = 0, resyncs = 0;
};

StuckResult
runStuck(const std::string &workload, std::uint64_t seed,
         const char *policy = "failover",
         Topology topo = Topology::HalfRing,
         Tick stuck_for_ps = 400000000000000ull,
         Tick reprobe_interval_ps = 0,
         const char *preset = "4D-2C")
{
    auto cfg = SystemConfig::preset(preset);
    cfg.idcMethod = IdcMethod::DimmLink;
    cfg.link.topology = topo;
    // One direction of the 1<->2 link is dead from tick 0; by default
    // for far longer than any kernel runs, so the retry budget must
    // exhaust and the recovery path carries the traffic. A finite
    // stuck_for_ps instead ends the outage mid-run and exercises the
    // post-recovery resumption of the DLL stream.
    cfg.faults.model = "stuck";
    cfg.faults.stuckAtPs = 0;
    cfg.faults.stuckForPs = stuck_for_ps;
    cfg.faults.stuckPeriodPs = 0;
    cfg.faults.linkFilter = "link1to2";
    cfg.faults.seed = seed;
    cfg.faults.onExhausted = policy;
    if (reprobe_interval_ps != 0)
        cfg.faults.reprobeIntervalPs = reprobe_interval_ps;
    // The watchdog rides along armed; a healthy degraded run must
    // never trip it.
    cfg.watchdog.stallPs = 1000000000;

    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    // gups is all-random remote traffic: nearly every reference hits
    // the dead link's retry budget, so even a small scale exercises
    // (and bounds the runtime of) the failover path.
    p.scale = workload == "gups" ? 4 : 6;
    p.rounds = 1;
    auto wl = workloads::makeWorkload(workload, p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();

    StuckResult out;
    out.verified = r.verified;
    auto s = [&sys](const char *n) {
        return sys.stats().sumScalar("fabric.dl", n);
    };
    out.failovers = s("dllFailovers");
    out.reroutes = s("hostReroutes");
    out.suspects = s("linkSuspectEvents");
    out.downs = s("linkDownEvents");
    out.recoveries = s("linkRecoveredEvents");
    out.failed = s("dllFailedTransfers");
    out.resyncs = s("dllStreamResyncs");
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    out.json = os.str();
    out.finalTick = sys.queue().now();
    return out;
}

class StuckLinkDegradation
    : public testing::TestWithParam<const char *>
{
};

TEST_P(StuckLinkDegradation, CompletesAndVerifiesUnderFailover)
{
    const auto r = runStuck(GetParam(), 17);
    EXPECT_TRUE(r.verified) << GetParam();
    // The dead link was noticed...
    EXPECT_GT(r.suspects + r.downs, 0.0) << GetParam();
    // ...and its traffic reached the far side another way.
    EXPECT_GT(r.failovers + r.reroutes, 0.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, StuckLinkDegradation,
                         testing::Values("bfs", "gups", "kmeans", "nw",
                                         "pagerank", "spmv", "sssp",
                                         "tspow"));

TEST(StuckLink, DetectionTakesTheLinkDownAndFailsOver)
{
    const auto r = runStuck("bfs", 17);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.downs, 0.0);     // health machine reached Down
    EXPECT_GT(r.failovers, 0.0); // exhausted transfers re-sent
    EXPECT_GT(r.failed, 0.0);    // exhaustions were counted
    EXPECT_NE(r.json.find("healthProbesSent"), std::string::npos);
}

TEST(StuckLink, SameSeedRunsAreByteIdentical)
{
    const auto a = runStuck("bfs", 23);
    const auto b = runStuck("bfs", 23);
    ASSERT_FALSE(a.json.empty());
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_TRUE(a.verified);
}

// Regression (hang): on a multi-group system, DlFabric's proxy-notify
// note used to carry its inter-group forward job ONLY inside the
// note's deliver callback. The "stuck" fault model stalls packets (it
// delays arrival by the remaining outage, it does not drop them), so
// when the note was serialized into the stuck 1->2 link - upstream of
// group 0's proxy DIMM - before LinkHealth had marked the edge down,
// neither deliver nor onDropped ever fired within the run: the
// forward job was lost, the inter-group transaction never completed,
// and the BFS barrier deadlocked until the watchdog killed the run.
// 4D (single-group) configs never take the proxy-notify path, which
// is why the 4D tests above always passed. requestForward now arms a
// retry-deadline fallback (claimed-flag arbitrated against deliver /
// onDropped) whenever a fault model is configured, so a stalled note
// re-forwards via the healthy route instead of hanging.
TEST(StuckLink, MultiGroupProxyNotifySurvivesAStalledBridge)
{
    const auto r =
        runStuck("bfs", 7, "failover", Topology::HalfRing,
                 /*stuck_for_ps=*/400000000000000ull,
                 /*reprobe_interval_ps=*/0, /*preset=*/"8D-4C");
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.downs, 0.0);
    EXPECT_GT(r.failovers + r.reroutes, 0.0);
}

TEST(StuckLink, RingRoutesAroundWithoutDisconnecting)
{
    const auto r = runStuck("bfs", 17, "failover", Topology::Ring);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.downs, 0.0);
    // The ring stays connected with one directed edge down, so no
    // transfer is ever submitted to an unreachable destination.
    EXPECT_EQ(r.reroutes, 0.0);
}

TEST(StuckLink, DropPolicyStillCompletes)
{
    const auto r = runStuck("bfs", 17, "drop");
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.failed, 0.0);
    EXPECT_EQ(r.failovers, 0.0); // no failover under drop
}

TEST(StuckLinkDeathTest, PanicPolicyPreservesFailStop)
{
    EXPECT_DEATH(runStuck("bfs", 17, "panic"), "exhausted");
}

// ---------------------------------------------------------------------
// A finite outage: the link dies at tick 0 and comes back mid-run.
// On the HalfRing the masked edge disconnects 1 -> 2 outright, so
// packets queued toward it are dropped as unroutable and exhausted
// sequences are retired by the recovery policy while the receiver
// still expects them. Once the probe cycle re-admits the edge, the
// resumed DLL stream must not jam behind the retired gap (regression:
// post-recovery packets used to sit in the reorder buffer forever and
// the run died on the watchdog).
// ---------------------------------------------------------------------

TEST(FiniteOutage, HalfRingResumesTheStreamUnderFailover)
{
    const auto r = runStuck("bfs", 17, "failover", Topology::HalfRing,
                            /*stuck_for_ps=*/25000000,
                            /*reprobe_interval_ps=*/5000000);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.downs, 0.0);      // the outage really masked the edge
    EXPECT_GT(r.recoveries, 0.0); // and it really came back mid-run
    EXPECT_GT(r.failovers, 0.0);
    // Every retirement resynced the receiver past the dead sequence.
    EXPECT_GT(r.resyncs, 0.0);
}

TEST(FiniteOutage, HalfRingResumesTheStreamUnderDrop)
{
    const auto r = runStuck("bfs", 17, "drop", Topology::HalfRing,
                            25000000, 5000000);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.downs, 0.0);
    EXPECT_GT(r.recoveries, 0.0);
    EXPECT_GT(r.resyncs, 0.0);
}

TEST(FiniteOutage, SameSeedRunsAreByteIdentical)
{
    const auto a = runStuck("bfs", 23, "failover", Topology::HalfRing,
                            25000000, 5000000);
    const auto b = runStuck("bfs", 23, "failover", Topology::HalfRing,
                            25000000, 5000000);
    EXPECT_TRUE(a.verified);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(a.json, b.json);
}

TEST(StuckLink, ResultsMatchTheFaultFreeRun)
{
    // The recovery path must be invisible to the computation: the
    // verified flag already checks against the sequential reference,
    // but compare the two runs' workload outcome directly too.
    const auto faulty = runStuck("pagerank", 29);
    EXPECT_TRUE(faulty.verified);

    auto cfg = SystemConfig::preset("4D-2C");
    cfg.idcMethod = IdcMethod::DimmLink;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 6;
    p.rounds = 1;
    auto wl = workloads::makeWorkload("pagerank", p, sys.addressMap());
    Runner runner(sys, *wl);
    EXPECT_TRUE(runner.run().verified);
}

} // namespace
} // namespace dimmlink
