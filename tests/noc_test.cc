/** @file Interconnect tests: topology construction and routing,
 * link serialization, router forwarding, credits, and broadcast. */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace noc {
namespace {

TEST(Topology, HalfRingStructure)
{
    TopologyGraph g(Topology::HalfRing, 8);
    EXPECT_EQ(g.numDirectedLinks(), 2u * 7);
    EXPECT_EQ(g.diameter(), 7u);
    EXPECT_EQ(g.distance(0, 7), 7u);
    EXPECT_EQ(g.nextHop(0, 7), 1);
    EXPECT_EQ(g.nextHop(7, 0), 6);
}

TEST(Topology, RingHalvesTheDiameter)
{
    TopologyGraph g(Topology::Ring, 8);
    EXPECT_EQ(g.numDirectedLinks(), 2u * 8);
    EXPECT_EQ(g.diameter(), 4u);
    EXPECT_EQ(g.distance(0, 7), 1u);
}

TEST(Topology, MeshAndTorus)
{
    TopologyGraph mesh(Topology::Mesh, 8); // 2 x 4 grid
    EXPECT_EQ(mesh.diameter(), 4u);        // corner to corner
    TopologyGraph torus(Topology::Torus, 8);
    EXPECT_LT(torus.diameter(), mesh.diameter());
}

TEST(Topology, TinyGroupsDegenerate)
{
    TopologyGraph g1(Topology::Ring, 1);
    EXPECT_EQ(g1.diameter(), 0u);
    TopologyGraph g2(Topology::Torus, 2);
    EXPECT_EQ(g2.diameter(), 1u);
}

struct TopoCase
{
    Topology kind;
    unsigned nodes;
};

class TopologyRouting : public ::testing::TestWithParam<TopoCase>
{
};

TEST_P(TopologyRouting, NextHopsReachDestinationInDistanceSteps)
{
    const auto [kind, n] = GetParam();
    TopologyGraph g(kind, n);
    for (unsigned s = 0; s < n; ++s) {
        for (unsigned d = 0; d < n; ++d) {
            if (s == d)
                continue;
            int cur = static_cast<int>(s);
            unsigned hops = 0;
            while (cur != static_cast<int>(d)) {
                cur = g.nextHop(cur, static_cast<int>(d));
                ASSERT_GE(cur, 0);
                ++hops;
                ASSERT_LE(hops, n);
            }
            EXPECT_EQ(hops, g.distance(static_cast<int>(s),
                                       static_cast<int>(d)));
        }
    }
}

TEST_P(TopologyRouting, BroadcastTreeCoversEveryNodeOnce)
{
    const auto [kind, n] = GetParam();
    TopologyGraph g(kind, n);
    for (unsigned s = 0; s < n; ++s) {
        // Walk the tree from the source; every node must be visited
        // exactly once.
        std::set<int> visited;
        std::vector<int> frontier{static_cast<int>(s)};
        visited.insert(static_cast<int>(s));
        while (!frontier.empty()) {
            const int u = frontier.back();
            frontier.pop_back();
            for (int c :
                 g.broadcastChildren(static_cast<int>(s), u)) {
                ASSERT_TRUE(visited.insert(c).second)
                    << "node " << c << " visited twice";
                frontier.push_back(c);
            }
        }
        EXPECT_EQ(visited.size(), n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyRouting,
    ::testing::Values(TopoCase{Topology::HalfRing, 2},
                      TopoCase{Topology::HalfRing, 4},
                      TopoCase{Topology::HalfRing, 8},
                      TopoCase{Topology::Ring, 4},
                      TopoCase{Topology::Ring, 8},
                      TopoCase{Topology::Mesh, 4},
                      TopoCase{Topology::Mesh, 8},
                      TopoCase{Topology::Torus, 8},
                      TopoCase{Topology::Torus, 12}));

TEST(Link, SerializationMatchesBandwidth)
{
    EventQueue eq;
    stats::Registry reg;
    Link link(eq, "l", 25.0, 8000, 128, reg.group("l"));
    // 10 flits = 160 bytes at 25 GB/s = 6.4 ns.
    EXPECT_EQ(link.serializationTime(10), 6400u);

    Tick arrived = 0;
    Message m;
    m.flits = 10;
    link.transmit(std::move(m), [&](Message msg) {
        arrived = eq.now();
        EXPECT_EQ(msg.hops, 1u);
    });
    eq.run();
    EXPECT_EQ(arrived, 6400u + 8000u);
}

TEST(Link, BackToBackTransfersQueue)
{
    EventQueue eq;
    stats::Registry reg;
    Link link(eq, "l", 25.0, 0, 128, reg.group("l"));
    Tick first = 0, second = 0;
    Message a, b;
    a.flits = b.flits = 10;
    link.transmit(std::move(a), [&](Message) { first = eq.now(); });
    link.transmit(std::move(b), [&](Message) { second = eq.now(); });
    eq.run();
    EXPECT_EQ(first, 6400u);
    EXPECT_EQ(second, 12800u);
}

/** Build a Network with config overrides for the tests below. */
LinkConfig
testLinkCfg(Topology topo, unsigned buffer_flits = 40)
{
    LinkConfig cfg;
    cfg.topology = topo;
    cfg.bufferFlits = buffer_flits;
    cfg.routerLatencyPs = 4000;
    cfg.wireLatencyPs = 8000;
    return cfg;
}

TEST(Network, SingleHopLatency)
{
    EventQueue eq;
    stats::Registry reg;
    Network net(eq, "net", testLinkCfg(Topology::HalfRing), 4, reg);

    Tick delivered = 0;
    Message m;
    m.src = 0;
    m.dst = 1;
    m.flits = 1;
    m.deliver = [&](int node) {
        EXPECT_EQ(node, 1);
        delivered = eq.now();
    };
    ASSERT_TRUE(net.tryInject(std::move(m)));
    eq.run();
    // router latency + serialization (16B at 25GB/s = 640ps) + wire
    // + downstream router latency before ejection.
    EXPECT_GE(delivered, 4000u + 640u + 8000u);
    EXPECT_LE(delivered, 4000u + 640u + 8000u + 2 * 4000u);
}

TEST(Network, MultiHopScalesWithDistance)
{
    EventQueue eq;
    stats::Registry reg;
    Network net(eq, "net", testLinkCfg(Topology::HalfRing), 8, reg);

    Tick t1 = 0, t7 = 0;
    Message a;
    a.src = 0;
    a.dst = 1;
    a.flits = 1;
    a.deliver = [&](int) { t1 = eq.now(); };
    Message b;
    b.src = 0;
    b.dst = 7;
    b.flits = 1;
    b.deliver = [&](int) { t7 = eq.now(); };
    ASSERT_TRUE(net.tryInject(std::move(a)));
    ASSERT_TRUE(net.tryInject(std::move(b)));
    eq.run();
    EXPECT_GT(t7, 5 * t1);
}

TEST(Network, BroadcastReachesAllNodes)
{
    EventQueue eq;
    stats::Registry reg;
    Network net(eq, "net", testLinkCfg(Topology::HalfRing), 6, reg);

    std::multiset<int> got;
    Message m;
    m.src = 2;
    m.broadcast = true;
    m.flits = 4;
    m.deliver = [&](int node) { got.insert(node); };
    ASSERT_TRUE(net.tryInject(std::move(m)));
    eq.run();
    EXPECT_EQ(got.size(), 6u);
    for (int n = 0; n < 6; ++n)
        EXPECT_EQ(got.count(n), 1u) << "node " << n;
}

TEST(Network, InjectionBackpressureAndRetry)
{
    EventQueue eq;
    stats::Registry reg;
    // Tiny buffers: 4 flits per port.
    Network net(eq, "net", testLinkCfg(Topology::HalfRing, 4), 2,
                reg);

    unsigned delivered = 0;
    unsigned injected = 0;
    constexpr unsigned total = 20;
    std::function<void()> pump = [&] {
        while (injected < total) {
            Message m;
            m.src = 0;
            m.dst = 1;
            m.flits = 4;
            m.deliver = [&](int) { ++delivered; };
            if (!net.tryInject(std::move(m)))
                return;
            ++injected;
        }
    };
    net.setRetryHandler(0, pump);
    pump();
    EXPECT_LT(injected, total); // backpressure engaged
    eq.run();
    EXPECT_EQ(delivered, total);
    EXPECT_GT(reg.scalar("net.injectBlocked"), 0.0);
}

struct NetCase
{
    Topology kind;
    unsigned nodes;
    std::uint64_t seed;
};

class NetworkRandomTraffic : public ::testing::TestWithParam<NetCase>
{
};

TEST_P(NetworkRandomTraffic, EveryMessageDeliveredExactlyOnce)
{
    const auto [kind, nodes, seed] = GetParam();
    EventQueue eq;
    stats::Registry reg;
    Network net(eq, "net", testLinkCfg(kind), nodes, reg);
    Rng rng(seed);

    constexpr unsigned total = 300;
    std::map<std::uint64_t, unsigned> delivery_count;
    std::vector<std::deque<Message>> pending(nodes);

    unsigned delivered = 0;
    for (unsigned i = 0; i < total; ++i) {
        Message m;
        m.src = static_cast<int>(rng.below(nodes));
        m.broadcast = rng.chance(0.1);
        m.dst = static_cast<int>(rng.below(nodes));
        m.flits = 1 + static_cast<unsigned>(rng.below(17));
        m.id = i;
        const unsigned copies =
            m.broadcast ? nodes : 1;
        m.deliver = [&, copies, id = m.id](int) {
            ++delivery_count[id];
            ASSERT_LE(delivery_count[id], copies);
            ++delivered;
        };
        pending[static_cast<std::size_t>(m.src)].push_back(
            std::move(m));
    }

    unsigned expected = 0;
    for (auto &q : pending)
        for (auto &m : q)
            expected += m.broadcast ? nodes : 1;

    for (unsigned nidx = 0; nidx < nodes; ++nidx) {
        auto drain = [&net, &pending, nidx] {
            auto &q = pending[nidx];
            while (!q.empty()) {
                if (!net.tryInject(q.front()))
                    return;
                q.pop_front();
            }
        };
        net.setRetryHandler(static_cast<int>(nidx), drain);
        drain();
    }
    eq.run();
    EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetworkRandomTraffic,
    ::testing::Values(NetCase{Topology::HalfRing, 4, 1},
                      NetCase{Topology::HalfRing, 8, 2},
                      NetCase{Topology::Ring, 8, 3},
                      NetCase{Topology::Mesh, 8, 4},
                      NetCase{Topology::Torus, 8, 5},
                      NetCase{Topology::HalfRing, 2, 6},
                      NetCase{Topology::Torus, 16, 7}));

} // namespace
} // namespace noc
} // namespace dimmlink
