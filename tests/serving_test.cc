/** @file The serving frontend (docs/serving.md): arrival processes
 * and Zipfian popularity, deterministic request plans, the kv / embed
 * workloads end to end on the NMP system and the host baseline, the
 * serve stats group, and the byte-identity contract -- same
 * serve.seed, same stats JSON, at any thread count. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats_json.hh"
#include "dimm/reliability.hh"
#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/arrivals.hh"
#include "workloads/serving.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

using workloads::ArrivalProcess;
using workloads::ZipfSampler;

TEST(Arrivals, DeterministicPerSeed)
{
    ArrivalProcess a(1e6, 42, 1.0, 0, 0);
    ArrivalProcess b(1e6, 42, 1.0, 0, 0);
    ArrivalProcess c(1e6, 43, 1.0, 0, 0);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const Tick ta = a.next();
        EXPECT_EQ(ta, b.next());
        any_diff |= ta != c.next();
    }
    EXPECT_TRUE(any_diff);
}

TEST(Arrivals, MeanRateMatchesOffered)
{
    // 1M qps -> mean gap 1e6 ps. 10k draws puts the sample mean
    // within a few percent (stddev/sqrt(n) = 1%).
    ArrivalProcess a(1e6, 7, 1.0, 0, 0);
    const int n = 10000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = a.next();
    const double mean_gap = static_cast<double>(last) / n;
    EXPECT_NEAR(mean_gap, 1e6, 5e4);
}

TEST(Arrivals, ArrivalsAreStrictlyMonotone)
{
    // Sub-tick gaps at absurd rates still advance time.
    ArrivalProcess a(1e12, 3, 1.0, 0, 0);
    Tick last = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tick t = a.next();
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(Arrivals, BurstPhasesConcentrateArrivals)
{
    // 4x bursts for the first 10% of each period: the burst windows
    // should hold far more than 10% of the arrivals (4x rate -> ~31%
    // of all arrivals at these settings).
    ArrivalProcess a(1e6, 11, 4.0, 1000000, 100000);
    int in_burst = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (a.inBurst(a.next()))
            ++in_burst;
    EXPECT_GT(in_burst, n / 5);
}

TEST(Zipf, UniformWhenThetaZero)
{
    ZipfSampler z(100, 0.0);
    Rng rng(1);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 1000, 250);
}

TEST(Zipf, SkewConcentratesOnHotKeys)
{
    ZipfSampler z(10000, 0.99);
    Rng rng(1);
    std::uint64_t hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (z(rng) < 10)
            ++hot;
    // At theta=0.99 the ten hottest of 10k keys draw roughly half
    // the accesses; uniform would give 0.1%.
    EXPECT_GT(hot, n / 4);
    // And every rank stays in range.
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z(rng), 10000u);
}

TEST(Serving, PlansAreDeterministicAndComplete)
{
    ServeConfig s;
    s.requests = 1000;
    s.keys = 4096;
    s.seed = 5;
    const auto plans = workloads::serving::buildPlans(s, 16, 2);
    const auto again = workloads::serving::buildPlans(s, 16, 2);
    ASSERT_EQ(plans.size(), 16u);
    std::uint64_t total = 0;
    for (unsigned t = 0; t < 16; ++t) {
        total += plans[t].reqs.size();
        EXPECT_EQ(plans[t].keys.size(), plans[t].reqs.size() * 2);
        EXPECT_EQ(plans[t].keys, again[t].keys);
        // Open-loop arrivals are strictly increasing per thread.
        Tick last = 0;
        for (const auto &r : plans[t].reqs) {
            EXPECT_GT(r.arrivalPs, last);
            last = r.arrivalPs;
            for (std::size_t k = 0; k < 2; ++k)
                EXPECT_LT(plans[t].keys[k], s.keys);
        }
    }
    EXPECT_EQ(total, s.requests);

    ServeConfig other = s;
    other.seed = 6;
    const auto differ = workloads::serving::buildPlans(other, 16, 2);
    EXPECT_NE(plans[0].keys, differ[0].keys);
}

struct ServeSpec
{
    std::string workload = "kv";
    std::string mode = "open";
    std::uint64_t seed = 1;
    std::uint64_t requests = 192;
    double offeredQps = 2e6;
    double burstFactor = 1.0;
    unsigned threads = 0; ///< 0 = sequential kernel (sim.shard=none).
};

/** One serving run on a 4D-2C system; returns full stats JSON plus
 * kernel summary, and checks the result verified. */
std::string
runServing(const ServeSpec &spec)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.mode = spec.mode;
    cfg.serve.seed = spec.seed;
    cfg.serve.requests = spec.requests;
    cfg.serve.offeredQps = spec.offeredQps;
    cfg.serve.keys = 8192;
    cfg.serve.burstFactor = spec.burstFactor;
    if (spec.burstFactor > 1.0) {
        cfg.serve.burstPeriodPs = 10000000;
        cfg.serve.burstLenPs = 2000000;
    }
    if (spec.threads) {
        cfg.sim.shard = "group";
        cfg.sim.threads = spec.threads;
    }
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl =
        workloads::makeWorkload(spec.workload, p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified)
        << spec.workload << " seed=" << spec.seed
        << " threads=" << spec.threads;
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    os << "\nkernelTicks=" << r.kernelTicks;
    return os.str();
}

TEST(Serving, KvOpenLoopServesAndRecordsLatency)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.requests = 192;
    cfg.serve.keys = 8192;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("kv", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);

    const auto &reg = sys.stats();
    EXPECT_DOUBLE_EQ(reg.scalar("serve.requests"), 192.0);
    const double p50 = reg.scalar("serve.latencyP50Ps");
    const double p95 = reg.scalar("serve.latencyP95Ps");
    const double p99 = reg.scalar("serve.latencyP99Ps");
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(reg.scalar("serve.achievedQps"), 0.0);
    EXPECT_DOUBLE_EQ(reg.scalar("serve.offeredQps"),
                     cfg.serve.offeredQps);
    // Open loop at a modest rate: cores idle between arrivals.
    EXPECT_GT(reg.scalar("serve.reqWaitPs"), 0.0);
}

TEST(Serving, EmbedClosedLoopServes)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.mode = "closed";
    cfg.serve.requests = 96;
    cfg.serve.keys = 4096;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("embed", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);

    const auto &reg = sys.stats();
    EXPECT_DOUBLE_EQ(reg.scalar("serve.requests"), 96.0);
    EXPECT_GT(reg.scalar("serve.latencyP50Ps"), 0.0);
    // Closed loop never waits for an arrival.
    EXPECT_DOUBLE_EQ(reg.scalar("serve.reqWaitPs"), 0.0);
    EXPECT_DOUBLE_EQ(reg.scalar("serve.offeredQps"), 0.0);
}

TEST(Serving, NonServingRunsHaveNoServeGroup)
{
    // The serve group and per-core request stats must stay invisible
    // when no request retires, so batch-kernel stats dumps are
    // unchanged by this feature.
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 4;
    auto wl = workloads::makeWorkload("gups", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(sys.stats().hasScalar("serve.requests"));
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os);
    EXPECT_EQ(os.str().find("reqLatencyPs"), std::string::npos);
    EXPECT_EQ(os.str().find("\"serve\""), std::string::npos);
}

TEST(ServingDeterminism, RepeatRunsAreByteIdentical)
{
    for (const char *w : {"kv", "embed"}) {
        ServeSpec s;
        s.workload = w;
        const std::string a = runServing(s);
        const std::string b = runServing(s);
        EXPECT_EQ(a, b) << w;
    }
}

TEST(ServingDeterminism, ThreadCountInvariantOpenLoop)
{
    for (const char *w : {"kv", "embed"}) {
        for (std::uint64_t seed : {1, 7}) {
            ServeSpec s;
            s.workload = w;
            s.seed = seed;
            s.threads = 1;
            const std::string ref = runServing(s);
            s.threads = 4;
            EXPECT_EQ(ref, runServing(s))
                << w << " seed=" << seed
                << " diverged at threads=4";
        }
    }
}

TEST(ServingDeterminism, ThreadCountInvariantClosedAndBursty)
{
    ServeSpec s;
    s.workload = "kv";
    s.mode = "closed";
    s.threads = 1;
    const std::string closed_ref = runServing(s);
    s.threads = 4;
    EXPECT_EQ(closed_ref, runServing(s)) << "closed loop diverged";

    ServeSpec b;
    b.workload = "kv";
    b.burstFactor = 4.0;
    b.threads = 1;
    const std::string burst_ref = runServing(b);
    b.threads = 4;
    EXPECT_EQ(burst_ref, runServing(b)) << "bursty arrivals diverged";
}

TEST(ServingDeterminism, SeedChangesTheRun)
{
    ServeSpec s;
    s.workload = "kv";
    s.seed = 1;
    const std::string a = runServing(s);
    s.seed = 2;
    EXPECT_NE(a, runServing(s));
}

TEST(Serving, HostBaselineServes)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.requests = 96;
    cfg.serve.keys = 4096;
    HostRunner host(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.host.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    dram::GlobalAddressMap gmap(cfg.numDimms, cfg.dimm.capacityBytes);
    auto wl = workloads::makeWorkload("kv", p, gmap);
    const RunResult r = host.run(*wl);
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(host.stats().scalar("serve.requests"), 96.0);
    EXPECT_GT(host.stats().scalar("serve.latencyP50Ps"), 0.0);
}

TEST(Serving, ConfigRejectsBadKnobs)
{
    auto bad = [](const char *key, const char *value,
                  const char *msg) {
        auto cfg = SystemConfig::preset("4D-2C");
        cfg.set(key, value);
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    msg) << key << "=" << value;
    };
    bad("serve.mode", "batch", "serve.mode");
    bad("serve.zipfTheta", "1.5", "zipfTheta");
    bad("serve.getFraction", "1.5", "getFraction");
    bad("serve.offeredQps", "0", "offeredQps");
    bad("serve.requests", "0", "requests");
    bad("serve.burstFactor", "0.5", "burstFactor");
    // Reliability knobs (docs/serving.md).
    bad("serve.deadlineUs", "-1", "deadlineUs");
    bad("serve.backoffUs", "-1", "backoffUs");
    bad("serve.hedgeAfterUs", "-1", "hedgeAfterUs");
}

TEST(Serving, ConfigRejectsRetryAndShedMisuse)
{
    // Retries with no backoff would spin at the same tick.
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.set("serve.maxRetries", "3");
    cfg.set("serve.backoffUs", "0");
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "backoffUs");
    // Shedding needs a queue to bound: closed-loop threads never
    // queue arrivals.
    auto closed = SystemConfig::preset("4D-2C");
    closed.set("serve.mode", "closed");
    closed.set("serve.maxInflight", "8");
    EXPECT_EXIT(closed.validate(), ::testing::ExitedWithCode(1),
                "maxInflight");
}

// ---- Request-level reliability (docs/serving.md) -------------------

TEST(Reliability, BackoffIsDeterministicAndJittered)
{
    serve_rel::Backoff a, b, c;
    a.reseed(1, 0);
    b.reseed(1, 0);
    c.reseed(1, 1);
    const Tick base = 5000000;
    bool streams_differ = false;
    for (unsigned attempt = 1; attempt <= 10; ++attempt) {
        const Tick da = a.delay(base, attempt);
        // Same (seed, tid) -> the same delay sequence.
        EXPECT_EQ(da, b.delay(base, attempt));
        streams_differ |= da != c.delay(base, attempt);
        // Exponential envelope with jitter in [span/2, span].
        const Tick span = base << (attempt - 1);
        EXPECT_GE(da, span / 2);
        EXPECT_LE(da, span);
    }
    EXPECT_TRUE(streams_differ);
}

TEST(Reliability, CircuitBreakerLifecycle)
{
    using Decision = serve_rel::CircuitBreaker::Decision;
    serve_rel::CircuitBreaker cb;
    const Tick penalty = 500;
    // Closed + live route: admit without ceremony.
    EXPECT_EQ(cb.admit(1, true, 1000, penalty), Decision::Admit);
    // A dead route trips it open...
    EXPECT_EQ(cb.admit(1, false, 1000, penalty), Decision::FastFail);
    // ...and it fails fast through the penalty window even after the
    // route recovers.
    EXPECT_EQ(cb.admit(1, true, 1200, penalty), Decision::FastFail);
    // Penalty elapsed + route up: exactly one half-open trial.
    EXPECT_EQ(cb.admit(1, true, 1600, penalty), Decision::AdmitTrial);
    EXPECT_EQ(cb.admit(1, true, 1600, penalty), Decision::FastFail);
    // Trial failure re-opens with a fresh penalty.
    cb.onOutcome(1, false, 1700, penalty);
    EXPECT_EQ(cb.admit(1, true, 1800, penalty), Decision::FastFail);
    EXPECT_EQ(cb.admit(1, true, 2300, penalty), Decision::AdmitTrial);
    // Trial success closes it again.
    cb.onOutcome(1, true, 2400, penalty);
    EXPECT_EQ(cb.admit(1, true, 2500, penalty), Decision::Admit);
    // Breakers are per target host: host 2 was never tripped.
    EXPECT_EQ(cb.admit(2, false, 100, penalty), Decision::FastFail);
    EXPECT_EQ(cb.admit(1, true, 2600, penalty), Decision::Admit);
}

TEST(Reliability, HostHealthViewMirrorsRouteFailover)
{
    serve_rel::HostHealthView v(2);
    EXPECT_TRUE(v.routeUp(0, 1));
    // One dead rack port: the pooled gateways still connect them.
    v.portUp[1] = 0;
    EXPECT_TRUE(v.routeUp(0, 1));
    // Both cross-host paths dead: the route is gone...
    v.gwUp[1] = 0;
    EXPECT_FALSE(v.routeUp(0, 1));
    // ...but a host always reaches itself.
    EXPECT_TRUE(v.routeUp(1, 1));
    v.portUp[1] = 1;
    EXPECT_TRUE(v.routeUp(0, 1));
}

/** Reliability counters of one serving run (0 when a scalar was
 * never created). */
struct RelStats
{
    std::string json;
    double requests = 0, misses = 0, shed = 0, retries = 0,
           fastFails = 0, failed = 0, hedges = 0, hedgeWins = 0,
           goodput = 0, errorRate = 0;
};

RelStats
runReliability(const SystemConfig &cfg, const char *workload = "kv")
{
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload(workload, p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    // Aborted requests consume their ops without executing them, so
    // the workload's functional reference must still hold.
    EXPECT_TRUE(r.verified) << workload;
    const auto &reg = sys.stats();
    auto sv = [&](const char *s) {
        const std::string key = std::string("serve.") + s;
        return reg.hasScalar(key) ? reg.scalar(key) : 0.0;
    };
    RelStats out;
    out.requests = sv("requests");
    out.misses = sv("deadlineMisses");
    out.shed = sv("shedRequests");
    out.retries = sv("retries");
    out.fastFails = sv("breakerFastFails");
    out.failed = sv("failedRequests");
    out.hedges = sv("hedgedRequests");
    out.hedgeWins = sv("hedgeWins");
    out.goodput = sv("goodputQps");
    out.errorRate = sv("errorRate");
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    out.json = os.str();
    return out;
}

SystemConfig
relConfig()
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.mode = "open";
    cfg.serve.requests = 192;
    cfg.serve.keys = 8192;
    return cfg;
}

TEST(Reliability, ImpossibleDeadlineMissesEveryRequestExactlyOnce)
{
    // A 1 ns budget is gone before any value ref lands: every request
    // must miss exactly once, none may also complete, and the serve
    // group must still aggregate explicit zeros (the zero-completion
    // regression: all-shed/all-missed runs ARE a result).
    auto cfg = relConfig();
    cfg.serve.deadlineUs = 0.001;
    const RelStats r = runReliability(cfg);
    EXPECT_DOUBLE_EQ(r.misses, 192.0);
    EXPECT_DOUBLE_EQ(r.requests, 0.0);
    EXPECT_DOUBLE_EQ(r.errorRate, 1.0);
    EXPECT_DOUBLE_EQ(r.goodput, 0.0);
    EXPECT_NE(r.json.find("\"serve\""), std::string::npos);
}

TEST(Reliability, GenerousDeadlineCatchesNothing)
{
    // At a modest offered rate every request finishes far inside a
    // 500 us budget: arming the layer must not change the outcome.
    auto cfg = relConfig();
    cfg.serve.deadlineUs = 500;
    const RelStats r = runReliability(cfg);
    EXPECT_DOUBLE_EQ(r.requests, 192.0);
    EXPECT_DOUBLE_EQ(r.misses, 0.0);
    EXPECT_DOUBLE_EQ(r.errorRate, 0.0);
    EXPECT_GT(r.goodput, 0.0);
}

TEST(Reliability, DispositionsPartitionTheRunUnderPressure)
{
    // Overdriven far past per-thread service capacity with a tight
    // deadline: some requests miss in the queue, the rest complete,
    // and every request is disposed of exactly once.
    auto cfg = relConfig();
    cfg.serve.offeredQps = 1e8;
    cfg.serve.requests = 640;
    cfg.serve.deadlineUs = 0.5;
    const RelStats r = runReliability(cfg);
    EXPECT_GT(r.misses, 0.0);
    EXPECT_GT(r.requests, 0.0);
    EXPECT_DOUBLE_EQ(r.requests + r.misses + r.shed + r.failed, 640.0);
}

TEST(Reliability, OverloadShedsTheQueueTail)
{
    // Arrivals 4x faster than per-thread service with a 4-deep
    // admission bound: the backlog past the bound is shed, and shed
    // requests never also miss their deadline.
    auto cfg = relConfig();
    cfg.serve.offeredQps = 1e8;
    cfg.serve.requests = 640;
    cfg.serve.maxInflight = 4;
    const RelStats r = runReliability(cfg);
    EXPECT_GT(r.shed, 0.0);
    EXPECT_DOUBLE_EQ(r.requests + r.shed, 640.0);
    EXPECT_NEAR(r.errorRate, r.shed / 640.0, 1e-12);
}

TEST(Reliability, HedgedGetsRaceTheReplica)
{
    // With a hedge trigger under the typical value fetch time, slow
    // GETs duplicate to the replica range; wins are a subset, and
    // every request still completes (hedging never drops work).
    auto cfg = relConfig();
    cfg.serve.hedgeAfterUs = 0.3;
    const RelStats r = runReliability(cfg);
    EXPECT_GT(r.hedges, 0.0);
    EXPECT_LE(r.hedgeWins, r.hedges);
    EXPECT_DOUBLE_EQ(r.requests, 192.0);
    EXPECT_DOUBLE_EQ(r.errorRate, 0.0);
}

TEST(Reliability, KnobsOffKeepTheStatsShape)
{
    // The armed-but-idle layer writes nothing: a rel-off run must not
    // grow any reliability scalar, per core or aggregated.
    auto cfg = relConfig();
    const RelStats r = runReliability(cfg);
    EXPECT_DOUBLE_EQ(r.requests, 192.0);
    EXPECT_EQ(r.json.find("goodputQps"), std::string::npos);
    EXPECT_EQ(r.json.find("reqDeadlineMisses"), std::string::npos);
    EXPECT_EQ(r.json.find("reqShed"), std::string::npos);
}

/** The chaos scenario of bench/chaos_serving.cc, shrunk for a unit
 * test: two hosts in forwarded mode, host 1's rack port dying mid-run
 * with every reliability mechanism armed. */
SystemConfig
chaosConfig()
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.rack.hosts = 2;
    cfg.rack.idcMode = "forwarded";
    cfg.rack.hostDownId = 1;
    cfg.rack.hostDownAtPs = 50000000;
    cfg.rack.hostDownForPs = 60000000;
    cfg.link.retryTimeoutPs = 40000000;
    cfg.serve.mode = "open";
    cfg.serve.offeredQps = 2e6;
    cfg.serve.requests = 512;
    cfg.serve.keys = 8192;
    cfg.serve.deadlineUs = 25;
    cfg.serve.maxRetries = 3;
    cfg.serve.backoffUs = 5;
    cfg.serve.maxInflight = 128;
    return cfg;
}

TEST(Reliability, ChaosRunDegradesGracefully)
{
    const RelStats r = runReliability(chaosConfig());
    // The outage must actually bite (deadline misses among the parked
    // crossings) while the vast majority of requests still complete.
    EXPECT_GT(r.misses, 0.0);
    EXPECT_GT(r.requests, 0.9 * 512);
    EXPECT_DOUBLE_EQ(r.requests + r.misses + r.shed + r.failed, 512.0);
}

TEST(ReliabilityDeterminism, ChaosRunsAreThreadCountInvariant)
{
    // The whole reliability layer is single-writer per shard and its
    // timers and RNG streams are tid-keyed, so a chaos run's stats
    // JSON is byte-identical at every sharded thread count.
    auto cfg = chaosConfig();
    cfg.sim.shard = "group";
    cfg.sim.threads = 1;
    const RelStats ref = runReliability(cfg);
    EXPECT_GT(ref.misses, 0.0);
    cfg.sim.threads = 4;
    EXPECT_EQ(ref.json, runReliability(cfg).json)
        << "chaos run diverged at threads=4";
}

TEST(ReliabilityDeterminism, RepeatChaosRunsAreByteIdentical)
{
    const RelStats a = runReliability(chaosConfig());
    const RelStats b = runReliability(chaosConfig());
    EXPECT_EQ(a.json, b.json);
}

} // namespace
} // namespace dimmlink
