/** @file The serving frontend (docs/serving.md): arrival processes
 * and Zipfian popularity, deterministic request plans, the kv / embed
 * workloads end to end on the NMP system and the host baseline, the
 * serve stats group, and the byte-identity contract -- same
 * serve.seed, same stats JSON, at any thread count. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats_json.hh"
#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/arrivals.hh"
#include "workloads/serving.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

using workloads::ArrivalProcess;
using workloads::ZipfSampler;

TEST(Arrivals, DeterministicPerSeed)
{
    ArrivalProcess a(1e6, 42, 1.0, 0, 0);
    ArrivalProcess b(1e6, 42, 1.0, 0, 0);
    ArrivalProcess c(1e6, 43, 1.0, 0, 0);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const Tick ta = a.next();
        EXPECT_EQ(ta, b.next());
        any_diff |= ta != c.next();
    }
    EXPECT_TRUE(any_diff);
}

TEST(Arrivals, MeanRateMatchesOffered)
{
    // 1M qps -> mean gap 1e6 ps. 10k draws puts the sample mean
    // within a few percent (stddev/sqrt(n) = 1%).
    ArrivalProcess a(1e6, 7, 1.0, 0, 0);
    const int n = 10000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = a.next();
    const double mean_gap = static_cast<double>(last) / n;
    EXPECT_NEAR(mean_gap, 1e6, 5e4);
}

TEST(Arrivals, ArrivalsAreStrictlyMonotone)
{
    // Sub-tick gaps at absurd rates still advance time.
    ArrivalProcess a(1e12, 3, 1.0, 0, 0);
    Tick last = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tick t = a.next();
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(Arrivals, BurstPhasesConcentrateArrivals)
{
    // 4x bursts for the first 10% of each period: the burst windows
    // should hold far more than 10% of the arrivals (4x rate -> ~31%
    // of all arrivals at these settings).
    ArrivalProcess a(1e6, 11, 4.0, 1000000, 100000);
    int in_burst = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (a.inBurst(a.next()))
            ++in_burst;
    EXPECT_GT(in_burst, n / 5);
}

TEST(Zipf, UniformWhenThetaZero)
{
    ZipfSampler z(100, 0.0);
    Rng rng(1);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 1000, 250);
}

TEST(Zipf, SkewConcentratesOnHotKeys)
{
    ZipfSampler z(10000, 0.99);
    Rng rng(1);
    std::uint64_t hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (z(rng) < 10)
            ++hot;
    // At theta=0.99 the ten hottest of 10k keys draw roughly half
    // the accesses; uniform would give 0.1%.
    EXPECT_GT(hot, n / 4);
    // And every rank stays in range.
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z(rng), 10000u);
}

TEST(Serving, PlansAreDeterministicAndComplete)
{
    ServeConfig s;
    s.requests = 1000;
    s.keys = 4096;
    s.seed = 5;
    const auto plans = workloads::serving::buildPlans(s, 16, 2);
    const auto again = workloads::serving::buildPlans(s, 16, 2);
    ASSERT_EQ(plans.size(), 16u);
    std::uint64_t total = 0;
    for (unsigned t = 0; t < 16; ++t) {
        total += plans[t].reqs.size();
        EXPECT_EQ(plans[t].keys.size(), plans[t].reqs.size() * 2);
        EXPECT_EQ(plans[t].keys, again[t].keys);
        // Open-loop arrivals are strictly increasing per thread.
        Tick last = 0;
        for (const auto &r : plans[t].reqs) {
            EXPECT_GT(r.arrivalPs, last);
            last = r.arrivalPs;
            for (std::size_t k = 0; k < 2; ++k)
                EXPECT_LT(plans[t].keys[k], s.keys);
        }
    }
    EXPECT_EQ(total, s.requests);

    ServeConfig other = s;
    other.seed = 6;
    const auto differ = workloads::serving::buildPlans(other, 16, 2);
    EXPECT_NE(plans[0].keys, differ[0].keys);
}

struct ServeSpec
{
    std::string workload = "kv";
    std::string mode = "open";
    std::uint64_t seed = 1;
    std::uint64_t requests = 192;
    double offeredQps = 2e6;
    double burstFactor = 1.0;
    unsigned threads = 0; ///< 0 = sequential kernel (sim.shard=none).
};

/** One serving run on a 4D-2C system; returns full stats JSON plus
 * kernel summary, and checks the result verified. */
std::string
runServing(const ServeSpec &spec)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.mode = spec.mode;
    cfg.serve.seed = spec.seed;
    cfg.serve.requests = spec.requests;
    cfg.serve.offeredQps = spec.offeredQps;
    cfg.serve.keys = 8192;
    cfg.serve.burstFactor = spec.burstFactor;
    if (spec.burstFactor > 1.0) {
        cfg.serve.burstPeriodPs = 10000000;
        cfg.serve.burstLenPs = 2000000;
    }
    if (spec.threads) {
        cfg.sim.shard = "group";
        cfg.sim.threads = spec.threads;
    }
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl =
        workloads::makeWorkload(spec.workload, p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified)
        << spec.workload << " seed=" << spec.seed
        << " threads=" << spec.threads;
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    os << "\nkernelTicks=" << r.kernelTicks;
    return os.str();
}

TEST(Serving, KvOpenLoopServesAndRecordsLatency)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.requests = 192;
    cfg.serve.keys = 8192;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("kv", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);

    const auto &reg = sys.stats();
    EXPECT_DOUBLE_EQ(reg.scalar("serve.requests"), 192.0);
    const double p50 = reg.scalar("serve.latencyP50Ps");
    const double p95 = reg.scalar("serve.latencyP95Ps");
    const double p99 = reg.scalar("serve.latencyP99Ps");
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(reg.scalar("serve.achievedQps"), 0.0);
    EXPECT_DOUBLE_EQ(reg.scalar("serve.offeredQps"),
                     cfg.serve.offeredQps);
    // Open loop at a modest rate: cores idle between arrivals.
    EXPECT_GT(reg.scalar("serve.reqWaitPs"), 0.0);
}

TEST(Serving, EmbedClosedLoopServes)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.mode = "closed";
    cfg.serve.requests = 96;
    cfg.serve.keys = 4096;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload("embed", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);

    const auto &reg = sys.stats();
    EXPECT_DOUBLE_EQ(reg.scalar("serve.requests"), 96.0);
    EXPECT_GT(reg.scalar("serve.latencyP50Ps"), 0.0);
    // Closed loop never waits for an arrival.
    EXPECT_DOUBLE_EQ(reg.scalar("serve.reqWaitPs"), 0.0);
    EXPECT_DOUBLE_EQ(reg.scalar("serve.offeredQps"), 0.0);
}

TEST(Serving, NonServingRunsHaveNoServeGroup)
{
    // The serve group and per-core request stats must stay invisible
    // when no request retires, so batch-kernel stats dumps are
    // unchanged by this feature.
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 4;
    auto wl = workloads::makeWorkload("gups", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(sys.stats().hasScalar("serve.requests"));
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os);
    EXPECT_EQ(os.str().find("reqLatencyPs"), std::string::npos);
    EXPECT_EQ(os.str().find("\"serve\""), std::string::npos);
}

TEST(ServingDeterminism, RepeatRunsAreByteIdentical)
{
    for (const char *w : {"kv", "embed"}) {
        ServeSpec s;
        s.workload = w;
        const std::string a = runServing(s);
        const std::string b = runServing(s);
        EXPECT_EQ(a, b) << w;
    }
}

TEST(ServingDeterminism, ThreadCountInvariantOpenLoop)
{
    for (const char *w : {"kv", "embed"}) {
        for (std::uint64_t seed : {1, 7}) {
            ServeSpec s;
            s.workload = w;
            s.seed = seed;
            s.threads = 1;
            const std::string ref = runServing(s);
            s.threads = 4;
            EXPECT_EQ(ref, runServing(s))
                << w << " seed=" << seed
                << " diverged at threads=4";
        }
    }
}

TEST(ServingDeterminism, ThreadCountInvariantClosedAndBursty)
{
    ServeSpec s;
    s.workload = "kv";
    s.mode = "closed";
    s.threads = 1;
    const std::string closed_ref = runServing(s);
    s.threads = 4;
    EXPECT_EQ(closed_ref, runServing(s)) << "closed loop diverged";

    ServeSpec b;
    b.workload = "kv";
    b.burstFactor = 4.0;
    b.threads = 1;
    const std::string burst_ref = runServing(b);
    b.threads = 4;
    EXPECT_EQ(burst_ref, runServing(b)) << "bursty arrivals diverged";
}

TEST(ServingDeterminism, SeedChangesTheRun)
{
    ServeSpec s;
    s.workload = "kv";
    s.seed = 1;
    const std::string a = runServing(s);
    s.seed = 2;
    EXPECT_NE(a, runServing(s));
}

TEST(Serving, HostBaselineServes)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.serve.requests = 96;
    cfg.serve.keys = 4096;
    HostRunner host(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.host.numCores;
    p.numDimms = cfg.numDimms;
    p.serve = cfg.serve;
    dram::GlobalAddressMap gmap(cfg.numDimms, cfg.dimm.capacityBytes);
    auto wl = workloads::makeWorkload("kv", p, gmap);
    const RunResult r = host.run(*wl);
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(host.stats().scalar("serve.requests"), 96.0);
    EXPECT_GT(host.stats().scalar("serve.latencyP50Ps"), 0.0);
}

TEST(Serving, ConfigRejectsBadKnobs)
{
    auto bad = [](const char *key, const char *value,
                  const char *msg) {
        auto cfg = SystemConfig::preset("4D-2C");
        cfg.set(key, value);
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    msg) << key << "=" << value;
    };
    bad("serve.mode", "batch", "serve.mode");
    bad("serve.zipfTheta", "1.5", "zipfTheta");
    bad("serve.getFraction", "1.5", "getFraction");
    bad("serve.offeredQps", "0", "offeredQps");
    bad("serve.requests", "0", "requests");
    bad("serve.burstFactor", "0.5", "burstFactor");
}

} // namespace
} // namespace dimmlink
