/** @file Cross-cutting property tests: reference-model equivalence
 * for the cache, ordering invariants of the event queue and network,
 * DRAM latency bounds, and random packet round-trips. */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <list>
#include <map>

#include "common/rng.hh"
#include "dimm/cache.hh"
#include "energy/energy_model.hh"
#include "common/stats.hh"
#include "dram/dram_controller.hh"
#include "noc/network.hh"
#include "proto/codec.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace {

/** Oracle LRU cache built from std::map + std::list. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned ways, unsigned line)
        : sets(sets), ways(ways), line(line), lru(sets)
    {
    }

    bool
    access(Addr addr)
    {
        const Addr tag = addr / line / sets;
        const std::size_t set = (addr / line) % sets;
        auto &l = lru[set];
        for (auto it = l.begin(); it != l.end(); ++it) {
            if (*it == tag) {
                l.erase(it);
                l.push_front(tag);
                return true;
            }
        }
        l.push_front(tag);
        if (l.size() > ways)
            l.pop_back();
        return false;
    }

  private:
    unsigned sets, ways, line;
    std::vector<std::list<Addr>> lru;
};

class CacheVsOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheVsOracle, HitMissSequenceMatchesReferenceLru)
{
    stats::Registry reg;
    Cache cache("c", 4096, 4, 64, reg.group("c"));
    RefCache ref(cache.numSets(), 4, 64);
    Rng rng(GetParam());
    for (int i = 0; i < 30000; ++i) {
        const Addr a = rng.below(1 << 16) & ~Addr(63);
        const bool hit = cache.access(a, rng.chance(0.3)).hit;
        const bool ref_hit = ref.access(a);
        ASSERT_EQ(hit, ref_hit) << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsOracle,
                         ::testing::Values(3, 5, 8, 13, 21));

TEST(EventQueueProperty, RandomScheduleMatchesSortedOrder)
{
    Rng rng(77);
    EventQueue eq;
    std::vector<Tick> fired;
    std::vector<Tick> expected;
    for (int i = 0; i < 2000; ++i) {
        const Tick when = rng.below(100000);
        expected.push_back(when);
        eq.schedule(when, [&fired, &eq] { fired.push_back(eq.now()); });
    }
    std::sort(expected.begin(), expected.end());
    eq.run();
    EXPECT_EQ(fired, expected);
}

TEST(EventQueueProperty, RandomDeschedulesNeverFire)
{
    Rng rng(123);
    EventQueue eq;
    unsigned fired = 0;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(
            eq.schedule(rng.below(5000), [&fired] { ++fired; }));
    unsigned cancelled = 0;
    for (std::size_t i = 0; i < ids.size(); i += 3) {
        eq.deschedule(ids[i]);
        ++cancelled;
    }
    eq.run();
    EXPECT_EQ(fired, 1000 - cancelled);
}

TEST(DramProperty, LatencyAlwaysAtLeastIdealPipeline)
{
    EventQueue eq;
    stats::Registry reg;
    const auto timing = dram::Timing::preset("DDR4_2400");
    dram::DramController ctrl(eq, "c", timing, 2, 64,
                              reg.group("c"));
    Rng rng(5);
    // The data burst alone takes tBL; nothing may complete faster.
    const Tick floor_lat = timing.cyc(timing.tBL);
    unsigned done = 0;
    constexpr unsigned total = 300;
    std::vector<Tick> issued_at(total);
    unsigned submitted = 0;
    std::function<void()> pump = [&] {
        while (submitted < total) {
            dram::DramRequest req;
            req.local = rng.below(1 << 22) & ~Addr(63);
            req.isWrite = rng.chance(0.3);
            const unsigned id = submitted;
            issued_at[id] = eq.now();
            req.done = [&, id] {
                ++done;
                ASSERT_GE(eq.now() - issued_at[id], floor_lat);
            };
            if (!ctrl.enqueue(std::move(req)))
                return;
            ++submitted;
        }
    };
    ctrl.setUnblockCallback(pump);
    pump();
    while (done < total && eq.step()) {
    }
    EXPECT_EQ(done, total);
}

TEST(NocProperty, SameFlowMessagesArriveInOrder)
{
    EventQueue eq;
    stats::Registry reg;
    LinkConfig lc;
    noc::Network net(eq, "n", lc, 8, reg);
    Rng rng(9);

    std::map<std::pair<int, int>, std::uint64_t> last_seen;
    unsigned delivered = 0;
    constexpr unsigned total = 400;
    std::deque<noc::Message> backlog;
    for (unsigned i = 0; i < total; ++i) {
        noc::Message m;
        m.src = static_cast<int>(rng.below(8));
        m.dst = static_cast<int>(rng.below(8));
        m.flits = 1 + static_cast<unsigned>(rng.below(16));
        m.id = i + 1;
        m.deliver = [&, src = m.src, dst = m.dst,
                     id = m.id](int) {
            auto &last = last_seen[{src, dst}];
            // FIFO per (src, dst) flow: ids rise monotonically.
            ASSERT_GT(id, last);
            last = id;
            ++delivered;
        };
        backlog.push_back(std::move(m));
    }
    // Inject with per-node retry handlers.
    auto drain = [&] {
        while (!backlog.empty()) {
            if (!net.tryInject(backlog.front()))
                return;
            backlog.pop_front();
        }
    };
    for (int node = 0; node < 8; ++node)
        net.setRetryHandler(node, drain);
    drain();
    while (delivered < total && eq.step()) {
        drain();
    }
    EXPECT_EQ(delivered, total);
}

TEST(ProtoProperty, RandomPacketsRoundTrip)
{
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
        proto::Packet p;
        p.src = static_cast<std::uint8_t>(rng.below(64));
        p.dst = static_cast<std::uint8_t>(rng.below(64));
        p.cmd = static_cast<proto::DlCommand>(rng.below(9));
        p.addr = rng.below(1ull << 37);
        p.tag = static_cast<std::uint8_t>(rng.below(64));
        p.dll = static_cast<std::uint32_t>(rng.next());
        p.payload.resize(rng.below(257));
        for (auto &b : p.payload)
            b = static_cast<std::uint8_t>(rng.next());

        const auto wire = proto::encode(p);
        proto::Packet q;
        ASSERT_TRUE(proto::decode(wire, q));
        ASSERT_EQ(q.src, p.src);
        ASSERT_EQ(q.dst, p.dst);
        ASSERT_EQ(q.cmd, p.cmd);
        ASSERT_EQ(q.addr, p.addr);
        ASSERT_EQ(q.tag, p.tag);
        ASSERT_EQ(q.dll, p.dll);
        // Payload equal up to flit padding.
        ASSERT_GE(q.payload.size(), p.payload.size());
        for (std::size_t b = 0; b < p.payload.size(); ++b)
            ASSERT_EQ(q.payload[b], p.payload[b]);
    }
}

TEST(StatsProperty, EnergyComponentsNonNegative)
{
    // EnergyReport arithmetic sanity across random counter values.
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EnergyReport r;
        r.dramPj = static_cast<double>(rng.below(1 << 30));
        r.linkPj = static_cast<double>(rng.below(1 << 30));
        r.hostIoPj = static_cast<double>(rng.below(1 << 30));
        r.forwardPj = static_cast<double>(rng.below(1 << 30));
        r.busPj = static_cast<double>(rng.below(1 << 30));
        r.nmpCorePj = static_cast<double>(rng.below(1 << 30));
        ASSERT_GE(r.total(), r.idc());
        ASSERT_GE(r.idc(), r.linkPj);
        ASSERT_DOUBLE_EQ(r.total() - r.idc(),
                         r.dramPj + r.nmpCorePj);
    }
}

} // namespace
} // namespace dimmlink
