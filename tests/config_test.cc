/** @file Tests for the configuration front end: enum parsers, the flat
 * JSON file format, -p overrides, describe() round-trips, and the
 * consolidated cross-field validation. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/config.hh"
#include "common/json.hh"

namespace dimmlink {
namespace {

// ---- enum round-trips and aliases -------------------------------------

TEST(ConfigEnums, EveryValueRoundTripsThroughToString)
{
    for (auto m : {IdcMethod::CpuForwarding, IdcMethod::DedicatedBus,
                   IdcMethod::ChannelBroadcast, IdcMethod::DimmLink})
        EXPECT_EQ(idcMethodFromString(toString(m)), m);
    for (auto p : {PollingMode::Baseline, PollingMode::BaselineInterrupt,
                   PollingMode::Proxy, PollingMode::ProxyInterrupt})
        EXPECT_EQ(pollingModeFromString(toString(p)), p);
    for (auto t : {Topology::HalfRing, Topology::Ring, Topology::Mesh,
                   Topology::Torus})
        EXPECT_EQ(topologyFromString(toString(t)), t);
    for (auto s : {SyncScheme::Centralized, SyncScheme::Hierarchical})
        EXPECT_EQ(syncSchemeFromString(toString(s)), s);
}

TEST(ConfigEnums, CliAliasesParse)
{
    EXPECT_EQ(idcMethodFromString("dimmlink"), IdcMethod::DimmLink);
    EXPECT_EQ(idcMethodFromString("dl"), IdcMethod::DimmLink);
    EXPECT_EQ(idcMethodFromString("mcn"), IdcMethod::CpuForwarding);
    EXPECT_EQ(idcMethodFromString("abc"), IdcMethod::ChannelBroadcast);
    EXPECT_EQ(idcMethodFromString("AIM"), IdcMethod::DedicatedBus);
    EXPECT_EQ(pollingModeFromString("proxy-itrpt"),
              PollingMode::ProxyInterrupt);
    EXPECT_EQ(pollingModeFromString("P-P"), PollingMode::Proxy);
    EXPECT_EQ(pollingModeFromString("baseline"), PollingMode::Baseline);
    EXPECT_EQ(topologyFromString("chain"), Topology::HalfRing);
    EXPECT_EQ(topologyFromString("TORUS"), Topology::Torus);
    EXPECT_EQ(syncSchemeFromString("hier"), SyncScheme::Hierarchical);
    EXPECT_EQ(syncSchemeFromString("central"), SyncScheme::Centralized);
}

TEST(ConfigEnumsDeathTest, UnknownEnumNameListsValidOnes)
{
    EXPECT_EXIT(idcMethodFromString("token-ring"),
                ::testing::ExitedWithCode(1),
                "unknown IDC method 'token-ring'.*DIMM-Link");
    EXPECT_EXIT(topologyFromString("hypercube"),
                ::testing::ExitedWithCode(1),
                "unknown topology 'hypercube'.*HalfRing");
}

// ---- key/value access and overrides -----------------------------------

TEST(ConfigSet, TypedKeysParseAndStick)
{
    SystemConfig cfg;
    cfg.set("system.numDimms", "12");
    cfg.set("system.idcMethod", "aim");
    cfg.set("host.channelGBps", "25.6");
    cfg.set("system.distanceAwareMapping", "yes");
    cfg.set("dimm.capacityBytes", "0x100000000");
    EXPECT_EQ(cfg.numDimms, 12u);
    EXPECT_EQ(cfg.idcMethod, IdcMethod::DedicatedBus);
    EXPECT_DOUBLE_EQ(cfg.host.channelGBps, 25.6);
    EXPECT_TRUE(cfg.distanceAwareMapping);
    EXPECT_EQ(cfg.dimm.capacityBytes, std::uint64_t{1} << 32);
}

TEST(ConfigSet, ApplyOverrideSplitsOnEquals)
{
    SystemConfig cfg;
    cfg.applyOverride("link.linkGBps=50");
    cfg.applyOverride("system.dramScheduler=FCFS");
    EXPECT_DOUBLE_EQ(cfg.link.linkGBps, 50.0);
    EXPECT_EQ(cfg.dramScheduler, "FCFS");
}

TEST(ConfigSet, DramStandardAliasRewritesThePreset)
{
    // dram.standard is a hidden convenience alias: each family name
    // selects that family's default speed grade.
    SystemConfig cfg;
    cfg.set("dram.standard", "ddr5");
    EXPECT_EQ(cfg.dramPreset, "DDR5_4800");
    cfg.set("dram.standard", "hbm2");
    EXPECT_EQ(cfg.dramPreset, "HBM2_2000");
    cfg.set("dram.standard", "lpddr5x");
    EXPECT_EQ(cfg.dramPreset, "LPDDR5X_8533");
    cfg.set("dram.standard", "ddr4");
    EXPECT_EQ(cfg.dramPreset, "DDR4_2400");
    // A full preset name passes through unchanged.
    cfg.set("dram.standard", "DDR5_6400");
    EXPECT_EQ(cfg.dramPreset, "DDR5_6400");
    // Hidden: the alias never appears in describe() output, so adding
    // it did not perturb the stats-JSON config header.
    EXPECT_EQ(cfg.describe().find("dram.standard"), std::string::npos);
}

TEST(ConfigSetDeathTest, UnknownDramStandardFatalsInValidate)
{
    SystemConfig cfg = SystemConfig::preset("4D-2C");
    // An unknown family is left as-is and caught by validate()'s
    // registry check, which lists what is available.
    cfg.set("dram.standard", "sdram");
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "DRAM timing preset 'sdram'.*DDR4_2400");
}

TEST(ConfigSetDeathTest, MalformedOverrideFatals)
{
    SystemConfig cfg;
    EXPECT_EXIT(cfg.applyOverride("link.linkGBps"),
                ::testing::ExitedWithCode(1),
                "expected section.key=value");
}

TEST(ConfigSetDeathTest, UnknownKeySuggestsSectionSiblings)
{
    SystemConfig cfg;
    // A typo inside a known section lists that section's keys.
    EXPECT_EXIT(cfg.set("link.linkGbps", "50"),
                ::testing::ExitedWithCode(1),
                "unknown config key 'link.linkGbps'.*link\\.linkGBps");
    EXPECT_EXIT(cfg.set("nmp.cores", "4"),
                ::testing::ExitedWithCode(1),
                "unknown config key 'nmp.cores'");
}

TEST(ConfigSetDeathTest, BadTypedValueNamesKey)
{
    SystemConfig cfg;
    EXPECT_EXIT(cfg.set("system.numDimms", "eight"),
                ::testing::ExitedWithCode(1), "system.numDimms");
    EXPECT_EXIT(cfg.set("system.numDimms", "-4"),
                ::testing::ExitedWithCode(1), "system.numDimms");
    EXPECT_EXIT(cfg.set("system.distanceAwareMapping", "maybe"),
                ::testing::ExitedWithCode(1),
                "system.distanceAwareMapping");
}

TEST(ConfigKeys, KnownKeysCoverEverySection)
{
    const std::vector<std::string> keys = SystemConfig::knownKeys();
    EXPECT_GE(keys.size(), 50u);
    for (const char *want :
         {"system.numDimms", "system.dramScheduler", "host.numCores",
          "dimm.capacityBytes", "link.topology", "bus.busGBps",
          "energy.linkPjPerBit"})
        EXPECT_NE(std::find(keys.begin(), keys.end(), want),
                  keys.end())
            << want;
}

// ---- describe() / fromString() round trip -----------------------------

TEST(ConfigRoundTrip, DescribeReparsesIdentically)
{
    for (const char *preset : {"4D-2C", "8D-4C", "16D-8C"}) {
        SystemConfig cfg = SystemConfig::preset(preset);
        cfg.idcMethod = IdcMethod::DedicatedBus;
        cfg.dramScheduler = "FCFS";
        cfg.link.linkGBps = 32.5;
        const std::string text = cfg.describe();
        SystemConfig back = SystemConfig::fromString(text, "describe");
        EXPECT_EQ(back.describe(), text) << preset;
    }
}

TEST(ConfigRoundTrip, FromFileReadsCommentedNestedJson)
{
    const std::string path = ::testing::TempDir() + "config_test.json";
    {
        std::ofstream f(path);
        f << "// comment\n"
             "{\n"
             "  \"system\": {\n"
             "    \"numDimms\": 4,  # trailing comment\n"
             "    \"numChannels\": 2,\n"
             "    \"idcMethod\": \"mcn\"\n"
             "  },\n"
             "  \"link.linkGBps\": 12.5\n"
             "}\n";
    }
    SystemConfig cfg = SystemConfig::fromFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(cfg.numDimms, 4u);
    EXPECT_EQ(cfg.numChannels, 2u);
    EXPECT_EQ(cfg.idcMethod, IdcMethod::CpuForwarding);
    EXPECT_DOUBLE_EQ(cfg.link.linkGBps, 12.5);
    // Untouched keys keep their defaults.
    EXPECT_EQ(cfg.dramScheduler, "FRFCFS");
}

TEST(ConfigRoundTripDeathTest, MissingFileFatals)
{
    EXPECT_EXIT(SystemConfig::fromFile("/nonexistent/cfg.json"),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ---- flat JSON parser rejections --------------------------------------

TEST(FlatJson, ParsesSectionsAndScalars)
{
    const auto entries = json::parseFlat(
        "{\"a\": {\"b\": 1, \"c\": \"x\"}, \"d\": true}", "test");
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].key, "a.b");
    EXPECT_EQ(entries[0].value, "1");
    EXPECT_FALSE(entries[0].wasString);
    EXPECT_EQ(entries[1].key, "a.c");
    EXPECT_EQ(entries[1].value, "x");
    EXPECT_TRUE(entries[1].wasString);
    EXPECT_EQ(entries[2].key, "d");
    EXPECT_EQ(entries[2].value, "true");
}

TEST(FlatJsonDeathTest, RejectsArraysNullAndTrailingContent)
{
    EXPECT_EXIT(json::parseFlat("{\"a\": [1, 2]}", "t"),
                ::testing::ExitedWithCode(1), "array");
    EXPECT_EXIT(json::parseFlat("{\"a\": null}", "t"),
                ::testing::ExitedWithCode(1), "null");
    EXPECT_EXIT(json::parseFlat("{\"a\": 1} x", "t"),
                ::testing::ExitedWithCode(1), "trailing");
    EXPECT_EXIT(json::parseFlat("{\"a\": 1", "t"),
                ::testing::ExitedWithCode(1), "t:");
}

// ---- consolidated validate() ------------------------------------------

TEST(ConfigValidateDeathTest, CrossFieldConstraints)
{
    {
        SystemConfig cfg = SystemConfig::preset("8D-4C");
        cfg.numDimms = 6; // not divisible by 4 channels
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "numDimms");
    }
    {
        SystemConfig cfg = SystemConfig::preset("8D-4C");
        cfg.dimm.capacityBytes = 3ull << 30; // not a power of two
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "capacityBytes");
    }
    {
        SystemConfig cfg = SystemConfig::preset("8D-4C");
        cfg.host.l1Bytes = 10000; // not divisible into pow2 sets
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "host L1");
    }
    {
        SystemConfig cfg = SystemConfig::preset("8D-4C");
        cfg.dramScheduler = "LIFO";
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "DRAM scheduling policy 'LIFO'.*FRFCFS");
    }
    {
        SystemConfig cfg = SystemConfig::preset("8D-4C");
        cfg.dramPreset = "DDR9_9999"; // no such registered preset
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "DRAM timing preset 'DDR9_9999'.*DDR4_2400");
    }
    {
        SystemConfig cfg = SystemConfig::preset("8D-4C");
        cfg.host.pollThreads = 0;
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "pollThreads");
    }
}

TEST(ConfigValidate, PresetsAndDefaultConfigFileAreValid)
{
    for (const char *p : {"4D-2C", "8D-4C", "12D-6C", "16D-8C"})
        SystemConfig::preset(p).validate(); // must not exit
    const std::string repo_cfg =
        std::string(DIMMLINK_SOURCE_DIR) + "/configs/default.json";
    SystemConfig cfg = SystemConfig::fromFile(repo_cfg);
    cfg.validate();
    // The checked-in example reproduces the paper's default machine.
    EXPECT_EQ(cfg.describe(), SystemConfig::preset("8D-4C").describe());
}

} // namespace
} // namespace dimmlink
