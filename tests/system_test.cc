/** @file Full-system integration tests: every fabric end to end,
 * determinism, stat consistency, the task-mapping path, energy
 * accounting, and the host-CPU baseline. */

#include <gtest/gtest.h>

#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

workloads::WorkloadParams
smallParams(const SystemConfig &cfg, std::uint64_t scale = 8)
{
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = scale;
    p.rounds = 4;
    return p;
}

RunResult
runOnce(SystemConfig cfg, const std::string &wl_name,
        std::uint64_t scale = 8)
{
    System sys(cfg);
    auto wl = workloads::makeWorkload(wl_name, smallParams(cfg, scale),
                                      sys.addressMap());
    Runner runner(sys, *wl);
    return runner.run();
}

class FabricIntegration : public ::testing::TestWithParam<IdcMethod>
{
};

TEST_P(FabricIntegration, BfsVerifiesOnEveryFabric)
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.idcMethod = GetParam();
    if (GetParam() != IdcMethod::DimmLink)
        cfg.pollingMode = PollingMode::Baseline;
    const RunResult r = runOnce(cfg, "bfs");
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.idcStallPs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, FabricIntegration,
    ::testing::Values(IdcMethod::CpuForwarding,
                      IdcMethod::DedicatedBus,
                      IdcMethod::ChannelBroadcast,
                      IdcMethod::DimmLink),
    [](const auto &info) {
        switch (info.param) {
          case IdcMethod::CpuForwarding: return "Mcn";
          case IdcMethod::DedicatedBus: return "Aim";
          case IdcMethod::ChannelBroadcast: return "Abc";
          case IdcMethod::DimmLink: return "DimmLink";
        }
        return "x";
    });

struct CrossCase
{
    const char *workload;
    IdcMethod method;
};

class WorkloadFabricMatrix
    : public ::testing::TestWithParam<CrossCase>
{
};

TEST_P(WorkloadFabricMatrix, VerifiesEverywhere)
{
    const auto [wl, method] = GetParam();
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.idcMethod = method;
    if (method != IdcMethod::DimmLink) {
        cfg.pollingMode = PollingMode::Baseline;
        cfg.syncScheme = SyncScheme::Centralized;
    }
    const RunResult r = runOnce(cfg, wl, 2);
    EXPECT_TRUE(r.verified) << wl;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WorkloadFabricMatrix,
    ::testing::Values(
        CrossCase{"pagerank", IdcMethod::CpuForwarding},
        CrossCase{"pagerank", IdcMethod::DedicatedBus},
        CrossCase{"pagerank", IdcMethod::ChannelBroadcast},
        CrossCase{"pagerank", IdcMethod::DimmLink},
        CrossCase{"gups", IdcMethod::CpuForwarding},
        CrossCase{"gups", IdcMethod::DedicatedBus},
        CrossCase{"gups", IdcMethod::ChannelBroadcast},
        CrossCase{"gups", IdcMethod::DimmLink},
        CrossCase{"hotspot", IdcMethod::CpuForwarding},
        CrossCase{"hotspot", IdcMethod::DimmLink},
        CrossCase{"tspow", IdcMethod::DedicatedBus},
        CrossCase{"tspow", IdcMethod::DimmLink},
        CrossCase{"stream", IdcMethod::DimmLink},
        CrossCase{"nw", IdcMethod::ChannelBroadcast},
        CrossCase{"kmeans", IdcMethod::DedicatedBus},
        CrossCase{"bfs", IdcMethod::DimmLink}),
    [](const auto &info) {
        std::string m;
        switch (info.param.method) {
          case IdcMethod::CpuForwarding: m = "Mcn"; break;
          case IdcMethod::DedicatedBus: m = "Aim"; break;
          case IdcMethod::ChannelBroadcast: m = "Abc"; break;
          case IdcMethod::DimmLink: m = "DimmLink"; break;
        }
        return std::string(info.param.workload) + "_" + m;
    });

TEST(Determinism, IdenticalRunsProduceIdenticalTiming)
{
    auto cfg = SystemConfig::preset("4D-2C");
    const RunResult a = runOnce(cfg, "pagerank");
    const RunResult b = runOnce(cfg, "pagerank");
    EXPECT_EQ(a.kernelTicks, b.kernelTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.idcStallPs, b.idcStallPs);
    EXPECT_DOUBLE_EQ(a.linkBytes, b.linkBytes);
}

TEST(Metrics, DimmLinkBeatsMcnOnBfs)
{
    auto dl_cfg = SystemConfig::preset("8D-4C");
    dl_cfg.idcMethod = IdcMethod::DimmLink;
    auto mcn_cfg = SystemConfig::preset("8D-4C");
    mcn_cfg.idcMethod = IdcMethod::CpuForwarding;
    mcn_cfg.pollingMode = PollingMode::Baseline;

    const RunResult dl = runOnce(dl_cfg, "bfs");
    const RunResult mcn = runOnce(mcn_cfg, "bfs");
    EXPECT_LT(dl.kernelTicks, mcn.kernelTicks);
    // Absolute remote-stall time shrinks; the *ratio* may not at
    // tiny problem scales because the DL run's denominator (total
    // time) shrinks even faster than its stalls.
    EXPECT_LT(dl.idcStallPs, mcn.idcStallPs);
}

TEST(Metrics, TrafficBreakdownIsConsistent)
{
    auto cfg = SystemConfig::preset("8D-4C");
    const RunResult r = runOnce(cfg, "pagerank");
    EXPECT_GT(r.localBytes, 0.0);
    EXPECT_GT(r.linkBytes, 0.0);
    EXPECT_GT(r.hostBytes, 0.0); // inter-group traffic exists
    EXPECT_DOUBLE_EQ(r.busBytes, 0.0); // no AIM bus in DIMM-Link
    EXPECT_GT(r.busOccupancy, 0.0);
    EXPECT_LT(r.busOccupancy, 1.0);
}

TEST(Metrics, EnergyComponentsArePopulated)
{
    auto cfg = SystemConfig::preset("4D-2C");
    const RunResult r = runOnce(cfg, "kmeans", 1);
    EXPECT_GT(r.energy.dramPj, 0.0);
    EXPECT_GT(r.energy.linkPj, 0.0);
    EXPECT_GT(r.energy.nmpCorePj, 0.0);
    EXPECT_GT(r.energy.total(), r.energy.idc());
}

TEST(Mapping, DistanceAwareRunVerifiesAndProfiles)
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.distanceAwareMapping = true;
    System sys(cfg);
    auto wl = workloads::makeWorkload("pagerank",
                                      smallParams(cfg, 9),
                                      sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.profilingTicks, 0u);
    EXPECT_LT(r.profilingTicks, r.kernelTicks);
    EXPECT_EQ(runner.placement().size(), 32u);
}

TEST(Mapping, OptimizedPlacementDoesNotHurtMuch)
{
    auto base_cfg = SystemConfig::preset("8D-4C");
    auto opt_cfg = base_cfg;
    opt_cfg.distanceAwareMapping = true;
    const RunResult base = runOnce(base_cfg, "kmeans", 1);
    System sys(opt_cfg);
    auto wl = workloads::makeWorkload("kmeans",
                                      smallParams(opt_cfg, 1),
                                      sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult opt = runner.run();
    EXPECT_TRUE(opt.verified);
    // Including profiling overhead, stay within 1.5x of the base.
    EXPECT_LT(static_cast<double>(opt.kernelTicks),
              1.5 * static_cast<double>(base.kernelTicks));
}

TEST(HostBaseline, RunsAndVerifies)
{
    auto cfg = SystemConfig::preset("4D-2C");
    HostRunner host(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.host.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 8;
    p.rounds = 4;
    dram::GlobalAddressMap gmap(cfg.numDimms,
                                cfg.dimm.capacityBytes);
    auto wl = workloads::makeWorkload("bfs", p, gmap);
    const RunResult r = host.run(*wl);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.kernelTicks, 0u);
}

TEST(HostBaseline, NmpIsFasterOnMemoryBoundKernels)
{
    // Hotspot is the cleanly bandwidth-bound kernel at test scale
    // (see EXPERIMENTS.md on speedup compression for the random-
    // access graph kernels in the scaled-down reproduction).
    auto cfg = SystemConfig::preset("16D-8C");
    const RunResult nmp = runOnce(cfg, "hotspot", 5);
    HostRunner host(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.host.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 5;
    p.rounds = 4;
    dram::GlobalAddressMap gmap(cfg.numDimms,
                                cfg.dimm.capacityBytes);
    auto wl = workloads::makeWorkload("hotspot", p, gmap);
    const RunResult cpu = host.run(*wl);
    EXPECT_TRUE(cpu.verified);
    EXPECT_TRUE(nmp.verified);
    EXPECT_LT(nmp.kernelTicks, cpu.kernelTicks);
}

TEST(HostAccessMode, LoadAndReadbackMoveDataThroughChannels)
{
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);
    const Addr base = sys.addressMap().globalOf(1, 0);

    const double busy0 = sys.channelBusyPs();
    const Tick load = sys.hostLoad(base, 1 << 20);
    EXPECT_GT(load, 0u);
    // 1 MB at 19.2 GB/s is at least ~52 us of channel time.
    EXPECT_GT(sys.channelBusyPs() - busy0, 50.0 * tickPerUs);
    EXPECT_GT(sys.stats().scalar("dimm1.mc.localWrites"), 0.0);

    const Tick rb = sys.hostReadback(base, 1 << 20);
    EXPECT_GT(rb, 0u);
    EXPECT_GT(sys.stats().scalar("dimm1.mc.localReads"), 0.0);
}

TEST(HostAccessMode, ForbiddenDuringKernels)
{
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);
    sys.enterNmpMode();
    EXPECT_DEATH(sys.hostLoad(0, 4096), "NMP-Access");
    sys.exitNmpMode();
}

TEST(ModeSwitch, NmpModeToggles)
{
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);
    EXPECT_FALSE(sys.inNmpMode());
    sys.enterNmpMode();
    EXPECT_TRUE(sys.inNmpMode());
    sys.exitNmpMode();
    EXPECT_FALSE(sys.inNmpMode());
    EXPECT_DEATH(sys.exitNmpMode(), "not in NMP");
}

TEST(Topologies, AllTopologiesRunBfs)
{
    for (Topology topo : {Topology::HalfRing, Topology::Ring,
                          Topology::Mesh, Topology::Torus}) {
        auto cfg = SystemConfig::preset("8D-4C");
        cfg.link.topology = topo;
        const RunResult r = runOnce(cfg, "bfs");
        EXPECT_TRUE(r.verified) << toString(topo);
    }
}

TEST(PollingModes, AllModesRunOnDimmLink)
{
    for (PollingMode mode :
         {PollingMode::Baseline, PollingMode::BaselineInterrupt,
          PollingMode::Proxy, PollingMode::ProxyInterrupt}) {
        auto cfg = SystemConfig::preset("8D-4C");
        cfg.pollingMode = mode;
        const RunResult r = runOnce(cfg, "kmeans", 1);
        EXPECT_TRUE(r.verified) << toString(mode);
    }
}

} // namespace
} // namespace dimmlink
