/** @file DRAM substrate tests: timing presets, address mapping, bank
 * state machine legality, and controller behaviour. */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "common/stats.hh"
#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/dram_controller.hh"
#include "dram/timing.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace dram {
namespace {

TEST(Timing, Ddr4Preset)
{
    const Timing t = Timing::preset("DDR4_2400");
    EXPECT_EQ(t.clkPeriod(), 833u); // 1200 MHz -> 833 ps
    EXPECT_EQ(t.banksPerRank(), 16u);
    EXPECT_GT(t.tRC, t.tRAS);
    EXPECT_GE(t.tRRDl, t.tRRDs);
    EXPECT_GE(t.tCCDl, t.tCCDs);
}

TEST(Timing, UnknownPresetDiesListingRegisteredOnes)
{
    // The registry rejects unknown names and says what it knows, so a
    // typo is a one-round-trip fix.
    EXPECT_EXIT(Timing::preset("DDR9"), ::testing::ExitedWithCode(1),
                "unknown DRAM timing preset 'DDR9'.*DDR4_2400");
}

TEST(Timing, EveryRegisteredPresetRoundTrips)
{
    const auto names = Timing::presets();
    EXPECT_GE(names.size(), 6u);
    for (const auto &n : names) {
        const Timing t = Timing::preset(n);
        EXPECT_EQ(t.name, n);
        t.check(); // registered tables must be self-consistent
        EXPECT_EQ(Timing::resolveName(n), n);
        EXPECT_EQ(Timing::familyOf(n), t.standard);
        EXPECT_GT(t.banksPerRank(), 0u);
        EXPECT_GE(t.subChannels, 1u);
        if (t.perBankRefresh) {
            EXPECT_GT(t.tRFCpb, 0u);
        }
    }
}

TEST(Timing, FamilyAliasesResolveToDefaultGrades)
{
    EXPECT_EQ(Timing::resolveName("ddr4"), "DDR4_2400");
    EXPECT_EQ(Timing::resolveName("DDR5"), "DDR5_4800");
    EXPECT_EQ(Timing::resolveName("lpddr5x"), "LPDDR5X_8533");
    EXPECT_EQ(Timing::resolveName("hbm2"), "HBM2_2000");
    // Unknown names pass through unchanged for validate() to reject.
    EXPECT_EQ(Timing::resolveName("DDR9_9999"), "DDR9_9999");
}

TEST(GlobalMap, RoundTrips)
{
    GlobalAddressMap map(16, 1ull << 34); // 16 GB per DIMM
    for (DimmId d : {0, 3, 15}) {
        for (Addr local : {0ull, 4096ull, (1ull << 34) - 64}) {
            const Addr g = map.globalOf(static_cast<DimmId>(d),
                                        local);
            EXPECT_EQ(map.dimmOf(g), d);
            EXPECT_EQ(map.localOf(g), local);
        }
    }
}

TEST(GlobalMap, DimmsOwnDisjointRegions)
{
    GlobalAddressMap map(4, 1ull << 30);
    EXPECT_LT(map.globalOf(0, (1ull << 30) - 1), map.globalOf(1, 0));
    EXPECT_LT(map.globalOf(2, (1ull << 30) - 1), map.globalOf(3, 0));
}

TEST(LocalMap, CoversAllCoordinates)
{
    const Timing t = Timing::preset("DDR4_2400");
    LocalAddressMap map(t, 2, 64);
    // Consecutive lines rotate through bank groups first.
    const DramCoord c0 = map.decode(0);
    const DramCoord c1 = map.decode(64);
    EXPECT_NE(c0.bankGroup, c1.bankGroup);
    EXPECT_EQ(c0.row, c1.row);

    // Sweep a region and check bounds.
    for (Addr a = 0; a < (1ull << 22); a += 4096 + 64) {
        const DramCoord c = map.decode(a);
        EXPECT_LT(c.rank, 2u);
        EXPECT_LT(c.bankGroup, t.bankGroups);
        EXPECT_LT(c.bank, t.banksPerGroup);
        EXPECT_LT(c.row, t.rows);
        EXPECT_LT(c.flatBank(t), 2 * t.banksPerRank());
    }
}

TEST(Bank, ActivateThenCasThenPrechargeTimings)
{
    const Timing t = Timing::preset("DDR4_2400");
    Bank b;
    EXPECT_FALSE(b.isOpen());
    b.activate(0, 7, t);
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow(), 7u);
    // CAS must wait tRCD.
    EXPECT_EQ(b.readyAt(DramCmd::Rd), t.cyc(t.tRCD));
    // PRE must wait tRAS.
    EXPECT_EQ(b.readyAt(DramCmd::Pre), t.cyc(t.tRAS));
    b.read(t.cyc(t.tRCD), t);
    b.precharge(t.cyc(t.tRAS), t);
    EXPECT_FALSE(b.isOpen());
    // Next ACT waits tRC from the first.
    EXPECT_GE(b.readyAt(DramCmd::Act), t.cyc(t.tRC));
}

TEST(BankDeath, IllegalCommandsPanic)
{
    const Timing t = Timing::preset("DDR4_2400");
    Bank b;
    EXPECT_DEATH(b.read(0, t), "closed bank");
    EXPECT_DEATH(b.precharge(0, t), "closed bank");
    b.activate(0, 1, t);
    EXPECT_DEATH(b.activate(t.cyc(2), 2, t), "open bank");
    EXPECT_DEATH(b.read(t.cyc(1), t), "before");
}

/** Fixture with one single-rank controller. */
class ControllerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        timing = Timing::preset("DDR4_2400");
        ctrl = std::make_unique<DramController>(
            eq, "ctl", timing, 1, 64, reg.group("ctl"));
    }

    /** Issue a read and run until it completes; return latency. */
    Tick
    readLatency(Addr a)
    {
        const Tick start = eq.now();
        Tick done_at = 0;
        bool done = false;
        DramRequest req;
        req.local = a;
        req.done = [&] {
            done = true;
            done_at = eq.now();
        };
        EXPECT_TRUE(ctrl->enqueue(std::move(req)));
        while (!done && eq.step()) {
        }
        EXPECT_TRUE(done);
        return done_at - start;
    }

    EventQueue eq;
    stats::Registry reg;
    Timing timing;
    std::unique_ptr<DramController> ctrl;
};

TEST_F(ControllerTest, ColdReadPaysActPlusCasPlusBurst)
{
    const Tick lat = readLatency(0);
    const Tick ideal =
        timing.cyc(timing.tRCD + timing.tCL + timing.tBL);
    EXPECT_GE(lat, ideal);
    // Scheduling slack should stay within a few command clocks.
    EXPECT_LE(lat, ideal + timing.cyc(4));
}

TEST_F(ControllerTest, RowHitIsFasterThanRowMiss)
{
    const Tick cold = readLatency(0);
    const Tick hit = readLatency(64 * 16); // same bank group 0? ...
    // Same row, same bank: line + bg/bank bits stride.
    // Address 0 and 0 + (lines covering all banks) share row 0 of
    // bank 0 when the full bank rotation wraps.
    (void)cold;
    const Tick conflict =
        readLatency(1ull << 22); // far away: different row, bank 0
    EXPECT_LE(hit, conflict);
}

TEST_F(ControllerTest, BankParallelismBeatsSerialAccess)
{
    // Two reads to different bank groups should overlap: total time
    // well under 2x a single cold read.
    Tick single = readLatency(1ull << 30);

    unsigned done = 0;
    const Tick start = eq.now();
    for (int i = 0; i < 2; ++i) {
        DramRequest req;
        req.local = static_cast<Addr>(i) * 64 + (1ull << 20);
        req.done = [&] { ++done; };
        ASSERT_TRUE(ctrl->enqueue(std::move(req)));
    }
    while (done < 2 && eq.step()) {
    }
    EXPECT_EQ(done, 2u);
    EXPECT_LT(eq.now() - start, 2 * single);
}

TEST_F(ControllerTest, WriteCompletes)
{
    bool done = false;
    DramRequest req;
    req.local = 4096;
    req.isWrite = true;
    req.done = [&] { done = true; };
    ASSERT_TRUE(ctrl->enqueue(std::move(req)));
    while (!done && eq.step()) {
    }
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(reg.scalar("ctl.writes"), 1.0);
}

TEST_F(ControllerTest, ReadAfterWriteForwardsFromWriteQueue)
{
    bool wr_done = false, rd_done = false;
    DramRequest wr;
    wr.local = 8192;
    wr.isWrite = true;
    wr.done = [&] { wr_done = true; };
    ASSERT_TRUE(ctrl->enqueue(std::move(wr)));

    DramRequest rd;
    rd.local = 8192;
    rd.done = [&] { rd_done = true; };
    ASSERT_TRUE(ctrl->enqueue(std::move(rd)));
    // The read is served by forwarding: it completes even though the
    // write may still be queued.
    while ((!rd_done || !wr_done) && eq.step()) {
    }
    EXPECT_TRUE(rd_done);
    EXPECT_TRUE(wr_done);
}

TEST_F(ControllerTest, WriteCoalescingRetiresOlderWrite)
{
    unsigned done = 0;
    for (int i = 0; i < 2; ++i) {
        DramRequest wr;
        wr.local = 12288;
        wr.isWrite = true;
        wr.done = [&] { ++done; };
        ASSERT_TRUE(ctrl->enqueue(std::move(wr)));
    }
    while (done < 2 && eq.step()) {
    }
    EXPECT_EQ(done, 2u);
    // Only one write actually hit the DRAM array.
    EXPECT_DOUBLE_EQ(reg.scalar("ctl.writes"), 1.0);
}

TEST_F(ControllerTest, BackpressureAndUnblockCallback)
{
    bool unblocked = false;
    ctrl->setUnblockCallback([&] { unblocked = true; });
    unsigned done = 0;
    unsigned accepted = 0;
    for (unsigned i = 0; i < 200; ++i) {
        DramRequest req;
        req.local = static_cast<Addr>(i) * 8192;
        req.done = [&] { ++done; };
        if (!ctrl->enqueue(std::move(req)))
            break;
        ++accepted;
    }
    EXPECT_EQ(accepted, ctrl->readQueueCapacity());
    // The refresh machinery reschedules forever: step until drained.
    while (done < accepted && eq.step()) {
    }
    EXPECT_EQ(done, accepted);
    EXPECT_TRUE(unblocked);
}

TEST_F(ControllerTest, RefreshHappens)
{
    // Run the queue long enough to cross a tREFI boundary.
    bool done = false;
    DramRequest req;
    req.local = 0;
    req.done = [&] { done = true; };
    ASSERT_TRUE(ctrl->enqueue(std::move(req)));
    eq.runUntil(timing.cyc(timing.tREFI) + timing.cyc(1000));
    EXPECT_TRUE(done);
    EXPECT_GE(reg.scalar("ctl.refreshes"), 1.0);
}

class ControllerRandomTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ControllerRandomTest, AllRandomRequestsComplete)
{
    EventQueue eq;
    stats::Registry reg;
    const Timing timing = Timing::preset("DDR4_2400");
    DramController ctrl(eq, "ctl", timing, 2, 64,
                        reg.group("ctl"));
    Rng rng(GetParam());

    constexpr unsigned total = 400;
    unsigned submitted = 0, done = 0;
    std::function<void()> submit_some = [&] {
        while (submitted < total) {
            DramRequest req;
            req.local = rng.below(1ull << 26) & ~Addr(63);
            req.isWrite = rng.chance(0.4);
            req.done = [&] { ++done; };
            if (!ctrl.enqueue(std::move(req)))
                return;
            ++submitted;
        }
    };
    ctrl.setUnblockCallback(submit_some);
    submit_some();
    // Cap at 20 refresh intervals to catch hangs.
    eq.runUntil(timing.cyc(timing.tREFI) * 20);
    EXPECT_EQ(done, total);
    EXPECT_EQ(reg.scalar("ctl.reads") + reg.scalar("ctl.writes") +
                  0,
              ctrl.pending() == 0 ? reg.scalar("ctl.reads") +
                                        reg.scalar("ctl.writes")
                                  : -1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerRandomTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---- cross-standard behaviour -----------------------------------------

/** Latency of a read to bank-group 1 issued one cycle after the first
 * refresh command of @p t lands. */
Tick
latencyDuringRefresh(const Timing &t)
{
    EventQueue eq;
    stats::Registry reg;
    DramController ctrl(eq, "ctl", t, 1, 64, reg.group("ctl"));
    eq.runUntil(t.cyc(t.tREFI) + t.cyc(1));
    EXPECT_GE(reg.scalar("ctl.refreshes"), 1.0);
    bool done = false;
    Tick done_at = 0;
    DramRequest req;
    req.local = 64; // decodes to bank-group 1: not the REFsb target
    req.done = [&] {
        done = true;
        done_at = eq.now();
    };
    const Tick start = eq.now();
    EXPECT_TRUE(ctrl.enqueue(std::move(req)));
    while (!done && eq.step()) {
    }
    EXPECT_TRUE(done);
    return done_at - start;
}

TEST(Refresh, PerBankRefreshDoesNotBlockTheRank)
{
    // REFab parks the whole rank for tRFC; REFsb (perBankRefresh)
    // only takes the cursor bank (bank 0 first) out of service, so a
    // read to another bank group proceeds at normal latency.
    Timing ab = Timing::preset("DDR4_2400");
    ab.name = "REFAB_TEST";
    ab.tREFI = 1000;
    ab.tRFC = 800;
    Timing sb = ab;
    sb.name = "REFSB_TEST";
    sb.perBankRefresh = true;
    sb.tRFCpb = 800;
    const Tick lat_ab = latencyDuringRefresh(ab);
    const Tick lat_sb = latencyDuringRefresh(sb);
    EXPECT_GE(lat_ab, ab.cyc(600));
    EXPECT_LT(lat_sb, lat_ab - ab.cyc(400));
}

/** Time for eight cold reads, one per bank, to all complete. */
Tick
eightColdReadsTime(const Timing &t)
{
    EventQueue eq;
    stats::Registry reg;
    DramController ctrl(eq, "ctl", t, 1, 64, reg.group("ctl"));
    unsigned done = 0;
    for (int i = 0; i < 8; ++i) {
        DramRequest req;
        req.local = static_cast<Addr>(i) * 64; // distinct banks
        req.done = [&] { ++done; };
        EXPECT_TRUE(ctrl.enqueue(std::move(req)));
    }
    while (done < 8 && eq.step()) {
    }
    EXPECT_EQ(done, 8u);
    return eq.now();
}

TEST(Controller, FourActivateWindowThrottlesActs)
{
    // tFAW == 0 disables the window entirely; a wide window must slow
    // a burst of activates to distinct banks.
    Timing windowless = Timing::preset("DDR4_2400");
    windowless.name = "NOFAW_TEST";
    windowless.tFAW = 0;
    Timing tight = Timing::preset("DDR4_2400");
    tight.name = "FAW_TEST";
    tight.tFAW = 200; // far wider than 4 x tRRD_S
    EXPECT_GT(eightColdReadsTime(tight),
              eightColdReadsTime(windowless));
}

TEST(Controller, GrouplessTimingCollapsesTheLSSplit)
{
    // bankGroups == 0 (LPDDR-style flat bank space) must drive the
    // same controller: the decode has no group bits and the tCCD/tRRD
    // L-variant constraints are skipped.
    Timing t = Timing::preset("DDR4_2400");
    t.name = "FLAT_TEST";
    t.bankGroups = 0;
    t.banksPerGroup = 16;
    t.check();
    EXPECT_FALSE(t.hasBankGroups());
    EXPECT_EQ(t.banksPerRank(), 16u);

    LocalAddressMap map(t, 1, 64);
    const DramCoord c1 = map.decode(64);
    EXPECT_EQ(c1.bankGroup, 0u); // zero-width field decodes to 0
    EXPECT_EQ(c1.bank, 1u);      // lines rotate over flat banks

    EventQueue eq;
    stats::Registry reg;
    DramController ctrl(eq, "ctl", t, 1, 64, reg.group("ctl"));
    unsigned done = 0;
    for (unsigned i = 0; i < 64; ++i) {
        DramRequest req;
        req.local = static_cast<Addr>(i) * 8192;
        req.isWrite = (i % 3) == 0;
        req.done = [&] { ++done; };
        ASSERT_TRUE(ctrl.enqueue(std::move(req)));
    }
    while (done < 64 && eq.step()) {
    }
    EXPECT_EQ(done, 64u);
}

/** Digest of a fixed random-traffic run against one preset. */
struct RunDigest
{
    Tick end = 0;
    double reads = 0, writes = 0, acts = 0, refreshes = 0;

    bool
    operator==(const RunDigest &o) const
    {
        return end == o.end && reads == o.reads &&
               writes == o.writes && acts == o.acts &&
               refreshes == o.refreshes;
    }
};

RunDigest
randomRun(const std::string &preset, std::uint64_t seed)
{
    EventQueue eq;
    stats::Registry reg;
    const Timing timing = Timing::preset(preset);
    DramController ctrl(eq, "ctl", timing, 2, 64, reg.group("ctl"));
    Rng rng(seed);

    constexpr unsigned total = 400;
    unsigned submitted = 0, done = 0;
    Tick last_done = 0;
    std::function<void()> submit_some = [&] {
        while (submitted < total) {
            DramRequest req;
            req.local = rng.below(1ull << 26) & ~Addr(63);
            req.isWrite = rng.chance(0.4);
            req.done = [&] {
                ++done;
                last_done = eq.now();
            };
            if (!ctrl.enqueue(std::move(req)))
                return;
            ++submitted;
        }
    };
    ctrl.setUnblockCallback(submit_some);
    submit_some();
    eq.runUntil(Tick(200'000'000)); // 200 us covers every standard
    EXPECT_EQ(done, total) << preset;

    RunDigest d;
    d.end = last_done;
    d.reads = reg.scalar("ctl.reads");
    d.writes = reg.scalar("ctl.writes");
    d.acts = reg.scalar("ctl.activates");
    d.refreshes = reg.scalar("ctl.refreshes");
    return d;
}

class ControllerStandardTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ControllerStandardTest, RandomTrafficCompletesDeterministically)
{
    // Every registered standard must (a) complete mixed random
    // traffic — exercising its own constraint set: sub-channel lanes,
    // REFsb, no-window, groupless decode — and (b) be bit-repeatable
    // run-to-run under a pinned seed.
    const RunDigest a = randomRun(GetParam(), 42);
    const RunDigest b = randomRun(GetParam(), 42);
    EXPECT_TRUE(a == b) << GetParam();
    EXPECT_GT(a.reads + a.writes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Standards, ControllerStandardTest,
                         ::testing::Values("DDR4_2400", "DDR4_3200",
                                           "DDR5_4800", "DDR5_6400",
                                           "LPDDR5X_8533",
                                           "HBM2_2000"));

} // namespace
} // namespace dram
} // namespace dimmlink
