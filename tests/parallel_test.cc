/** @file The sharded parallel kernel (sim.shard=group): stats output
 * must be byte-identical at every thread count -- across workloads,
 * seeds, shard counts, and under fault injection -- the cross-shard
 * mailbox must deliver in its canonical order regardless of threads,
 * and the configuration gates must reject unusable setups. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats_json.hh"
#include "sim/shard.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

struct RunSpec
{
    std::string preset = "8D-4C";
    std::string workload = "pagerank";
    std::uint64_t seed = 1;
    std::uint64_t scale = 6;
    unsigned rounds = 2;
    unsigned dimmsPerGroup = 0; ///< 0 = preset default.
    bool stuckLinkFailover = false;
};

/** One sharded run; returns the full stats JSON + kernel summary. */
std::string
runSharded(const RunSpec &spec, unsigned threads)
{
    auto cfg = SystemConfig::preset(spec.preset);
    cfg.idcMethod = IdcMethod::DimmLink;
    cfg.sim.shard = "group";
    cfg.sim.threads = threads;
    if (spec.dimmsPerGroup)
        cfg.dimmsPerGroup = spec.dimmsPerGroup;
    if (spec.stuckLinkFailover) {
        // The chaos-matrix cell: one direction of the 1<->2 bridge
        // link held down past the retry budget for the whole run, so
        // exhaustion, health transitions, route-around, and host
        // failover all execute inside the sharded kernel.
        cfg.faults.model = "stuck";
        cfg.faults.stuckAtPs = 0;
        cfg.faults.stuckForPs = 400000000000000ULL;
        cfg.faults.stuckPeriodPs = 0;
        cfg.faults.linkFilter = "link1to2";
        cfg.faults.onExhausted = "failover";
        cfg.faults.seed = 7;
    }
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = spec.scale;
    p.rounds = spec.rounds;
    p.seed = spec.seed;
    auto wl =
        workloads::makeWorkload(spec.workload, p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified)
        << spec.workload << " seed=" << spec.seed
        << " threads=" << threads;
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    os << "\nkernelTicks=" << r.kernelTicks
       << "\nfinalTick=" << sys.queue().now();
    return os.str();
}

/** threads=1 is the reference; every other count must match byte for
 * byte (the determinism contract is within sim.shard=group). */
void
expectThreadCountInvariant(const RunSpec &spec,
                           const std::vector<unsigned> &counts)
{
    const std::string ref = runSharded(spec, 1);
    ASSERT_FALSE(ref.empty());
    for (unsigned t : counts) {
        const std::string got = runSharded(spec, t);
        EXPECT_EQ(ref, got)
            << spec.workload << " seed=" << spec.seed
            << " diverged at threads=" << t;
    }
}

TEST(ParallelDeterminism, PagerankAcrossSeedsAndThreadCounts)
{
    for (std::uint64_t seed : {1, 2, 3, 7}) {
        RunSpec s;
        s.workload = "pagerank";
        s.seed = seed;
        expectThreadCountInvariant(s, {2, 4});
    }
}

TEST(ParallelDeterminism, BfsAcrossSeedsAndThreadCounts)
{
    for (std::uint64_t seed : {1, 2, 3, 7}) {
        RunSpec s;
        s.workload = "bfs";
        s.seed = seed;
        expectThreadCountInvariant(s, {2, 4});
    }
}

TEST(ParallelDeterminism, SyncHeavyWorkloadAcrossSeeds)
{
    for (std::uint64_t seed : {1, 2, 3, 7}) {
        RunSpec s;
        s.workload = "syncbench";
        s.seed = seed;
        s.rounds = 4;
        expectThreadCountInvariant(s, {2, 4});
    }
}

TEST(ParallelDeterminism, EightShardsAtHighThreadCounts)
{
    // 16 DIMMs in groups of 2: nine shards, so threads=8 really runs
    // eight workers (elsewhere the clamp to numShards kicks in).
    RunSpec s;
    s.preset = "16D-8C";
    s.workload = "pagerank";
    s.dimmsPerGroup = 2;
    s.scale = 5;
    s.rounds = 1;
    expectThreadCountInvariant(s, {2, 4, 8});
}

TEST(ParallelDeterminism, FaultInjectionWithFailoverRecovery)
{
    RunSpec s;
    s.preset = "4D-2C";
    s.workload = "bfs";
    s.seed = 7;
    s.rounds = 1;
    s.stuckLinkFailover = true;
    const std::string ref = runSharded(s, 1);
    // The cell must actually exercise the recovery path, not just
    // complete: a dead link detected and failovers taken.
    EXPECT_NE(ref.find("\"linkDownEvents\": 1"), std::string::npos);
    EXPECT_EQ(ref.find("\"dllFailovers\": 0,"), std::string::npos);
    const std::string got = runSharded(s, 2);
    EXPECT_EQ(ref, got);
}

/** Cross-shard mailbox: posts made inside a window are delivered at
 * sender-now + lookahead in canonical (tick, priority, source shard,
 * sequence) order -- identically on one worker thread or many. */
class MailboxHarness
{
  public:
    explicit MailboxHarness(Tick lookahead)
    {
        for (int i = 0; i < 3; ++i)
            queues.push_back(std::make_unique<EventQueue>());
        std::vector<EventQueue *> qs;
        for (auto &q : queues)
            qs.push_back(q.get());
        set = std::make_unique<ShardSet>(qs, lookahead);
    }

    void
    log(const std::string &label)
    {
        std::ostringstream os;
        os << label << "@shard" << set->current() << "/t"
           << set->queue(set->current()).now();
        events.push_back(os.str());
    }

    std::vector<std::unique_ptr<EventQueue>> queues;
    std::unique_ptr<ShardSet> set;
    /** Only shard 0 appends (every logging callback is routed there),
     * so the vector needs no lock even at threads > 1. */
    std::vector<std::string> events;
};

std::vector<std::string>
runMailboxScenario(unsigned threads)
{
    MailboxHarness h(/*lookahead=*/100);
    ShardSet &sh = *h.set;

    // Shard 1, tick 10: two same-tick posts to shard 0 with distinct
    // priorities, plus one ping-pong chain 1 -> 2 -> 0 that spans
    // three windows.
    h.queues[1]->schedule(10, [&] {
        sh.call(0, [&h] { h.log("b-default"); },
                EventPriority::Default);
        sh.call(0, [&h] { h.log("a-core"); }, EventPriority::Core);
        sh.call(2, [&sh, &h] {
            sh.call(0, [&h] { h.log("pingpong"); },
                    EventPriority::Core);
        }, EventPriority::Core);
    }, EventPriority::Default);
    // Shard 2, tick 10: same delivery tick as shard 1's posts; the
    // lower source-shard id must win the tie at equal priority.
    h.queues[2]->schedule(10, [&] {
        sh.call(0, [&h] { h.log("c-default-src2"); },
                EventPriority::Default);
    }, EventPriority::Default);
    // Shard 0, tick 30: a later post that must stay behind all of the
    // tick-110 deliveries despite being created in the same window.
    h.queues[0]->schedule(30, [&] {
        sh.call(1, [&sh, &h] {
            sh.call(0, [&h] { h.log("late"); }, EventPriority::Core);
        }, EventPriority::Core);
    }, EventPriority::Default);

    sh.drive(threads, [] { return false; });
    return h.events;
}

TEST(ShardMailbox, CanonicalOrderIsThreadCountInvariant)
{
    const auto seq = runMailboxScenario(1);
    const std::vector<std::string> expected = {
        "a-core@shard0/t110",      // prio Core beats Default at t110
        "b-default@shard0/t110",   // same src, same tick, later prio
        "c-default-src2@shard0/t110", // equal prio: src 1 before 2
        "pingpong@shard0/t210",    // two hops: 10 + 2 * lookahead
        "late@shard0/t230",        // 30 + 2 * lookahead
    };
    EXPECT_EQ(seq, expected);
    EXPECT_EQ(runMailboxScenario(2), seq);
    EXPECT_EQ(runMailboxScenario(3), seq);
}

TEST(ShardMailbox, SameShardCallRunsInline)
{
    MailboxHarness h(/*lookahead=*/100);
    ShardSet &sh = *h.set;
    bool ran_inline = false;
    h.queues[0]->schedule(10, [&] {
        sh.call(0, [&] { ran_inline = true; });
        EXPECT_TRUE(ran_inline);
    }, EventPriority::Default);
    sh.drive(1, [] { return false; });
    EXPECT_TRUE(ran_inline);
}

TEST(ParallelConfig, ZeroLookaheadIsRejected)
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.idcMethod = IdcMethod::DimmLink;
    cfg.sim.shard = "group";
    cfg.link.routerLatencyPs = 0;
    cfg.link.wireLatencyPs = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "lookahead");
}

TEST(ParallelConfig, ThreadsWithoutShardingIsRejected)
{
    auto cfg = SystemConfig::preset("8D-4C");
    cfg.sim.threads = 4; // sim.shard stays "none"
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "sim.shard");
}

TEST(ParallelConfig, SequentialDefaultIsUntouched)
{
    // The classic kernel must not even build a shard set.
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.idcMethod = IdcMethod::DimmLink;
    System sys(cfg);
    EXPECT_EQ(sys.shards(), nullptr);
}

} // namespace
} // namespace dimmlink
