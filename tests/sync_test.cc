/** @file Synchronization tests: barrier correctness and the
 * centralized vs hierarchical schemes over every fabric. */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "idc/fabric.hh"
#include "sim/event_queue.hh"
#include "sync/sync_manager.hh"

namespace dimmlink {
namespace {

class SyncFixture
{
  public:
    SyncFixture(SyncScheme scheme, IdcMethod method,
                const std::string &preset)
    {
        cfg = SystemConfig::preset(preset);
        cfg.idcMethod = method;
        cfg.syncScheme = scheme;
        for (unsigned c = 0; c < cfg.numChannels; ++c) {
            const std::string n = "host.channel" + std::to_string(c);
            channels.push_back(std::make_unique<host::Channel>(
                eq, n, cfg.host.channelGBps, reg.group(n)));
            ptrs.push_back(channels.back().get());
        }
        fabric = idc::makeFabric(eq, cfg, ptrs, reg);
        fabric->setMemAccess([this](DimmId, Addr, std::uint32_t,
                                    bool,
                                    std::function<void()> done) {
            eq.scheduleIn(50 * tickPerNs, std::move(done));
        });
        fabric->enterNmpMode();
        sync = std::make_unique<SyncManager>(eq, cfg, fabric.get(),
                                             reg);
    }

    ~SyncFixture() { fabric->exitNmpMode(); }

    /** Run one barrier episode with @p homes; return the span from
     * first arrival to last release. */
    Tick
    episode(const std::vector<DimmId> &homes)
    {
        sync->setParticipants(homes);
        unsigned released = 0;
        Tick last = 0;
        const Tick start = eq.now();
        for (unsigned t = 0; t < homes.size(); ++t) {
            sync->arrive(static_cast<ThreadId>(t), homes[t], [&] {
                ++released;
                last = eq.now();
            });
        }
        while (released < homes.size() && eq.step()) {
        }
        EXPECT_EQ(released, homes.size());
        return last - start;
    }

    EventQueue eq;
    stats::Registry reg;
    SystemConfig cfg;
    std::vector<std::unique_ptr<host::Channel>> channels;
    std::vector<host::Channel *> ptrs;
    std::unique_ptr<idc::Fabric> fabric;
    std::unique_ptr<SyncManager> sync;
};

struct SyncCase
{
    SyncScheme scheme;
    IdcMethod method;
};

class SyncAcrossFabrics : public ::testing::TestWithParam<SyncCase>
{
};

TEST_P(SyncAcrossFabrics, BarrierReleasesEveryThread)
{
    const auto [scheme, method] = GetParam();
    SyncFixture f(scheme, method, "8D-4C");
    std::vector<DimmId> homes;
    for (unsigned t = 0; t < 32; ++t)
        homes.push_back(static_cast<DimmId>(t / 4));
    const Tick span = f.episode(homes);
    EXPECT_GT(span, 0u);
    EXPECT_EQ(f.sync->episodes(), 1u);
}

TEST_P(SyncAcrossFabrics, RepeatedEpisodesWork)
{
    const auto [scheme, method] = GetParam();
    SyncFixture f(scheme, method, "4D-2C");
    std::vector<DimmId> homes{0, 0, 1, 2, 3, 3};
    for (int i = 0; i < 5; ++i)
        f.episode(homes);
    EXPECT_EQ(f.sync->episodes(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SyncAcrossFabrics,
    ::testing::Values(
        SyncCase{SyncScheme::Centralized, IdcMethod::CpuForwarding},
        SyncCase{SyncScheme::Centralized, IdcMethod::DedicatedBus},
        SyncCase{SyncScheme::Centralized, IdcMethod::DimmLink},
        SyncCase{SyncScheme::Hierarchical, IdcMethod::DimmLink},
        SyncCase{SyncScheme::Hierarchical,
                 IdcMethod::CpuForwarding}));

TEST(SyncManager, MastersAreGroupMiddles)
{
    SyncFixture f(SyncScheme::Hierarchical, IdcMethod::DimmLink,
                  "16D-8C");
    EXPECT_EQ(f.sync->masterOf(0), 4);
    EXPECT_EQ(f.sync->masterOf(1), 12);
    EXPECT_EQ(f.sync->globalMaster(), 4);
}

TEST(SyncManager, HierarchicalSendsFewerInterDimmMessages)
{
    // 16 DIMMs, 2 groups, 4 threads per DIMM.
    std::vector<DimmId> homes;
    for (unsigned t = 0; t < 64; ++t)
        homes.push_back(static_cast<DimmId>(t / 4));

    SyncFixture hier(SyncScheme::Hierarchical, IdcMethod::DimmLink,
                     "16D-8C");
    hier.episode(homes);
    const double hier_msgs = hier.reg.scalar("sync.messages");

    SyncFixture cent(SyncScheme::Centralized, IdcMethod::DimmLink,
                     "16D-8C");
    cent.episode(homes);
    const double cent_msgs = cent.reg.scalar("sync.messages");

    EXPECT_LT(hier_msgs, cent_msgs);
}

TEST(SyncManager, HierarchicalBeatsCentralizedOverDimmLink)
{
    std::vector<DimmId> homes;
    for (unsigned t = 0; t < 64; ++t)
        homes.push_back(static_cast<DimmId>(t / 4));

    SyncFixture hier(SyncScheme::Hierarchical, IdcMethod::DimmLink,
                     "16D-8C");
    SyncFixture cent(SyncScheme::Centralized, IdcMethod::DimmLink,
                     "16D-8C");
    // Average several episodes; same fabric, different schemes.
    Tick hier_t = 0, cent_t = 0;
    for (int i = 0; i < 3; ++i) {
        hier_t += hier.episode(homes);
        cent_t += cent.episode(homes);
    }
    EXPECT_LT(hier_t, cent_t);
}

TEST(SyncManager, SingleThreadBarrierIsImmediate)
{
    SyncFixture f(SyncScheme::Hierarchical, IdcMethod::DimmLink,
                  "4D-2C");
    const Tick span = f.episode({0});
    EXPECT_LT(span, 1 * tickPerUs);
}

TEST(SyncManagerDeath, ArrivalWithoutParticipantsPanics)
{
    SyncFixture f(SyncScheme::Centralized, IdcMethod::DimmLink,
                  "4D-2C");
    EXPECT_DEATH(f.sync->arrive(0, 0, [] {}), "participants");
}

} // namespace
} // namespace dimmlink
