/** @file DIMM-module tests: the Local MC path, the NMP core's op
 * execution (MSHRs, fences, stall attribution), and the
 * DL-Controller's functional packet path. */

#include <gtest/gtest.h>

#include <deque>

#include "common/config.hh"
#include "dimm/dl_controller.hh"
#include "system/system.hh"
#include "workloads/op_stream.hh"

namespace dimmlink {
namespace {

/** A canned program fed from a deque of ops. */
class ScriptProgram : public ThreadProgram
{
  public:
    explicit ScriptProgram(std::deque<Op> ops) : ops(std::move(ops))
    {
    }

    Op
    next() override
    {
        if (ops.empty())
            return Op::done();
        Op op = std::move(ops.front());
        ops.pop_front();
        return op;
    }

  private:
    std::deque<Op> ops;
};

class DimmFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto cfg = SystemConfig::preset("4D-2C");
        sys = std::make_unique<System>(cfg);
    }

    /** Run a script on core 0 of DIMM 0 and return the duration. */
    Tick
    runScript(std::deque<Op> ops)
    {
        sys->enterNmpMode();
        sys->sync().setParticipants({0});
        bool done = false;
        const Tick start = sys->queue().now();
        sys->dimm(0).core(0).run(
            0, std::make_unique<ScriptProgram>(std::move(ops)),
            [&] { done = true; });
        while (!done && sys->queue().step()) {
        }
        EXPECT_TRUE(done);
        const Tick span = sys->queue().now() - start;
        sys->exitNmpMode();
        return span;
    }

    Addr
    localAddr(DimmId d, Addr off = 0)
    {
        return sys->addressMap().globalOf(d, off);
    }

    std::unique_ptr<System> sys;
};

TEST_F(DimmFixture, ComputeOpTakesInstructionsOverIpc)
{
    // 2000 instructions at IPC 1 on a 2 GHz core = 1 us.
    const Tick t = runScript({Op::compute(2000)});
    EXPECT_GE(t, 1 * tickPerUs);
    EXPECT_LE(t, 1 * tickPerUs + 10 * tickPerNs);
}

TEST_F(DimmFixture, LocalUncachedReadPaysDramLatency)
{
    const Tick t = runScript(
        {Op::read(localAddr(0, 4096), 64, DataClass::SharedRW,
                  true)});
    EXPECT_GT(t, 30 * tickPerNs); // tRCD+tCL+tBL is ~30 ns
    EXPECT_LT(t, 300 * tickPerNs);
}

TEST_F(DimmFixture, CachedRereadsAreFast)
{
    // Two reads of the same private line: second hits L1.
    const Tick together = runScript(
        {Op::read(localAddr(0, 8192), 64, DataClass::Private, true),
         Op::read(localAddr(0, 8192), 64, DataClass::Private,
                  true)});
    const Tick single = runScript({Op::read(localAddr(0, 16384), 64,
                                            DataClass::Private,
                                            true)});
    EXPECT_LT(together, 2 * single);
    EXPECT_GT(sys->stats().scalar("dimm0.core0.l1.hits"), 0.0);
}

TEST_F(DimmFixture, RemoteReadIsCountedAsRemoteStall)
{
    runScript({Op::read(localAddr(3, 0), 64, DataClass::SharedRW,
                        true)});
    EXPECT_GT(sys->stats().scalar("dimm0.core0.stallRemotePs"),
              0.0);
    EXPECT_DOUBLE_EQ(sys->stats().scalar("dimm0.core0.remoteRefs"),
                     1.0);
    EXPECT_DOUBLE_EQ(sys->stats().scalar("dimm0.mc.remoteReads"),
                     1.0);
}

TEST_F(DimmFixture, MshrWindowOverlapsRequests)
{
    // 16 independent uncached reads with a fence: with 16 MSHRs they
    // overlap, so the total is far less than 16 serial accesses.
    std::vector<MemRef> refs;
    for (unsigned i = 0; i < 16; ++i)
        refs.push_back(MemRef{localAddr(0, 65536 + i * 8192), 64,
                              false, DataClass::SharedRW});
    const Tick batch = runScript({Op::mem(refs, true)});
    const Tick single = runScript(
        {Op::read(localAddr(0, 1 << 20), 64, DataClass::SharedRW,
                  true)});
    EXPECT_LT(batch, 8 * single);
}

TEST_F(DimmFixture, RankParallelismSpreadsLines)
{
    // Consecutive lines alternate ranks (2 ranks per DIMM).
    std::vector<MemRef> refs;
    for (unsigned i = 0; i < 8; ++i)
        refs.push_back(MemRef{localAddr(0, i * 64), 64, false,
                              DataClass::SharedRW});
    runScript({Op::mem(refs, true)});
    EXPECT_GT(sys->stats().scalar("dimm0.mc.rank0.reads"), 0.0);
    EXPECT_GT(sys->stats().scalar("dimm0.mc.rank1.reads"), 0.0);
}

TEST_F(DimmFixture, BroadcastOpCompletes)
{
    runScript({Op::broadcast(localAddr(0, 0), 4096)});
    EXPECT_DOUBLE_EQ(sys->stats().scalar("dimm0.core0.broadcasts"),
                     1.0);
    EXPECT_GT(sys->stats().scalar("fabric.dl.broadcasts"), 0.0);
}

TEST_F(DimmFixture, CancelStopsTheThread)
{
    sys->enterNmpMode();
    sys->sync().setParticipants({0});
    bool done = false;
    sys->dimm(0).core(0).run(
        0,
        std::make_unique<ScriptProgram>(
            std::deque<Op>{Op::compute(1000000)}),
        [&] { done = true; });
    sys->queue().runUntil(sys->queue().now() + 10 * tickPerNs);
    EXPECT_TRUE(sys->dimm(0).core(0).busy());
    sys->dimm(0).core(0).cancel();
    EXPECT_FALSE(sys->dimm(0).core(0).busy());
    sys->queue().runUntil(sys->queue().now() + 2 * tickPerMs);
    EXPECT_FALSE(done); // the cancelled thread never completes
    sys->exitNmpMode();
}

TEST_F(DimmFixture, FlushAfterKernel)
{
    runScript({Op::read(localAddr(0, 4096), 64, DataClass::Private,
                        true)});
    // exitNmpMode() flushed the caches.
    EXPECT_FALSE(sys->dimm(0).l2Cache().probe(4096));
}

TEST(DlControllerTest, TagsRecycleThroughSixBits)
{
    EventQueue eq;
    stats::Registry reg;
    DlController dlc(eq, "dlc", 0, 1000, 3, reg);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(dlc.allocTag(), i);
    EXPECT_EQ(dlc.allocTag(), 0u); // wrapped
}

TEST(DlControllerTest, PacketBufferFifo)
{
    EventQueue eq;
    stats::Registry reg;
    DlController dlc(eq, "dlc", 0, 1000, 3, reg);
    EXPECT_FALSE(dlc.popPacket().has_value());
    dlc.pushPacket({1, 2, 3});
    dlc.pushPacket({4, 5});
    EXPECT_EQ(dlc.packetBufferDepth(), 2u);
    auto a = dlc.popPacket();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->size(), 3u);
    auto b = dlc.popPacket();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->size(), 2u);
    EXPECT_FALSE(dlc.popPacket().has_value());
}

TEST(DlControllerTest, PollingRegisters)
{
    EventQueue eq;
    stats::Registry reg;
    DlController dlc(eq, "dlc", 0, 1000, 3, reg);
    EXPECT_EQ(dlc.pollingCount(), 0u);
    dlc.raiseForward();
    dlc.raiseForward();
    EXPECT_EQ(dlc.pollingCount(), 2u);
    EXPECT_EQ(dlc.pollClear(), 2u);
    EXPECT_EQ(dlc.pollingCount(), 0u);
}

TEST(DlControllerTest, ReliablePathEndToEnd)
{
    EventQueue eq;
    stats::Registry reg;
    DlController tx(eq, "tx", 0, 1000, 3, reg);
    DlController rx(eq, "rx", 1, 1000, 3, reg);

    proto::Packet delivered;
    bool got = false, acked = false;
    tx.sendReliable(
        proto::Codec::makeWriteReq(0, 1, 0x123, tx.allocTag(), 32),
        [&](const proto::Packet &, std::vector<std::uint8_t> wire) {
            rx.onWireArrive(
                wire, /*corrupted=*/false,
                [&](const proto::Packet &ctrl) {
                    tx.onControlArrive(ctrl);
                },
                [&](proto::Packet p) {
                    delivered = std::move(p);
                    got = true;
                });
        },
        [&] { acked = true; });
    eq.run();
    EXPECT_TRUE(got);
    EXPECT_TRUE(acked);
    EXPECT_EQ(delivered.addr, 0x123u);
    EXPECT_EQ(delivered.cmd, proto::DlCommand::WriteReq);
}

} // namespace
} // namespace dimmlink
