/** @file Workload tests: graph container/generators, slice layout,
 * and algorithmic verification of every kernel run on the full NMP
 * system. */

#include <gtest/gtest.h>

#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {
namespace {

TEST(Graph, RmatIsDeterministic)
{
    const Graph a = Graph::rmat(8, 4, 42);
    const Graph b = Graph::rmat(8, 4, 42);
    ASSERT_EQ(a.numVertices(), b.numVertices());
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (std::uint32_t v = 0; v < a.numVertices(); ++v)
        ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(Graph, CsrIsConsistent)
{
    const Graph g = Graph::rmat(8, 4, 7);
    EXPECT_EQ(g.numVertices(), 256u);
    EXPECT_GT(g.numEdges(), 500u);
    std::uint64_t sum = 0;
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(g.edgeEnd(v) - g.edgeBegin(v), g.degree(v));
        for (std::uint64_t e = g.edgeBegin(v); e < g.edgeEnd(v);
             ++e) {
            EXPECT_LT(g.neighbor(e), g.numVertices());
            EXPECT_NE(g.neighbor(e), v); // no self loops
            EXPECT_GE(g.weight(e), 1u);
        }
        sum += g.degree(v);
    }
    EXPECT_EQ(sum, g.numEdges());
}

TEST(Graph, RmatIsSkewed)
{
    const Graph g = Graph::rmat(10, 8, 3);
    std::uint32_t max_deg = 0;
    for (std::uint32_t v = 0; v < g.numVertices(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    const double avg =
        static_cast<double>(g.numEdges()) / g.numVertices();
    EXPECT_GT(max_deg, 8 * avg); // heavy-tailed degrees
}

TEST(Graph, Grid2dStructure)
{
    const Graph g = Graph::grid2d(4, 5);
    EXPECT_EQ(g.numVertices(), 20u);
    // Interior vertex has degree 4, corner 2.
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(6), 4u);
}

TEST(Graph, BfsAndSsspReferencesAgreeOnUnitWeights)
{
    // On any graph, hop distance <= weighted distance / min weight.
    const Graph g = Graph::uniform(200, 800, 5);
    const auto bfs = g.bfsReference(0);
    const auto sssp = g.ssspReference(0);
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        const bool bfs_reach =
            bfs[v] != std::numeric_limits<std::uint32_t>::max();
        const bool sssp_reach =
            sssp[v] != std::numeric_limits<std::uint64_t>::max();
        EXPECT_EQ(bfs_reach, sssp_reach);
        if (bfs_reach) {
            EXPECT_LE(bfs[v], sssp[v]); // weights >= 1
        }
    }
}

TEST(GraphSlices, LayoutIsDisjointAndHomed)
{
    const Graph g = Graph::rmat(10, 4, 1);
    WorkloadParams p;
    p.numThreads = 16;
    p.numDimms = 4;
    dram::GlobalAddressMap gmap(4, 1ull << 30);
    AddressAllocator alloc(gmap);
    GraphSlices slices(g, p, alloc, 2, 8);

    for (unsigned t = 0; t < 16; ++t) {
        EXPECT_LE(slices.vStart(t), slices.vEnd(t));
        for (std::uint32_t v = slices.vStart(t);
             v < slices.vEnd(t); ++v) {
            ASSERT_EQ(slices.sliceOf(v), t);
            const Addr a = slices.propAddr(0, v);
            ASSERT_EQ(gmap.dimmOf(a), slices.homeOf(v));
            ASSERT_EQ(slices.homeOf(v), t / 4);
        }
    }
    EXPECT_EQ(slices.vEnd(15), g.numVertices());
}

TEST(GraphSlices, EdgeBalancedAgainstRmatSkew)
{
    const Graph g = Graph::rmat(12, 8, 1);
    WorkloadParams p;
    p.numThreads = 16;
    p.numDimms = 4;
    dram::GlobalAddressMap gmap(4, 1ull << 30);
    AddressAllocator alloc(gmap);
    GraphSlices slices(g, p, alloc, 1);

    // No slice may own more than ~3x its fair share of edges.
    const double fair =
        static_cast<double>(g.numEdges()) / p.numThreads;
    for (unsigned t = 0; t < p.numThreads; ++t) {
        const std::uint64_t edges =
            g.edgeBegin(slices.vEnd(t)) -
            g.edgeBegin(slices.vStart(t));
        EXPECT_LT(static_cast<double>(edges), 3.0 * fair)
            << "slice " << t;
    }
}

TEST(AddressAllocatorTest, BumpAllocatesAligned)
{
    dram::GlobalAddressMap gmap(2, 1ull << 30);
    AddressAllocator alloc(gmap);
    const Addr a = alloc.alloc(0, 100);
    const Addr b = alloc.alloc(0, 100);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(gmap.dimmOf(a), 0);
    EXPECT_EQ(gmap.dimmOf(alloc.alloc(1, 64)), 1);
}

TEST(WorkloadFactory, KnownNamesAndLists)
{
    dram::GlobalAddressMap gmap(4, 1ull << 30);
    WorkloadParams p;
    p.numThreads = 16;
    p.numDimms = 4;
    p.scale = 8;
    for (const auto &name : p2pWorkloadNames())
        EXPECT_EQ(makeWorkload(name, p, gmap)->name(), name);
    EXPECT_EQ(p2pWorkloadNames().size(), 6u);
    EXPECT_EQ(broadcastWorkloadNames().size(), 3u);
    EXPECT_EXIT(makeWorkload("nope", p, gmap),
                ::testing::ExitedWithCode(1), "unknown workload");
}

/** Full-system algorithmic verification of each kernel. */
struct VerifyCase
{
    const char *name;
    std::uint64_t scale;
    bool broadcast;
};

class KernelVerify : public ::testing::TestWithParam<VerifyCase>
{
};

TEST_P(KernelVerify, ResultMatchesReferenceOnTheNmpSystem)
{
    const auto [name, scale, broadcast] = GetParam();
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);

    WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = scale;
    p.rounds = 4;
    p.broadcastMode = broadcast;
    auto wl = makeWorkload(name, p, sys.addressMap());

    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified) << name;
    EXPECT_GT(r.kernelTicks, 0u);
    EXPECT_GT(r.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelVerify,
    ::testing::Values(VerifyCase{"bfs", 9, false},
                      VerifyCase{"hotspot", 1, false},
                      VerifyCase{"kmeans", 1, false},
                      VerifyCase{"nw", 1, false},
                      VerifyCase{"pagerank", 8, false},
                      VerifyCase{"sssp", 8, false},
                      VerifyCase{"spmv", 8, false},
                      VerifyCase{"tspow", 1, false},
                      VerifyCase{"pagerank", 8, true},
                      VerifyCase{"sssp", 8, true},
                      VerifyCase{"spmv", 8, true},
                      VerifyCase{"stream", 1, false},
                      VerifyCase{"gups", 1, false}),
    [](const auto &info) {
        return std::string(info.param.name) +
               (info.param.broadcast ? "_bc" : "");
    });

TEST(KernelRerun, ResetAllowsASecondVerifiedRun)
{
    auto cfg = SystemConfig::preset("4D-2C");
    System sys(cfg);
    WorkloadParams p;
    p.numThreads = 16;
    p.numDimms = 4;
    p.scale = 8;
    auto wl = makeWorkload("bfs", p, sys.addressMap());

    Runner r1(sys, *wl);
    EXPECT_TRUE(r1.run().verified);
    wl->reset();
    Runner r2(sys, *wl);
    EXPECT_TRUE(r2.run().verified);
}

} // namespace
} // namespace workloads
} // namespace dimmlink
