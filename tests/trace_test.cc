/** @file Trace capture/replay tests: format round-trips, recording
 * fidelity, and replay producing identical simulated timing. */

#include <gtest/gtest.h>

#include <sstream>

#include "system/runner.hh"
#include "system/system.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace trace {
namespace {

ThreadTrace
sampleTrace()
{
    ThreadTrace t;
    t.append(Op::compute(123));
    t.append(Op::read(0x1000, 64, DataClass::SharedRO));
    t.append(Op::write(0x2040, 8, DataClass::SharedRW, true));
    std::vector<MemRef> batch;
    batch.push_back(MemRef{0x40, 4, false, DataClass::Private});
    batch.push_back(MemRef{0x80, 64, true, DataClass::SharedRW});
    t.append(Op::mem(batch, false));
    t.append(Op::barrier());
    t.append(Op::broadcast(0x4000, 4096));
    t.append(Op::reqStart(777));
    t.append(Op::reqStartNow());
    t.append(Op::reqEnd());
    t.append(Op::done());
    return t;
}

TEST(Trace, SaveLoadRoundTrip)
{
    const ThreadTrace t = sampleTrace();
    std::stringstream ss;
    t.save(ss);
    const ThreadTrace u = ThreadTrace::load(ss);
    EXPECT_TRUE(t == u);
    EXPECT_EQ(u.size(), 10u);
    EXPECT_EQ(u.memRefs(), 4u);
    EXPECT_EQ(u.instructions(), 123u);
}

TEST(Trace, ServingOpsSurviveTheFormat)
{
    // The v2 additions: arrival ticks (including the closed-loop
    // sentinel) must round-trip exactly.
    ThreadTrace t;
    t.append(Op::reqStart(0));
    t.append(Op::reqStart(123456789));
    t.append(Op::reqStartNow());
    t.append(Op::reqEnd());
    t.append(Op::done());
    std::stringstream ss;
    t.save(ss);
    const ThreadTrace u = ThreadTrace::load(ss);
    ASSERT_EQ(u.size(), 5u);
    EXPECT_EQ(u.at(0).kind, Op::Kind::ReqStart);
    EXPECT_EQ(u.at(1).tickArg, Tick{123456789});
    EXPECT_EQ(u.at(2).tickArg, Op::reqNow);
    EXPECT_EQ(u.at(3).kind, Op::Kind::ReqEnd);
    EXPECT_TRUE(t == u);
}

TEST(Trace, ReliabilityOpsSurviveTheFormat)
{
    // The v3 additions: shed horizons, home DIMMs and hedge replica
    // batches must round-trip exactly.
    ThreadTrace t;
    t.append(Op::reqStartServe(777, 999, 3));
    t.append(Op::reqStartServe(Op::reqNow, 0, -1));
    std::vector<MemRef> refs, hedge;
    refs.push_back(MemRef{0x40, 64, false, DataClass::SharedRW});
    refs.push_back(MemRef{0x80, 64, false, DataClass::SharedRW});
    hedge.push_back(MemRef{0x4040, 64, false, DataClass::SharedRW});
    t.append(Op::memHedged(refs, hedge));
    t.append(Op::reqEnd());
    t.append(Op::done());
    std::stringstream ss;
    t.save(ss);
    const ThreadTrace u = ThreadTrace::load(ss);
    ASSERT_EQ(u.size(), 5u);
    EXPECT_EQ(u.at(0).tickArg, Tick{777});
    EXPECT_EQ(u.at(0).tickArg2, Tick{999});
    EXPECT_EQ(u.at(0).homeDimm, 3);
    EXPECT_EQ(u.at(1).tickArg, Op::reqNow);
    EXPECT_EQ(u.at(1).homeDimm, -1);
    ASSERT_EQ(u.at(2).kind, Op::Kind::HedgedMem);
    EXPECT_EQ(u.at(2).refs.size(), 2u);
    ASSERT_EQ(u.at(2).hedge.size(), 1u);
    EXPECT_EQ(u.at(2).hedge[0].addr, Addr{0x4040});
    // A hedged batch always fences: the race resolves per side.
    EXPECT_TRUE(u.at(2).fenceAfter);
    EXPECT_TRUE(t == u);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream ss("not a trace at all");
    EXPECT_EXIT(ThreadTrace::load(ss),
                ::testing::ExitedWithCode(1), "magic|truncated");
}

TEST(Trace, RecordingCapturesTheStream)
{
    auto inner = std::make_unique<ReplayProgram>(
        std::make_shared<ThreadTrace>(sampleTrace()));
    RecordingProgram rec(std::move(inner));
    while (rec.next().kind != Op::Kind::Done) {
    }
    // The recording includes the Done op.
    EXPECT_EQ(rec.trace()->size(), 10u);
    EXPECT_TRUE(*rec.trace() == sampleTrace());
}

TEST(Trace, ReplayIsExhaustibleAndSticky)
{
    ThreadTrace t;
    t.append(Op::compute(5));
    ReplayProgram rp(std::make_shared<ThreadTrace>(t));
    EXPECT_EQ(rp.next().kind, Op::Kind::Compute);
    EXPECT_EQ(rp.next().kind, Op::Kind::Done);
    EXPECT_EQ(rp.next().kind, Op::Kind::Done); // stays Done
}

TEST(Trace, RecordedKernelReplaysWithIdenticalTiming)
{
    auto cfg = SystemConfig::preset("4D-2C");
    workloads::WorkloadParams p;
    p.numThreads = 16;
    p.numDimms = 4;
    p.scale = 8;
    p.rounds = 4;

    // Run 1: record every thread's op stream.
    std::vector<std::shared_ptr<ThreadTrace>> traces(p.numThreads);
    Tick recorded_ticks = 0;
    {
        System sys(cfg);
        auto wl = workloads::makeWorkload("kmeans", p,
                                          sys.addressMap());
        sys.enterNmpMode();
        std::vector<DimmId> homes(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t)
            homes[t] = static_cast<DimmId>(t / 4);
        sys.sync().setParticipants(homes);
        unsigned done = 0;
        const Tick start = sys.queue().now();
        for (unsigned t = 0; t < p.numThreads; ++t) {
            auto rec = std::make_unique<RecordingProgram>(
                wl->program(t));
            traces[t] = rec->trace();
            sys.dimm(homes[t]).core(t % 4).run(
                t, std::move(rec), [&done] { ++done; });
        }
        while (done < p.numThreads && sys.queue().step()) {
        }
        recorded_ticks = sys.queue().now() - start;
        sys.exitNmpMode();
    }

    // Run 2: replay the traces on a fresh system.
    {
        System sys(cfg);
        sys.enterNmpMode();
        std::vector<DimmId> homes(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t)
            homes[t] = static_cast<DimmId>(t / 4);
        sys.sync().setParticipants(homes);
        unsigned done = 0;
        const Tick start = sys.queue().now();
        for (unsigned t = 0; t < p.numThreads; ++t) {
            sys.dimm(homes[t]).core(t % 4).run(
                t, std::make_unique<ReplayProgram>(traces[t]),
                [&done] { ++done; });
        }
        while (done < p.numThreads && sys.queue().step()) {
        }
        const Tick replayed = sys.queue().now() - start;
        sys.exitNmpMode();
        EXPECT_EQ(replayed, recorded_ticks);
    }
}

} // namespace
} // namespace trace
} // namespace dimmlink
