/** @file DL protocol tests: header fields, wire format, CRC
 * protection, segmentation, codec latencies, and DLL retry. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "proto/codec.hh"
#include "proto/dll.hh"
#include "proto/packet.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace proto {
namespace {

TEST(Header, FieldRoundTrip)
{
    Packet p;
    p.src = 0x2a;
    p.dst = 0x15;
    p.cmd = DlCommand::WriteReq;
    p.addr = 0x1234567890ull & ((1ull << 37) - 1);
    p.tag = 0x3f;
    p.payload.assign(48, 0);

    Packet q;
    decodeHeader(encodeHeader(p), q);
    EXPECT_EQ(q.src, p.src);
    EXPECT_EQ(q.dst, p.dst);
    EXPECT_EQ(q.cmd, p.cmd);
    EXPECT_EQ(q.addr, p.addr);
    EXPECT_EQ(q.tag, p.tag);
}

class HeaderSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HeaderSweep, RandomFieldsSurvive)
{
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        Packet p;
        p.src = static_cast<std::uint8_t>(rng.below(64));
        p.dst = static_cast<std::uint8_t>(rng.below(64));
        p.cmd = static_cast<DlCommand>(rng.below(9));
        p.addr = rng.below(1ull << 37);
        p.tag = static_cast<std::uint8_t>(rng.below(64));
        Packet q;
        decodeHeader(encodeHeader(p), q);
        ASSERT_EQ(q.src, p.src);
        ASSERT_EQ(q.dst, p.dst);
        ASSERT_EQ(q.cmd, p.cmd);
        ASSERT_EQ(q.addr, p.addr);
        ASSERT_EQ(q.tag, p.tag);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderSweep,
                         ::testing::Values(1, 2, 3));

TEST(Packet, FlitGeometry)
{
    Packet p = Codec::makeReadReq(1, 2, 0x40, 0);
    EXPECT_EQ(p.numFlits(), 1u); // header/tail-only packet
    EXPECT_EQ(p.wireBytes(), 16u);

    p = Codec::makeWriteReq(1, 2, 0x40, 0, 256);
    EXPECT_EQ(p.numFlits(), 17u); // 16 payload flits + 1
    EXPECT_EQ(p.wireBytes(), 272u);

    p = Codec::makeWriteReq(1, 2, 0x40, 0, 1);
    EXPECT_EQ(p.numFlits(), 2u); // padded to a whole flit
}

TEST(Packet, WireRoundTripWithPayload)
{
    Packet p = Codec::makeWriteReq(3, 5, 0xbeef, 7, 100);
    for (unsigned i = 0; i < p.payload.size(); ++i)
        p.payload[i] = static_cast<std::uint8_t>(i);
    p.dll = 0xcafe;

    const auto wire = encode(p);
    EXPECT_EQ(wire.size(), p.wireBytes());

    Packet q;
    ASSERT_TRUE(decode(wire, q));
    EXPECT_EQ(q.src, p.src);
    EXPECT_EQ(q.dst, p.dst);
    EXPECT_EQ(q.cmd, p.cmd);
    EXPECT_EQ(q.addr, p.addr);
    EXPECT_EQ(q.tag, p.tag);
    EXPECT_EQ(q.dll, p.dll);
    // Payload recovered in flit-padded form.
    ASSERT_EQ(q.payload.size(), 112u);
    for (unsigned i = 0; i < 100; ++i)
        ASSERT_EQ(q.payload[i], static_cast<std::uint8_t>(i));
}

class WireBitFlip : public ::testing::TestWithParam<int>
{
};

TEST_P(WireBitFlip, CrcCatchesEveryDataBitFlip)
{
    Packet p = Codec::makeWriteReq(1, 2, 0x1000, 3, 32);
    for (unsigned i = 0; i < p.payload.size(); ++i)
        p.payload[i] = static_cast<std::uint8_t>(0xa0 + i);
    auto wire = encode(p);

    const int bit = GetParam();
    const auto byte = static_cast<std::size_t>(bit / 8);
    // Every byte — header, payload, CRC, and the DLL word — is
    // protected: the CRC covers the DLL field too, so a flip confined
    // to the retry sequence number cannot pass validation.
    wire[byte] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Packet q;
    EXPECT_FALSE(decode(wire, q)) << "bit " << bit;
}

INSTANTIATE_TEST_SUITE_P(AllBits, WireBitFlip,
                         ::testing::Range(0, 48 * 8, 7));

TEST(Packet, DecodeRejectsBadSizes)
{
    Packet q;
    EXPECT_FALSE(decode({}, q));
    EXPECT_FALSE(decode(std::vector<std::uint8_t>(8, 0), q));
    EXPECT_FALSE(decode(std::vector<std::uint8_t>(33, 0), q));
    // Length not matching LEN: a valid 2-flit packet truncated.
    const auto wire = encode(Codec::makeWriteReq(0, 1, 0, 0, 16));
    std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + 16);
    EXPECT_FALSE(decode(cut, q));
}

TEST(Codec, Segmentation)
{
    EXPECT_EQ(Codec::segment(0).size(), 1u);
    EXPECT_EQ(Codec::segment(256).size(), 1u);
    EXPECT_EQ(Codec::segment(257).size(), 2u);
    const auto sizes = Codec::segment(1000);
    EXPECT_EQ(sizes.size(), 4u);
    unsigned total = 0;
    for (unsigned s : sizes)
        total += s;
    EXPECT_EQ(total, 1000u);
}

TEST(Codec, LatencyModel)
{
    const Packet small = Codec::makeReadReq(0, 1, 0, 0);
    const Packet big = Codec::makeWriteReq(0, 1, 0, 0, 256);
    EXPECT_EQ(Codec::packetizeCycles(small), 18u + 2u);
    EXPECT_EQ(Codec::packetizeCycles(big), 18u + 2u * 17);
    EXPECT_GT(Codec::packetizeCycles(big),
              Codec::packetizeCycles(small));
}

/** A lossy in-memory transport between a sender and a receiver. */
class DllFixture : public ::testing::Test
{
  protected:
    DllFixture()
        : sender(eq, 1000, 4, reg.group("tx")),
          receiver(reg.group("rx"))
    {
    }

    /** Deliver the packet to the receiver, corrupting the first
     * @p corrupt_count arrivals. */
    void
    transportTo(const Packet &p, unsigned &arrivals,
                unsigned corrupt_count, unsigned &delivered)
    {
        const auto wire = encode(p);
        const bool corrupted = arrivals < corrupt_count;
        ++arrivals;
        std::vector<Packet> out;
        std::optional<Packet> ctrl;
        receiver.onArrive(wire, corrupted, out, ctrl);
        delivered += static_cast<unsigned>(out.size());
        if (ctrl)
            sender.onControl(*ctrl);
    }

    EventQueue eq;
    stats::Registry reg;
    RetrySender sender;
    RetryReceiver receiver;
};

TEST_F(DllFixture, CleanDeliveryAcksImmediately)
{
    unsigned arrivals = 0, delivered = 0;
    bool acked = false;
    sender.send(Codec::makeWriteReq(0, 1, 0x40, 0, 64),
                [&](const Packet &p) {
                    transportTo(p, arrivals, 0, delivered);
                },
                [&] { acked = true; });
    eq.run();
    EXPECT_TRUE(acked);
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(arrivals, 1u);
    EXPECT_DOUBLE_EQ(reg.scalar("tx.dllRetries"), 0.0);
}

TEST_F(DllFixture, CorruptionTriggersNackRetransmit)
{
    unsigned arrivals = 0, delivered = 0;
    bool acked = false;
    sender.send(Codec::makeWriteReq(0, 1, 0x40, 1, 64),
                [&](const Packet &p) {
                    transportTo(p, arrivals, 2, delivered);
                },
                [&] { acked = true; });
    eq.run();
    EXPECT_TRUE(acked);
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(arrivals, 3u); // 2 corrupted + 1 clean
    EXPECT_DOUBLE_EQ(reg.scalar("tx.dllRetries"), 2.0);
    EXPECT_DOUBLE_EQ(reg.scalar("rx.dllCorrupt"), 2.0);
}

TEST_F(DllFixture, TimeoutRetransmitsWhenPacketVanishes)
{
    unsigned attempts = 0;
    unsigned delivered = 0;
    bool acked = false;
    sender.send(Codec::makeSyncMsg(0, 1, 2),
                [&](const Packet &p) {
                    // Drop the first transmission entirely.
                    if (attempts++ == 0)
                        return;
                    unsigned arrivals = 1;
                    transportTo(p, arrivals, 0, delivered);
                },
                [&] { acked = true; });
    eq.run();
    EXPECT_TRUE(acked);
    EXPECT_EQ(attempts, 2u);
    EXPECT_EQ(delivered, 1u);
}

TEST_F(DllFixture, DuplicateDeliveryIsFiltered)
{
    // Deliver the same wire image twice (retransmit after a lost
    // ACK): the receiver must deliver upward only once.
    const Packet p = Codec::makeWriteReq(2, 3, 0x80, 4, 16);
    unsigned delivered = 0;
    bool first_ack_dropped = false;
    sender.send(p,
                [&](const Packet &wp) {
                    const auto wire = encode(wp);
                    std::vector<Packet> out;
                    std::optional<Packet> ctrl;
                    receiver.onArrive(wire, false, out, ctrl);
                    delivered += static_cast<unsigned>(out.size());
                    if (!first_ack_dropped) {
                        first_ack_dropped = true; // lose the ACK
                        return;
                    }
                    if (ctrl)
                        sender.onControl(*ctrl);
                },
                nullptr);
    eq.run();
    EXPECT_EQ(delivered, 1u);
    EXPECT_DOUBLE_EQ(reg.scalar("rx.dllDuplicates"), 1.0);
}

TEST_F(DllFixture, PermanentLossExhaustsRetriesAndFails)
{
    bool failed = false;
    unsigned attempts = 0;
    sender.send(Codec::makeSyncMsg(0, 1, 5),
                [&](const Packet &) { ++attempts; },
                [] { FAIL() << "must not ack"; },
                [&] { failed = true; });
    eq.run();
    EXPECT_TRUE(failed);
    EXPECT_EQ(attempts, 5u); // initial + 4 retries
    EXPECT_DOUBLE_EQ(reg.scalar("tx.dllFailures"), 1.0);
}

} // namespace
} // namespace proto
} // namespace dimmlink
