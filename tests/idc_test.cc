/** @file IDC fabric tests: the four fabrics of Table I exercised
 * standalone with a stub remote-memory model. */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "idc/dl_fabric.hh"
#include "idc/fabric.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace idc {
namespace {

class FabricFixture
{
  public:
    FabricFixture(IdcMethod method, const std::string &preset,
                  PollingMode polling = PollingMode::Proxy)
    {
        cfg = SystemConfig::preset(preset);
        cfg.idcMethod = method;
        cfg.pollingMode = polling;
        for (unsigned c = 0; c < cfg.numChannels; ++c) {
            const std::string n = "host.channel" + std::to_string(c);
            channels.push_back(std::make_unique<host::Channel>(
                eq, n, cfg.host.channelGBps, reg.group(n)));
            ptrs.push_back(channels.back().get());
        }
        fabric = makeFabric(eq, cfg, ptrs, reg);
        // Stub DRAM: every remote access takes 60 ns.
        fabric->setMemAccess([this](DimmId, Addr, std::uint32_t,
                                    bool,
                                    std::function<void()> done) {
            ++memAccesses;
            eq.scheduleIn(60 * tickPerNs, std::move(done));
        });
        fabric->enterNmpMode();
    }

    ~FabricFixture() { fabric->exitNmpMode(); }

    /** Submit and run to completion; return the latency. */
    Tick
    complete(Transaction t)
    {
        bool done = false;
        Tick done_at = 0;
        const Tick start = eq.now();
        t.onComplete = [&] {
            done = true;
            done_at = eq.now();
        };
        fabric->submit(std::move(t));
        // Polling engines reschedule forever; run until completion.
        while (!done && eq.step()) {
        }
        EXPECT_TRUE(done);
        return done_at - start;
    }

    EventQueue eq;
    stats::Registry reg;
    SystemConfig cfg;
    std::vector<std::unique_ptr<host::Channel>> channels;
    std::vector<host::Channel *> ptrs;
    std::unique_ptr<Fabric> fabric;
    unsigned memAccesses = 0;
};

Transaction
makeTxn(Transaction::Type type, DimmId src, DimmId dst,
        std::uint32_t bytes = 64)
{
    Transaction t;
    t.type = type;
    t.src = src;
    t.dst = dst;
    t.addr = 0x1000;
    t.bytes = bytes;
    return t;
}

class AllFabrics : public ::testing::TestWithParam<IdcMethod>
{
};

TEST_P(AllFabrics, RemoteReadCompletesAndTouchesMemory)
{
    FabricFixture f(GetParam(), "4D-2C");
    const Tick lat =
        f.complete(makeTxn(Transaction::Type::RemoteRead, 3, 0));
    EXPECT_GT(lat, 60u * tickPerNs); // at least the DRAM stub
    EXPECT_EQ(f.memAccesses, 1u);
}

TEST_P(AllFabrics, RemoteWriteCompletes)
{
    FabricFixture f(GetParam(), "4D-2C");
    f.complete(makeTxn(Transaction::Type::RemoteWrite, 0, 3, 256));
    EXPECT_EQ(f.memAccesses, 1u);
}

TEST_P(AllFabrics, BroadcastCompletes)
{
    FabricFixture f(GetParam(), "8D-4C");
    f.complete(makeTxn(Transaction::Type::Broadcast, 0, invalidDimm,
                       1024));
    EXPECT_GE(f.memAccesses, 1u); // source read staging
}

TEST_P(AllFabrics, SyncMessageCompletes)
{
    FabricFixture f(GetParam(), "8D-4C");
    f.complete(makeTxn(Transaction::Type::SyncMessage, 1, 6, 16));
}

TEST_P(AllFabrics, ManyRandomTransactionsAllComplete)
{
    FabricFixture f(GetParam(), "8D-4C");
    Rng rng(11);
    constexpr unsigned total = 120;
    unsigned done = 0;
    for (unsigned i = 0; i < total; ++i) {
        Transaction t;
        const auto kind = rng.below(10);
        t.type = kind < 5 ? Transaction::Type::RemoteRead
                 : kind < 9 ? Transaction::Type::RemoteWrite
                            : Transaction::Type::SyncMessage;
        t.src = static_cast<DimmId>(rng.below(8));
        do {
            t.dst = static_cast<DimmId>(rng.below(8));
        } while (t.dst == t.src);
        t.addr = rng.below(1 << 20) & ~Addr(63);
        t.bytes = 64;
        t.onComplete = [&done] { ++done; };
        f.fabric->submit(std::move(t));
    }
    while (done < total && f.eq.step()) {
    }
    EXPECT_EQ(done, total);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllFabrics,
    ::testing::Values(IdcMethod::CpuForwarding,
                      IdcMethod::DedicatedBus,
                      IdcMethod::ChannelBroadcast,
                      IdcMethod::DimmLink),
    [](const auto &info) {
        return std::string(toString(info.param)) == "ABC-DIMM"
                   ? "AbcDimm"
                   : std::string(toString(info.param)) == "DIMM-Link"
                         ? "DimmLink"
                         : toString(info.param);
    });

TEST(DlFabricTest, IntraGroupIsFasterThanMcnForwarding)
{
    FabricFixture dl(IdcMethod::DimmLink, "4D-2C");
    FabricFixture mcn(IdcMethod::CpuForwarding, "4D-2C");
    const Tick t_dl =
        dl.complete(makeTxn(Transaction::Type::RemoteRead, 0, 3));
    const Tick t_mcn =
        mcn.complete(makeTxn(Transaction::Type::RemoteRead, 0, 3));
    EXPECT_LT(t_dl, t_mcn / 2);
}

TEST(DlFabricTest, IntraGroupUsesNoHostForwarding)
{
    FabricFixture f(IdcMethod::DimmLink, "4D-2C");
    f.complete(makeTxn(Transaction::Type::RemoteRead, 0, 3));
    EXPECT_DOUBLE_EQ(f.reg.scalar("fabric.dl.bytesViaHost"), 0.0);
    EXPECT_GT(f.reg.scalar("fabric.dl.bytesViaLink"), 0.0);
}

TEST(DlFabricTest, InterGroupGoesThroughTheHost)
{
    FabricFixture f(IdcMethod::DimmLink, "8D-4C");
    // Groups: {0..3}, {4..7}.
    f.complete(makeTxn(Transaction::Type::RemoteRead, 0, 7));
    EXPECT_GT(f.reg.scalar("fabric.dl.bytesViaHost"), 0.0);
    EXPECT_GE(f.reg.scalar("host.forwarder.forwards"), 2.0);
}

TEST(DlFabricTest, ProxyNotificationsHappenForNonProxySources)
{
    FabricFixture f(IdcMethod::DimmLink, "8D-4C",
                    PollingMode::Proxy);
    // DIMM 0 is not the group proxy (DIMM 2 is): it must register
    // through the proxy over the link network.
    f.complete(makeTxn(Transaction::Type::RemoteWrite, 0, 7));
    EXPECT_GE(f.reg.scalar("fabric.dl.proxyNotifies"), 1.0);
}

TEST(DlFabricTest, DistanceReflectsHopsAndGroups)
{
    FabricFixture f(IdcMethod::DimmLink, "8D-4C");
    auto &fab = *f.fabric;
    EXPECT_DOUBLE_EQ(fab.distance(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(fab.distance(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(fab.distance(0, 3), 3.0);
    // Crossing groups costs far more than any intra-group path.
    EXPECT_GT(fab.distance(0, 4), fab.distance(0, 3) * 3);
}

TEST(DlFabricTest, WireBytesIncludeHeaderPerPacket)
{
    EXPECT_EQ(DlFabric::wireBytesFor(0), 16u);
    EXPECT_EQ(DlFabric::wireBytesFor(64), 16u + 64u);
    EXPECT_EQ(DlFabric::wireBytesFor(256), 272u);
    EXPECT_EQ(DlFabric::wireBytesFor(512), 544u);
}

TEST(AimFabricTest, BusContentionSerializes)
{
    FabricFixture f(IdcMethod::DedicatedBus, "4D-2C");
    unsigned done = 0;
    Tick last = 0;
    for (unsigned i = 0; i < 8; ++i) {
        auto t = makeTxn(Transaction::Type::RemoteWrite,
                         static_cast<DimmId>(i % 4),
                         static_cast<DimmId>((i + 1) % 4), 4096);
        t.onComplete = [&] {
            ++done;
            last = f.eq.now();
        };
        f.fabric->submit(std::move(t));
    }
    while (done < 8 && f.eq.step()) {
    }
    // 8 x (4096+16) bytes at 19.2 GB/s is > 1.7 us serialized.
    EXPECT_GT(last, 1700 * tickPerNs);
}

TEST(AbcFabricTest, BroadcastUsesOneOccupancyPerChannel)
{
    FabricFixture f(IdcMethod::ChannelBroadcast, "8D-4C",
                    PollingMode::Baseline);
    f.complete(makeTxn(Transaction::Type::Broadcast, 0, invalidDimm,
                       4096));
    EXPECT_DOUBLE_EQ(f.reg.scalar("fabric.abc.channelBroadcasts"),
                     4.0);
    // vs MCN which would pay per-DIMM: 7 copies.
    FabricFixture m(IdcMethod::CpuForwarding, "8D-4C",
                    PollingMode::Baseline);
    const Tick t_abc = 0;
    (void)t_abc;
    const Tick abc_lat = f.complete(
        makeTxn(Transaction::Type::Broadcast, 0, invalidDimm, 4096));
    const Tick mcn_lat = m.complete(
        makeTxn(Transaction::Type::Broadcast, 0, invalidDimm, 4096));
    EXPECT_LT(abc_lat, mcn_lat);
}

} // namespace
} // namespace idc
} // namespace dimmlink
