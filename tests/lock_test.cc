/** @file LockManager tests: mutual exclusion, FIFO granting, and
 * behaviour over the DIMM-Link fabric under contention. */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hh"
#include "idc/fabric.hh"
#include "sync/lock_manager.hh"

namespace dimmlink {
namespace {

class LockFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg = SystemConfig::preset("8D-4C");
        for (unsigned c = 0; c < cfg.numChannels; ++c) {
            const std::string n = "host.channel" + std::to_string(c);
            channels.push_back(std::make_unique<host::Channel>(
                eq, n, cfg.host.channelGBps, reg.group(n)));
            ptrs.push_back(channels.back().get());
        }
        fabric = idc::makeFabric(eq, cfg, ptrs, reg);
        fabric->setMemAccess([this](DimmId, Addr, std::uint32_t,
                                    bool,
                                    std::function<void()> done) {
            eq.scheduleIn(40 * tickPerNs, std::move(done));
        });
        fabric->enterNmpMode();
        locks = std::make_unique<LockManager>(eq, cfg, fabric.get(),
                                              reg);
    }

    void TearDown() override { fabric->exitNmpMode(); }

    EventQueue eq;
    stats::Registry reg;
    SystemConfig cfg;
    std::vector<std::unique_ptr<host::Channel>> channels;
    std::vector<host::Channel *> ptrs;
    std::unique_ptr<idc::Fabric> fabric;
    std::unique_ptr<LockManager> locks;
};

TEST_F(LockFixture, UncontendedAcquireGrantsQuickly)
{
    locks->createLock(1, 2);
    bool granted = false;
    locks->acquire(1, 5, [&] { granted = true; });
    while (!granted && eq.step()) {
    }
    EXPECT_TRUE(granted);
    EXPECT_FALSE(locks->idle(1));
    locks->release(1, 5);
    eq.runUntil(eq.now() + 10 * tickPerUs);
    EXPECT_TRUE(locks->idle(1));
}

TEST_F(LockFixture, MutualExclusionUnderContention)
{
    locks->createLock(7, 0);
    unsigned holders = 0;
    unsigned max_holders = 0;
    unsigned completed = 0;
    constexpr unsigned requesters = 12;

    for (unsigned i = 0; i < requesters; ++i) {
        const DimmId d = static_cast<DimmId>(i % 8);
        locks->acquire(7, d, [&, d] {
            ++holders;
            max_holders = std::max(max_holders, holders);
            // Hold the lock for a short critical section.
            eq.scheduleIn(100 * tickPerNs, [&, d] {
                --holders;
                ++completed;
                locks->release(7, d);
            });
        });
    }
    while (completed < requesters && eq.step()) {
    }
    EXPECT_EQ(completed, requesters);
    EXPECT_EQ(max_holders, 1u); // never two owners
    // Let the final release message reach the lock's home DIMM.
    eq.runUntil(eq.now() + 100 * tickPerUs);
    EXPECT_TRUE(locks->idle(7));
    EXPECT_EQ(locks->acquisitions(), requesters);
    EXPECT_GT(reg.scalar("sync.locks.contended"), 0.0);
}

TEST_F(LockFixture, FifoGrantOrder)
{
    locks->createLock(3, 4);
    std::vector<int> order;
    unsigned completed = 0;
    // First holder keeps the lock while others queue.
    locks->acquire(3, 0, [&] {
        order.push_back(0);
        eq.scheduleIn(1 * tickPerUs, [&] {
            ++completed;
            locks->release(3, 0);
        });
    });
    eq.runUntil(eq.now() + 100 * tickPerNs);
    for (int i = 1; i <= 3; ++i) {
        locks->acquire(3, static_cast<DimmId>(i), [&, i] {
            order.push_back(i);
            ++completed;
            locks->release(3, static_cast<DimmId>(i));
        });
        // Stagger the enqueue order deterministically.
        eq.runUntil(eq.now() + 10 * tickPerUs);
    }
    while (completed < 4 && eq.step()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(LockFixture, IndependentLocksDoNotInterfere)
{
    locks->createLock(10, 1);
    locks->createLock(11, 6);
    bool a = false, b = false;
    locks->acquire(10, 0, [&] { a = true; });
    locks->acquire(11, 7, [&] { b = true; });
    while ((!a || !b) && eq.step()) {
    }
    EXPECT_TRUE(a);
    EXPECT_TRUE(b);
}

TEST_F(LockFixture, DeathOnMisuse)
{
    locks->createLock(1, 0);
    EXPECT_DEATH(locks->createLock(1, 0), "already exists");
    EXPECT_DEATH(locks->acquire(99, 0, [] {}), "unknown lock");
    EXPECT_DEATH(locks->release(1, 0), "not held");
}

} // namespace
} // namespace dimmlink
