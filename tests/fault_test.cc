/** @file Fault-injection layer and DLL retry-path hardening: the
 * deterministic fault models, the LEN-derived NACK tail read, sender
 * window backpressure, dedup past the 16-bit sequence wrap, an
 * exactly-once/in-order chaos property test, and whole-system runs
 * with a nonzero bit-error rate. */

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/stats_json.hh"
#include "dimm/dl_controller.hh"
#include "fault/fault_model.hh"
#include "proto/codec.hh"
#include "proto/dll.hh"
#include "sim/event_queue.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace {

using proto::DlCommand;
using proto::Packet;

// ---------------------------------------------------------------------
// Fault models.
// ---------------------------------------------------------------------

TEST(FaultModel, StreamSeedsAreStableAndDecorrelated)
{
    const auto a = fault::streamSeed(1, "fabric.dl.group0.link0to1");
    const auto b = fault::streamSeed(1, "fabric.dl.group0.link1to0");
    const auto c = fault::streamSeed(2, "fabric.dl.group0.link0to1");
    EXPECT_NE(a, b); // distinct links -> distinct streams
    EXPECT_NE(a, c); // distinct base seeds -> distinct streams
    EXPECT_EQ(a, fault::streamSeed(1, "fabric.dl.group0.link0to1"));
}

TEST(FaultModel, FactoryKnowsAllModelsAndFilterGates)
{
    auto &f = fault::FaultModelFactory::instance();
    for (const char *m : {"none", "ber", "burst", "degrade", "stuck"})
        EXPECT_TRUE(f.contains(m)) << m;

    FaultConfig cfg;
    cfg.model = "none";
    EXPECT_EQ(fault::makeFaultModel(cfg, "any.link"), nullptr);

    cfg.model = "ber";
    cfg.linkFilter = "group1";
    EXPECT_EQ(fault::makeFaultModel(cfg, "fabric.dl.group0.link0to1"),
              nullptr);
    EXPECT_NE(fault::makeFaultModel(cfg, "fabric.dl.group1.link0to1"),
              nullptr);
    cfg.linkFilter.clear();
    EXPECT_NE(fault::makeFaultModel(cfg, "fabric.dl.group0.link0to1"),
              nullptr);
}

TEST(FaultModel, BerFlipsRealBitsDeterministically)
{
    FaultConfig cfg;
    cfg.model = "ber";
    cfg.ber = 0.01;
    const auto run = [&cfg](std::uint64_t seed) {
        auto model = fault::FaultModelFactory::instance().create(
            "ber", cfg, seed);
        noc::Message msg;
        msg.wire = std::make_shared<std::vector<std::uint8_t>>(256, 0);
        const auto eff = model->onTransmit(
            0, static_cast<unsigned>(msg.wire->size() * 8), msg);
        return std::make_pair(*msg.wire, eff.corrupted);
    };
    const auto [w1, c1] = run(42);
    const auto [w2, c2] = run(42);
    const auto [w3, c3] = run(43);
    EXPECT_EQ(w1, w2); // same stream seed -> identical damage
    EXPECT_EQ(c1, c2);
    EXPECT_NE(w1, w3); // different seed -> different damage
    // With 2048 bits at 1% BER, damage is (deterministically) present
    // and the corrupted flag reflects it.
    EXPECT_TRUE(c1);
    EXPECT_NE(w1, std::vector<std::uint8_t>(256, 0));
}

TEST(FaultModel, CorruptedWireImageFailsCrc)
{
    FaultConfig cfg;
    cfg.model = "ber";
    cfg.ber = 0.02;
    auto model =
        fault::FaultModelFactory::instance().create("ber", cfg, 7);
    Packet p = proto::Codec::makeWriteReq(0, 1, 0x40, 3, 64);
    noc::Message msg;
    msg.wire = std::make_shared<std::vector<std::uint8_t>>(
        proto::encode(p));
    // Find a transmission the model damages (deterministic stream).
    while (!msg.corrupted)
        model->onTransmit(
            0, static_cast<unsigned>(msg.wire->size() * 8), msg);
    Packet q;
    EXPECT_FALSE(proto::decode(*msg.wire, q));
}

TEST(FaultModel, DegradeScalesSerializationTime)
{
    FaultConfig cfg;
    cfg.model = "degrade";
    cfg.degradeFactor = 0.5;
    auto model = fault::FaultModelFactory::instance().create(
        "degrade", cfg, 1);
    noc::Message msg;
    const auto eff = model->onTransmit(0, 128, msg);
    EXPECT_DOUBLE_EQ(eff.serScale, 2.0); // half rate -> double time
    EXPECT_FALSE(eff.corrupted);
    EXPECT_EQ(eff.stallPs, 0u);
}

TEST(FaultModel, StuckLinkStallsDuringOutages)
{
    FaultConfig cfg;
    cfg.model = "stuck";
    cfg.stuckAtPs = 1000;
    cfg.stuckForPs = 500;
    cfg.stuckPeriodPs = 2000;
    auto model =
        fault::FaultModelFactory::instance().create("stuck", cfg, 1);
    noc::Message msg;
    EXPECT_EQ(model->onTransmit(0, 128, msg).stallPs, 0u);
    EXPECT_EQ(model->onTransmit(1200, 128, msg).stallPs, 300u);
    EXPECT_EQ(model->onTransmit(1600, 128, msg).stallPs, 0u);
    // The outage repeats every period.
    EXPECT_EQ(model->onTransmit(3200, 128, msg).stallPs, 300u);
}

// ---------------------------------------------------------------------
// makeNack regression: the DLL tail sits behind the payload.
// ---------------------------------------------------------------------

TEST(DllNack, NackReadsSequenceBehindThePayload)
{
    EventQueue eq;
    stats::Registry reg;
    proto::RetryReceiver rx(reg.group("rx"));

    Packet p = proto::Codec::makeWriteReq(2, 5, 0x80, 9, 64);
    p.dll = 0x1234; // a nonzero sequence so offset bugs are visible
    auto wire = proto::encode(p);
    // Damage a payload byte: the header (and LEN) stay readable, so
    // the receiver can NACK with the genuine sequence number read
    // from behind the payload. The fixed-offset-12 bug read payload
    // bytes here instead.
    wire[20] ^= 0x01;

    std::vector<Packet> out;
    std::optional<Packet> ctrl;
    rx.onArrive(wire, false, out, ctrl);
    EXPECT_TRUE(out.empty());
    ASSERT_TRUE(ctrl.has_value());
    EXPECT_EQ(ctrl->cmd, DlCommand::DllNack);
    EXPECT_EQ(ctrl->dll & 0xffff, 0x1234u);
    EXPECT_EQ(ctrl->dst, p.src); // routed back to the sender
    EXPECT_DOUBLE_EQ(reg.scalar("rx.dllCorrupt"), 1.0);
}

TEST(DllNack, UnreadableLenProducesNoNackAndTimeoutRecovers)
{
    EventQueue eq;
    stats::Registry reg;
    proto::RetryReceiver rx(reg.group("rx"));

    Packet p = proto::Codec::makeWriteReq(2, 5, 0x80, 9, 64);
    auto wire = proto::encode(p);
    // Flip a LEN bit: the claimed payload length no longer matches
    // the image, so any tail offset would be a guess. No control
    // packet may be produced from a garbage offset.
    wire[7] ^= 0x80;

    std::vector<Packet> out;
    std::optional<Packet> ctrl;
    rx.onArrive(wire, false, out, ctrl);
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(ctrl.has_value());
    EXPECT_DOUBLE_EQ(reg.scalar("rx.dllCorrupt"), 1.0);

    // The sender-side timeout is the recovery path for such damage.
    proto::RetrySender tx(eq, 1000, 4, reg.group("tx"));
    unsigned attempts = 0;
    bool acked = false;
    tx.send(p,
            [&](const Packet &wp) {
                ++attempts;
                auto w = proto::encode(wp);
                if (attempts == 1)
                    w[7] ^= 0x80; // first copy arrives unreadable
                std::vector<Packet> o;
                std::optional<Packet> c;
                rx.onArrive(w, false, o, c);
                if (c)
                    tx.onControl(*c);
            },
            [&] { acked = true; });
    eq.run();
    EXPECT_TRUE(acked);
    EXPECT_EQ(attempts, 2u); // one timeout retransmission
}

// ---------------------------------------------------------------------
// Sender window: backpressure instead of the wraparound panic.
// ---------------------------------------------------------------------

TEST(DllWindow, FullWindowQueuesInsteadOfPanicking)
{
    EventQueue eq;
    stats::Registry reg;
    proto::RetrySender tx(eq, 1000, 0, reg.group("tx"),
                          /*window=*/4);
    std::vector<Packet> sent;
    unsigned failed = 0;
    for (unsigned i = 0; i < 10; ++i) {
        tx.send(proto::Codec::makeSyncMsg(
                    0, 1, static_cast<std::uint8_t>(i & 0x3f)),
                [&](const Packet &p) { sent.push_back(p); }, nullptr,
                [&] { ++failed; });
    }
    // Only the window's worth is in flight; the rest are queued.
    EXPECT_EQ(tx.inFlight(), 4u);
    EXPECT_EQ(tx.queued(), 6u);
    EXPECT_EQ(sent.size(), 4u);
    EXPECT_DOUBLE_EQ(reg.scalar("tx.dllBackpressured"), 6.0);

    // Acknowledging the head admits exactly one queued send.
    Packet ack;
    ack.src = 1;
    ack.dst = 0;
    ack.cmd = DlCommand::DllAck;
    ack.dll = sent[0].dll & 0xffff;
    tx.onControl(ack);
    EXPECT_EQ(tx.inFlight(), 4u);
    EXPECT_EQ(tx.queued(), 5u);
    EXPECT_EQ(sent.size(), 5u);

    // Sequence numbers stamped at admission stay dense and ordered.
    for (unsigned i = 0; i < sent.size(); ++i)
        EXPECT_EQ(sent[i].dll & 0xffff, i);
    EXPECT_EQ(failed, 0u);
}

TEST(DllWindow, PerDestinationStreamsAreIndependent)
{
    EventQueue eq;
    stats::Registry reg;
    proto::RetrySender tx(eq, 1000, 0, reg.group("tx"),
                          /*window=*/2);
    std::vector<Packet> sent;
    for (unsigned i = 0; i < 3; ++i) {
        for (std::uint8_t dst : {1, 2}) {
            tx.send(proto::Codec::makeSyncMsg(0, dst, 0),
                    [&](const Packet &p) { sent.push_back(p); },
                    nullptr, [] {});
        }
    }
    // Each destination fills its own window; neither starves the
    // other, and each stream's sequence space starts at zero.
    EXPECT_EQ(tx.inFlight(), 4u);
    EXPECT_EQ(tx.queued(), 2u);
    std::map<std::uint8_t, std::uint16_t> next;
    for (const Packet &p : sent)
        EXPECT_EQ(p.dll & 0xffff, next[p.dst]++) << unsigned(p.dst);
}

TEST(DllWindow, ConstructorRejectsBadWindows)
{
    EventQueue eq;
    stats::Registry reg;
    EXPECT_DEATH(proto::RetrySender(eq, 1000, 1, reg.group("t0"), 0),
                 "window");
    EXPECT_DEATH(proto::RetrySender(
                     eq, 1000, 1, reg.group("t1"),
                     proto::RetrySender::maxWindow + 1),
                 "window");
}

// ---------------------------------------------------------------------
// Dedup soak: the 16-bit sequence space wraps, filtering keeps working.
// ---------------------------------------------------------------------

TEST(DllSoak, DedupAndOrderSurviveSequenceWrap)
{
    EventQueue eq;
    stats::Registry reg;
    proto::RetrySender tx(eq, 1000, 4, reg.group("tx"));
    proto::RetryReceiver rx(reg.group("rx"));

    constexpr std::uint32_t total = 70000; // > 2^16: seqs wrap
    std::uint32_t next_expected = 0;
    std::uint64_t delivered = 0;
    unsigned acks = 0;

    auto transport = [&](const Packet &p) {
        const auto wire = proto::encode(p);
        std::vector<Packet> out;
        std::optional<Packet> ctrl;
        rx.onArrive(wire, false, out, ctrl);
        for (const Packet &q : out) {
            std::uint32_t idx = 0;
            std::memcpy(&idx, q.payload.data(), 4);
            EXPECT_EQ(idx, next_expected);
            ++next_expected;
            ++delivered;
        }
        // Lose every 7th ACK: the timeout retransmits, and the
        // receiver must filter the duplicate while re-ACKing it.
        if (ctrl && ++acks % 7 != 0)
            tx.onControl(*ctrl);
    };

    for (std::uint32_t i = 0; i < total; ++i) {
        Packet p = proto::Codec::makeWriteReq(
            0, 1, (i * 64) & 0xffffff,
            static_cast<std::uint8_t>(i & 0x3f), 4);
        std::memcpy(p.payload.data(), &i, 4);
        tx.send(p, transport, nullptr);
        eq.run(); // drain timers so every packet settles
    }

    EXPECT_EQ(delivered, total); // exactly once, in order
    EXPECT_EQ(tx.inFlight(), 0u);
    EXPECT_EQ(tx.queued(), 0u);
    EXPECT_EQ(rx.bufferedPackets(), 0u); // no reorder-buffer leak
    EXPECT_EQ(rx.trackedSources(), 1u);  // bounded per-source state
    EXPECT_DOUBLE_EQ(reg.scalar("tx.dllSent"),
                     static_cast<double>(total));
    // Every dropped ACK forced one duplicate arrival.
    EXPECT_GT(reg.scalar("rx.dllDuplicates"), 9000.0);
    EXPECT_DOUBLE_EQ(reg.scalar("rx.dllValid"),
                     static_cast<double>(delivered) +
                         reg.scalar("rx.dllDuplicates"));
}

// ---------------------------------------------------------------------
// Chaos property test: any schedule of drops, corruptions, duplicates
// and reorderings yields exactly-once, in-order delivery with no
// state leaked.
// ---------------------------------------------------------------------

class DllChaos : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DllChaos, ExactlyOnceInOrderUnderRandomFaults)
{
    EventQueue eq;
    stats::Registry reg;
    DlController txc(eq, "txc", 0, /*timeout=*/3000, /*retries=*/64,
                     reg);
    DlController rxc(eq, "rxc", 1, 3000, 64, reg);
    Rng rng(GetParam());

    constexpr std::uint32_t total = 1500;
    std::uint32_t next_expected = 0;
    std::uint32_t delivered = 0;

    std::function<void(const Packet &)> send_control =
        [&](const Packet &ctrl) {
            if (rng.chance(0.05))
                return; // ACK/NACK lost
            eq.scheduleIn(1 + rng.below(400),
                          [&, ctrl] { txc.onControlArrive(ctrl); },
                          EventPriority::Delivery);
        };
    auto deliver = [&](Packet q) {
        std::uint32_t idx = 0;
        std::memcpy(&idx, q.payload.data(), 4);
        EXPECT_EQ(idx, next_expected);
        ++next_expected;
        ++delivered;
    };
    auto transmit = [&](const Packet &,
                        std::vector<std::uint8_t> wire) {
        const double fate = rng.real();
        if (fate < 0.10)
            return; // dropped in flight
        const unsigned copies = fate < 0.18 ? 2 : 1;
        for (unsigned c = 0; c < copies; ++c) {
            auto w = wire;
            if (rng.chance(0.10)) // random single-bit damage
                w[rng.below(w.size())] ^= static_cast<std::uint8_t>(
                    1u << rng.below(8));
            eq.scheduleIn(
                1 + rng.below(400),
                [&, w = std::move(w)] {
                    rxc.onWireArrive(w, false, send_control, deliver);
                },
                EventPriority::Delivery);
        }
    };

    for (std::uint32_t i = 0; i < total; ++i) {
        Packet p = proto::Codec::makeWriteReq(
            0, 1, (i * 64) & 0xffffff, txc.allocTag(), 4);
        std::memcpy(p.payload.data(), &i, 4);
        txc.sendReliable(p, transmit, nullptr,
                         [] { FAIL() << "retry budget exhausted"; });
    }
    eq.run();

    EXPECT_EQ(delivered, total);
    EXPECT_EQ(next_expected, total);
    EXPECT_EQ(txc.retryInFlight(), 0u);
    EXPECT_EQ(txc.retryQueued(), 0u);
    EXPECT_EQ(rxc.receiverBuffered(), 0u);
    EXPECT_DOUBLE_EQ(reg.scalar("txc.dllFailures"), 0.0);
    // The schedule above guarantees losses, so recovery really ran.
    EXPECT_GT(reg.scalar("txc.dllRetries"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DllChaos,
                         ::testing::Values(1, 7, 23, 1234));

// ---------------------------------------------------------------------
// Whole-system runs with fault injection.
// ---------------------------------------------------------------------

std::string
runFaultySystem(double ber, std::uint64_t seed, stats::Registry *out,
                double *retries, double *corrupt, double *failed)
{
    auto cfg = SystemConfig::preset("4D-2C");
    cfg.idcMethod = IdcMethod::DimmLink;
    cfg.faults.model = "ber";
    cfg.faults.ber = ber;
    cfg.faults.seed = seed;
    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 6;
    p.rounds = 2;
    auto wl = workloads::makeWorkload("bfs", p, sys.addressMap());
    Runner runner(sys, *wl);
    const RunResult r = runner.run();
    EXPECT_TRUE(r.verified);
    if (retries)
        *retries = sys.stats().sumScalar("fabric.dl", "dllRetries");
    if (corrupt)
        *corrupt = sys.stats().sumScalar("fabric.dl", "dllCorrupt");
    if (failed)
        *failed =
            sys.stats().sumScalar("fabric.dl", "dllFailedTransfers");
    std::ostringstream os;
    stats::dumpJson(sys.stats(), os, /*include_empty=*/true);
    os << "\nkernelTicks=" << r.kernelTicks
       << "\nfinalTick=" << sys.queue().now();
    (void)out;
    return os.str();
}

TEST(FaultSystem, BerRunRecoversEveryTransferAndCountsIt)
{
    double retries = 0, corrupt = 0, failed = 0;
    const std::string json =
        runFaultySystem(1e-4, 7, nullptr, &retries, &corrupt, &failed);
    EXPECT_GT(corrupt, 0.0) << "no corruption injected at BER 1e-4";
    EXPECT_GT(retries, 0.0) << "corruption seen but never retried";
    EXPECT_DOUBLE_EQ(failed, 0.0);
    // The recovery-latency histogram made it into the stats JSON.
    EXPECT_NE(json.find("dllRecoveryPs"), std::string::npos);
    EXPECT_NE(json.find("histograms"), std::string::npos);
}

TEST(FaultSystem, SameSeedRunsAreByteIdentical)
{
    const std::string a =
        runFaultySystem(1e-4, 11, nullptr, nullptr, nullptr, nullptr);
    const std::string b =
        runFaultySystem(1e-4, 11, nullptr, nullptr, nullptr, nullptr);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace dimmlink
