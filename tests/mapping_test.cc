/** @file Task-mapping tests: MCMF solver correctness, the profiler,
 * and Algorithm 1's placement vs a brute-force oracle. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hh"
#include "mapping/mcmf.hh"
#include "mapping/placement.hh"
#include "mapping/profiler.hh"

namespace dimmlink {
namespace mapping {
namespace {

TEST(Mcmf, SimplePath)
{
    MinCostMaxFlow f(4);
    f.addEdge(0, 1, 2, 1);
    f.addEdge(1, 2, 2, 1);
    f.addEdge(2, 3, 2, 1);
    const auto r = f.solve(0, 3);
    EXPECT_EQ(r.flow, 2);
    EXPECT_EQ(r.cost, 6);
}

TEST(Mcmf, PrefersCheaperPath)
{
    // Two parallel paths, one cheap (cap 1), one expensive (cap 1).
    MinCostMaxFlow f(4);
    const int cheap = f.addEdge(0, 1, 1, 1);
    f.addEdge(1, 3, 1, 1);
    const int costly = f.addEdge(0, 2, 1, 10);
    f.addEdge(2, 3, 1, 10);
    const auto r = f.solve(0, 3);
    EXPECT_EQ(r.flow, 2);
    EXPECT_EQ(r.cost, 22);
    EXPECT_EQ(f.flowOn(cheap), 1);
    EXPECT_EQ(f.flowOn(costly), 1);
}

TEST(Mcmf, RespectsCapacity)
{
    MinCostMaxFlow f(3);
    f.addEdge(0, 1, 5, 0);
    f.addEdge(1, 2, 3, 2);
    const auto r = f.solve(0, 2);
    EXPECT_EQ(r.flow, 3);
    EXPECT_EQ(r.cost, 6);
}

TEST(Mcmf, ZeroWhenDisconnected)
{
    MinCostMaxFlow f(4);
    f.addEdge(0, 1, 1, 1);
    // No path to 3.
    const auto r = f.solve(0, 3);
    EXPECT_EQ(r.flow, 0);
    EXPECT_EQ(r.cost, 0);
}

TEST(Mcmf, AssignmentProblemOptimal)
{
    // Classic 3x3 assignment with known optimum (cost matrix rows:
    // worker, cols: job): min = 4 + 2 + 3 = 9? Verify by hand:
    //   [4 1 3]
    //   [2 0 5]
    //   [3 2 2]
    // optimum = 1 + 2 + 2 = 5 (w0->j1, w1->j0, w2->j2).
    const int cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
    MinCostMaxFlow f(8);
    const int src = 6, sink = 7;
    for (int w = 0; w < 3; ++w)
        f.addEdge(src, w, 1, 0);
    for (int j = 0; j < 3; ++j)
        f.addEdge(3 + j, sink, 1, 0);
    for (int w = 0; w < 3; ++w)
        for (int j = 0; j < 3; ++j)
            f.addEdge(w, 3 + j, 1, cost[w][j]);
    const auto r = f.solve(src, sink);
    EXPECT_EQ(r.flow, 3);
    EXPECT_EQ(r.cost, 5);
}

TEST(Profiler, RecordsAndAccumulates)
{
    TrafficProfiler prof(4, 2);
    prof.record(0, 0, 64);
    prof.record(0, 0, 64);
    prof.record(0, 1, 128);
    prof.record(3, 1, 32);
    EXPECT_EQ(prof.accesses(0, 0), 128u);
    EXPECT_EQ(prof.accesses(0, 1), 128u);
    EXPECT_EQ(prof.accesses(3, 1), 32u);
    EXPECT_EQ(prof.accesses(2, 0), 0u);
    EXPECT_EQ(prof.totalRefs(), 4u);
    prof.reset();
    EXPECT_EQ(prof.totalRefs(), 0u);
    EXPECT_EQ(prof.accesses(0, 0), 0u);
}

TEST(Placement, CostTableFollowsAlgorithmOne)
{
    TrafficProfiler prof(1, 3);
    prof.record(0, 0, 10);
    prof.record(0, 2, 30);
    // dist = |j - k|
    auto dist = [](DimmId j, DimmId k) {
        return std::abs(static_cast<int>(j) - static_cast<int>(k));
    };
    const auto cost = costTable(prof, dist);
    // C[0][j] = dist(j,0)*10 + dist(j,2)*30:
    // C[0][0] = 0*10 + 2*30 = 60; C[0][1] = 1*10 + 1*30 = 40;
    // C[0][2] = 2*10 + 0*30 = 20.
    EXPECT_DOUBLE_EQ(cost[0], 60);
    EXPECT_DOUBLE_EQ(cost[1], 40);
    EXPECT_DOUBLE_EQ(cost[2], 20);
}

TEST(Placement, PutsThreadNextToItsTraffic)
{
    TrafficProfiler prof(2, 4);
    // Thread 0 only touches DIMM 3, thread 1 only DIMM 0.
    prof.record(0, 3, 1000);
    prof.record(1, 0, 1000);
    auto dist = [](DimmId j, DimmId k) {
        return std::abs(static_cast<int>(j) - static_cast<int>(k));
    };
    const auto placement = solvePlacement(prof, dist, 1);
    EXPECT_EQ(placement[0], 3u);
    EXPECT_EQ(placement[1], 0u);
}

TEST(Placement, CapacityForcesSpreading)
{
    TrafficProfiler prof(3, 3);
    // Everyone loves DIMM 1.
    for (ThreadId t = 0; t < 3; ++t)
        prof.record(t, 1, 100);
    auto dist = [](DimmId j, DimmId k) {
        return std::abs(static_cast<int>(j) - static_cast<int>(k));
    };
    const auto placement = solvePlacement(prof, dist, 1);
    // All three DIMMs must be used (capacity 1 each).
    std::set<DimmId> used(placement.begin(), placement.end());
    EXPECT_EQ(used.size(), 3u);
    // One lucky thread sits on DIMM 1.
    EXPECT_EQ(std::count(placement.begin(), placement.end(),
                         DimmId{1}), 1);
}

TEST(Placement, InfeasibleDies)
{
    TrafficProfiler prof(5, 2);
    auto dist = [](DimmId, DimmId) { return 1.0; };
    EXPECT_EXIT(solvePlacement(prof, dist, 2),
                ::testing::ExitedWithCode(1), "infeasible");
}

class PlacementVsBruteForce
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlacementVsBruteForce, MatchesOracleCost)
{
    Rng rng(GetParam());
    const unsigned t_cnt = 2 + rng.below(4); // 2..5 threads
    const unsigned n_cnt = 2 + rng.below(2); // 2..3 DIMMs
    const unsigned cap = static_cast<unsigned>(
        (t_cnt + n_cnt - 1) / n_cnt + rng.below(2));

    TrafficProfiler prof(t_cnt, n_cnt);
    for (ThreadId t = 0; t < t_cnt; ++t)
        for (DimmId d = 0; d < n_cnt; ++d)
            prof.record(t, d,
                        static_cast<std::uint32_t>(rng.below(500)));

    auto dist = [](DimmId j, DimmId k) {
        return std::abs(static_cast<int>(j) - static_cast<int>(k));
    };

    const auto fast = solvePlacement(prof, dist, cap);
    const auto oracle = bruteForcePlacement(prof, dist, cap);
    EXPECT_NEAR(placementCost(prof, dist, fast),
                placementCost(prof, dist, oracle), 1e-6);
    // Capacity respected.
    std::vector<unsigned> load(n_cnt, 0);
    for (DimmId d : fast)
        ++load[d];
    for (unsigned l : load)
        EXPECT_LE(l, cap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace mapping
} // namespace dimmlink
