/**
 * @file
 * Trace record/replay: capture the op streams a kernel emits into
 * .dltrace files (the workflow the paper's FPGA prototype uses with
 * pre-dumped traces, Section V-A), then re-simulate from the traces
 * alone and confirm the timing is identical.
 *
 * Usage: example_trace_record_replay [workload] [scale] [dir]
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "system/system.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

using namespace dimmlink;

namespace {

/** Run 16 threads on a 4D-2C system; returns (ticks, traces). */
Tick
runThreads(System &sys,
           std::vector<std::unique_ptr<ThreadProgram>> programs)
{
    sys.enterNmpMode();
    std::vector<DimmId> homes(programs.size());
    for (unsigned t = 0; t < programs.size(); ++t)
        homes[t] = static_cast<DimmId>(t / 4);
    sys.sync().setParticipants(homes);
    unsigned done = 0;
    const Tick start = sys.queue().now();
    for (unsigned t = 0; t < programs.size(); ++t)
        sys.dimm(homes[t]).core(t % 4).run(
            t, std::move(programs[t]), [&done] { ++done; });
    while (done < homes.size() && sys.queue().step()) {
    }
    const Tick span = sys.queue().now() - start;
    sys.exitNmpMode();
    return span;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "kmeans";
    const std::uint64_t scale =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
    const std::string dir = argc > 3 ? argv[3] : "/tmp";

    auto cfg = SystemConfig::preset("4D-2C");
    workloads::WorkloadParams p;
    p.numThreads = 16;
    p.numDimms = 4;
    p.scale = scale;

    // Phase 1: run the real kernel, recording every thread.
    std::vector<std::shared_ptr<trace::ThreadTrace>> traces(16);
    Tick recorded;
    {
        System sys(cfg);
        auto wl = workloads::makeWorkload(workload, p,
                                          sys.addressMap());
        std::vector<std::unique_ptr<ThreadProgram>> progs;
        for (unsigned t = 0; t < 16; ++t) {
            auto rec = std::make_unique<trace::RecordingProgram>(
                wl->program(t));
            traces[t] = rec->trace();
            progs.push_back(std::move(rec));
        }
        recorded = runThreads(sys, std::move(progs));
        std::printf("recorded run : %.3f ms (verified: %s)\n",
                    recorded / 1e9, wl->verify() ? "yes" : "n/a");
    }

    // Phase 2: persist the traces to disk.
    std::uint64_t total_refs = 0, bytes = 0;
    for (unsigned t = 0; t < 16; ++t) {
        const std::string path = dir + "/" + workload + ".t" +
                                 std::to_string(t) + ".dltrace";
        std::ofstream os(path, std::ios::binary);
        traces[t]->save(os);
        total_refs += traces[t]->memRefs();
        bytes += static_cast<std::uint64_t>(os.tellp());
    }
    std::printf("dumped traces: 16 files, %llu refs, %.2f MB in %s\n",
                static_cast<unsigned long long>(total_refs),
                bytes / 1e6, dir.c_str());

    // Phase 3: reload from disk and replay on a fresh system.
    {
        System sys(cfg);
        std::vector<std::unique_ptr<ThreadProgram>> progs;
        for (unsigned t = 0; t < 16; ++t) {
            const std::string path = dir + "/" + workload + ".t" +
                                     std::to_string(t) + ".dltrace";
            std::ifstream is(path, std::ios::binary);
            auto loaded = std::make_shared<trace::ThreadTrace>(
                trace::ThreadTrace::load(is));
            progs.push_back(
                std::make_unique<trace::ReplayProgram>(loaded));
        }
        const Tick replayed = runThreads(sys, std::move(progs));
        std::printf("replayed run : %.3f ms (%s the recorded "
                    "timing)\n", replayed / 1e9,
                    replayed == recorded ? "identical to"
                                         : "DIFFERS FROM");
        return replayed == recorded ? 0 : 1;
    }
}
