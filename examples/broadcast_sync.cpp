/**
 * @file
 * DIMM-Link's two communication primitives beyond plain remote
 * access: the explicit broadcast API (Fig. 5-c/d) and hierarchical
 * synchronization (Section III-D). Runs K-Means — centroid-broadcast
 * plus per-iteration barriers — and the sync-interval microkernel on
 * both sync schemes.
 */

#include <cstdio>

#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace dimmlink;

namespace {

RunResult
runWith(SyncScheme scheme, const char *wl_name,
        std::uint64_t interval)
{
    SystemConfig cfg = SystemConfig::preset("16D-8C");
    cfg.idcMethod = IdcMethod::DimmLink;
    cfg.syncScheme = scheme;
    System sys(cfg);

    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = 1;
    p.rounds = 16;
    p.syncIntervalInstr = interval;
    auto wl = workloads::makeWorkload(wl_name, p, sys.addressMap());
    Runner runner(sys, *wl);
    RunResult r = runner.run();
    std::printf("  %-13s %-10s: %8.3f ms, barrier wait %6.3f ms "
                "(verified: %s)\n",
                wl_name, toString(scheme), r.kernelTicks / 1e9,
                r.barrierPs / p.numThreads / 1e9,
                r.verified ? "yes" : "n/a");
    return r;
}

} // namespace

int
main()
{
    std::printf("Hierarchical vs centralized synchronization on a "
                "16-DIMM DIMM-Link system\n\n");

    std::printf("Fine-grained barriers (every 1000 "
                "instructions):\n");
    const RunResult cent =
        runWith(SyncScheme::Centralized, "syncbench", 1000);
    const RunResult hier =
        runWith(SyncScheme::Hierarchical, "syncbench", 1000);
    std::printf("  -> hierarchical speedup: %.2fx\n\n",
                static_cast<double>(cent.kernelTicks) /
                    static_cast<double>(hier.kernelTicks));

    std::printf("K-Means (centroid broadcast + barrier per "
                "iteration):\n");
    runWith(SyncScheme::Centralized, "kmeans", 0);
    runWith(SyncScheme::Hierarchical, "kmeans", 0);

    std::printf("\nBroadcast-formulated SpMV vs remote-read "
                "SpMV:\n");
    for (bool bc : {false, true}) {
        SystemConfig cfg = SystemConfig::preset("16D-8C");
        cfg.idcMethod = IdcMethod::DimmLink;
        System sys(cfg);
        workloads::WorkloadParams p;
        p.numThreads = cfg.numDimms * cfg.dimm.numCores;
        p.numDimms = cfg.numDimms;
        p.scale = 10;
        p.broadcastMode = bc;
        auto wl =
            workloads::makeWorkload("spmv", p, sys.addressMap());
        Runner runner(sys, *wl);
        const RunResult r = runner.run();
        std::printf("  spmv %-10s: %8.3f ms (verified: %s)\n",
                    bc ? "broadcast" : "remote-read",
                    r.kernelTicks / 1e9, r.verified ? "yes" : "NO");
    }
    return 0;
}
