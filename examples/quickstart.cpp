/**
 * @file
 * Quickstart: build a 4-DIMM DIMM-Link system, run a BFS kernel on
 * the NMP cores, and print the headline metrics. This is the minimal
 * end-to-end tour of the public API:
 *
 *   SystemConfig -> System -> Workload -> Runner -> RunResult
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace dimmlink;

int
main()
{
    // 1. Configure the machine: the paper's 4D-2C preset with the
    //    DIMM-Link fabric, polling proxy and hierarchical sync.
    SystemConfig cfg = SystemConfig::preset("4D-2C");
    cfg.idcMethod = IdcMethod::DimmLink;
    cfg.pollingMode = PollingMode::Proxy;
    cfg.syncScheme = SyncScheme::Hierarchical;
    cfg.print(std::cout);

    // 2. Build the system.
    System sys(cfg);

    // 3. Build a workload: BFS over an R-MAT graph, 4 threads per
    //    DIMM (the Table V configuration).
    workloads::WorkloadParams params;
    params.numThreads = cfg.numDimms * cfg.dimm.numCores;
    params.numDimms = cfg.numDimms;
    params.scale = 11; // 2^11 vertices
    auto wl = workloads::makeWorkload("bfs", params, sys.addressMap());

    // 4. Coarse-grained execution flow (Section II-A): the host
    //    first loads the data set into the NMP DIMMs in Host-Access
    //    mode...
    const Tick load_ticks =
        sys.hostLoad(sys.addressMap().globalOf(0, 0), 4 << 20);

    //    ... then hands the DRAMs to the DIMM-side controllers and
    //    runs the kernel (Runner switches to NMP-Access mode) ...
    Runner runner(sys, *wl);
    const RunResult r = runner.run();

    //    ... and finally reads the results back.
    const Tick readback_ticks =
        sys.hostReadback(sys.addressMap().globalOf(0, 0), 1 << 20);

    // 5. Inspect the results.
    std::printf("\nBFS on %u DIMMs over %s\n", cfg.numDimms,
                toString(cfg.idcMethod));
    std::printf("  data load (HA)     : %.3f ms\n",
                static_cast<double>(load_ticks) / tickPerMs);
    std::printf("  kernel time (NA)   : %.3f ms\n",
                static_cast<double>(r.kernelTicks) / tickPerMs);
    std::printf("  readback (HA)      : %.3f ms\n",
                static_cast<double>(readback_ticks) / tickPerMs);
    std::printf("  result verified    : %s\n",
                r.verified ? "yes" : "NO");
    std::printf("  non-overlapped IDC : %.1f %%\n",
                100.0 * r.idcStallRatio());
    std::printf("  traffic local/link/host : %.1f / %.1f / %.1f MB\n",
                r.localBytes / 1e6, r.linkBytes / 1e6,
                r.hostBytes / 1e6);
    std::printf("  energy             : %.2f mJ (IDC %.2f mJ)\n",
                r.energy.total() / 1e9, r.energy.idc() / 1e9);
    return r.verified ? 0 : 1;
}
