/**
 * @file
 * The distance-aware task mapping of Section IV-B, exercised
 * directly through the public mapping API: profile a synthetic
 * traffic matrix, build the cost table, solve the min-cost max-flow,
 * and compare the resulting placement cost against a naive one.
 */

#include <cstdio>

#include "common/rng.hh"
#include "mapping/placement.hh"
#include "mapping/profiler.hh"

using namespace dimmlink;

int
main()
{
    constexpr unsigned threads = 16;
    constexpr unsigned dimms = 8;
    constexpr unsigned per_dimm = 4;

    // Profile: thread t mostly talks to DIMM (t*dimms/threads) but
    // with heavy skew toward a few "hub" DIMMs, like an R-MAT graph.
    mapping::TrafficProfiler prof(threads, dimms);
    Rng rng(42);
    for (ThreadId t = 0; t < threads; ++t) {
        const DimmId own = static_cast<DimmId>(t * dimms / threads);
        prof.record(t, own, 100000);
        for (int k = 0; k < 6; ++k) {
            const DimmId hub =
                static_cast<DimmId>(rng.below(3)); // hubs 0..2
            prof.record(t, hub,
                        static_cast<std::uint32_t>(
                            20000 + rng.below(40000)));
        }
    }

    // The DIMM-Link distance of an 8-DIMM group: hop count on the
    // Half-Ring.
    auto dist = [](DimmId j, DimmId k) {
        return std::abs(static_cast<int>(j) - static_cast<int>(k));
    };

    std::printf("Cost table C[T][N] (Algorithm 1, Step 1):\n");
    const auto cost = mapping::costTable(prof, dist);
    for (ThreadId t = 0; t < threads; ++t) {
        std::printf("  T%-2u:", t);
        for (DimmId d = 0; d < dimms; ++d)
            std::printf(" %8.0f", cost[t * dimms + d]);
        std::printf("\n");
    }

    // Naive placement: threads in block order.
    std::vector<DimmId> naive(threads);
    for (ThreadId t = 0; t < threads; ++t)
        naive[t] = static_cast<DimmId>(t * dimms / threads);

    const auto opt = mapping::solvePlacement(prof, dist, per_dimm);

    std::printf("\nPlacement (thread -> DIMM):\n  naive:");
    for (DimmId d : naive)
        std::printf(" %u", d);
    std::printf("\n  mcmf :");
    for (DimmId d : opt)
        std::printf(" %u", d);

    const double naive_cost =
        mapping::placementCost(prof, dist, naive);
    const double opt_cost = mapping::placementCost(prof, dist, opt);
    std::printf("\n\nDistance-weighted cost: naive %.0f -> "
                "optimized %.0f (%.1f%% lower)\n",
                naive_cost, opt_cost,
                100.0 * (naive_cost - opt_cost) / naive_cost);
    return opt_cost <= naive_cost ? 0 : 1;
}
