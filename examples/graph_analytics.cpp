/**
 * @file
 * Graph analytics on an NMP system: runs PageRank over an R-MAT
 * graph on all four IDC fabrics and compares them against the
 * 16-core host CPU — the experiment the paper's introduction
 * motivates (graph kernels need neighbor state from other DIMMs).
 *
 * Usage: example_graph_analytics [preset] [scale]
 *   preset: 4D-2C | 8D-4C | 12D-6C | 16D-8C  (default 8D-4C)
 *   scale:  log2 of the vertex count          (default 10)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace dimmlink;

namespace {

RunResult
runFabric(const std::string &preset, IdcMethod method,
          std::uint64_t scale, bool mapping)
{
    SystemConfig cfg = SystemConfig::preset(preset);
    cfg.idcMethod = method;
    cfg.distanceAwareMapping = mapping;
    cfg.pollingMode = method == IdcMethod::DimmLink
                          ? PollingMode::Proxy
                          : PollingMode::Baseline;
    System sys(cfg);

    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = scale;
    auto wl = workloads::makeWorkload("pagerank", p,
                                      sys.addressMap());
    Runner runner(sys, *wl);
    return runner.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string preset = argc > 1 ? argv[1] : "8D-4C";
    const std::uint64_t scale =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

    std::printf("PageRank on %s (2^%llu vertices)\n\n",
                preset.c_str(),
                static_cast<unsigned long long>(scale));

    // CPU baseline.
    SystemConfig cfg = SystemConfig::preset(preset);
    HostRunner host(cfg);
    workloads::WorkloadParams hp;
    hp.numThreads = cfg.host.numCores;
    hp.numDimms = cfg.numDimms;
    hp.scale = scale;
    dram::GlobalAddressMap gmap(cfg.numDimms,
                                cfg.dimm.capacityBytes);
    auto host_wl = workloads::makeWorkload("pagerank", hp, gmap);
    const RunResult cpu = host.run(*host_wl);
    std::printf("%-22s %10.3f ms  (verified: %s)\n",
                "16-core CPU", cpu.kernelTicks / 1e9,
                cpu.verified ? "yes" : "NO");

    const struct
    {
        const char *label;
        IdcMethod method;
        bool mapping;
    } variants[] = {
        {"MCN (CPU-forwarding)", IdcMethod::CpuForwarding, false},
        {"AIM (dedicated bus)", IdcMethod::DedicatedBus, false},
        {"DIMM-Link", IdcMethod::DimmLink, false},
        {"DIMM-Link + mapping", IdcMethod::DimmLink, true},
    };
    for (const auto &v : variants) {
        const RunResult r =
            runFabric(preset, v.method, scale, v.mapping);
        std::printf("%-22s %10.3f ms  (%5.2fx vs CPU, "
                    "IDC stall %4.1f%%, verified: %s)\n",
                    v.label, r.kernelTicks / 1e9,
                    static_cast<double>(cpu.kernelTicks) /
                        static_cast<double>(r.kernelTicks),
                    100 * r.idcStallRatio(),
                    r.verified ? "yes" : "NO");
    }
    return 0;
}
