/**
 * @file
 * A command-line driver over the full public API: pick a system
 * shape, fabric, polling/sync/topology/mapping options and a
 * workload, run it, and print every metric the library collects.
 *
 * Usage:
 *   example_simulate [options]
 *     --preset   4D-2C|8D-4C|12D-6C|16D-8C   (default 8D-4C)
 *     --fabric   mcn|aim|abc|dimmlink        (default dimmlink)
 *     --workload bfs|hotspot|kmeans|nw|pagerank|sssp|spmv|tspow
 *     --scale    N                           (default 12)
 *     --rounds   N                           (default 4)
 *     --topology halfring|ring|mesh|torus    (default halfring)
 *     --polling  base|base-itrpt|proxy|proxy-itrpt (default proxy)
 *     --sync     central|hier                (default hier)
 *     --mapping                              (enable Algorithm 1)
 *     --broadcast                            (broadcast-mode kernel)
 *     --linkgbps F                           (default 25)
 *     --cpu                                  (run the host baseline too)
 *     --stats                                (dump raw statistics)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/stats_json.hh"
#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace dimmlink;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the file header for "
                 "options)\n", msg);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string preset = "8D-4C";
    std::string fabric = "dimmlink";
    std::string workload = "pagerank";
    std::string topology = "halfring";
    std::string polling = "proxy";
    std::string sync = "hier";
    std::uint64_t scale = 12;
    unsigned rounds = 4;
    double link_gbps = 25.0;
    bool mapping = false, broadcast = false, run_cpu = false,
         dump_stats = false, dump_json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(("missing value for " + a).c_str());
            return argv[++i];
        };
        if (a == "--preset")
            preset = next();
        else if (a == "--fabric")
            fabric = next();
        else if (a == "--workload")
            workload = next();
        else if (a == "--scale")
            scale = std::stoull(next());
        else if (a == "--rounds")
            rounds = static_cast<unsigned>(std::stoul(next()));
        else if (a == "--topology")
            topology = next();
        else if (a == "--polling")
            polling = next();
        else if (a == "--sync")
            sync = next();
        else if (a == "--mapping")
            mapping = true;
        else if (a == "--broadcast")
            broadcast = true;
        else if (a == "--linkgbps")
            link_gbps = std::stod(next());
        else if (a == "--cpu")
            run_cpu = true;
        else if (a == "--stats")
            dump_stats = true;
        else if (a == "--json")
            dump_json = true;
        else
            usage(("unknown option " + a).c_str());
    }

    SystemConfig cfg = SystemConfig::preset(preset);
    if (fabric == "mcn")
        cfg.idcMethod = IdcMethod::CpuForwarding;
    else if (fabric == "aim")
        cfg.idcMethod = IdcMethod::DedicatedBus;
    else if (fabric == "abc")
        cfg.idcMethod = IdcMethod::ChannelBroadcast;
    else if (fabric == "dimmlink")
        cfg.idcMethod = IdcMethod::DimmLink;
    else
        usage("bad --fabric");

    if (topology == "halfring")
        cfg.link.topology = Topology::HalfRing;
    else if (topology == "ring")
        cfg.link.topology = Topology::Ring;
    else if (topology == "mesh")
        cfg.link.topology = Topology::Mesh;
    else if (topology == "torus")
        cfg.link.topology = Topology::Torus;
    else
        usage("bad --topology");

    if (polling == "base")
        cfg.pollingMode = PollingMode::Baseline;
    else if (polling == "base-itrpt")
        cfg.pollingMode = PollingMode::BaselineInterrupt;
    else if (polling == "proxy")
        cfg.pollingMode = PollingMode::Proxy;
    else if (polling == "proxy-itrpt")
        cfg.pollingMode = PollingMode::ProxyInterrupt;
    else
        usage("bad --polling");

    cfg.syncScheme = sync == "central" ? SyncScheme::Centralized
                                       : SyncScheme::Hierarchical;
    cfg.distanceAwareMapping = mapping;
    cfg.link.linkGBps = link_gbps;
    cfg.print(std::cout);

    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = scale;
    p.rounds = rounds;
    p.broadcastMode = broadcast;
    auto wl = workloads::makeWorkload(workload, p, sys.addressMap());

    Runner runner(sys, *wl);
    const RunResult r = runner.run();

    std::printf("\n%s on %s over %s:\n", workload.c_str(),
                preset.c_str(), toString(cfg.idcMethod));
    std::printf("  kernel time          : %10.3f ms\n",
                r.kernelTicks / 1e9);
    std::printf("  profiling time       : %10.3f ms\n",
                r.profilingTicks / 1e9);
    std::printf("  verified             : %s\n",
                r.verified ? "yes" : "NO");
    std::printf("  instructions         : %10llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  non-overlapped IDC   : %9.1f %%\n",
                100 * r.idcStallRatio());
    std::printf("  traffic (MB)         : local %.2f  link %.2f  "
                "host %.2f  bus %.2f\n", r.localBytes / 1e6,
                r.linkBytes / 1e6, r.hostBytes / 1e6,
                r.busBytes / 1e6);
    std::printf("  memory-bus occupancy : %9.1f %%\n",
                100 * r.busOccupancy);
    std::printf("  energy (mJ)          : total %.3f  dram %.3f  "
                "idc %.3f  cores %.3f\n", r.energy.total() / 1e9,
                r.energy.dramPj / 1e9, r.energy.idc() / 1e9,
                r.energy.nmpCorePj / 1e9);

    if (run_cpu) {
        HostRunner host(cfg);
        workloads::WorkloadParams hp = p;
        hp.numThreads = cfg.host.numCores;
        dram::GlobalAddressMap gmap(cfg.numDimms,
                                    cfg.dimm.capacityBytes);
        auto host_wl =
            workloads::makeWorkload(workload, hp, gmap);
        const RunResult c = host.run(*host_wl);
        std::printf("\n  16-core CPU baseline : %10.3f ms "
                    "(NMP speedup %.2fx, verified: %s)\n",
                    c.kernelTicks / 1e9,
                    static_cast<double>(c.kernelTicks) /
                        static_cast<double>(r.kernelTicks),
                    c.verified ? "yes" : "NO");
    }

    if (dump_stats) {
        std::printf("\n--- raw statistics ---\n");
        sys.stats().dump(std::cout);
    }
    if (dump_json)
        stats::dumpJson(sys.stats(), std::cout);
    return r.verified ? 0 : 1;
}
