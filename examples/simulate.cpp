/**
 * @file
 * A command-line driver over the full public API: pick a system
 * shape, fabric, polling/sync/topology/mapping options and a
 * workload, run it, and print every metric the library collects.
 *
 * The machine can come from three layered sources, later ones
 * overriding earlier ones:
 *
 *   1. --preset / --config FILE   (base configuration)
 *   2. convenience flags          (--fabric, --topology, ...)
 *   3. -p section.key=value       (Ramulator-style point overrides)
 *
 * Usage:
 *   example_simulate [options]
 *     --config FILE    flat JSON config (see configs/default.json)
 *     --preset 4D-2C|8D-4C|12D-6C|16D-8C      (default 8D-4C)
 *     -p section.key=value                    (repeatable override)
 *     --dump-config    print the resolved config JSON and exit
 *     --fabric   mcn|aim|abc|dimmlink         (default dimmlink)
 *     --workload bfs|hotspot|kmeans|nw|pagerank|sssp|spmv|tspow|...
 *     --scale    N                            (default 12)
 *     --rounds   N                            (default 4)
 *     --topology halfring|ring|mesh|torus
 *     --polling  base|base-itrpt|proxy|proxy-itrpt
 *     --sync     central|hier
 *     --mapping                               (enable Algorithm 1)
 *     --broadcast                             (broadcast-mode kernel)
 *     --linkgbps F
 *     --ber F          (shorthand for -p faults.model=ber
 *                       -p faults.ber=F; routes intra-group data
 *                       over the reliable DLL transport)
 *     --threads N      (shorthand for -p sim.threads=N and, for
 *                       N > 1, -p sim.shard=group: run the sharded
 *                       parallel kernel on N OS threads; see
 *                       docs/parallel_kernel.md)
 *     --hosts N        (shorthand for -p rack.hosts=N: partition the
 *                       DL groups across N hosts pooling their
 *                       NMP-DIMMs over the inter-host fabric; see
 *                       docs/rack.md)
 *     --deadline-us F  (shorthand for -p serve.deadlineUs=F: abort
 *                       serving requests still in flight F us after
 *                       arrival; see docs/serving.md)
 *     --max-retries N  (shorthand for -p serve.maxRetries=N: budget
 *                       for backed-off retries of requests the
 *                       circuit breaker fails fast)
 *     --hedge-after-us F  (shorthand for -p serve.hedgeAfterUs=F:
 *                       duplicate a GET to its replica range when the
 *                       primary has not answered after F us)
 *     --rack-latency-ns N  (shorthand for -p rack.latencyPs=N000:
 *                       one-way CXL.mem latency of the rack fabric)
 *     --cpu                                   (run the host baseline)
 *     --stats                                 (dump raw statistics)
 *     --json                                  (stats + config as JSON)
 *     --trace                                 (enable event tracing)
 *     --trace-out FILE       Chrome-trace JSON path (implies --trace;
 *                            default trace.json; open in Perfetto)
 *     --trace-categories S   comma list: dram,noc,dll,core,host,
 *                            counter (default all)
 *     --sample-interval-ps N periodic counter sampling every N ps
 *     --sample-out FILE      time-series CSV path (default
 *                            samples.csv)
 *
 * Observability summaries go to stderr so stdout (config + metrics +
 * stats JSON) is byte-identical whether or not a run was traced.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/stats_json.hh"
#include "obs/chrome_trace.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "system/host_runner.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace dimmlink;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the file header for "
                 "options)\n", msg);
    std::exit(2);
}

std::string
joined(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string preset = "8D-4C";
    std::string config_file;
    std::string workload = "pagerank";
    std::uint64_t scale = 12;
    unsigned rounds = 4;
    bool broadcast = false, run_cpu = false, dump_stats = false,
         dump_json = false, dump_config = false;
    // Convenience flags and -p overrides, applied onto the base
    // config in command-line order.
    std::vector<std::string> overrides;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(("missing value for " + a).c_str());
            return argv[++i];
        };
        if (a == "--preset")
            preset = next();
        else if (a == "--config")
            config_file = next();
        else if (a == "-p")
            overrides.push_back(next());
        else if (a == "--dump-config")
            dump_config = true;
        else if (a == "--fabric")
            overrides.push_back("system.idcMethod=" + next());
        else if (a == "--workload")
            workload = next();
        else if (a == "--scale")
            scale = std::stoull(next());
        else if (a == "--rounds")
            rounds = static_cast<unsigned>(std::stoul(next()));
        else if (a == "--qps")
            overrides.push_back("serve.offeredQps=" + next());
        else if (a == "--requests")
            overrides.push_back("serve.requests=" + next());
        else if (a == "--closed-loop")
            overrides.push_back("serve.mode=closed");
        else if (a == "--topology")
            overrides.push_back("link.topology=" + next());
        else if (a == "--polling")
            overrides.push_back("system.pollingMode=" + next());
        else if (a == "--sync")
            overrides.push_back("system.syncScheme=" + next());
        else if (a == "--mapping")
            overrides.push_back("system.distanceAwareMapping=true");
        else if (a == "--broadcast")
            broadcast = true;
        else if (a == "--linkgbps")
            overrides.push_back("link.linkGBps=" + next());
        else if (a == "--ber") {
            overrides.push_back("faults.model=ber");
            overrides.push_back("faults.ber=" + next());
        }
        else if (a == "--threads") {
            const std::string n = next();
            overrides.push_back("sim.threads=" + n);
            if (n != "1")
                overrides.push_back("sim.shard=group");
        }
        else if (a == "--hosts")
            overrides.push_back("rack.hosts=" + next());
        else if (a == "--deadline-us")
            overrides.push_back("serve.deadlineUs=" + next());
        else if (a == "--max-retries")
            overrides.push_back("serve.maxRetries=" + next());
        else if (a == "--hedge-after-us")
            overrides.push_back("serve.hedgeAfterUs=" + next());
        else if (a == "--rack-latency-ns")
            overrides.push_back("rack.latencyPs=" + next() + "000");
        else if (a == "--trace")
            overrides.push_back("obs.trace=true");
        else if (a == "--trace-out") {
            overrides.push_back("obs.trace=true");
            overrides.push_back("obs.traceOut=" + next());
        }
        else if (a == "--trace-categories")
            overrides.push_back("obs.categories=" + next());
        else if (a == "--sample-interval-ps")
            overrides.push_back("obs.sampleIntervalPs=" + next());
        else if (a == "--sample-out")
            overrides.push_back("obs.sampleOut=" + next());
        else if (a == "--cpu")
            run_cpu = true;
        else if (a == "--stats")
            dump_stats = true;
        else if (a == "--json")
            dump_json = true;
        else
            usage(("unknown option " + a).c_str());
    }

    SystemConfig cfg = config_file.empty()
        ? SystemConfig::preset(preset)
        : SystemConfig::fromFile(config_file);
    for (const std::string &o : overrides)
        cfg.applyOverride(o);

    if (dump_config) {
        std::cout << cfg.describe();
        return 0;
    }

    if (!workloads::WorkloadFactory::instance().contains(workload))
        usage(("unknown workload '" + workload + "' (registered: " +
               joined(workloads::knownWorkloads()) + ")").c_str());

    cfg.print(std::cout);

    System sys(cfg);
    workloads::WorkloadParams p;
    p.numThreads = cfg.numDimms * cfg.dimm.numCores;
    p.numDimms = cfg.numDimms;
    p.scale = scale;
    p.rounds = rounds;
    p.broadcastMode = broadcast;
    p.serve = cfg.serve;
    auto wl = workloads::makeWorkload(workload, p, sys.addressMap());

    Runner runner(sys, *wl);
    const RunResult r = runner.run();

    std::printf("\n%s on %uD-%uC over %s:\n", workload.c_str(),
                cfg.numDimms, cfg.numChannels, toString(cfg.idcMethod));
    std::printf("  kernel time          : %10.3f ms\n",
                r.kernelTicks / 1e9);
    std::printf("  profiling time       : %10.3f ms\n",
                r.profilingTicks / 1e9);
    std::printf("  verified             : %s\n",
                r.verified ? "yes" : "NO");
    std::printf("  instructions         : %10llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  non-overlapped IDC   : %9.1f %%\n",
                100 * r.idcStallRatio());
    std::printf("  traffic (MB)         : local %.2f  link %.2f  "
                "host %.2f  bus %.2f\n", r.localBytes / 1e6,
                r.linkBytes / 1e6, r.hostBytes / 1e6,
                r.busBytes / 1e6);
    std::printf("  memory-bus occupancy : %9.1f %%\n",
                100 * r.busOccupancy);
    std::printf("  energy (mJ)          : total %.3f  dram %.3f  "
                "idc %.3f  cores %.3f\n", r.energy.total() / 1e9,
                r.energy.dramPj / 1e9, r.energy.idc() / 1e9,
                r.energy.nmpCorePj / 1e9);

    {
        const auto &reg = sys.stats();
        const double nreq = reg.sumScalar("serve", "requests");
        if (nreq > 0) {
            auto sv = [&](const char *s) {
                return reg.sumScalar("serve", s);
            };
            std::printf("  serving              : %.0f requests  "
                        "offered %.3g qps  achieved %.3g qps\n",
                        nreq, sv("offeredQps"), sv("achievedQps"));
            std::printf("    latency (us)       : p50 %.2f  p95 %.2f  "
                        "p99 %.2f\n", sv("latencyP50Ps") / 1e6,
                        sv("latencyP95Ps") / 1e6,
                        sv("latencyP99Ps") / 1e6);
            if (cfg.serve.relEnabled()) {
                std::printf("    reliability        : goodput %.3g qps"
                            "  error rate %.4f\n", sv("goodputQps"),
                            sv("errorRate"));
                std::printf("      dropped          : deadline %.0f  "
                            "shed %.0f  failed %.0f\n",
                            sv("deadlineMisses"), sv("shedRequests"),
                            sv("failedRequests"));
                std::printf("      recovery         : retries %.0f  "
                            "fast-fails %.0f  hedges %.0f "
                            "(won %.0f)\n", sv("retries"),
                            sv("breakerFastFails"),
                            sv("hedgedRequests"), sv("hedgeWins"));
            }
        }
    }

    if (cfg.rackEnabled()) {
        const auto &reg = sys.stats();
        auto rk = [&](const char *s) {
            return reg.sumScalar("rack", s);
        };
        std::printf("  rack                 : %u hosts  %s fabric  "
                    "CXL %.0f ns  primary %s\n", cfg.rack.hosts,
                    cfg.rack.fabric.c_str(),
                    static_cast<double>(cfg.rack.latencyPs) / 1e3,
                    cfg.rack.idcMode.c_str());
        std::printf("    crossings          : forwarded %.0f "
                    "(%.2f MB)  pooled %.0f (%.2f MB)\n",
                    rk("crossings"), rk("forwardedBytes") / 1e6,
                    rk("pooledTransfers"), rk("pooledBytes") / 1e6);
        std::printf("    availability       : reroutes %.0f  "
                    "portDown %.0f  recovered %.0f\n",
                    rk("reroutes"), rk("portDownEvents"),
                    rk("portRecoveredEvents"));
        for (unsigned h = 0; h < cfg.rack.hosts; ++h) {
            const std::string pre = "host" + std::to_string(h) + ".";
            if (!reg.hasScalar("serve." + pre + "requests"))
                break;
            const double hreq =
                reg.scalar("serve." + pre + "requests");
            if (hreq == 0)
                continue;
            std::printf("    host %u SLO         : %.0f requests  "
                        "p50 %.2f us  p99 %.2f us\n", h, hreq,
                        reg.scalar("serve." + pre + "latencyP50Ps") /
                            1e6,
                        reg.scalar("serve." + pre + "latencyP99Ps") /
                            1e6);
        }
    }

    if (cfg.faults.model != "none") {
        const auto &reg = sys.stats();
        auto dl = [&](const char *s) {
            return static_cast<unsigned long long>(
                reg.sumScalar("fabric.dl", s));
        };
        std::printf("  fault injection      : model %s  seed %llu\n",
                    cfg.faults.model.c_str(),
                    static_cast<unsigned long long>(cfg.faults.seed));
        std::printf("    DLL packets sent   : %10llu  (retries %llu, "
                    "failed transfers %llu)\n", dl("dllSent"),
                    dl("dllRetries"), dl("dllFailedTransfers"));
        std::printf("    corrupted images   : %10llu  (duplicates "
                    "filtered %llu, reordered %llu)\n",
                    dl("dllCorrupt"), dl("dllDuplicates"),
                    dl("dllOutOfOrder"));
    }

    if (run_cpu) {
        HostRunner host(cfg);
        workloads::WorkloadParams hp = p;
        hp.numThreads = cfg.host.numCores;
        dram::GlobalAddressMap gmap(cfg.numDimms,
                                    cfg.dimm.capacityBytes);
        auto host_wl =
            workloads::makeWorkload(workload, hp, gmap);
        const RunResult c = host.run(*host_wl);
        std::printf("\n  16-core CPU baseline : %10.3f ms "
                    "(NMP speedup %.2fx, verified: %s)\n",
                    c.kernelTicks / 1e9,
                    static_cast<double>(c.kernelTicks) /
                        static_cast<double>(r.kernelTicks),
                    c.verified ? "yes" : "NO");
    }

    if (obs::Tracer *tr = sys.tracer()) {
        std::ofstream out(cfg.obs.traceOut);
        if (!out)
            usage(("cannot open trace output file '" +
                   cfg.obs.traceOut + "'").c_str());
        obs::writeChromeTrace(*tr, out);
        std::fprintf(stderr,
                     "trace: %llu events across %zu tracks -> %s "
                     "(%llu dropped)\n",
                     static_cast<unsigned long long>(tr->recorded()),
                     tr->tracks().size(), cfg.obs.traceOut.c_str(),
                     static_cast<unsigned long long>(tr->dropped()));
    }
    if (obs::Sampler *sm = sys.sampler()) {
        const std::string csv_path = cfg.obs.sampleOut.empty()
                                         ? "samples.csv"
                                         : cfg.obs.sampleOut;
        std::ofstream out(csv_path);
        if (!out)
            usage(("cannot open sample output file '" + csv_path +
                   "'").c_str());
        sm->writeCsv(out);
        std::fprintf(stderr, "samples: %zu rows x %zu probes every "
                     "%llu ps -> %s\n", sm->rows().size(),
                     sm->probeNames().size(),
                     static_cast<unsigned long long>(sm->interval()),
                     csv_path.c_str());
    }

    if (dump_stats) {
        std::printf("\n--- raw statistics ---\n");
        sys.stats().dump(std::cout);
    }
    if (dump_json)
        stats::dumpJson(sys.stats(), std::cout, false, &cfg);
    return r.verified ? 0 : 1;
}
