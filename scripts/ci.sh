#!/usr/bin/env bash
# Tier-1 CI: plain build + full test suite, then an ASan+UBSan build of
# the same suite, then the event-kernel microbench as a smoke test.
# Run from anywhere; operates on the repo root.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> tier-1 build (-Wall -Wextra -Werror)"
cmake -S "$root" -B "$root/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-Werror
cmake --build "$root/build" -j "$jobs"

echo "==> tier-1 tests"
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

echo "==> sanitizer build (ASan+UBSan)"
cmake -S "$root" -B "$root/build-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DENABLE_SANITIZERS=ON
cmake --build "$root/build-asan" -j "$jobs"

echo "==> sanitizer tests"
# Leak checking needs ptrace, which most CI containers deny; the
# sanitizers' aborts on ASan/UBSan findings are what we are after.
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs"

echo "==> ThreadSanitizer build + sharded-kernel smoke"
# The full suite under TSan is slow; what TSan must see is the
# parallel kernel actually racing real threads, so build the example
# driver and push a sharded multi-threaded workload through it.
cmake -S "$root" -B "$root/build-tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DENABLE_TSAN=ON
cmake --build "$root/build-tsan" -j "$jobs" --target example_simulate
TSAN_OPTIONS=halt_on_error=1 \
    "$root/build-tsan/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 \
    --workload pagerank --scale 5 --rounds 1 --threads 2 --json \
    > /dev/null
echo "    tsan OK: sharded run clean at 2 threads"

echo "==> event-kernel microbench (smoke)"
"$root/build/bench/micro_eventqueue" \
    --benchmark_min_time=0.05 --benchmark_format=json

echo "==> end-to-end run from the checked-in config"
"$root/build/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 -p system.dramScheduler=FCFS \
    --workload stream --scale 4 --rounds 1

echo "==> trace smoke: emitted Chrome-trace JSON is valid and complete"
# A traced run must produce Perfetto-openable JSON with spans from
# every acceptance layer (DRAM, NoC, DLL, NMP cores) plus a non-empty
# counter time series from the periodic sampler.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
"$root/build/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 \
    --workload bfs --scale 4 --rounds 1 \
    --trace-out "$trace_dir/trace.json" \
    --sample-interval-ps 1000000 \
    --sample-out "$trace_dir/samples.csv" > "$trace_dir/traced.out"
python3 - "$trace_dir/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "empty trace"
cats = {e.get("cat") for e in events}
for want in ("dram", "noc", "dll", "core"):
    assert want in cats, f"no '{want}' events (got {sorted(cats)})"
pids = {e["pid"] for e in events if "pid" in e}
assert pids, "no pids"
names = {e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
assert any(n.startswith("dimm") for n in names), names
EOF
sample_rows="$(tail -n +2 "$trace_dir/samples.csv" | wc -l)"
if [ "$sample_rows" -lt 1 ]; then
    echo "sampler emitted no rows"; exit 1
fi
echo "    trace OK: all layers present, $sample_rows sample rows"

echo "==> zero-perturbation guard: tracing off matches untraced output"
# The instrumented binary with obs.trace=off must print byte-identical
# stdout (config header, metrics, stats JSON) to a plain run.
"$root/build/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 \
    --workload bfs --scale 4 --rounds 1 --json \
    -p obs.trace=false > "$trace_dir/off.out"
"$root/build/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 \
    --workload bfs --scale 4 --rounds 1 --json > "$trace_dir/plain.out"
if ! cmp -s "$trace_dir/off.out" "$trace_dir/plain.out"; then
    echo "tracing-off run diverged from plain run"
    diff "$trace_dir/off.out" "$trace_dir/plain.out" | head
    exit 1
fi
echo "    guard OK: byte-identical stats output"

echo "==> DRAM standards matrix"
# Every registered memory-standard family must push the whole workload
# matrix to completion and verification (example_simulate exits
# nonzero when a kernel fails to verify), exercising each family's own
# constraint set: DDR5 sub-channels + write CRC, LPDDR5X groupless /
# windowless decode + REFpb, HBM2 pseudo-channels (docs/dram_timing.md).
# And the ddr4 family alias must be pure sugar: a run selected via
# -p dram.standard=ddr4 is byte-identical to one without it.
"$root/build/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 \
    --workload bfs --scale 5 --rounds 1 --json \
    > "$trace_dir/std-base.out"
"$root/build/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 -p dram.standard=ddr4 \
    --workload bfs --scale 5 --rounds 1 --json \
    > "$trace_dir/std-alias.out"
if ! cmp -s "$trace_dir/std-base.out" "$trace_dir/std-alias.out"; then
    echo "dram.standard=ddr4 perturbed the default run"
    diff "$trace_dir/std-base.out" "$trace_dir/std-alias.out" | head
    exit 1
fi
echo "    [alias] OK: dram.standard=ddr4 is byte-identical"
for std in ddr4 ddr5 lpddr5x hbm2; do
    for wl in bfs gups hotspot kmeans nw pagerank spmv sssp stream \
        tspow; do
        "$root/build/examples/example_simulate" \
            --config "$root/configs/default.json" \
            -p system.numDimms=4 -p system.numChannels=2 \
            -p host.numChannels=2 -p dram.standard="$std" \
            --workload "$wl" --scale 5 --rounds 1 > /dev/null
    done
    echo "    [$std] OK: 10-workload matrix completed and verified"
done

echo "==> parallel determinism: sharded stats identical across threads"
# The contract of sim.shard=group: the full --json output (config
# header, metrics, stats) is byte-identical at every thread count.
# --threads 1 runs the same windowed algorithm single-threaded and is
# the reference; the workload matrix also doubles as multi-threaded
# coverage of each traffic pattern.
for wl in stream bfs pagerank; do
    "$root/build/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p system.numDimms=4 -p system.numChannels=2 \
        -p host.numChannels=2 -p sim.shard=group --threads 1 \
        --workload "$wl" --scale 5 --rounds 1 --json \
        > "$trace_dir/par1.out"
    "$root/build/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p system.numDimms=4 -p system.numChannels=2 \
        -p host.numChannels=2 --threads 4 \
        --workload "$wl" --scale 5 --rounds 1 --json \
        > "$trace_dir/par4.out"
    if ! cmp -s "$trace_dir/par1.out" "$trace_dir/par4.out"; then
        echo "[$wl] sharded run diverged between 1 and 4 threads"
        diff "$trace_dir/par1.out" "$trace_dir/par4.out" | head
        exit 1
    fi
    echo "    [$wl] OK: byte-identical at 1 and 4 threads"
done
# The chaos cells inside the sharded kernel: a permanently-stuck link
# with host failover must recover identically at every thread count.
# The 8D (two-group) shape is the one whose stuck bridge used to hang
# the proxy-notify path (fixed via requestForward's retry-deadline
# fallback); it rides the default config with no shape overrides.
for shape in 4D 8D; do
    shape_args=()
    [ "$shape" = 4D ] && shape_args=(-p system.numDimms=4 \
        -p system.numChannels=2 -p host.numChannels=2)
    for t in 1 2; do
        threads_args=(--threads "$t")
        [ "$t" = 1 ] && threads_args+=(-p sim.shard=group)
        "$root/build/examples/example_simulate" \
            --config "$root/configs/default.json" \
            "${shape_args[@]}" \
            -p faults.model=stuck -p faults.stuckAtPs=0 \
            -p faults.stuckForPs=400000000000000 \
            -p faults.stuckPeriodPs=0 -p faults.linkFilter=link1to2 \
            -p faults.seed=7 -p faults.onExhausted=failover \
            -p watchdog.stallPs=1000000000 \
            "${threads_args[@]}" \
            --workload bfs --scale 6 --rounds 1 --json \
            > "$trace_dir/parfault$t.out"
    done
    if ! cmp -s "$trace_dir/parfault1.out" "$trace_dir/parfault2.out"
    then
        echo "[$shape] sharded fault run diverged between thread counts"
        diff "$trace_dir/parfault1.out" "$trace_dir/parfault2.out" | head
        exit 1
    fi
    if ! grep -q '"linkDownEvents": [1-9]' "$trace_dir/parfault2.out"
    then
        echo "[$shape] sharded chaos cell never detected the dead link"
        exit 1
    fi
    echo "    [$shape stuck/failover] OK: byte-identical, recovered"
done

echo "==> serving smoke under ASan+UBSan"
# Short open-loop runs of both request-level workloads
# (docs/serving.md): the stats JSON must carry the serve group with a
# nonzero request count and the SLO percentiles, and the run must
# verify (example_simulate exits nonzero otherwise).
for wl in kv embed; do
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
        "$root/build-asan/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p system.numDimms=4 -p system.numChannels=2 \
        -p host.numChannels=2 \
        --workload "$wl" --requests 256 -p serve.keys=8192 --json \
        > "$trace_dir/serve-$wl.out"
    python3 - "$trace_dir/serve-$wl.out" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
stats = json.loads(text[text.index('{\n  "config"'):])
serve = stats["serve"]["scalars"]
assert serve["requests"] > 0, "no requests retired"
for k in ("latencyP50Ps", "latencyP95Ps", "latencyP99Ps"):
    assert serve[k] > 0, f"missing/zero {k}"
assert serve["latencyP50Ps"] <= serve["latencyP95Ps"] \
       <= serve["latencyP99Ps"], "percentiles not monotone"
hist = stats["serve"]["histograms"]["latencyPs"]
assert hist["total"] == serve["requests"], "histogram count mismatch"
EOF
    echo "    [$wl] OK: served, percentiles present"
done
# Determinism contract: byte-identical stats at 1 vs 4 threads under
# sim.shard=group, for both serving workloads.
for wl in kv embed; do
    "$root/build/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p system.numDimms=4 -p system.numChannels=2 \
        -p host.numChannels=2 -p sim.shard=group --threads 1 \
        --workload "$wl" --requests 256 -p serve.keys=8192 --json \
        > "$trace_dir/serve1.out"
    "$root/build/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p system.numDimms=4 -p system.numChannels=2 \
        -p host.numChannels=2 --threads 4 \
        --workload "$wl" --requests 256 -p serve.keys=8192 --json \
        > "$trace_dir/serve4.out"
    if ! cmp -s "$trace_dir/serve1.out" "$trace_dir/serve4.out"; then
        echo "[$wl] serving run diverged between 1 and 4 threads"
        diff "$trace_dir/serve1.out" "$trace_dir/serve4.out" | head
        exit 1
    fi
    echo "    [$wl] OK: byte-identical at 1 and 4 threads"
done

echo "==> fault-injection soak under ASan+UBSan"
# A nonzero BER at a fixed seed drives the whole DLL retry path
# (corruption, NACK, timeout retransmission, dedup) under the
# sanitizers; bfs keeps traffic on the bridge where faults land.
soak_out="$(ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "$root/build-asan/examples/example_simulate" \
    --config "$root/configs/default.json" \
    -p system.numDimms=4 -p system.numChannels=2 \
    -p host.numChannels=2 \
    -p faults.model=ber -p faults.ber=2e-5 -p faults.seed=7 \
    --workload bfs --scale 6 --rounds 2 --json)"
if ! grep -q '"dllCorrupt": [1-9]' <<<"$soak_out"; then
    echo "soak injected no corruption"; exit 1
fi
if ! grep -q '"dllRetries": [1-9]' <<<"$soak_out"; then
    echo "soak triggered no retries"; exit 1
fi
if grep -q '"dllFailedTransfers": [1-9]' <<<"$soak_out"; then
    echo "soak lost transfers permanently"; exit 1
fi
echo "    soak OK: corruption injected, retries recovered, no losses"

echo "==> link-failure chaos matrix under ASan+UBSan"
# Fault model x topology x recovery policy. The stuck cells hold one
# direction of the 1<->2 bridge link down for the whole run — past the
# retry budget; the ber cells inject corruption the budget must absorb
# without a single exhaustion. Every cell must complete and verify
# (example_simulate exits nonzero otherwise) and recover through the
# configured path: failover re-sends through the host forwarder, drop
# completes on the warn-and-discard path. The hang watchdog rides
# along armed in every cell.
for model in stuck ber; do
    for topo in HalfRing Ring; do
        for policy in failover drop; do
            case "$model" in
            stuck) fault_args=(-p faults.model=stuck \
                -p faults.stuckAtPs=0 \
                -p faults.stuckForPs=400000000000000 \
                -p faults.stuckPeriodPs=0 \
                -p faults.linkFilter=link1to2) ;;
            ber) fault_args=(-p faults.model=ber \
                -p faults.ber=2e-5) ;;
            esac
            chaos_out="$(ASAN_OPTIONS=detect_leaks=0 \
                UBSAN_OPTIONS=print_stacktrace=1 \
                "$root/build-asan/examples/example_simulate" \
                --config "$root/configs/default.json" \
                -p system.numDimms=4 -p system.numChannels=2 \
                -p host.numChannels=2 -p link.topology="$topo" \
                "${fault_args[@]}" -p faults.seed=7 \
                -p faults.onExhausted="$policy" \
                -p watchdog.stallPs=1000000000 \
                --workload bfs --scale 6 --rounds 1 --json 2>&1)"
            cell="$model/$topo/$policy"
            if [ "$model" = ber ]; then
                # The retry budget absorbs this BER: recovery, but no
                # exhaustions and no health transitions.
                if ! grep -q '"dllRetries": [1-9]' <<<"$chaos_out"; then
                    echo "[$cell] no retries recorded"; exit 1
                fi
                if grep -q '"dllFailedTransfers": [1-9]' \
                    <<<"$chaos_out"; then
                    echo "[$cell] transfers exhausted at soak BER"
                    exit 1
                fi
                echo "    [$cell] OK: completed, retries absorbed"
                continue
            fi
            if ! grep -q '"linkDownEvents": [1-9]' <<<"$chaos_out"; then
                echo "[$cell] dead link never detected"; exit 1
            fi
            case "$policy" in
            failover)
                if ! grep -q '"dllFailovers": [1-9]' \
                    <<<"$chaos_out"; then
                    echo "[$cell] no failovers recorded"; exit 1
                fi
                ;;
            drop)
                if ! grep -q '"dllFailedTransfers": [1-9]' \
                    <<<"$chaos_out"; then
                    echo "[$cell] no exhaustions recorded"; exit 1
                fi
                ;;
            esac
            echo "    [$cell] OK: completed, verified, recovered"
        done
    done
done
# The 8D (two-group) stuck-bridge cell, re-enabled: PR 6 skipped it
# because a permanently-stuck bridge hung the proxy-notify path on
# multi-group systems; the requestForward retry-deadline fallback
# fixed that, so the cell now runs under the sanitizers like the rest
# of the matrix. No shape overrides: the default config is the 8-DIMM
# two-group machine.
for policy in failover drop; do
    chaos_out="$(ASAN_OPTIONS=detect_leaks=0 \
        UBSAN_OPTIONS=print_stacktrace=1 \
        "$root/build-asan/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p faults.model=stuck -p faults.stuckAtPs=0 \
        -p faults.stuckForPs=400000000000000 \
        -p faults.stuckPeriodPs=0 -p faults.linkFilter=link1to2 \
        -p faults.seed=7 -p faults.onExhausted="$policy" \
        -p watchdog.stallPs=1000000000 \
        --workload bfs --scale 6 --rounds 1 --json 2>&1)"
    cell="stuck-8D/HalfRing/$policy"
    if ! grep -q '"linkDownEvents": [1-9]' <<<"$chaos_out"; then
        echo "[$cell] dead bridge never detected"; exit 1
    fi
    echo "    [$cell] OK: completed, verified, recovered"
done

echo "==> finite-outage recovery under ASan+UBSan"
# The link dies at tick 0 and comes back mid-run: the HalfRing cut
# drops in-flight packets outright, the exhaustion policy retires
# their sequences, and the post-recovery DLL stream must resume past
# the gap instead of jamming the reorder buffer (the watchdog rides
# along armed to catch exactly that).
for policy in failover drop; do
    outage_out="$(ASAN_OPTIONS=detect_leaks=0 \
        UBSAN_OPTIONS=print_stacktrace=1 \
        "$root/build-asan/examples/example_simulate" \
        --config "$root/configs/default.json" \
        -p system.numDimms=4 -p system.numChannels=2 \
        -p host.numChannels=2 -p link.topology=HalfRing \
        -p faults.model=stuck -p faults.stuckAtPs=0 \
        -p faults.stuckForPs=25000000 -p faults.stuckPeriodPs=0 \
        -p faults.linkFilter=link1to2 -p faults.seed=17 \
        -p faults.reprobeIntervalPs=5000000 \
        -p faults.onExhausted="$policy" \
        -p watchdog.stallPs=1000000000 \
        --workload bfs --scale 6 --rounds 1 --json 2>&1)"
    cell="finite-outage/$policy"
    if ! grep -q '"linkDownEvents": [1-9]' <<<"$outage_out"; then
        echo "[$cell] outage never masked the edge"; exit 1
    fi
    if ! grep -q '"linkRecoveredEvents": [1-9]' <<<"$outage_out"; then
        echo "[$cell] link never recovered mid-run"; exit 1
    fi
    if ! grep -q '"dllStreamResyncs": [1-9]' <<<"$outage_out"; then
        echo "[$cell] no stream resyncs recorded"; exit 1
    fi
    echo "    [$cell] OK: went down, recovered, stream resumed"
done

echo "==> rack-scale pooling smoke under ASan+UBSan"
# The checked-in two-host rack (configs/rack_2host.json, docs/rack.md)
# serves kv across the pooled NMP-DIMMs: the stats JSON must carry the
# rack group with cross-host traffic on the pooled bridges and the
# serve group with per-host SLO percentiles that partition the
# rack-wide request count.
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "$root/build-asan/examples/example_simulate" \
    --config "$root/configs/rack_2host.json" \
    --workload kv --json > "$trace_dir/rack.out"
python3 - "$trace_dir/rack.out" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
stats = json.loads(text[text.index('{\n  "config"'):])
rack = stats["rack"]["scalars"]
assert rack["pooledTransfers"] > 0, "no pooled cross-host transfers"
assert rack["pooledBytes"] > 0, "no pooled cross-host bytes"
# Zero-valued scalars are omitted from the example driver's JSON, so
# a pooled-primary run simply has no "crossings" entry.
assert rack.get("crossings", 0) == 0, "pooled primary used host path"
serve = stats["serve"]["scalars"]
assert serve["requests"] > 0, "no requests retired"
hosts = serve["host0.requests"] + serve["host1.requests"]
assert hosts == serve["requests"], "per-host counts do not partition"
for h in (0, 1):
    p50 = serve[f"host{h}.latencyP50Ps"]
    p99 = serve[f"host{h}.latencyP99Ps"]
    assert 0 < p50 <= p99, f"host{h} percentiles missing/non-monotone"
EOF
echo "    rack OK: pooled crossings, per-host SLO partition"
# Determinism contract at rack scale: byte-identical stats at 1 vs 4
# threads under sim.shard=group (all rack state is single-writer on
# the host shard).
"$root/build/examples/example_simulate" \
    --config "$root/configs/rack_2host.json" \
    -p sim.shard=group --threads 1 \
    --workload kv --json > "$trace_dir/rack1.out"
"$root/build/examples/example_simulate" \
    --config "$root/configs/rack_2host.json" \
    --threads 4 \
    --workload kv --json > "$trace_dir/rack4.out"
if ! cmp -s "$trace_dir/rack1.out" "$trace_dir/rack4.out"; then
    echo "rack run diverged between 1 and 4 threads"
    diff "$trace_dir/rack1.out" "$trace_dir/rack4.out" | head
    exit 1
fi
echo "    rack OK: byte-identical at 1 and 4 threads"

echo "==> chaos serving smoke under ASan+UBSan"
# The two-host rack on the forwarded route through a mid-run host
# outage with the reliability layer armed (docs/serving.md,
# "Reliability & graceful degradation"): the outage must actually
# bite (misses/sheds), the tail must stay bounded by the deadline,
# and every request must be disposed of exactly once.
chaos_args=(
    --config "$root/configs/rack_2host.json"
    -p rack.idcMode=forwarded
    -p rack.hostDownId=1 -p rack.hostDownAtPs=500000000
    -p rack.hostDownForPs=60000000
    -p link.retryTimeoutPs=40000000
    --deadline-us 25 --max-retries 3
    -p serve.backoffUs=5 -p serve.maxInflight=128
    --workload kv --json
)
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "$root/build-asan/examples/example_simulate" \
    "${chaos_args[@]}" > "$trace_dir/chaos.out"
python3 - "$trace_dir/chaos.out" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
stats = json.loads(text[text.index('{\n  "config"'):])
serve = stats["serve"]["scalars"]
g = lambda k: serve.get(k, 0)
dropped = (g("deadlineMisses") + g("shedRequests")
           + g("failedRequests"))
assert dropped > 0, "outage never cost a request"
assert g("requests") + dropped == 4096, "dispositions do not partition"
assert g("latencyP99Ps") <= 25e6, \
    f'p99 {g("latencyP99Ps")} ps blew the 25 us deadline'
assert g("goodputQps") > 0, "no goodput reported"
rack = stats["rack"]["scalars"]
assert rack.get("parkedTransfers", 0) > 0, \
    "no transfer parked on the dead edge"
EOF
echo "    chaos OK: outage bitten, tail bounded, partition holds"
# The reliability layer keeps the rack determinism contract:
# byte-identical chaos stats at 1 vs 4 threads under sim.shard=group.
"$root/build/examples/example_simulate" \
    -p sim.shard=group --threads 1 \
    "${chaos_args[@]}" > "$trace_dir/chaos1.out"
"$root/build/examples/example_simulate" \
    --threads 4 \
    "${chaos_args[@]}" > "$trace_dir/chaos4.out"
if ! cmp -s "$trace_dir/chaos1.out" "$trace_dir/chaos4.out"; then
    echo "chaos run diverged between 1 and 4 threads"
    diff "$trace_dir/chaos1.out" "$trace_dir/chaos4.out" | head
    exit 1
fi
echo "    chaos OK: byte-identical at 1 and 4 threads"

echo "==> CI green"
