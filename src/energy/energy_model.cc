#include "energy/energy_model.hh"

#include "dram/timing.hh"

namespace dimmlink {

namespace {

/** The (group-prefix, stat) sums the model draws on. */
const std::pair<const char *, const char *> trackedStats[] = {
    {"dimm", "reads"},          {"dimm", "writes"},
    {"dimm", "activates"},      {"fabric", "bytesViaLink"},
    {"fabric", "bytesViaHost"}, {"fabric", "bytesViaBus"},
    {"host.channel", "bytes"},  {"host.polling", "polls"},
    {"host.forwarder", "forwards"},
};

std::string
key(const std::string &prefix, const std::string &stat)
{
    return prefix + "|" + stat;
}

} // namespace

stats::Registry &
EnergyModel::snapshotFrom(stats::Registry &reg)
{
    base.clear();
    for (const auto &[prefix, stat] : trackedStats)
        base[key(prefix, stat)] = reg.sumScalar(prefix, stat);
    return reg;
}

double
EnergyModel::delta(const stats::Registry &reg,
                   const std::string &group_prefix,
                   const std::string &stat) const
{
    const double now = reg.sumScalar(group_prefix, stat);
    const auto it = base.find(key(group_prefix, stat));
    return it == base.end() ? now : now - it->second;
}

EnergyReport
EnergyModel::report(const stats::Registry &reg, Tick kernel_ticks,
                    unsigned active_dimms) const
{
    const EnergyConfig &e = cfg.energy;
    EnergyReport r;

    // DRAM: each read/write moves one 64-byte line through the
    // array; ACTs are charged separately. The per-standard scale
    // factors adjust the paper's DDR4 constants (both 1.0 for DDR4,
    // so the default path is numerically untouched).
    const dram::Timing timing = cfg.dramTiming();
    const double accesses = delta(reg, "dimm", "reads") +
                            delta(reg, "dimm", "writes");
    const double act = delta(reg, "dimm", "activates");
    r.dramPj = accesses * 64 * 8 * e.ddrRdWrPjPerBit *
                   timing.energyRdWrScale +
               act * e.activateNj * timing.energyActScale * 1e3;

    // DIMM-Link SerDes traffic.
    r.linkPj = delta(reg, "fabric", "bytesViaLink") * 8 *
               e.linkPjPerBit;

    // Memory-bus IO: every byte moved over a host channel, plus the
    // polling reads (charged per poll).
    r.hostIoPj = delta(reg, "host.channel", "bytes") * 8 *
                     e.busIoPjPerBit +
                 delta(reg, "host.polling", "polls") *
                     e.hostPollNj * 1e3;

    // Host CPU forwarding operations.
    r.forwardPj = delta(reg, "host.forwarder", "forwards") *
                  e.hostForwardNjPerPkt * 1e3;

    // AIM's dedicated bus.
    r.busPj = delta(reg, "fabric", "bytesViaBus") * 8 *
              e.dedicatedBusPjPerBit;

    // NMP processors: per-core power over the kernel duration.
    const double seconds =
        static_cast<double>(kernel_ticks) / tickPerS;
    r.nmpCorePj = e.nmpCoreWatt * cfg.dimm.numCores * active_dimms *
                  seconds * 1e12;

    return r;
}

} // namespace dimmlink
