/**
 * @file
 * Counter-based energy accounting (Section V-C / Fig. 13). Constants
 * follow the paper: GRS links at 1.17 pJ/b, DDR array access at
 * 14 pJ/b, off-chip memory-bus IO at 22 pJ/b, 2.1 nJ per ACT, 1.8 W
 * per 4-core NMP processor, and gem5/McPAT-profiled per-operation
 * host polling/forwarding energies (constants here).
 */

#ifndef DIMMLINK_ENERGY_ENERGY_MODEL_HH
#define DIMMLINK_ENERGY_ENERGY_MODEL_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dimmlink {

/** Energy totals in picojoules. */
struct EnergyReport
{
    double dramPj = 0;     ///< Array reads/writes + activates.
    double linkPj = 0;     ///< DIMM-Link SerDes traffic.
    double hostIoPj = 0;   ///< Memory-bus IO (forwarding + polling).
    double forwardPj = 0;  ///< Host CPU forwarding operations.
    double busPj = 0;      ///< AIM dedicated-bus traffic.
    double nmpCorePj = 0;  ///< NMP processor energy over the kernel.

    double
    total() const
    {
        return dramPj + linkPj + hostIoPj + forwardPj + busPj +
               nmpCorePj;
    }

    /** IDC-attributable portion (link + host IO + fwd + bus). */
    double
    idc() const
    {
        return linkPj + hostIoPj + forwardPj + busPj;
    }
};

class EnergyModel
{
  public:
    explicit EnergyModel(const SystemConfig &cfg) : cfg(cfg) {}

    /**
     * Compute the energy consumed between two stat snapshots of the
     * same registry (call snapshot() before the kernel, report()
     * after).
     */
    stats::Registry &snapshotFrom(stats::Registry &reg);

    /** Build the report from current counters minus the snapshot,
     * for a kernel that ran @p kernel_ticks with @p active_dimms
     * DIMMs powered. */
    EnergyReport report(const stats::Registry &reg, Tick kernel_ticks,
                        unsigned active_dimms) const;

  private:
    double delta(const stats::Registry &reg,
                 const std::string &group_prefix,
                 const std::string &stat) const;

    const SystemConfig &cfg;
    /** Snapshot values keyed by "prefix|stat". */
    std::map<std::string, double> base;
};

} // namespace dimmlink

#endif // DIMMLINK_ENERGY_ENERGY_MODEL_HH
