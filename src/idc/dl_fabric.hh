/**
 * @file
 * The DIMM-Link fabric (Section III): per-group packet routing over
 * the DL-Bridge networks, hybrid routing for inter-group traffic via
 * host CPU forwarding, the polling-proxy mechanism of Section IV-A,
 * and group broadcast along per-source spanning trees (Fig. 5).
 */

#ifndef DIMMLINK_IDC_DL_FABRIC_HH
#define DIMMLINK_IDC_DL_FABRIC_HH

#include <deque>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "dimm/dl_controller.hh"
#include "fault/link_health.hh"
#include "idc/fabric.hh"
#include "noc/network.hh"
#include "proto/codec.hh"

namespace dimmlink {

namespace rack {
class InterHostFabric;
} // namespace rack

namespace idc {

class DlFabric : public Fabric
{
  public:
    DlFabric(EventQueue &eq, const SystemConfig &cfg,
             std::vector<host::Channel *> channels,
             stats::Registry &reg);
    ~DlFabric() override;

    void submit(Transaction t) override;
    void enterNmpMode() override { path.start(); }
    void exitNmpMode() override { path.stop(); }

    /** Hop/forwarding-aware distance for the task mapper (§IV-B). */
    double distance(DimmId j, DimmId k) const override;

    std::size_t forwardBacklog() override
    {
        return path.forwarder().backlog();
    }

    std::size_t
    dllInFlight() override
    {
        std::size_t n = 0;
        for (const auto &c : dllCtl)
            n += c->retryInFlight();
        return n;
    }

    /** The polling proxy (and sync master) DIMM of @p group: the
     * middle of the group to minimize average hops. */
    DimmId proxyOf(unsigned group) const;

    const noc::Network &network(unsigned group) const
    {
        return *nets[group];
    }

    /** Wire bytes (flit-padded, incl. header/tail) for a payload. */
    static std::uint64_t wireBytesFor(std::uint64_t payload_bytes);

    /** In-flight DLL keys, retry windows, health and backlog state. */
    std::string debugDump() override;

    /** Fold the per-shard latency lanes into the registered
     * distribution (fixed shard order; no-op when unsharded). */
    void mergeShardStats() override;

    /** Forward the availability feed to the rack fabric (no-op
     * without one: single-host runs have no host-level outages). */
    void setHostAvailabilitySink(HostAvailabilitySink s) override;

    /** Link health tracker of @p group (null with faults off). */
    const fault::LinkHealth *linkHealth(unsigned group) const
    {
        return group < health.size() ? health[group].get() : nullptr;
    }

    /** What to do with a transfer whose DLL retry budget ran out. */
    enum class ExhaustPolicy { Failover, Drop, Panic };

  private:
    unsigned groupIdx(DimmId d) const { return cfg.groupOf(d); }
    int nodeIdx(DimmId d) const
    {
        return static_cast<int>(d % cfg.groupSize());
    }
    DimmId dimmAt(unsigned group, int node) const
    {
        return static_cast<DimmId>(group * cfg.groupSize() +
                                   static_cast<unsigned>(node));
    }

    // -- parallel-kernel seams (sim.shard=group; all identity
    //    functions / plain forwards when the system is unsharded;
    //    see docs/parallel_kernel.md) --------------------------------
    /** The shard that owns DIMM @p d's group (0 when unsharded). */
    unsigned shardOf(DimmId d) const;
    /** The event queue of the shard this code is running on. */
    EventQueue &cq();
    /** The event queue group @p g's components live on. */
    EventQueue &gq(unsigned g);
    /** Run @p fn in shard @p shard's context (mailbox post with
     * +lookahead delivery inside a window; direct call otherwise). */
    void callOn(unsigned shard, std::function<void()> fn,
                EventPriority prio = EventPriority::Default);
    /** Wrap @p fn so that invoking it routes it to @p shard. */
    std::function<void()> onShard(unsigned shard,
                                  std::function<void()> fn);
    /** Next message id (per-group streams when sharded). */
    std::uint64_t allocMsgId(unsigned group);
    /** The executing shard's trace track. */
    std::uint32_t curTrk() const;
    /** Latency sample into the executing shard's lane. */
    void sampleLatency(double v);
    /** submit() body, running on the source group's shard. */
    void submitHere(Transaction t);

    /** NW-interface packetize latency for one packet of @p flits. */
    Tick packetizeDelay(unsigned flits) const;
    Tick decodeDelay(unsigned flits) const;

    /**
     * Send @p payload_bytes from @p s to @p d inside one group,
     * segmented into packets; @p delivered fires at d after the last
     * packet is decoded. With fault injection enabled the packets ride
     * the reliable DLL transport (real wire images, CRC validation at
     * the far end, NACK/timeout retransmission); otherwise the fast
     * flit-count-only path is used and timing is bit-identical to the
     * pre-fault model.
     */
    void sendIntraGroup(DimmId s, DimmId d, std::uint64_t payload_bytes,
                        std::function<void()> delivered);

    /**
     * Transmit one DL packet from @p s to @p d (same group) under DLL
     * retry protection. @p delivered fires at d when the packet is
     * first decoded and released in order; a transfer whose retry
     * budget is exhausted counts toward dllFailedTransfers and still
     * completes so the simulation can terminate.
     */
    void sendDllPacket(DimmId s, DimmId d, proto::Packet pkt,
                       std::function<void()> delivered);
    /** A DLL wire image finished decode at DIMM @p d. */
    void dllReceive(DimmId d, const std::vector<std::uint8_t> &wire);
    /** Claim and fire @p p's completion if it is still waiting. */
    void completeDllDelivery(const proto::Packet &p);
    /**
     * Sequence @p seq of the s -> d stream was retired by the
     * exhaustion policy without an in-order delivery; advance d's
     * receive stream past the gap so post-recovery sequences are not
     * held forever behind it. The notification rides the same
     * host-forwarded image (failover) or a dedicated host note
     * (drop), so it arrives even while the bridge route is dead.
     */
    void dllStreamResync(DimmId s, DimmId d, std::uint16_t seq);
    /** Send an ACK/NACK produced at @p from back over the bridge. */
    void sendDllControl(DimmId from, const proto::Packet &ctrl);

    /** Inject one message, queueing on backpressure. */
    void inject(unsigned group, noc::Message msg);
    void drainInjectQueue(unsigned group, int node);

    /**
     * Register a CPU-forwarding job for @p src. Under the proxy
     * schemes the notification first travels to the group's proxy
     * DIMM over the link network; when the proxy is unreachable over
     * the bridge (or the note is dropped mid-flight by a route
     * recompute), the job falls back to the host's own polling cadence
     * with a discovery-latency penalty.
     */
    void requestForward(DimmId src, std::function<void()> job);

    /**
     * Deliver @p payload_bytes from @p s to @p d (same group) over the
     * host CPU-forwarding path instead of the bridge — the degraded
     * route for pairs the routing tables can no longer connect.
     */
    void hostFallback(DimmId s, DimmId d, std::uint64_t payload_bytes,
                      std::function<void()> delivered);

    /**
     * Move one inter-group packet of @p payload_bytes from @p s to
     * @p d over the host path: polling discovery plus the Forwarder
     * copy when both ends share a host (the exact pre-rack sequence),
     * and — when a rack is configured and the endpoints live under
     * different hosts — the same path composed with an inter-host
     * crossing, or the pooled DIMM-Link bridge lanes that bypass both
     * hosts. Route choice, failover onto the surviving path (counted
     * in rack.reroutes) and all rack accounting run on the host
     * shard. @p done fires on the host shard, like a Forwarder
     * delivery.
     */
    void hostPathSend(DimmId s, DimmId d, std::uint64_t payload_bytes,
                      std::function<void()> done);

    /** The directed edges the current tables route (from -> to) over. */
    std::vector<std::pair<int, int>> routePath(unsigned group, int from,
                                               int to) const;

    /** Put one health probe on the physical link a -> b of @p group. */
    void sendHealthProbe(unsigned group, int a, int b,
                         std::uint64_t probe_id);
    /** A link health state change: stats, tracing, route recompute. */
    void onHealthTransition(unsigned group, int a, int b,
                            fault::LinkState from, fault::LinkState to);

    /** Broadcast @p bytes within @p group starting at node of @p s. */
    void groupBroadcast(DimmId s, std::uint64_t bytes,
                        std::function<void()> all_delivered);

    void doRemoteRead(Transaction t, std::function<void()> finish);
    void doRemoteWrite(Transaction t, std::function<void()> finish);
    void doBroadcast(Transaction t, std::function<void()> finish);
    void doSyncMessage(Transaction t, std::function<void()> finish);

    std::vector<host::Channel *> channels;
    std::vector<std::unique_ptr<noc::Network>> nets;
    /** The inter-host fabric; null unless cfg.rackEnabled(). */
    std::unique_ptr<rack::InterHostFabric> rackFabric;
    /** cfg.rack.idcMode == "pooled" (the primary cross-host route). */
    bool rackPooledPrimary = false;
    /** Per (group, node) queue of messages awaiting injection space. */
    std::vector<std::vector<std::deque<noc::Message>>> injectQ;
    CpuForwardPath path;
    /** Null unless the owning System is sharded (sim.shard=group). */
    ShardSet *sh = nullptr;
    std::uint64_t nextMsgId = 1;
    /** Per-group id streams when sharded (each group's shard is the
     * only writer of its entry). */
    std::vector<std::uint64_t> msgSeq;
    /** Per-shard latency lanes; merged by mergeShardStats(). */
    std::vector<stats::Distribution> latLane;

    /** True when intra-group data rides the reliable DLL transport
     * (enabled whenever a fault model is configured). */
    bool dllPath = false;
    /** Parsed from cfg.faults.onExhausted. */
    ExhaustPolicy exhaustPolicy = ExhaustPolicy::Failover;
    /** The fabric's per-DIMM DL-Controllers, indexed by global id. */
    std::vector<std::unique_ptr<DlController>> dllCtl;
    /** Per-group link health trackers (empty with faults off). */
    std::vector<std::unique_ptr<fault::LinkHealth>> health;
    /** In-flight transfer completions, keyed by (SRC, DST, sequence)
     * — sequence numbers are only unique per directed stream. An
     * entry is claimed exactly once: at first in-order delivery, or
     * on permanent failure, whichever comes first. One map per group
     * (streams are intra-group) so concurrent shards never share a
     * map. */
    using DllKey = std::tuple<std::uint8_t, std::uint8_t, std::uint16_t>;
    using DllWaitMap =
        std::map<DllKey, std::shared_ptr<std::function<void()>>>;
    std::vector<DllWaitMap> dllWaiting;

    stats::Scalar &statPacketsLink;
    stats::Scalar &statPacketsHost;
    stats::Scalar &statProxyNotifies;
    stats::Scalar &statDllFailedTransfers;
    stats::Scalar &statDllCtrlDropped;
    /** Recovery-path counters, created only when a fault model is
     * configured so fault-free runs keep the baseline stats shape. */
    stats::Scalar *statFailovers = nullptr;
    stats::Scalar *statFailoverBytes = nullptr;
    stats::Scalar *statStreamResyncs = nullptr;
    stats::Scalar *statHostReroutes = nullptr;
    stats::Scalar *statProxyNotifyFallbacks = nullptr;
    stats::Scalar *statHealthSuspect = nullptr;
    stats::Scalar *statHealthDown = nullptr;
    stats::Scalar *statHealthRecovered = nullptr;
    stats::Scalar *statProbesSent = nullptr;
    stats::Scalar *statProbesFailed = nullptr;

    obs::Tracer *tr = nullptr; ///< Null unless dll tracing is on.
    /** One track per shard (just one when unsharded) so trace rings
     * stay single-writer under the parallel kernel. */
    std::vector<std::uint32_t> trks;
    std::uint16_t nmXact[4] = {0, 0, 0, 0}; ///< Indexed by Type.
    std::uint16_t nmPacket = 0, nmDllXfer = 0, nmDllRetry = 0,
                  nmDllFailed = 0;
    std::uint16_t nmLinkSuspect = 0, nmLinkDown = 0, nmLinkUp = 0,
                  nmFailover = 0, nmDllResync = 0;
};

} // namespace idc
} // namespace dimmlink

#endif // DIMMLINK_IDC_DL_FABRIC_HH
