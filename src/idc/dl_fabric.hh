/**
 * @file
 * The DIMM-Link fabric (Section III): per-group packet routing over
 * the DL-Bridge networks, hybrid routing for inter-group traffic via
 * host CPU forwarding, the polling-proxy mechanism of Section IV-A,
 * and group broadcast along per-source spanning trees (Fig. 5).
 */

#ifndef DIMMLINK_IDC_DL_FABRIC_HH
#define DIMMLINK_IDC_DL_FABRIC_HH

#include <deque>
#include <memory>
#include <vector>

#include "idc/fabric.hh"
#include "noc/network.hh"
#include "proto/codec.hh"

namespace dimmlink {
namespace idc {

class DlFabric : public Fabric
{
  public:
    DlFabric(EventQueue &eq, const SystemConfig &cfg,
             std::vector<host::Channel *> channels,
             stats::Registry &reg);

    void submit(Transaction t) override;
    void enterNmpMode() override { path.start(); }
    void exitNmpMode() override { path.stop(); }

    /** Hop/forwarding-aware distance for the task mapper (§IV-B). */
    double distance(DimmId j, DimmId k) const override;

    /** The polling proxy (and sync master) DIMM of @p group: the
     * middle of the group to minimize average hops. */
    DimmId proxyOf(unsigned group) const;

    const noc::Network &network(unsigned group) const
    {
        return *nets[group];
    }

    /** Wire bytes (flit-padded, incl. header/tail) for a payload. */
    static std::uint64_t wireBytesFor(std::uint64_t payload_bytes);

  private:
    unsigned groupIdx(DimmId d) const { return cfg.groupOf(d); }
    int nodeIdx(DimmId d) const
    {
        return static_cast<int>(d % cfg.groupSize());
    }
    DimmId dimmAt(unsigned group, int node) const
    {
        return static_cast<DimmId>(group * cfg.groupSize() +
                                   static_cast<unsigned>(node));
    }

    /** NW-interface packetize latency for one packet of @p flits. */
    Tick packetizeDelay(unsigned flits) const;
    Tick decodeDelay(unsigned flits) const;

    /**
     * Send @p payload_bytes from @p s to @p d inside one group,
     * segmented into packets; @p delivered fires at d after the last
     * packet is decoded.
     */
    void sendIntraGroup(DimmId s, DimmId d, std::uint64_t payload_bytes,
                        std::function<void()> delivered);

    /** Inject one message, queueing on backpressure. */
    void inject(unsigned group, noc::Message msg);
    void drainInjectQueue(unsigned group, int node);

    /**
     * Register a CPU-forwarding job for @p src. Under the proxy
     * schemes the notification first travels to the group's proxy
     * DIMM over the link network.
     */
    void requestForward(DimmId src, std::function<void()> job);

    /** Broadcast @p bytes within @p group starting at node of @p s. */
    void groupBroadcast(DimmId s, std::uint64_t bytes,
                        std::function<void()> all_delivered);

    void doRemoteRead(Transaction t, std::function<void()> finish);
    void doRemoteWrite(Transaction t, std::function<void()> finish);
    void doBroadcast(Transaction t, std::function<void()> finish);
    void doSyncMessage(Transaction t, std::function<void()> finish);

    std::vector<host::Channel *> channels;
    std::vector<std::unique_ptr<noc::Network>> nets;
    /** Per (group, node) queue of messages awaiting injection space. */
    std::vector<std::vector<std::deque<noc::Message>>> injectQ;
    CpuForwardPath path;
    std::uint64_t nextMsgId = 1;

    stats::Scalar &statPacketsLink;
    stats::Scalar &statPacketsHost;
    stats::Scalar &statProxyNotifies;
};

} // namespace idc
} // namespace dimmlink

#endif // DIMMLINK_IDC_DL_FABRIC_HH
