/**
 * @file
 * The DIMM-Link fabric (Section III): per-group packet routing over
 * the DL-Bridge networks, hybrid routing for inter-group traffic via
 * host CPU forwarding, the polling-proxy mechanism of Section IV-A,
 * and group broadcast along per-source spanning trees (Fig. 5).
 */

#ifndef DIMMLINK_IDC_DL_FABRIC_HH
#define DIMMLINK_IDC_DL_FABRIC_HH

#include <deque>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "dimm/dl_controller.hh"
#include "idc/fabric.hh"
#include "noc/network.hh"
#include "proto/codec.hh"

namespace dimmlink {
namespace idc {

class DlFabric : public Fabric
{
  public:
    DlFabric(EventQueue &eq, const SystemConfig &cfg,
             std::vector<host::Channel *> channels,
             stats::Registry &reg);

    void submit(Transaction t) override;
    void enterNmpMode() override { path.start(); }
    void exitNmpMode() override { path.stop(); }

    /** Hop/forwarding-aware distance for the task mapper (§IV-B). */
    double distance(DimmId j, DimmId k) const override;

    std::size_t forwardBacklog() override
    {
        return path.forwarder().backlog();
    }

    std::size_t
    dllInFlight() override
    {
        std::size_t n = 0;
        for (const auto &c : dllCtl)
            n += c->retryInFlight();
        return n;
    }

    /** The polling proxy (and sync master) DIMM of @p group: the
     * middle of the group to minimize average hops. */
    DimmId proxyOf(unsigned group) const;

    const noc::Network &network(unsigned group) const
    {
        return *nets[group];
    }

    /** Wire bytes (flit-padded, incl. header/tail) for a payload. */
    static std::uint64_t wireBytesFor(std::uint64_t payload_bytes);

  private:
    unsigned groupIdx(DimmId d) const { return cfg.groupOf(d); }
    int nodeIdx(DimmId d) const
    {
        return static_cast<int>(d % cfg.groupSize());
    }
    DimmId dimmAt(unsigned group, int node) const
    {
        return static_cast<DimmId>(group * cfg.groupSize() +
                                   static_cast<unsigned>(node));
    }

    /** NW-interface packetize latency for one packet of @p flits. */
    Tick packetizeDelay(unsigned flits) const;
    Tick decodeDelay(unsigned flits) const;

    /**
     * Send @p payload_bytes from @p s to @p d inside one group,
     * segmented into packets; @p delivered fires at d after the last
     * packet is decoded. With fault injection enabled the packets ride
     * the reliable DLL transport (real wire images, CRC validation at
     * the far end, NACK/timeout retransmission); otherwise the fast
     * flit-count-only path is used and timing is bit-identical to the
     * pre-fault model.
     */
    void sendIntraGroup(DimmId s, DimmId d, std::uint64_t payload_bytes,
                        std::function<void()> delivered);

    /**
     * Transmit one DL packet from @p s to @p d (same group) under DLL
     * retry protection. @p delivered fires at d when the packet is
     * first decoded and released in order; a transfer whose retry
     * budget is exhausted counts toward dllFailedTransfers and still
     * completes so the simulation can terminate.
     */
    void sendDllPacket(DimmId s, DimmId d, proto::Packet pkt,
                       std::function<void()> delivered);
    /** A DLL wire image finished decode at DIMM @p d. */
    void dllReceive(DimmId d, const std::vector<std::uint8_t> &wire);
    /** Send an ACK/NACK produced at @p from back over the bridge. */
    void sendDllControl(DimmId from, const proto::Packet &ctrl);

    /** Inject one message, queueing on backpressure. */
    void inject(unsigned group, noc::Message msg);
    void drainInjectQueue(unsigned group, int node);

    /**
     * Register a CPU-forwarding job for @p src. Under the proxy
     * schemes the notification first travels to the group's proxy
     * DIMM over the link network.
     */
    void requestForward(DimmId src, std::function<void()> job);

    /** Broadcast @p bytes within @p group starting at node of @p s. */
    void groupBroadcast(DimmId s, std::uint64_t bytes,
                        std::function<void()> all_delivered);

    void doRemoteRead(Transaction t, std::function<void()> finish);
    void doRemoteWrite(Transaction t, std::function<void()> finish);
    void doBroadcast(Transaction t, std::function<void()> finish);
    void doSyncMessage(Transaction t, std::function<void()> finish);

    std::vector<host::Channel *> channels;
    std::vector<std::unique_ptr<noc::Network>> nets;
    /** Per (group, node) queue of messages awaiting injection space. */
    std::vector<std::vector<std::deque<noc::Message>>> injectQ;
    CpuForwardPath path;
    std::uint64_t nextMsgId = 1;

    /** True when intra-group data rides the reliable DLL transport
     * (enabled whenever a fault model is configured). */
    bool dllPath = false;
    /** The fabric's per-DIMM DL-Controllers, indexed by global id. */
    std::vector<std::unique_ptr<DlController>> dllCtl;
    /** In-flight transfer completions, keyed by (SRC, DST, sequence)
     * — sequence numbers are only unique per directed stream. An
     * entry is claimed exactly once: at first in-order delivery, or
     * on permanent failure, whichever comes first. */
    using DllKey = std::tuple<std::uint8_t, std::uint8_t, std::uint16_t>;
    std::map<DllKey, std::shared_ptr<std::function<void()>>> dllWaiting;

    stats::Scalar &statPacketsLink;
    stats::Scalar &statPacketsHost;
    stats::Scalar &statProxyNotifies;
    stats::Scalar &statDllFailedTransfers;
    stats::Scalar &statDllCtrlDropped;

    obs::Tracer *tr = nullptr; ///< Null unless dll tracing is on.
    std::uint32_t trk = 0;
    std::uint16_t nmXact[4] = {0, 0, 0, 0}; ///< Indexed by Type.
    std::uint16_t nmPacket = 0, nmDllXfer = 0, nmDllRetry = 0,
                  nmDllFailed = 0;
};

} // namespace idc
} // namespace dimmlink

#endif // DIMMLINK_IDC_DL_FABRIC_HH
