/**
 * @file
 * The MCN / UPMEM-style CPU-forwarding fabric (Table I, column 2).
 * Every inter-DIMM transaction registers in the source DIMM's polling
 * registers, waits for the host to discover it, and is then moved by
 * the host between memory channels — occupying the channel twice and
 * bounding the aggregate IDC bandwidth at #Channel x beta / 2.
 */

#ifndef DIMMLINK_IDC_MCN_FABRIC_HH
#define DIMMLINK_IDC_MCN_FABRIC_HH

#include <vector>

#include "idc/fabric.hh"

namespace dimmlink {
namespace idc {

class McnFabric : public Fabric
{
  public:
    McnFabric(EventQueue &eq, const SystemConfig &cfg,
              std::vector<host::Channel *> channels,
              stats::Registry &reg);

    void submit(Transaction t) override;
    void enterNmpMode() override { path.start(); }
    void exitNmpMode() override { path.stop(); }

  private:
    void execute(Transaction t, Tick started);

    std::vector<host::Channel *> channels;
    CpuForwardPath path;
};

} // namespace idc
} // namespace dimmlink

#endif // DIMMLINK_IDC_MCN_FABRIC_HH
