#include "idc/dl_fabric.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/log.hh"
#include "obs/tracer.hh"
#include "rack/inter_host_fabric.hh"
#include "sim/shard.hh"

namespace dimmlink {
namespace idc {

namespace {

/** Flits for one packet carrying @p bytes of payload. */
unsigned
flitsFor(std::uint64_t bytes)
{
    return 1 + static_cast<unsigned>(
                   (bytes + proto::flitBytes - 1) / proto::flitBytes);
}

/** Polling targets: one proxy per group, or every DIMM. */
std::vector<DimmId>
pollTargets(const SystemConfig &cfg)
{
    std::vector<DimmId> v;
    const bool proxy = cfg.pollingMode == PollingMode::Proxy ||
                       cfg.pollingMode == PollingMode::ProxyInterrupt;
    if (proxy) {
        for (unsigned g = 0; g < cfg.numGroups(); ++g)
            v.push_back(static_cast<DimmId>(g * cfg.groupSize() +
                                            cfg.groupSize() / 2));
    } else {
        for (unsigned d = 0; d < cfg.numDimms; ++d)
            v.push_back(static_cast<DimmId>(d));
    }
    return v;
}

} // namespace

DlFabric::DlFabric(EventQueue &eq, const SystemConfig &cfg_,
                   std::vector<host::Channel *> channels_,
                   stats::Registry &reg)
    : Fabric(eq, cfg_, reg, "fabric.dl"),
      channels(channels_),
      path(eq, cfg_, channels_, pollTargets(cfg_), reg),
      sh(eq.shards()),
      statPacketsLink(reg.group("fabric.dl").scalar("packetsViaLink")),
      statPacketsHost(reg.group("fabric.dl").scalar("packetsViaHost")),
      statProxyNotifies(reg.group("fabric.dl").scalar("proxyNotifies")),
      statDllFailedTransfers(
          reg.group("fabric.dl").scalar("dllFailedTransfers")),
      statDllCtrlDropped(
          reg.group("fabric.dl").scalar("dllCtrlDropped"))
{
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatDll)) {
        tr = t;
        // One track per shard: each trace ring then has exactly one
        // writer under the parallel kernel. Unsharded systems keep
        // the single classic track.
        trks.push_back(t->track("fabric.dl", obs::CatDll));
        if (sh)
            for (unsigned g = 0; g < cfg.numGroups(); ++g)
                trks.push_back(t->track(
                    "fabric.dl.g" + std::to_string(g), obs::CatDll));
        nmXact[static_cast<int>(Transaction::Type::RemoteRead)] =
            t->intern("remoteRead");
        nmXact[static_cast<int>(Transaction::Type::RemoteWrite)] =
            t->intern("remoteWrite");
        nmXact[static_cast<int>(Transaction::Type::Broadcast)] =
            t->intern("broadcast");
        nmXact[static_cast<int>(Transaction::Type::SyncMessage)] =
            t->intern("syncMsg");
        nmPacket = t->intern("packet");
        nmDllXfer = t->intern("dllXfer");
        nmDllRetry = t->intern("dllRetry");
        nmDllFailed = t->intern("dllFailed");
        nmLinkSuspect = t->intern("linkSuspect");
        nmLinkDown = t->intern("linkDown");
        nmLinkUp = t->intern("linkUp");
        nmFailover = t->intern("dllFailover");
        nmDllResync = t->intern("dllResync");
    }
    const unsigned gs = cfg.groupSize();
    const unsigned groups = cfg.numGroups();
    injectQ.assign(groups, {});
    dllWaiting.assign(groups, {});
    msgSeq.assign(groups, 1);
    if (sh)
        latLane.resize(sh->numShards());
    for (unsigned g = 0; g < groups; ++g) {
        nets.push_back(std::make_unique<noc::Network>(
            gq(g), "fabric.dl.group" + std::to_string(g), cfg.link, gs,
            reg, &cfg.faults));
        injectQ[g].assign(gs, {});
        for (unsigned node = 0; node < gs; ++node) {
            nets[g]->setRetryHandler(
                static_cast<int>(node), [this, g, node] {
                    drainInjectQueue(g, static_cast<int>(node));
                });
        }
    }
    // A configured fault model switches intra-group data onto the
    // reliable DLL transport, with one retry engine per DIMM.
    dllPath = cfg.faults.model != "none";
    if (dllPath) {
        if (cfg.faults.onExhausted == "drop")
            exhaustPolicy = ExhaustPolicy::Drop;
        else if (cfg.faults.onExhausted == "panic")
            exhaustPolicy = ExhaustPolicy::Panic;
        else
            exhaustPolicy = ExhaustPolicy::Failover;
        const auto sender_fb = exhaustPolicy == ExhaustPolicy::Panic
                                   ? proto::ExhaustFallback::Panic
                                   : proto::ExhaustFallback::Drop;
        for (unsigned d = 0; d < cfg.numDimms; ++d) {
            dllCtl.push_back(std::make_unique<DlController>(
                gq(cfg.groupOf(static_cast<DimmId>(d))),
                "fabric.dl.dllc" + std::to_string(d),
                static_cast<DimmId>(d), cfg.link.retryTimeoutPs,
                cfg.link.maxRetries, reg, cfg.link.retryWindow,
                sender_fb));
        }
        // Recovery-path counters exist only alongside the fault model
        // so fault-free runs keep the baseline stats JSON shape.
        auto &sg = reg.group("fabric.dl");
        statFailovers = &sg.scalar("dllFailovers");
        statFailoverBytes = &sg.scalar("failoverBytes");
        statStreamResyncs = &sg.scalar("dllStreamResyncs");
        statHostReroutes = &sg.scalar("hostReroutes");
        statProxyNotifyFallbacks = &sg.scalar("proxyNotifyFallbacks");
        statHealthSuspect = &sg.scalar("linkSuspectEvents");
        statHealthDown = &sg.scalar("linkDownEvents");
        statHealthRecovered = &sg.scalar("linkRecoveredEvents");
        statProbesSent = &sg.scalar("healthProbesSent");
        statProbesFailed = &sg.scalar("healthProbesFailed");
        // One health tracker per group, probing over the physical
        // links and feeding route recomputation on down/up edges.
        for (unsigned g = 0; g < groups; ++g) {
            auto h = std::make_unique<fault::LinkHealth>(
                gq(g), cfg.faults.suspectAfter,
                cfg.faults.reprobeIntervalPs,
                cfg.link.retryTimeoutPs);
            for (unsigned n = 0; n < gs; ++n)
                for (int nb :
                     nets[g]->graph().neighbors(static_cast<int>(n)))
                    h->addEdge(static_cast<int>(n), nb);
            fault::LinkHealth::Callbacks cbs;
            cbs.sendProbe = [this, g](int a, int b, std::uint64_t id) {
                sendHealthProbe(g, a, b, id);
            };
            cbs.onTransition = [this, g](int a, int b,
                                         fault::LinkState from,
                                         fault::LinkState to) {
                onHealthTransition(g, a, b, from, to);
            };
            cbs.onProbeFailed = [this](int, int) {
                statProbesFailed->addConcurrent(1);
            };
            h->setCallbacks(std::move(cbs));
            health.push_back(std::move(h));
        }
    }
    // Multi-host pooling: the rack fabric lives on the host event
    // queue (shard 0), the single writer of all its state.
    if (cfg.rackEnabled()) {
        rackFabric = rack::makeInterHostFabric(eventq, cfg, reg);
        rackPooledPrimary = cfg.rack.idcMode == "pooled";
    }
}

DlFabric::~DlFabric() = default;

unsigned
DlFabric::shardOf(DimmId d) const
{
    return sh ? 1 + groupIdx(d) : 0;
}

EventQueue &
DlFabric::cq()
{
    return sh ? sh->queue(sh->current()) : eventq;
}

EventQueue &
DlFabric::gq(unsigned g)
{
    return sh ? sh->queue(1 + g) : eventq;
}

void
DlFabric::callOn(unsigned shard, std::function<void()> fn,
                 EventPriority prio)
{
    if (sh)
        sh->call(shard, std::move(fn), prio);
    else
        fn();
}

std::function<void()>
DlFabric::onShard(unsigned shard, std::function<void()> fn)
{
    if (!sh || !fn)
        return fn;
    return [this, shard, fn = std::move(fn)]() mutable {
        sh->call(shard, std::move(fn));
    };
}

std::uint64_t
DlFabric::allocMsgId(unsigned group)
{
    // Sharded: per-group streams keep the counter single-writer (and
    // per-group ids deterministic at every thread count). The classic
    // build keeps the one global stream so its behavior is untouched.
    return sh ? msgSeq[group]++ : nextMsgId++;
}

std::uint32_t
DlFabric::curTrk() const
{
    return trks[sh ? sh->current() : 0];
}

void
DlFabric::sampleLatency(double v)
{
    if (sh)
        latLane[sh->current()].sample(v);
    else
        statLatencyPs.sample(v);
}

void
DlFabric::mergeShardStats()
{
    for (auto &lane : latLane) {
        statLatencyPs.merge(lane);
        lane.reset();
    }
}

void
DlFabric::setHostAvailabilitySink(HostAvailabilitySink s)
{
    if (rackFabric)
        rackFabric->setAvailabilitySink(std::move(s));
}

void
DlFabric::sendHealthProbe(unsigned group, int a, int b,
                          std::uint64_t probe_id)
{
    noc::Link *l = nets[group]->linkBetween(a, b);
    if (!l)
        return; // Not adjacent; the probe timeout stands in.
    statProbesSent->addConcurrent(1);
    // Probes bypass routing and credits on purpose: they test the
    // physical link itself, so a route-around must not make a dead
    // link look alive.
    noc::Message pm;
    pm.src = a;
    pm.dst = b;
    pm.flits = 1;
    pm.id = allocMsgId(group);
    l->transmit(std::move(pm),
                [this, group, a, b, probe_id](noc::Message m) {
                    health[group]->probeResult(a, b, probe_id,
                                               !m.corrupted);
                });
}

void
DlFabric::onHealthTransition(unsigned group, int a, int b,
                             fault::LinkState from, fault::LinkState to)
{
    const std::uint64_t arg = (static_cast<std::uint64_t>(group) << 16) |
                              (static_cast<std::uint64_t>(a) << 8) |
                              static_cast<std::uint64_t>(b);
    switch (to) {
      case fault::LinkState::Suspect:
        statHealthSuspect->addConcurrent(1);
        if (tr)
            tr->instant(curTrk(), nmLinkSuspect, cq().now(), arg);
        break;
      case fault::LinkState::Down:
        statHealthDown->addConcurrent(1);
        nets[group]->setLinkDown(a, b, true);
        if (tr)
            tr->instant(curTrk(), nmLinkDown, cq().now(), arg);
        break;
      case fault::LinkState::Up:
        statHealthRecovered->addConcurrent(1);
        if (from == fault::LinkState::Down)
            nets[group]->setLinkDown(a, b, false);
        if (tr)
            tr->instant(curTrk(), nmLinkUp, cq().now(), arg);
        break;
    }
}

std::vector<std::pair<int, int>>
DlFabric::routePath(unsigned group, int from, int to) const
{
    std::vector<std::pair<int, int>> edges;
    const auto &graph = nets[group]->graph();
    int cur = from;
    // Bounded by the node count: the tables are cycle-free.
    for (unsigned hop = 0; cur != to && hop < graph.numNodes(); ++hop) {
        const int next = graph.nextHop(cur, to);
        if (next == -1)
            break; // No live route (already routed around).
        edges.emplace_back(cur, next);
        cur = next;
    }
    return edges;
}

DimmId
DlFabric::proxyOf(unsigned group) const
{
    return static_cast<DimmId>(group * cfg.groupSize() +
                               cfg.groupSize() / 2);
}

std::uint64_t
DlFabric::wireBytesFor(std::uint64_t payload_bytes)
{
    std::uint64_t wire = 0;
    std::uint64_t left = payload_bytes;
    do {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(left, proto::maxPayloadBytes);
        wire += static_cast<std::uint64_t>(flitsFor(chunk)) *
                proto::flitBytes;
        left -= chunk;
    } while (left > 0);
    return wire;
}

Tick
DlFabric::packetizeDelay(unsigned flits) const
{
    const Tick period = periodFromMHz(cfg.dimm.coreFreqMHz);
    return (proto::Codec::controlCycles +
            proto::Codec::crcCyclesPerFlit * flits) *
           period;
}

Tick
DlFabric::decodeDelay(unsigned flits) const
{
    return packetizeDelay(flits);
}

double
DlFabric::distance(DimmId j, DimmId k) const
{
    if (j == k)
        return 0.0;
    if (groupIdx(j) == groupIdx(k)) {
        const unsigned d = nets[groupIdx(j)]->graph().distance(
            nodeIdx(j), nodeIdx(k));
        if (d != noc::TopologyGraph::unreachable)
            return static_cast<double>(d);
        // Link failures severed the pair: it pays the host-forwarding
        // cost below, like an inter-group access.
    }
    // Inter-group accesses pay polling discovery plus the host copy;
    // express that as equivalent link hops so the mapper can trade
    // the two off (profiled latencies in the paper play this role).
    const double per_hop = static_cast<double>(
        cfg.link.routerLatencyPs + cfg.link.wireLatencyPs);
    const double fwd = static_cast<double>(
        cfg.host.forwardLatencyPs + cfg.host.pollIntervalPs / 2);
    if (rackFabric && cfg.hostOf(j) != cfg.hostOf(k)) {
        // Cross-host pairs add the rack crossing -- or replace the
        // host path entirely when the pooled bridges are primary.
        const double rack_lat = static_cast<double>(
            cfg.rack.latencyPs +
            rackFabric->hops(cfg.hostOf(j), cfg.hostOf(k)) *
                cfg.rack.switchHopPs);
        if (rackPooledPrimary)
            return 2.0 + static_cast<double>(cfg.rack.latencyPs) /
                             per_hop;
        return (fwd + rack_lat) / per_hop;
    }
    return fwd / per_hop;
}

void
DlFabric::inject(unsigned group, noc::Message msg)
{
    auto &q = injectQ[group][static_cast<std::size_t>(msg.src)];
    if (!q.empty() || !nets[group]->tryInject(msg))
        q.push_back(std::move(msg));
}

void
DlFabric::drainInjectQueue(unsigned group, int node)
{
    auto &q = injectQ[group][static_cast<std::size_t>(node)];
    while (!q.empty()) {
        if (!nets[group]->tryInject(q.front()))
            return;
        q.pop_front();
    }
}

void
DlFabric::sendIntraGroup(DimmId s, DimmId d,
                         std::uint64_t payload_bytes,
                         std::function<void()> delivered)
{
    const unsigned group = groupIdx(s);
    if (group != groupIdx(d))
        panic("sendIntraGroup across groups (%u -> %u)", s, d);

    // Route-around: when link failures disconnected the pair on the
    // bridge, the transfer degrades to the host CPU-forwarding path
    // instead of feeding packets into a black hole.
    if (dllPath &&
        !nets[group]->graph().reachable(nodeIdx(s), nodeIdx(d))) {
        hostFallback(s, d, payload_bytes, std::move(delivered));
        return;
    }

    // Segment into <=256-byte packets; the last delivery completes
    // the transfer (paths are deterministic and FIFO, but count for
    // safety).
    std::uint64_t left = payload_bytes;
    std::vector<std::uint64_t> chunks;
    do {
        const std::uint64_t c =
            std::min<std::uint64_t>(left, proto::maxPayloadBytes);
        chunks.push_back(c);
        left -= c;
    } while (left > 0);

    auto remaining = std::make_shared<std::size_t>(chunks.size());
    auto done =
        std::make_shared<std::function<void()>>(std::move(delivered));

    if (dllPath) {
        // Reliable transport: each chunk becomes a real DL packet
        // whose wire image crosses the (possibly faulty) bridge under
        // CRC + retry protection.
        for (const std::uint64_t c : chunks) {
            proto::Packet pkt;
            pkt.src = static_cast<std::uint8_t>(s);
            pkt.dst = static_cast<std::uint8_t>(d);
            pkt.cmd = c > 0 ? proto::DlCommand::WriteReq
                            : proto::DlCommand::ReadReq;
            pkt.tag = dllCtl[s]->allocTag();
            pkt.payload.assign(static_cast<std::size_t>(c), 0);
            statPacketsLink.addConcurrent(1);
            statBytesViaLink.addConcurrent(
                static_cast<double>(flitsFor(c)) * proto::flitBytes);
            std::uint64_t aid = 0;
            if (tr) {
                aid = tr->nextAsyncId();
                tr->asyncBegin(curTrk(), nmDllXfer, cq().now(), aid);
            }
            sendDllPacket(s, d, std::move(pkt),
                          [this, remaining, done, aid] {
                              if (tr)
                                  tr->asyncEnd(curTrk(), nmDllXfer,
                                               cq().now(), aid);
                              if (--*remaining == 0 && *done)
                                  (*done)();
                          });
        }
        return;
    }

    for (const std::uint64_t c : chunks) {
        const unsigned flits = flitsFor(c);
        noc::Message msg;
        msg.src = nodeIdx(s);
        msg.dst = nodeIdx(d);
        msg.flits = flits;
        msg.id = allocMsgId(group);
        statPacketsLink.addConcurrent(1);
        statBytesViaLink.addConcurrent(static_cast<double>(flits) *
                                       proto::flitBytes);
        // Packet lifetime span: packetize begin -> decoded at d.
        std::uint64_t aid = 0;
        if (tr) {
            aid = tr->nextAsyncId();
            tr->asyncBegin(curTrk(), nmPacket, cq().now(), aid);
        }
        msg.deliver = [this, flits, remaining, done, aid](int) {
            // NW-interface CRC check + decode at the destination.
            cq().scheduleIn(decodeDelay(flits),
                            [this, remaining, done, aid] {
                                if (tr)
                                    tr->asyncEnd(curTrk(), nmPacket,
                                                 cq().now(), aid);
                                if (--*remaining == 0 && *done)
                                    (*done)();
                            },
                            EventPriority::Control);
        };
        // NW-interface packetization before hitting the router.
        cq().scheduleIn(packetizeDelay(flits),
                        [this, group, msg = std::move(msg)]() mutable {
                            inject(group, std::move(msg));
                        },
                        EventPriority::Control);
    }
}

void
DlFabric::hostFallback(DimmId s, DimmId d, std::uint64_t payload_bytes,
                       std::function<void()> delivered)
{
    statHostReroutes->addConcurrent(1);
    const auto wire = static_cast<unsigned>(wireBytesFor(payload_bytes));
    statPacketsHost.addConcurrent(1);
    statBytesViaHost.addConcurrent(wire);
    auto cb = std::make_shared<std::function<void()>>(
        std::move(delivered));
    // The forward job runs on the host shard; the delivery callback
    // belongs to the source group's shard and is routed back there.
    requestForward(s, [this, s, d, wire, cb] {
        path.forwarder().forward(s, d, wire,
                                 onShard(shardOf(s), [cb] {
                                     if (*cb)
                                         (*cb)();
                                 }));
    });
}

void
DlFabric::sendDllPacket(DimmId s, DimmId d, proto::Packet pkt,
                        std::function<void()> delivered)
{
    const unsigned group = groupIdx(s);
    const std::uint64_t payload = pkt.payload.size();
    auto cb = std::make_shared<std::function<void()>>(
        std::move(delivered));
    // The sequence number is stamped at admission (possibly after
    // window backpressure), so the waiting-table key is registered on
    // the first transmission rather than here. The route is captured
    // at the same moment: exhaustion must blame the path the transfer
    // actually took, not whatever the tables say after a recompute.
    auto key = std::make_shared<std::optional<DllKey>>();
    auto route =
        std::make_shared<std::vector<std::pair<int, int>>>();

    dllCtl[s]->sendReliable(
        std::move(pkt),
        [this, group, s, d, cb, key, route](const proto::Packet &p,
                                            std::vector<std::uint8_t> wire) {
            if (!key->has_value()) {
                *key = DllKey{
                    p.src, p.dst,
                    static_cast<std::uint16_t>(p.dll & 0xffff)};
                dllWaiting[group][**key] = cb;
                *route = routePath(group, nodeIdx(s), nodeIdx(d));
            } else if (tr) {
                // The retry engine re-invoked transmit: a timeout or
                // NACK retransmission of this sequence number.
                tr->instant(curTrk(), nmDllRetry, cq().now(),
                            p.dll & 0xffff);
            }
            const unsigned flits = p.numFlits();
            noc::Message msg;
            msg.src = nodeIdx(s);
            msg.dst = nodeIdx(d);
            msg.flits = flits;
            msg.id = allocMsgId(group);
            // The encoded image travels with the message; fault
            // models flip its real bits in flight. Each retry gets a
            // freshly encoded (clean) image.
            msg.wire = std::make_shared<std::vector<std::uint8_t>>(
                std::move(wire));
            msg.deliver = [this, d, flits, w = msg.wire](int) {
                cq().scheduleIn(decodeDelay(flits),
                                [this, d, w] { dllReceive(d, *w); },
                                EventPriority::Control);
            };
            cq().scheduleIn(
                packetizeDelay(flits),
                [this, group, msg = std::move(msg)]() mutable {
                    inject(group, std::move(msg));
                },
                EventPriority::Control);
        },
        /*on_acked=*/[this, s, route] {
            // An end-to-end ACK proves the route moved traffic:
            // clear the consecutive-failure blame on its links so
            // unrelated exhaustions cannot accumulate into a
            // spurious Suspect over the whole run.
            const unsigned g = groupIdx(s);
            if (g < health.size() && health[g] && !route->empty())
                health[g]->noteSuccess(*route);
        },
        /*on_failed=*/[this, s, d, payload, key, route] {
            // Retry budget exhausted (e.g. a stuck link outliving the
            // budget). Blame the route the transfer was admitted on so
            // the health machinery can take the dead link out of the
            // tables, then apply the configured exhaustion policy.
            statDllFailedTransfers.addConcurrent(1);
            if (tr)
                tr->instant(curTrk(), nmDllFailed, cq().now(),
                            key->has_value()
                                ? std::get<2>(**key)
                                : std::uint64_t{0});
            const unsigned g = groupIdx(s);
            if (g < health.size() && health[g])
                health[g]->noteExhausted(
                    route->empty()
                        ? routePath(g, nodeIdx(s), nodeIdx(d))
                        : *route);
            if (!key->has_value())
                return;
            auto it = dllWaiting[g].find(**key);
            if (it == dllWaiting[g].end())
                return; // Delivered earlier; only the ACKs kept dying.
            auto cb2 = it->second;
            dllWaiting[g].erase(it);
            switch (exhaustPolicy) {
              case ExhaustPolicy::Panic:
                panic("DLL transfer %u -> %u (seq %u) exhausted its "
                      "retry budget (faults.onExhausted=panic)",
                      s, d, std::get<2>(**key));
                break;
              case ExhaustPolicy::Drop: {
                // Complete the transfer unsent so the workload can
                // terminate; the stat records the loss. The payload
                // is gone, but the receiver must still move past the
                // retired sequence or every later packet on the
                // stream jams behind the gap once the link recovers —
                // send a header-only resync note over the host path.
                warnRateLimited(
                    "dl-fabric-drop", 64,
                    "DLL transfer %u -> %u dropped after retry "
                    "exhaustion (faults.onExhausted=drop)",
                    static_cast<unsigned>(s), static_cast<unsigned>(d));
                if (cb2 && *cb2)
                    (*cb2)();
                const auto note =
                    static_cast<unsigned>(wireBytesFor(0));
                statPacketsHost.addConcurrent(1);
                statBytesViaHost.addConcurrent(note);
                const auto seq = std::get<2>(**key);
                requestForward(s, [this, s, d, note, seq] {
                    path.forwarder().forward(
                        s, d, note,
                        // The resync touches d's controller: run it on
                        // d's group shard (== s's; streams are
                        // intra-group).
                        onShard(shardOf(s), [this, s, d, seq] {
                            dllStreamResync(s, d, seq);
                        }));
                });
                break;
              }
              case ExhaustPolicy::Failover: {
                // Re-submit the payload over the host CPU-forwarding
                // path: slower, but the bytes really arrive and the
                // completion chain stays intact. The forwarded image
                // carries the DLL header, so its arrival also resyncs
                // the receiver's stream past the retired sequence.
                statFailovers->addConcurrent(1);
                const auto wire =
                    static_cast<unsigned>(wireBytesFor(payload));
                statFailoverBytes->addConcurrent(wire);
                statPacketsHost.addConcurrent(1);
                statBytesViaHost.addConcurrent(wire);
                if (tr)
                    tr->instant(curTrk(), nmFailover, cq().now(),
                                std::get<2>(**key));
                const auto seq = std::get<2>(**key);
                requestForward(s, [this, s, d, wire, cb2, seq] {
                    path.forwarder().forward(
                        s, d, wire,
                        onShard(shardOf(s), [this, s, d, seq, cb2] {
                            dllStreamResync(s, d, seq);
                            if (cb2 && *cb2)
                                (*cb2)();
                        }));
                });
                break;
              }
            }
        });
}

void
DlFabric::completeDllDelivery(const proto::Packet &p)
{
    const DllKey k{p.src, p.dst,
                   static_cast<std::uint16_t>(p.dll & 0xffff)};
    auto &wmap = dllWaiting[groupIdx(static_cast<DimmId>(p.src))];
    auto it = wmap.find(k);
    if (it == wmap.end())
        return; // Completed earlier (delivery, failover, or drop).
    auto cb = it->second;
    wmap.erase(it);
    if (cb && *cb)
        (*cb)();
}

void
DlFabric::dllReceive(DimmId d, const std::vector<std::uint8_t> &wire)
{
    dllCtl[d]->onWireArrive(
        wire, /*corrupted=*/false,
        [this, d](const proto::Packet &ctrl) {
            sendDllControl(d, ctrl);
        },
        [this](proto::Packet p) { completeDllDelivery(p); },
        // A behind-window arrival is normally a filtered duplicate,
        // but after a stream resync it can be the only copy of a
        // sequence the skip jumped over while it was still in
        // flight: claim its completion if it is still waiting.
        [this](proto::Packet p) { completeDllDelivery(p); });
}

void
DlFabric::dllStreamResync(DimmId s, DimmId d, std::uint16_t seq)
{
    if (statStreamResyncs)
        statStreamResyncs->addConcurrent(1);
    if (tr)
        tr->instant(curTrk(), nmDllResync, cq().now(), seq);
    // The destination's controller learns the retired sequence from
    // the host-delivered DLL header and advances its reorder stream
    // past the permanent gap; held packets the skip releases complete
    // like normal in-order deliveries.
    dllCtl[d]->skipReceive(
        static_cast<std::uint8_t>(s), seq,
        [this](proto::Packet p) { completeDllDelivery(p); });
}

void
DlFabric::sendDllControl(DimmId from, const proto::Packet &ctrl)
{
    if (ctrl.dst >= cfg.numDimms ||
        groupIdx(static_cast<DimmId>(ctrl.dst)) != groupIdx(from)) {
        // Can only happen when a NACK was synthesized from an image
        // whose header bits (SRC) were themselves damaged: there is
        // no one to send it to. The sender's timeout recovers.
        statDllCtrlDropped.addConcurrent(1);
        return;
    }
    const unsigned group = groupIdx(from);
    const auto dst = static_cast<DimmId>(ctrl.dst);
    noc::Message msg;
    msg.src = nodeIdx(from);
    msg.dst = nodeIdx(dst);
    msg.flits = 1;
    msg.id = allocMsgId(group);
    // Control packets cross the same faulty links as data; a
    // corrupted ACK/NACK is dropped at the far end and the data
    // sender's retry timeout takes over.
    msg.wire = std::make_shared<std::vector<std::uint8_t>>(
        proto::encode(ctrl));
    msg.deliver = [this, dst, w = msg.wire](int) {
        cq().scheduleIn(
            decodeDelay(1),
            [this, dst, w] {
                proto::Packet c;
                if (!proto::decode(*w, c)) {
                    statDllCtrlDropped.addConcurrent(1);
                    return;
                }
                dllCtl[dst]->onControlArrive(c);
            },
            EventPriority::Control);
    };
    cq().scheduleIn(packetizeDelay(1),
                    [this, group, msg = std::move(msg)]() mutable {
                        inject(group, std::move(msg));
                    },
                    EventPriority::Control);
}

void
DlFabric::requestForward(DimmId src, std::function<void()> job)
{
    const bool proxy_mode =
        cfg.pollingMode == PollingMode::Proxy ||
        cfg.pollingMode == PollingMode::ProxyInterrupt;
    const DimmId proxy =
        proxy_mode ? proxyOf(groupIdx(src)) : src;
    if (!proxy_mode || proxy == src) {
        // The polling engine and forwarder live on the host shard; the
        // job runs there once polling discovers the target.
        callOn(0, [this, proxy, job = std::move(job)]() mutable {
            path.request(proxy, std::move(job));
        });
        return;
    }
    // Register the request with the group's proxy over the link
    // network (a single-flit FwdReq packet), so the host only has to
    // poll one DIMM per group (Fig. 7). The note rides src's group
    // network, so everything below runs on src's group shard (callers
    // may sit on another shard, e.g. the read-return leg of an
    // inter-group RemoteRead running on the host shard).
    callOn(shardOf(src), [this, src, proxy,
                          job = std::move(job)]() mutable {
        const unsigned g = groupIdx(src);
        auto job_sh =
            std::make_shared<std::function<void()>>(std::move(job));
        // When the proxy cannot be reached over the bridge (now, or by
        // the time the note would arrive), the host discovers the
        // request on its own polling cadence instead — modeled as one
        // extra poll interval of discovery latency.
        auto fallback = [this, proxy, job_sh] {
            if (statProxyNotifyFallbacks)
                statProxyNotifyFallbacks->addConcurrent(1);
            cq().scheduleIn(
                cfg.host.pollIntervalPs,
                [this, proxy, job_sh] {
                    callOn(0, [this, proxy, job_sh] {
                        path.request(proxy, [job_sh] { (*job_sh)(); });
                    });
                },
                EventPriority::Control);
        };
        if (dllPath &&
            !nets[g]->graph().reachable(nodeIdx(src),
                                        nodeIdx(proxy))) {
            fallback();
            return;
        }
        statProxyNotifies.addConcurrent(1);
        // Exactly one of {delivery, drop, deadline} may claim the job:
        // all three race on this group's shard, so a plain flag is
        // enough to make the losers no-ops.
        auto claimed = std::make_shared<bool>(false);
        noc::Message note;
        note.src = nodeIdx(src);
        note.dst = nodeIdx(proxy);
        note.flits = 1;
        note.id = allocMsgId(g);
        statBytesViaLink.addConcurrent(proto::flitBytes);
        note.deliver = [this, proxy, job_sh, claimed](int) {
            if (*claimed)
                return;
            *claimed = true;
            callOn(0, [this, proxy, job_sh] {
                path.request(proxy, [job_sh] { (*job_sh)(); });
            });
        };
        note.onDropped = [claimed, fallback] {
            if (*claimed)
                return;
            *claimed = true;
            fallback();
        };
        if (dllPath) {
            // A stuck link *delays* whatever is serialized into it
            // (noc::Link::transmit adds the outage to the arrival
            // tick, it never drops), so a notify note caught upstream
            // of the proxy before LinkHealth marks the link down would
            // neither deliver nor fire onDropped within the run — the
            // forward job would be lost and every transaction behind
            // it would hang (the 8D two-group stuck-bridge hang noted
            // in PR 6: group 0's proxy sits behind the stuck 1->2
            // edge). Bound the note's useful life by the same timeout
            // that protects DLL data packets; past it, the host
            // discovers the request on its own polling cadence.
            cq().scheduleIn(
                packetizeDelay(1) + cfg.link.retryTimeoutPs,
                [claimed, fallback] {
                    if (*claimed)
                        return;
                    *claimed = true;
                    fallback();
                },
                EventPriority::Control);
        }
        cq().scheduleIn(packetizeDelay(1),
                        [this, g, note = std::move(note)]() mutable {
                            inject(g, std::move(note));
                        },
                        EventPriority::Control);
    });
}

void
DlFabric::groupBroadcast(DimmId s, std::uint64_t bytes,
                         std::function<void()> all_delivered)
{
    const unsigned group = groupIdx(s);
    const unsigned gs = cfg.groupSize();
    if (gs == 1) {
        // Complete on the executing shard's queue (completeLater
        // would land on the host queue even when this group-local
        // broadcast runs on a group shard).
        if (all_delivered)
            cq().schedule(cq().now(), std::move(all_delivered),
                          EventPriority::Delivery);
        return;
    }

    if (dllPath) {
        // Under fault injection the spanning-tree broadcast gives way
        // to per-destination reliable unicasts: every copy is CRC +
        // retry protected, and copies for nodes the tables can no
        // longer reach degrade to host forwarding individually
        // (sendIntraGroup handles both).
        auto remaining = std::make_shared<std::size_t>(gs - 1);
        auto done = std::make_shared<std::function<void()>>(
            std::move(all_delivered));
        for (unsigned node = 0; node < gs; ++node) {
            const DimmId dv = dimmAt(group, static_cast<int>(node));
            if (dv == s)
                continue;
            sendIntraGroup(s, dv, bytes, [remaining, done] {
                if (--*remaining == 0 && *done)
                    (*done)();
            });
        }
        return;
    }

    std::uint64_t left = bytes;
    std::vector<std::uint64_t> chunks;
    do {
        const std::uint64_t c =
            std::min<std::uint64_t>(left, proto::maxPayloadBytes);
        chunks.push_back(c);
        left -= c;
    } while (left > 0);

    // Every node (including the source's own router) ejects each
    // broadcast packet once.
    auto remaining =
        std::make_shared<std::size_t>(chunks.size() * gs);
    auto done = std::make_shared<std::function<void()>>(
        std::move(all_delivered));

    for (const std::uint64_t c : chunks) {
        const unsigned flits = flitsFor(c);
        noc::Message msg;
        msg.src = nodeIdx(s);
        msg.dst = 0;
        msg.broadcast = true;
        msg.flits = flits;
        msg.id = allocMsgId(group);
        statPacketsLink.addConcurrent(1);
        statBytesViaLink.addConcurrent(static_cast<double>(flits) *
                                       proto::flitBytes);
        msg.deliver = [this, flits, remaining, done,
                       src_node = nodeIdx(s)](int node) {
            if (node == src_node) {
                // The source's local copy needs no decode.
                if (--*remaining == 0 && *done)
                    (*done)();
                return;
            }
            cq().scheduleIn(decodeDelay(flits),
                            [remaining, done] {
                                if (--*remaining == 0 && *done)
                                    (*done)();
                            },
                            EventPriority::Control);
        };
        cq().scheduleIn(packetizeDelay(flits),
                        [this, group, msg = std::move(msg)]() mutable {
                            inject(group, std::move(msg));
                        },
                        EventPriority::Control);
    }
}

void
DlFabric::hostPathSend(DimmId s, DimmId d,
                       std::uint64_t payload_bytes,
                       std::function<void()> done)
{
    const auto wire = static_cast<unsigned>(wireBytesFor(payload_bytes));
    if (!rackFabric || cfg.hostOf(s) == cfg.hostOf(d)) {
        // Intra-host: exactly the pre-rack sequence, so single-host
        // runs keep byte-identical timing and stats.
        statPacketsHost.addConcurrent(1);
        statBytesViaHost.addConcurrent(wire);
        requestForward(s,
                       [this, s, d, wire, done = std::move(done)]() mutable {
                           path.forwarder().forward(s, d, wire,
                                                    std::move(done));
                       });
        return;
    }
    // Cross-host: route choice and all rack accounting run on the
    // host shard -- one writer, canonical mailbox order, so stats
    // stay byte-identical at every thread count. A transfer whose
    // primary route lost an endpoint fails over to the other one;
    // with both ends down the pooled lane is taken regardless (the
    // cables physically exist, and the simulation must terminate).
    callOn(0, [this, s, d, wire, done = std::move(done)]() mutable {
        const unsigned hs = cfg.hostOf(s);
        const unsigned hd = cfg.hostOf(d);
        bool pooled = rackPooledPrimary;
        if (pooled && !rackFabric->bridgeUp(hs, hd) &&
            rackFabric->hostUp(hs) && rackFabric->hostUp(hd)) {
            pooled = false;
            rackFabric->noteReroute();
        } else if (!pooled && !(rackFabric->hostUp(hs) &&
                                rackFabric->hostUp(hd))) {
            pooled = true;
            rackFabric->noteReroute();
        }
        if (pooled) {
            // The bridge lane is DIMM-Link wire: count it with the
            // link traffic, not the host path.
            statPacketsLink.addConcurrent(1);
            statBytesViaLink.addConcurrent(wire);
            rackFabric->pooledSend(hs, hd, wire, std::move(done));
            return;
        }
        statPacketsHost.addConcurrent(1);
        statBytesViaHost.addConcurrent(wire);
        // Discovery at the source host, the rack crossing, then the
        // channel fetch + store the Forwarder models at both ends.
        requestForward(s, [this, s, d, hs, hd, wire,
                           done = std::move(done)]() mutable {
            rackFabric->crossing(
                hs, hd, wire,
                [this, s, d, wire, done = std::move(done)]() mutable {
                    path.forwarder().forward(s, d, wire,
                                             std::move(done));
                });
        });
    });
}

void
DlFabric::doRemoteRead(Transaction t, std::function<void()> finish)
{
    if (groupIdx(t.src) == groupIdx(t.dst)) {
        // Fig. 5-(a): request packet out, read-return data back, all
        // over the DL-Bridge.
        sendIntraGroup(
            t.src, t.dst, 0, [this, t, finish]() mutable {
                memAccess(t.dst, t.addr, t.bytes, /*is_write=*/false,
                          [this, t, finish]() mutable {
                              sendIntraGroup(t.dst, t.src, t.bytes,
                                             finish);
                          });
            });
        return;
    }
    // Fig. 5-(b): the request packet is CPU-forwarded to the remote
    // group's DIMM; the read-return data is CPU-forwarded back after
    // the destination registers its own forwarding request. Across
    // hosts both legs ride the rack crossing (or the pooled bridge
    // lanes) instead.
    hostPathSend(t.src, t.dst, 0, [this, t, finish]() mutable {
        memAccess(t.dst, t.addr, t.bytes, /*is_write=*/false,
                  [this, t, finish]() mutable {
                      hostPathSend(t.dst, t.src, t.bytes, finish);
                  });
    });
}

void
DlFabric::doRemoteWrite(Transaction t, std::function<void()> finish)
{
    if (groupIdx(t.src) == groupIdx(t.dst)) {
        sendIntraGroup(
            t.src, t.dst, t.bytes, [this, t, finish]() mutable {
                memAccess(t.dst, t.addr, t.bytes, /*is_write=*/true,
                          finish);
            });
        return;
    }
    hostPathSend(t.src, t.dst, t.bytes, [this, t, finish]() mutable {
        memAccess(t.dst, t.addr, t.bytes, /*is_write=*/true, finish);
    });
}

void
DlFabric::doBroadcast(Transaction t, std::function<void()> finish)
{
    // Fig. 5-(c)/(d): broadcast in the local group over the bridge;
    // for each remote group, one CPU-forwarded copy to the group's
    // entry DIMM (its proxy), then a group-local broadcast there.
    statBroadcasts.addConcurrent(1);
    auto finish_sh =
        std::make_shared<std::function<void()>>(std::move(finish));
    auto remaining = std::make_shared<unsigned>(0);
    auto dec = [remaining, finish_sh]() {
        if (--*remaining == 0)
            (*finish_sh)();
    };

    // The shared remaining-counter is touched only on the source
    // group's shard: remote-group broadcasts run on their own shard
    // (the entry proxy's group), but their completions are routed
    // back here before decrementing.
    memAccess(t.src, t.addr, t.bytes, /*is_write=*/false,
              [this, t, remaining, dec]() mutable {
                  ++*remaining;
                  groupBroadcast(t.src, t.bytes, dec);
                  for (unsigned g = 0; g < cfg.numGroups(); ++g) {
                      if (g == groupIdx(t.src))
                          continue;
                      ++*remaining;
                      const DimmId entry = proxyOf(g);
                      hostPathSend(
                          t.src, entry, t.bytes,
                          onShard(shardOf(entry),
                                  [this, t, entry, dec]() mutable {
                                      groupBroadcast(
                                          entry, t.bytes,
                                          onShard(shardOf(t.src),
                                                  dec));
                                  }));
                  }
              });
}

void
DlFabric::doSyncMessage(Transaction t, std::function<void()> finish)
{
    if (groupIdx(t.src) == groupIdx(t.dst)) {
        sendIntraGroup(t.src, t.dst, t.bytes, finish);
        return;
    }
    hostPathSend(t.src, t.dst, t.bytes, std::move(finish));
}

std::string
DlFabric::debugDump()
{
    std::ostringstream os;
    std::size_t waiting = 0;
    for (const auto &m : dllWaiting)
        waiting += m.size();
    os << "fabric.dl: dllWaiting=" << waiting
       << " forwardBacklog=" << path.forwarder().backlog() << "\n";
    std::size_t shown = 0;
    for (const auto &m : dllWaiting) {
        for (const auto &kv : m) {
            if (shown++ == 16) {
                os << "  ... (" << (waiting - 16)
                   << " more waiting keys)\n";
                break;
            }
            os << "  waiting: "
               << static_cast<unsigned>(std::get<0>(kv.first)) << " -> "
               << static_cast<unsigned>(std::get<1>(kv.first))
               << " seq=" << std::get<2>(kv.first) << "\n";
        }
        if (shown > 16)
            break;
    }
    for (std::size_t d = 0; d < dllCtl.size(); ++d) {
        const auto &c = *dllCtl[d];
        if (c.retryInFlight() == 0 && c.retryQueued() == 0 &&
            c.receiverBuffered() == 0)
            continue;
        os << "  dllc" << d << ": retryInFlight=" << c.retryInFlight()
           << " retryQueued=" << c.retryQueued()
           << " receiverBuffered=" << c.receiverBuffered() << "\n";
    }
    for (std::size_t g = 0; g < health.size(); ++g) {
        if (health[g]->numSuspectOrDown() == 0)
            continue;
        os << "  group" << g << " link health:\n" << health[g]->dump();
    }
    if (rackFabric)
        os << rackFabric->debugDump();
    return os.str();
}

void
DlFabric::submit(Transaction t)
{
    if (!sh) {
        submitHere(std::move(t));
        return;
    }
    // The transaction state machine runs on the source DIMM's group
    // shard; the completion is routed back to whichever shard
    // submitted (the SyncManager on the host shard, or a core's MC on
    // its group shard — for the latter the hop is a direct call).
    t.onComplete = onShard(sh->current(), std::move(t.onComplete));
    const unsigned owner = shardOf(t.src);
    if (owner == sh->current()) {
        submitHere(std::move(t));
        return;
    }
    sh->call(owner, [this, t = std::move(t)]() mutable {
        submitHere(std::move(t));
    });
}

void
DlFabric::submitHere(Transaction t)
{
    statTransactions.addConcurrent(1);
    const Tick started = cq().now();
    const unsigned home = sh ? sh->current() : 0;
    const std::uint16_t nm = nmXact[static_cast<int>(t.type)];
    std::uint64_t aid = 0;
    if (tr) {
        aid = tr->nextAsyncId();
        tr->asyncBegin(curTrk(), nm, started, aid);
    }
    // finish may fire on a different shard than the one the
    // transaction started on (inter-group chains end on the host
    // shard): the latency sample lands in the executing shard's lane
    // and the completion is routed back to the starting shard.
    auto finish = [this, cb = std::move(t.onComplete), started, nm,
                   aid, home]() mutable {
        sampleLatency(static_cast<double>(cq().now() - started));
        if (tr)
            tr->asyncEnd(curTrk(), nm, cq().now(), aid);
        if (cb)
            callOn(home, std::move(cb));
    };

    switch (t.type) {
      case Transaction::Type::RemoteRead:
        doRemoteRead(std::move(t), std::move(finish));
        break;
      case Transaction::Type::RemoteWrite:
        doRemoteWrite(std::move(t), std::move(finish));
        break;
      case Transaction::Type::Broadcast:
        doBroadcast(std::move(t), std::move(finish));
        break;
      case Transaction::Type::SyncMessage:
        doSyncMessage(std::move(t), std::move(finish));
        break;
    }
}

namespace {

FabricFactory::Registrar regDl("DIMM-Link",
    [](EventQueue &eq, const SystemConfig &cfg,
       std::vector<host::Channel *> channels, stats::Registry &reg)
        -> std::unique_ptr<Fabric> {
        return std::make_unique<DlFabric>(eq, cfg, std::move(channels),
                                       reg);
    });

} // namespace

} // namespace idc
} // namespace dimmlink
