#include "idc/abc_fabric.hh"

#include <memory>

namespace dimmlink {
namespace idc {

namespace {

std::vector<DimmId>
allDimms(const SystemConfig &cfg)
{
    std::vector<DimmId> v(cfg.numDimms);
    for (unsigned i = 0; i < cfg.numDimms; ++i)
        v[i] = static_cast<DimmId>(i);
    return v;
}

} // namespace

AbcFabric::AbcFabric(EventQueue &eq, const SystemConfig &cfg_,
                     std::vector<host::Channel *> channels_,
                     stats::Registry &reg)
    : Fabric(eq, cfg_, reg, "fabric.abc"),
      channels(channels_),
      path(eq, cfg_, channels_, allDimms(cfg_), reg),
      statChannelBroadcasts(
          reg.group("fabric.abc").scalar("channelBroadcasts"))
{
}

void
AbcFabric::submit(Transaction t)
{
    ++statTransactions;
    const Tick started = eventq.now();
    path.request(t.src, [this, t = std::move(t), started]() mutable {
        execute(std::move(t), started);
    });
}

void
AbcFabric::execute(Transaction t, Tick started)
{
    auto finish = [this, cb = std::move(t.onComplete), started]() {
        statLatencyPs.sample(
            static_cast<double>(eventq.now() - started));
        if (cb)
            cb();
    };

    switch (t.type) {
      case Transaction::Type::RemoteRead:
        // P2P cannot use the broadcast bus: plain CPU forwarding.
        statBytesViaHost += t.bytes;
        memAccess(t.dst, t.addr, t.bytes, /*is_write=*/false,
                  [this, t, finish]() mutable {
                      path.forwarder().copy(t.dst, t.src, t.bytes,
                                            finish);
                  });
        break;

      case Transaction::Type::RemoteWrite:
        statBytesViaHost += t.bytes;
        path.forwarder().copy(
            t.src, t.dst, t.bytes,
            [this, t, finish]() mutable {
                memAccess(t.dst, t.addr, t.bytes, /*is_write=*/true,
                          finish);
            });
        break;

      case Transaction::Type::Broadcast:
        ++statBroadcasts;
        executeBroadcast(std::move(t), std::move(finish));
        break;

      case Transaction::Type::SyncMessage:
        statBytesViaHost += t.bytes;
        path.forwarder().copy(t.src, t.dst, t.bytes, finish);
        break;
    }
}

void
AbcFabric::executeBroadcast(Transaction t, std::function<void()> finish)
{
    auto finish_sh =
        std::make_shared<std::function<void()>>(std::move(finish));
    memAccess(
        t.src, t.addr, t.bytes, /*is_write=*/false,
        [this, t, finish_sh]() mutable {
            // Broadcast-read on the source channel: one occupancy
            // delivers the data to every sibling DIMM there, and the
            // host receives a copy off the shared bus.
            const ChannelId src_ch = cfg.channelOf(t.src);
            ++statChannelBroadcasts;
            statBytesViaHost += t.bytes;
            Tick last = channels[src_ch]->transfer(t.bytes);

            // Broadcast-write on every other channel: the host pushes
            // the payload once per channel; the multi-drop bus fans it
            // out to all DIMMs of that channel. Writes to distinct
            // channels proceed in parallel through the host MC queues.
            for (ChannelId c = 0; c < cfg.numChannels; ++c) {
                if (c == src_ch)
                    continue;
                ++statChannelBroadcasts;
                statBytesViaHost += t.bytes;
                const Tick end = channels[c]->occupy(
                    serializationTicks(t.bytes,
                                       channels[c]->bandwidthGBps()),
                    eventq.now() + cfg.host.forwardLatencyPs);
                last = std::max(last, end);
            }
            eventq.schedule(last, [finish_sh] { (*finish_sh)(); },
                            EventPriority::Delivery);
        });
}

namespace {

FabricFactory::Registrar regAbc("ABC-DIMM",
    [](EventQueue &eq, const SystemConfig &cfg,
       std::vector<host::Channel *> channels, stats::Registry &reg)
        -> std::unique_ptr<Fabric> {
        return std::make_unique<AbcFabric>(eq, cfg, std::move(channels),
                                       reg);
    });

} // namespace

} // namespace idc
} // namespace dimmlink
