#include "idc/fabric.hh"

#include "common/log.hh"

namespace dimmlink {
namespace idc {

Fabric::Fabric(EventQueue &eq, const SystemConfig &cfg_,
               stats::Registry &reg, std::string name)
    : eventq(eq),
      cfg(cfg_),
      registry(reg),
      name_(std::move(name)),
      statTransactions(reg.group(name_).scalar("transactions")),
      statBytesViaLink(reg.group(name_).scalar("bytesViaLink")),
      statBytesViaHost(reg.group(name_).scalar("bytesViaHost")),
      statBytesViaBus(reg.group(name_).scalar("bytesViaBus")),
      statBroadcasts(reg.group(name_).scalar("broadcasts")),
      statLatencyPs(reg.group(name_).distribution("latencyPs"))
{
}

double
Fabric::distance(DimmId j, DimmId k) const
{
    // Baseline fabrics: every remote DIMM costs the same.
    return j == k ? 0.0 : 1.0;
}

void
Fabric::completeLater(std::function<void()> &cb, Tick at)
{
    if (!cb)
        return;
    eventq.schedule(std::max(at, eventq.now()), std::move(cb),
                    EventPriority::Delivery);
    cb = nullptr;
}

CpuForwardPath::CpuForwardPath(EventQueue &eq, const SystemConfig &cfg,
                               std::vector<host::Channel *> channels,
                               std::vector<DimmId> poll_targets,
                               stats::Registry &reg)
    : eventq(eq),
      fwd(eq, cfg, channels, reg),
      poll(host::makePollingEngine(eq, cfg, channels,
                                   std::move(poll_targets), reg)),
      queued(cfg.numDimms)
{
    poll->setDiscoverHandler([this](DimmId d) { onDiscover(d); });
}

void
CpuForwardPath::request(DimmId target, std::function<void()> job)
{
    queued[target].push_back(std::move(job));
    poll->requestRaised(target);
}

void
CpuForwardPath::onDiscover(DimmId target)
{
    auto jobs = std::move(queued[target]);
    queued[target].clear();
    for (auto &job : jobs)
        job();
}

void
CpuForwardPath::stop()
{
    poll->stop();
    for (auto &q : queued)
        q.clear();
}

std::unique_ptr<Fabric>
makeFabric(EventQueue &eq, const SystemConfig &cfg,
           std::vector<host::Channel *> channels, stats::Registry &reg)
{
    return FabricFactory::instance().create(
        toString(cfg.idcMethod), eq, cfg, std::move(channels), reg);
}

} // namespace idc
} // namespace dimmlink
