/**
 * @file
 * The AIM-style dedicated-bus fabric (Table I, column 4): one shared
 * multi-drop bus connects every DIMM. NMP cores transfer data without
 * host involvement, but all DIMMs arbitrate for the single bus, so
 * per-DIMM bandwidth shrinks as beta / #DIMM. Snooping gives the bus
 * a natural broadcast mode (AIM-BC).
 */

#ifndef DIMMLINK_IDC_AIM_FABRIC_HH
#define DIMMLINK_IDC_AIM_FABRIC_HH

#include <memory>

#include "idc/fabric.hh"

namespace dimmlink {
namespace idc {

class AimFabric : public Fabric
{
  public:
    AimFabric(EventQueue &eq, const SystemConfig &cfg,
              std::vector<host::Channel *> channels,
              stats::Registry &reg);

    void submit(Transaction t) override;

  private:
    /** Bus occupancy for @p bytes, starting after arbitration. */
    Tick busTransfer(std::uint32_t bytes);

    /** The dedicated bus is modeled as one shared channel. */
    std::unique_ptr<host::Channel> bus;
};

} // namespace idc
} // namespace dimmlink

#endif // DIMMLINK_IDC_AIM_FABRIC_HH
