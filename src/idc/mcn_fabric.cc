#include "idc/mcn_fabric.hh"

#include <memory>

#include "common/log.hh"

namespace dimmlink {
namespace idc {

namespace {

/** All DIMMs are polled individually under the MCN baseline. */
std::vector<DimmId>
allDimms(const SystemConfig &cfg)
{
    std::vector<DimmId> v(cfg.numDimms);
    for (unsigned i = 0; i < cfg.numDimms; ++i)
        v[i] = static_cast<DimmId>(i);
    return v;
}

} // namespace

McnFabric::McnFabric(EventQueue &eq, const SystemConfig &cfg_,
                     std::vector<host::Channel *> channels_,
                     stats::Registry &reg)
    : Fabric(eq, cfg_, reg, "fabric.mcn"),
      channels(channels_),
      path(eq, cfg_, channels_, allDimms(cfg_), reg)
{
}

void
McnFabric::submit(Transaction t)
{
    ++statTransactions;
    const Tick started = eventq.now();
    const DimmId reg_at = t.src;
    path.request(reg_at, [this, t = std::move(t), started]() mutable {
        execute(std::move(t), started);
    });
}

void
McnFabric::execute(Transaction t, Tick started)
{
    auto finish = [this, cb = std::move(t.onComplete), started]() {
        statLatencyPs.sample(
            static_cast<double>(eventq.now() - started));
        if (cb)
            cb();
    };

    switch (t.type) {
      case Transaction::Type::RemoteRead: {
        // Host reads the data from the remote DIMM (after its local MC
        // stages it from DRAM) and writes it back to the requester.
        statBytesViaHost += t.bytes;
        memAccess(t.dst, t.addr, t.bytes, /*is_write=*/false,
                  [this, t, finish]() mutable {
                      path.forwarder().copy(t.dst, t.src, t.bytes,
                                            finish);
                  });
        break;
      }
      case Transaction::Type::RemoteWrite: {
        statBytesViaHost += t.bytes;
        path.forwarder().copy(
            t.src, t.dst, t.bytes,
            [this, t, finish]() mutable {
                memAccess(t.dst, t.addr, t.bytes, /*is_write=*/true,
                          finish);
            });
        break;
      }
      case Transaction::Type::Broadcast: {
        // MCN-BC: the host replays the payload to every other DIMM,
        // point-to-point (no hardware broadcast support).
        ++statBroadcasts;
        auto remaining = std::make_shared<unsigned>(0);
        auto finish_sh =
            std::make_shared<std::function<void()>>(std::move(finish));
        memAccess(
            t.src, t.addr, t.bytes, /*is_write=*/false,
            [this, t, remaining, finish_sh]() mutable {
                for (DimmId d = 0; d < cfg.numDimms; ++d) {
                    if (d == t.src)
                        continue;
                    ++*remaining;
                    statBytesViaHost += t.bytes;
                    path.forwarder().copy(
                        t.src, d, t.bytes,
                        [remaining, finish_sh]() {
                            if (--*remaining == 0)
                                (*finish_sh)();
                        });
                }
                if (*remaining == 0)
                    (*finish_sh)();
            });
        break;
      }
      case Transaction::Type::SyncMessage: {
        statBytesViaHost += t.bytes;
        path.forwarder().copy(t.src, t.dst, t.bytes, finish);
        break;
      }
    }
}

namespace {

FabricFactory::Registrar regMcn("MCN",
    [](EventQueue &eq, const SystemConfig &cfg,
       std::vector<host::Channel *> channels, stats::Registry &reg)
        -> std::unique_ptr<Fabric> {
        return std::make_unique<McnFabric>(eq, cfg, std::move(channels),
                                       reg);
    });

} // namespace

} // namespace idc
} // namespace dimmlink
