/**
 * @file
 * The ABC-DIMM-style intra-channel broadcast fabric (Table I, column
 * 3). The host issues customized broadcast-read/-write commands on the
 * multi-drop bus of one channel, reaching every DIMM in that channel
 * with a single occupancy; traffic crossing channels and all P2P
 * transactions fall back to CPU forwarding.
 */

#ifndef DIMMLINK_IDC_ABC_FABRIC_HH
#define DIMMLINK_IDC_ABC_FABRIC_HH

#include <vector>

#include "idc/fabric.hh"

namespace dimmlink {
namespace idc {

class AbcFabric : public Fabric
{
  public:
    AbcFabric(EventQueue &eq, const SystemConfig &cfg,
              std::vector<host::Channel *> channels,
              stats::Registry &reg);

    void submit(Transaction t) override;
    void enterNmpMode() override { path.start(); }
    void exitNmpMode() override { path.stop(); }

  private:
    void execute(Transaction t, Tick started);
    void executeBroadcast(Transaction t,
                          std::function<void()> finish);

    std::vector<host::Channel *> channels;
    CpuForwardPath path;

    stats::Scalar &statChannelBroadcasts;
};

} // namespace idc
} // namespace dimmlink

#endif // DIMMLINK_IDC_ABC_FABRIC_HH
