#include "idc/aim_fabric.hh"

namespace dimmlink {
namespace idc {

namespace {

/** Command/snoop packet on the dedicated bus (header-only). */
constexpr unsigned cmdBytes = 16;

} // namespace

AimFabric::AimFabric(EventQueue &eq, const SystemConfig &cfg_,
                     std::vector<host::Channel *> channels_,
                     stats::Registry &reg)
    : Fabric(eq, cfg_, reg, "fabric.aim")
{
    (void)channels_; // AIM bypasses the host memory channels.
    bus = std::make_unique<host::Channel>(
        eq, "fabric.aim.bus", cfg_.bus.busGBps,
        reg.group("fabric.aim.bus"));
}

Tick
AimFabric::busTransfer(std::uint32_t bytes)
{
    // Arbitration delay, then FCFS occupancy of the shared bus.
    statBytesViaBus += bytes;
    return bus->occupy(
        cfg.bus.arbitrationPs +
        serializationTicks(bytes, bus->bandwidthGBps()));
}

void
AimFabric::submit(Transaction t)
{
    ++statTransactions;
    const Tick started = eventq.now();
    auto finish = [this, cb = std::move(t.onComplete), started]() {
        statLatencyPs.sample(
            static_cast<double>(eventq.now() - started));
        if (cb)
            cb();
    };

    switch (t.type) {
      case Transaction::Type::RemoteRead: {
        // Broadcast the command; the owner snoops it, fetches from
        // DRAM, and puts the data on the bus for the requester.
        const Tick cmd_done = busTransfer(cmdBytes);
        eventq.schedule(
            cmd_done,
            [this, t, finish]() mutable {
                memAccess(t.dst, t.addr, t.bytes, /*is_write=*/false,
                          [this, t, finish]() mutable {
                              const Tick data_done =
                                  busTransfer(t.bytes);
                              eventq.schedule(data_done, finish,
                                              EventPriority::Delivery);
                          });
            },
            EventPriority::Control);
        break;
      }
      case Transaction::Type::RemoteWrite: {
        const Tick done = busTransfer(cmdBytes + t.bytes);
        eventq.schedule(
            done,
            [this, t, finish]() mutable {
                memAccess(t.dst, t.addr, t.bytes, /*is_write=*/true,
                          finish);
            },
            EventPriority::Control);
        break;
      }
      case Transaction::Type::Broadcast: {
        // AIM-BC: one bus occupancy reaches every snooping DIMM.
        ++statBroadcasts;
        memAccess(t.src, t.addr, t.bytes, /*is_write=*/false,
                  [this, t, finish]() mutable {
                      const Tick done = busTransfer(cmdBytes + t.bytes);
                      eventq.schedule(done, finish,
                                      EventPriority::Delivery);
                  });
        break;
      }
      case Transaction::Type::SyncMessage: {
        const Tick done = busTransfer(t.bytes);
        eventq.schedule(done, finish, EventPriority::Delivery);
        break;
      }
    }
}

namespace {

FabricFactory::Registrar regAim("AIM",
    [](EventQueue &eq, const SystemConfig &cfg,
       std::vector<host::Channel *> channels, stats::Registry &reg)
        -> std::unique_ptr<Fabric> {
        return std::make_unique<AimFabric>(eq, cfg, std::move(channels),
                                       reg);
    });

} // namespace

} // namespace idc
} // namespace dimmlink
