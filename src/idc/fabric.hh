/**
 * @file
 * The inter-DIMM communication (IDC) fabric interface plus the shared
 * CPU-forwarding path. Four implementations mirror Table I:
 *
 *   McnFabric  - CPU-forwarding (MCN / UPMEM baseline)
 *   AimFabric  - dedicated multi-drop bus (AIM baseline)
 *   AbcFabric  - intra-channel broadcast (ABC-DIMM baseline)
 *   DlFabric   - DIMM-Link packet routing (this paper)
 */

#ifndef DIMMLINK_IDC_FABRIC_HH
#define DIMMLINK_IDC_FABRIC_HH

#include <functional>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/factory.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "host/channel.hh"
#include "host/forwarder.hh"
#include "host/polling.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace idc {

/** One inter-DIMM transaction submitted by a DIMM's Local MC. */
struct Transaction
{
    enum class Type {
        RemoteRead,  ///< Fetch @ref bytes from dst's DRAM into src.
        RemoteWrite, ///< Push @ref bytes from src into dst's DRAM.
        Broadcast,   ///< Deliver @ref bytes from src to every DIMM.
        SyncMessage, ///< Small control message src -> dst.
    };

    Type type = Type::RemoteRead;
    DimmId src = 0;
    DimmId dst = 0;
    /** DIMM-local address at the destination. */
    Addr addr = 0;
    std::uint32_t bytes = 64;
    /**
     * RemoteRead: data arrived back at src. RemoteWrite: data written
     * at dst. Broadcast: accepted by every DIMM. SyncMessage: arrived
     * at dst.
     */
    std::function<void()> onComplete;
};

/**
 * Abstract IDC fabric. The System wires in a memory-access callback so
 * remote requests exercise the destination DIMM's DRAM controller.
 */
class Fabric
{
  public:
    /** Perform @p bytes of DRAM access at DIMM @p dimm, then @p done. */
    using MemAccessFn =
        std::function<void(DimmId dimm, Addr addr, std::uint32_t bytes,
                           bool is_write, std::function<void()> done)>;

    Fabric(EventQueue &eq, const SystemConfig &cfg,
           stats::Registry &reg, std::string name);
    virtual ~Fabric() = default;

    virtual void submit(Transaction t) = 0;

    /** Kernel start/end hooks (polling engines run only in NA mode). */
    virtual void enterNmpMode() {}
    virtual void exitNmpMode() {}

    void setMemAccess(MemAccessFn f) { memAccess = std::move(f); }

    /**
     * The "distance" between DIMMs seen by the task mapper: 0 for
     * j == k, otherwise the relative cost of one remote access.
     */
    virtual double distance(DimmId j, DimmId k) const;

    /** Live gauges read by the observability sampler. */
    /** Jobs queued at the host forwarder (0 without a forward path). */
    virtual std::size_t forwardBacklog() { return 0; }
    /** DLL packets awaiting ACK across all retry engines. */
    virtual std::size_t dllInFlight() { return 0; }

    /** Multi-line diagnostic snapshot of in-flight state, printed by
     * the hang watchdog and the drained-queue panic path. */
    virtual std::string debugDump() { return ""; }

    /**
     * Subscribe to rack host availability transitions (the serving
     * circuit breaker's health feed). No-op on fabrics without a
     * rack layer; the DlFabric forwards to its InterHostFabric. The
     * callback is (host, is_gateway, up), fired on the host shard.
     */
    using HostAvailabilitySink =
        std::function<void(unsigned host, bool is_gateway, bool up)>;
    virtual void setHostAvailabilitySink(HostAvailabilitySink) {}

    /**
     * Fold per-shard statistic lanes (latency distributions kept
     * thread-local by the parallel kernel) into the registered stats,
     * in fixed shard order. No-op for unsharded fabrics; called at
     * NMP-mode exit, before anyone reads the registry.
     */
    virtual void mergeShardStats() {}

    const std::string &name() const { return name_; }

  protected:
    void completeLater(std::function<void()> &cb, Tick at);

    EventQueue &eventq;
    const SystemConfig &cfg;
    stats::Registry &registry;
    std::string name_;
    MemAccessFn memAccess;

    stats::Scalar &statTransactions;
    stats::Scalar &statBytesViaLink;
    stats::Scalar &statBytesViaHost;
    stats::Scalar &statBytesViaBus;
    stats::Scalar &statBroadcasts;
    stats::Distribution &statLatencyPs;
};

/**
 * The CPU-forwarding transport shared by MCN, ABC-DIMM (for P2P and
 * inter-channel traffic), and DIMM-Link (for inter-group traffic):
 * polling discovery followed by a host copy between channels and a
 * remote DRAM access.
 */
class CpuForwardPath
{
  public:
    CpuForwardPath(EventQueue &eq, const SystemConfig &cfg,
                   std::vector<host::Channel *> channels,
                   std::vector<DimmId> poll_targets,
                   stats::Registry &reg);

    /**
     * Queue @p job at polled target @p target; when polling discovers
     * the target, @p job runs with the host Forwarder available.
     */
    void request(DimmId target, std::function<void()> job);

    host::Forwarder &forwarder() { return fwd; }
    host::PollingEngine &polling() { return *poll; }

    void start() { poll->start(); }
    void stop();

  private:
    void onDiscover(DimmId target);

    EventQueue &eventq;
    host::Forwarder fwd;
    std::unique_ptr<host::PollingEngine> poll;
    std::vector<std::vector<std::function<void()>>> queued;
};

/**
 * The fabric registry: implementations register under the IdcMethod
 * toString() names ("MCN", "AIM", "ABC-DIMM", "DIMM-Link") from their
 * own translation units.
 */
using FabricFactory =
    Factory<Fabric, EventQueue &, const SystemConfig &,
            std::vector<host::Channel *>, stats::Registry &>;

/** Build the fabric registered under toString(cfg.idcMethod). */
std::unique_ptr<Fabric> makeFabric(EventQueue &eq,
                                   const SystemConfig &cfg,
                                   std::vector<host::Channel *> channels,
                                   stats::Registry &reg);

} // namespace idc

template <>
struct FactoryTraits<idc::Fabric>
{
    static constexpr const char *noun = "IDC fabric";
};

} // namespace dimmlink

#endif // DIMMLINK_IDC_FABRIC_HH
