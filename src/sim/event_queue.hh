/**
 * @file
 * The discrete-event simulation kernel. A single global EventQueue per
 * System orders callbacks by (tick, priority, insertion sequence), which
 * makes every simulation bit-for-bit deterministic.
 */

#ifndef DIMMLINK_SIM_EVENT_QUEUE_HH
#define DIMMLINK_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace dimmlink {

/**
 * Event priorities; lower values fire first within the same tick.
 * The defaults follow the dependency order of one simulated cycle:
 * links deliver, then controllers react, then cores observe.
 */
enum class EventPriority : int {
    Delivery = 0,  ///< Flit/packet arrival, DRAM data return.
    Control = 10,  ///< Controller state machines, arbiters.
    Core = 20,     ///< Core op issue/retire.
    Stat = 30,     ///< End-of-interval statistics sampling.
    Default = 50,
};

/**
 * The global event queue. Not thread-safe: one queue drives one System.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /**
     * Schedule @p cb at absolute time @p when.
     * @pre when >= now(); scheduling in the past is a simulator bug.
     * @return an id usable with deschedule().
     */
    std::uint64_t schedule(Tick when, Callback cb,
                           EventPriority prio = EventPriority::Default);

    /** Schedule @p cb @p delta ticks from now. */
    std::uint64_t
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(currentTick + delta, std::move(cb), prio);
    }

    /** Cancel a previously scheduled event; idempotent. */
    void deschedule(std::uint64_t id);

    /** True when no live events remain. */
    bool empty() const { return pending.empty(); }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return pending.size(); }

    /** Execute events until the queue drains. @return final tick. */
    Tick run();

    /**
     * Execute events with tick <= limit. Events scheduled at exactly
     * @p limit do fire. @return the tick of the last executed event.
     */
    Tick runUntil(Tick limit);

    /** Execute exactly one event if present. @return true if fired. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executedCount; }

  private:
    struct Event
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    void pump();

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    std::unordered_set<std::uint64_t> pending;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedCount = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_SIM_EVENT_QUEUE_HH
