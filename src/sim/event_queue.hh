/**
 * @file
 * The discrete-event simulation kernel. A single global EventQueue per
 * System orders callbacks by (tick, priority, insertion sequence), which
 * makes every simulation bit-for-bit deterministic.
 *
 * Internally the queue is an allocation-free hierarchical timing wheel
 * (see docs/sim_kernel.md): near-future events hash into fixed-size
 * wheel slots, far-future events spill into a sorted heap that refills
 * the wheel as simulated time advances, and cancelled events are
 * generation-tagged tombstones reclaimed lazily. Same-tick bursts --
 * the dominant pattern from routers and the DRAM controller -- insert
 * in O(1) and drain in deterministic (priority, sequence) order.
 */

#ifndef DIMMLINK_SIM_EVENT_QUEUE_HH
#define DIMMLINK_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/event_callback.hh"

namespace dimmlink {

namespace obs { class Tracer; }

class ShardSet;

/**
 * Event priorities; lower values fire first within the same tick.
 * The defaults follow the dependency order of one simulated cycle:
 * links deliver, then controllers react, then cores observe.
 */
enum class EventPriority : int {
    Delivery = 0,  ///< Flit/packet arrival, DRAM data return.
    Control = 10,  ///< Controller state machines, arbiters.
    Core = 20,     ///< Core op issue/retire.
    Stat = 30,     ///< End-of-interval statistics sampling.
    Default = 50,
};

/**
 * The global event queue. Not thread-safe: one queue drives one System.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;
    /** Opaque handle for deschedule(); 0 is never a valid id. */
    using EventId = std::uint64_t;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /**
     * Schedule @p cb at absolute time @p when.
     * @pre when >= now(); scheduling in the past is a simulator bug.
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb,
                     EventPriority prio = EventPriority::Default);

    /** Schedule @p cb @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(currentTick + delta, std::move(cb), prio);
    }

    /**
     * Cancel a previously scheduled event; idempotent, and a no-op
     * for events that already fired (the generation tag in the id
     * distinguishes a recycled slot from the original event).
     */
    void deschedule(EventId id);

    /** True when no live events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return liveCount; }

    /** Execute events until the queue drains. @return final tick. */
    Tick run();

    /**
     * Execute events with tick <= limit. Events scheduled at exactly
     * @p limit do fire. Afterwards now() == limit even when the last
     * event fired earlier, so callers can treat the queue as having
     * observed the whole interval. @return the final tick.
     */
    Tick runUntil(Tick limit);

    /** Execute exactly one event if present. @return true if fired. */
    bool step();

    /**
     * Exact tick of the earliest live pending event without firing
     * anything or moving now(): currentTick when a ready event waits,
     * maxTick when the queue is drained. Prunes tombstones it walks
     * past (so it is not const, but it never perturbs simulation
     * state). The conservative scheduler uses this to pick window
     * bases that skip idle stretches exactly.
     */
    Tick nextPendingTick();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executedCount; }

    /**
     * The System's event tracer, or null when tracing is off.
     * Components reach the tracer through the queue they already hold
     * so observability needs no extra constructor plumbing.
     */
    obs::Tracer *tracer() const { return tracerPtr; }
    void setTracer(obs::Tracer *t) { tracerPtr = t; }

    /**
     * Membership in a sharded (parallel-capable) System: lets
     * components reach the ShardSet through the queue they already
     * hold, and arms the single-writer scheduling assertion while a
     * lookahead window executes. Null/0 in sequential systems.
     */
    void
    setShard(ShardSet *set, unsigned id)
    {
        shardSet_ = set;
        shardId_ = id;
    }
    ShardSet *shards() const { return shardSet_; }
    unsigned shardId() const { return shardId_; }

  private:
    /** Level-0 wheel: 1-tick buckets covering wheelSpan ticks. */
    static constexpr unsigned l0Bits = 12;
    static constexpr std::uint32_t l0Slots = 1u << l0Bits;
    static constexpr std::uint32_t l0Mask = l0Slots - 1;
    static constexpr Tick l0Span = l0Slots;
    /** Level-1 wheel: l0Span-tick buckets covering l1Span ticks. */
    static constexpr unsigned l1Bits = 12;
    static constexpr std::uint32_t l1Slots = 1u << l1Bits;
    static constexpr std::uint32_t l1Mask = l1Slots - 1;
    static constexpr Tick l1Span = static_cast<Tick>(l0Span) << l1Bits;

    static constexpr std::uint32_t nullIdx = 0xffffffffu;

    /** One pooled event record; recycled through a free list. */
    struct Slot
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Callback cb;
        std::uint32_t next = nullIdx; ///< Intrusive wheel/free link.
        std::uint32_t gen = 0;        ///< Bumped on every recycle.
        std::int32_t prio = 0;
        bool live = false;
    };

    /** Entry in the current-tick ready heap, ordered (prio, seq). */
    struct ReadyEntry
    {
        std::uint64_t seq;
        std::uint32_t idx;
        std::int32_t prio;
    };

    /** Entry in the far-future spill heap, ordered by tick. */
    struct SpillEntry
    {
        Tick when;
        std::uint32_t idx;
    };

    template <std::uint32_t N>
    struct Wheel
    {
        std::array<std::uint32_t, N> head;
        std::array<std::uint64_t, N / 64> occupied;
    };

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t idx);
    /** Route a pending (non-current-tick) event into wheel/spill. */
    void place(std::uint32_t idx);
    void pushReady(std::uint32_t idx);
    /** Pop the (prio, seq)-least ready entry. @pre !ready.empty() */
    ReadyEntry popReady();
    /** Take slot list @p s of the L0 wheel into the ready heap. */
    bool loadL0(std::uint32_t s, Tick tick);
    /** Redistribute L1 slot @p s into the L0 wheel. */
    void cascadeL1(std::uint32_t s);
    Tick scanL0() const;
    /** @return the span-start tick of the first occupied L1 slot. */
    Tick scanL1() const;
    /**
     * Load the next tick <= @p limit with at least one live event
     * into the ready heap and advance currentTick to it. Frees
     * tombstones encountered on the way. @return false when no such
     * tick exists (currentTick is then left untouched).
     */
    bool advanceUpTo(Tick limit);
    /** Pop ready entries until a live one fires. @return true if so. */
    bool fireOneReady();

    std::vector<Slot> slots;
    std::uint32_t freeHead = nullIdx;
    Wheel<l0Slots> l0;
    Wheel<l1Slots> l1;
    std::vector<ReadyEntry> ready;
    std::vector<SpillEntry> spill;
    Tick currentTick = 0;
    /**
     * Wheel time: the window base for both wheel levels. Trails every
     * pending event and never decreases; may run ahead of currentTick
     * across stretches of tombstoned ticks.
     */
    Tick wheelTime = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedCount = 0;
    std::size_t liveCount = 0;
    obs::Tracer *tracerPtr = nullptr;
    ShardSet *shardSet_ = nullptr;
    unsigned shardId_ = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_SIM_EVENT_QUEUE_HH
