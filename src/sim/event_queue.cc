#include "sim/event_queue.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/shard.hh"

namespace dimmlink {

namespace {

/** Min-heap order for the ready heap: least (prio, seq) on top. */
struct ReadyAfter
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.prio != b.prio)
            return a.prio > b.prio;
        return a.seq > b.seq;
    }
};

/** Min-heap order for the spill heap: least tick on top. */
struct SpillAfter
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return a.when > b.when;
    }
};

/**
 * Offset (in circular order from @p base) of the first set bit in an
 * N-bit occupancy bitmap, or N when the bitmap is empty. N and the
 * word count must be powers of two.
 */
template <std::uint32_t N>
std::uint32_t
firstOccupiedFrom(const std::array<std::uint64_t, N / 64> &bits,
                  std::uint32_t base)
{
    constexpr std::uint32_t words = N / 64;
    const std::uint32_t baseWord = base >> 6;
    const auto offsetOf = [base](std::uint32_t slot) {
        return (slot - base) & (N - 1);
    };
    // Bits at or after base inside the base word...
    std::uint64_t w = bits[baseWord] & (~0ull << (base & 63));
    if (w)
        return offsetOf((baseWord << 6) +
                        static_cast<std::uint32_t>(
                            __builtin_ctzll(w)));
    // ...then whole words in circular order...
    for (std::uint32_t i = 1; i < words; ++i) {
        const std::uint32_t wi = (baseWord + i) & (words - 1);
        if (bits[wi])
            return offsetOf((wi << 6) +
                            static_cast<std::uint32_t>(
                                __builtin_ctzll(bits[wi])));
    }
    // ...and finally the bits before base in the base word.
    w = bits[baseWord] & ~(~0ull << (base & 63));
    if (w)
        return offsetOf((baseWord << 6) +
                        static_cast<std::uint32_t>(
                            __builtin_ctzll(w)));
    return N;
}

} // namespace

EventQueue::EventQueue()
{
    l0.head.fill(nullIdx);
    l0.occupied.fill(0);
    l1.head.fill(nullIdx);
    l1.occupied.fill(0);
    slots.reserve(256);
}

EventQueue::~EventQueue() = default;

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead != nullIdx) {
        const std::uint32_t idx = freeHead;
        freeHead = slots[idx].next;
        return idx;
    }
    if (slots.size() >= static_cast<std::size_t>(nullIdx) - 1)
        panic("event queue slot space exhausted");
    slots.emplace_back();
    return static_cast<std::uint32_t>(slots.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &s = slots[idx];
    s.cb.reset();
    s.live = false;
    ++s.gen;
    s.next = freeHead;
    freeHead = idx;
}

void
EventQueue::place(std::uint32_t idx)
{
    Slot &s = slots[idx];
    const Tick when = s.when;
    if (when >= wheelTime && when - wheelTime < l0Span) {
        const auto slot = static_cast<std::uint32_t>(when) & l0Mask;
        s.next = l0.head[slot];
        l0.head[slot] = idx;
        l0.occupied[slot >> 6] |= 1ull << (slot & 63);
    } else if (when >= wheelTime &&
               (when >> l0Bits) - (wheelTime >> l0Bits) < l1Slots) {
        // The span-index test (not a raw tick delta) keeps every L1
        // event in one of the l1Slots spans following wheelTime's,
        // so no slot ever aliases two spans.
        const auto slot =
            static_cast<std::uint32_t>(when >> l0Bits) & l1Mask;
        s.next = l1.head[slot];
        l1.head[slot] = idx;
        l1.occupied[slot >> 6] |= 1ull << (slot & 63);
    } else {
        // Beyond the wheel horizon -- or (rarely) behind the wheel
        // window, when tombstoned ticks advanced wheelTime past
        // now(). The spill heap accepts any tick.
        s.next = nullIdx;
        spill.push_back(SpillEntry{when, idx});
        std::push_heap(spill.begin(), spill.end(), SpillAfter{});
    }
}

void
EventQueue::pushReady(std::uint32_t idx)
{
    const Slot &s = slots[idx];
    ready.push_back(ReadyEntry{s.seq, idx, s.prio});
    std::push_heap(ready.begin(), ready.end(), ReadyAfter{});
}

EventQueue::ReadyEntry
EventQueue::popReady()
{
    std::pop_heap(ready.begin(), ready.end(), ReadyAfter{});
    const ReadyEntry e = ready.back();
    ready.pop_back();
    return e;
}

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    if (when < currentTick)
        panic("scheduling event at tick %llu before now (%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(currentTick));
    // Sharded systems: while a lookahead window executes, only the
    // thread running this shard may touch its queue; everything else
    // must go through the ShardSet mailbox.
    if (shardSet_ && !shardSet_->mayTouch(shardId_))
        panic("cross-shard schedule into shard %u's queue during a "
              "parallel window (use ShardSet::call)", shardId_);
    const std::uint32_t idx = allocSlot();
    Slot &s = slots[idx];
    s.when = when;
    s.seq = nextSeq++;
    s.cb = std::move(cb);
    s.prio = static_cast<std::int32_t>(prio);
    s.live = true;
    ++liveCount;
    if (when == currentTick)
        pushReady(idx);
    else
        place(idx);
    return (static_cast<EventId>(s.gen) << 32) |
           static_cast<EventId>(idx + 1);
}

void
EventQueue::deschedule(EventId id)
{
    const auto low = static_cast<std::uint32_t>(id);
    if (low == 0)
        return;
    const std::uint32_t idx = low - 1;
    if (idx >= slots.size())
        return;
    Slot &s = slots[idx];
    if (s.gen != static_cast<std::uint32_t>(id >> 32) || !s.live)
        return;
    // Tombstone: the slot stays linked wherever it lives and is
    // reclaimed when the kernel next walks past it.
    s.live = false;
    --liveCount;
}

bool
EventQueue::loadL0(std::uint32_t slot, Tick tick)
{
    std::uint32_t idx = l0.head[slot];
    l0.head[slot] = nullIdx;
    l0.occupied[slot >> 6] &= ~(1ull << (slot & 63));
    bool any_live = false;
    while (idx != nullIdx) {
        const std::uint32_t next = slots[idx].next;
        if (!slots[idx].live) {
            freeSlot(idx);
        } else {
            // Window invariant: every event in an L0 slot shares one
            // tick; anything else is kernel corruption.
            if (slots[idx].when != tick)
                panic("L0 wheel slot holds tick %llu, expected %llu",
                      static_cast<unsigned long long>(
                          slots[idx].when),
                      static_cast<unsigned long long>(tick));
            pushReady(idx);
            any_live = true;
        }
        idx = next;
    }
    return any_live;
}

void
EventQueue::cascadeL1(std::uint32_t slot)
{
    std::uint32_t idx = l1.head[slot];
    l1.head[slot] = nullIdx;
    l1.occupied[slot >> 6] &= ~(1ull << (slot & 63));
    while (idx != nullIdx) {
        const std::uint32_t next = slots[idx].next;
        if (!slots[idx].live)
            freeSlot(idx);
        else
            place(idx);
        idx = next;
    }
}

Tick
EventQueue::scanL0() const
{
    // The first occupied slot in circular order from the window base
    // holds the least pending L0 tick: each occupied slot maps to a
    // unique tick inside [wheelTime, wheelTime + l0Span).
    const auto base = static_cast<std::uint32_t>(wheelTime) & l0Mask;
    const std::uint32_t off =
        firstOccupiedFrom<l0Slots>(l0.occupied, base);
    return off == l0Slots ? maxTick : wheelTime + off;
}

Tick
EventQueue::scanL1() const
{
    const auto base =
        static_cast<std::uint32_t>(wheelTime >> l0Bits) & l1Mask;
    const std::uint32_t off =
        firstOccupiedFrom<l1Slots>(l1.occupied, base);
    if (off == l1Slots)
        return maxTick;
    // Span-start tick; the slot's events all lie inside
    // [start, start + l0Span).
    return ((wheelTime >> l0Bits) + off) << l0Bits;
}

bool
EventQueue::advanceUpTo(Tick limit)
{
    for (;;) {
        const Tick l0cand = scanL0();
        const Tick spillTop =
            spill.empty() ? maxTick : spill.front().when;
        const Tick l1span = scanL1();
        const Tick bound = std::min(l0cand, spillTop);

        // An L1 slot whose span starts at or before the best L0 /
        // spill candidate may hold events at an earlier (or equal)
        // tick; cascade it into L0 before trusting the candidates so
        // that every event at the eventual tick is visible at once.
        if (l1span != maxTick && l1span <= bound) {
            if (l1span > limit)
                return false; // Everything pending lies past limit.
            // Raising the window base is safe: l1span trails every
            // pending wheel tick here.
            wheelTime = std::max(wheelTime, l1span);
            cascadeL1(static_cast<std::uint32_t>(l1span >> l0Bits) &
                      l1Mask);
            continue;
        }

        if (bound == maxTick || bound > limit)
            return false;
        const Tick next = bound;
        bool any_live = false;
        if (l0cand == next)
            any_live = loadL0(static_cast<std::uint32_t>(next) &
                                  l0Mask,
                              next);
        while (!spill.empty() && spill.front().when == next) {
            std::pop_heap(spill.begin(), spill.end(), SpillAfter{});
            const std::uint32_t idx = spill.back().idx;
            spill.pop_back();
            if (!slots[idx].live) {
                freeSlot(idx);
            } else {
                pushReady(idx);
                any_live = true;
            }
        }
        wheelTime = std::max(wheelTime, next);
        if (any_live) {
            currentTick = next;
            return true;
        }
        // Every event at this tick was tombstoned; keep looking
        // without letting now() observe the dead tick.
    }
}

bool
EventQueue::fireOneReady()
{
    while (!ready.empty()) {
        const ReadyEntry e = popReady();
        Slot &s = slots[e.idx];
        if (!s.live) {
            freeSlot(e.idx);
            continue;
        }
        // Move the callback out and recycle the slot first so the
        // callback can freely schedule (possibly reusing this slot).
        Callback cb = std::move(s.cb);
        currentTick = s.when;
        --liveCount;
        ++executedCount;
        freeSlot(e.idx);
        cb();
        return true;
    }
    return false;
}

Tick
EventQueue::nextPendingTick()
{
    // A live ready entry means work at the current tick.
    while (!ready.empty()) {
        if (slots[ready.front().idx].live)
            return currentTick;
        freeSlot(popReady().idx);
    }
    for (;;) {
        // Drop dead spill tops so the heap top is a live candidate.
        while (!spill.empty() && !slots[spill.front().idx].live) {
            std::pop_heap(spill.begin(), spill.end(), SpillAfter{});
            freeSlot(spill.back().idx);
            spill.pop_back();
        }
        const Tick l0cand = scanL0();
        const Tick spillTop =
            spill.empty() ? maxTick : spill.front().when;
        const Tick l1span = scanL1();
        const Tick bound = std::min(l0cand, spillTop);

        // Same discipline as advanceUpTo(): an L1 span at or before
        // the candidate may hide an earlier tick; cascading it only
        // raises wheelTime, which never perturbs event order.
        if (l1span != maxTick && l1span <= bound) {
            wheelTime = std::max(wheelTime, l1span);
            cascadeL1(static_cast<std::uint32_t>(l1span >> l0Bits) &
                      l1Mask);
            continue;
        }
        if (bound == maxTick)
            return maxTick;
        if (l0cand == bound) {
            // The candidate L0 slot may hold only tombstones; prune
            // in place (the chain reversal is harmless -- ready-heap
            // order is (prio, seq), not insertion order).
            const auto slot =
                static_cast<std::uint32_t>(bound) & l0Mask;
            std::uint32_t idx = l0.head[slot];
            std::uint32_t live_head = nullIdx;
            bool any_live = false;
            while (idx != nullIdx) {
                const std::uint32_t next = slots[idx].next;
                if (!slots[idx].live) {
                    freeSlot(idx);
                } else {
                    slots[idx].next = live_head;
                    live_head = idx;
                    any_live = true;
                }
                idx = next;
            }
            l0.head[slot] = live_head;
            if (!any_live) {
                l0.occupied[slot >> 6] &= ~(1ull << (slot & 63));
                continue; // Dead tick; keep scanning.
            }
        }
        return bound;
    }
}

bool
EventQueue::step()
{
    for (;;) {
        if (fireOneReady())
            return true;
        if (!advanceUpTo(maxTick))
            return false;
    }
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return currentTick;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        if (!ready.empty()) {
            // Ready events always sit at currentTick; past the limit
            // they must stay pending.
            if (currentTick > limit)
                break;
            if (fireOneReady())
                continue;
        }
        if (!advanceUpTo(limit))
            break;
    }
    // The interval [now, limit] has been fully simulated: advance the
    // clock even when the last event fired earlier, so callers
    // comparing now() to limit see the whole window as elapsed.
    if (currentTick < limit)
        currentTick = limit;
    return currentTick;
}

} // namespace dimmlink
