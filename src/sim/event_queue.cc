#include "sim/event_queue.hh"

#include "common/log.hh"

namespace dimmlink {

std::uint64_t
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    if (when < currentTick)
        panic("scheduling event at tick %llu before now (%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(currentTick));
    const std::uint64_t id = nextSeq++;
    heap.push(Event{when, static_cast<int>(prio), id, std::move(cb)});
    pending.insert(id);
    return id;
}

void
EventQueue::deschedule(std::uint64_t id)
{
    // Lazy deletion: mark the id dead; skip it when it surfaces.
    // Idempotent, and a no-op for ids that already fired.
    pending.erase(id);
}

void
EventQueue::pump()
{
    while (!heap.empty() && pending.count(heap.top().seq) == 0)
        heap.pop();
}

bool
EventQueue::step()
{
    pump();
    if (heap.empty())
        return false;
    // Move the callback out before popping so it can reschedule freely.
    Event ev = std::move(const_cast<Event &>(heap.top()));
    heap.pop();
    pending.erase(ev.seq);
    currentTick = ev.when;
    ++executedCount;
    ev.cb();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return currentTick;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        pump();
        if (heap.empty() || heap.top().when > limit)
            break;
        step();
    }
    return currentTick;
}

} // namespace dimmlink
