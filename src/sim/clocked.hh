/**
 * @file
 * ClockDomain and Clocked: give each component its own clock while all
 * of them share the global picosecond EventQueue.
 */

#ifndef DIMMLINK_SIM_CLOCKED_HH
#define DIMMLINK_SIM_CLOCKED_HH

#include <string>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

/** A clock frequency expressed as an integer tick period. */
class ClockDomain
{
  public:
    explicit ClockDomain(double freq_mhz)
        : periodPs(periodFromMHz(freq_mhz))
    {}

    Tick period() const { return periodPs; }

    /** Ticks for @p n cycles of this clock. */
    Tick cyclesToTicks(Cycles n) const { return n * periodPs; }

    /** Cycles (rounded up) covering @p t ticks. */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + periodPs - 1) / periodPs;
    }

  private:
    Tick periodPs;
};

/**
 * Base class for named simulation components that own a clock domain.
 * Mirrors gem5's SimObject/Clocked split in a compact form.
 */
class Clocked
{
  public:
    Clocked(EventQueue &eq, std::string name, double freq_mhz)
        : eventq(eq), name_(std::move(name)), clock_(freq_mhz)
    {}

    virtual ~Clocked() = default;

    const std::string &name() const { return name_; }
    const ClockDomain &clock() const { return clock_; }
    EventQueue &queue() { return eventq; }
    Tick now() const { return eventq.now(); }

    /** Current time in local cycles (floor). */
    Cycles curCycle() const { return now() / clock_.period(); }

    /**
     * The next tick aligned to this clock's edge, at least one cycle
     * ahead when already on an edge boundary and @p min_cycles == 1.
     */
    Tick
    clockEdge(Cycles min_cycles = 0) const
    {
        const Tick p = clock_.period();
        const Tick aligned = ((now() + p - 1) / p) * p;
        return aligned + min_cycles * p;
    }

    /** Schedule a callback @p cycles local cycles from now. */
    std::uint64_t
    scheduleCycles(Cycles cycles, EventQueue::Callback cb,
                   EventPriority prio = EventPriority::Default)
    {
        return eventq.scheduleIn(clock_.cyclesToTicks(cycles),
                                 std::move(cb), prio);
    }

  protected:
    EventQueue &eventq;

  private:
    std::string name_;
    ClockDomain clock_;
};

} // namespace dimmlink

#endif // DIMMLINK_SIM_CLOCKED_HH
