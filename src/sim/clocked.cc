#include "sim/clocked.hh"

// Clocked is header-only today; this translation unit anchors the
// vtable so the class has a single home object file.

namespace dimmlink {
} // namespace dimmlink
