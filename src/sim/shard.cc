#include "sim/shard.hh"

#include <algorithm>
#include <thread>

#include "common/log.hh"

namespace dimmlink {

namespace {

/**
 * Which ShardSet (and which of its shards) the calling thread is
 * executing. Thread-locals rather than members so worker threads of
 * one ShardSet never alias another System's shards in the same
 * process.
 */
thread_local const ShardSet *tlsOwner = nullptr;
thread_local unsigned tlsShard = 0;

/**
 * Barrier wait: windows are often only a handful of events long, so
 * the hand-off should stay in user space when possible. Busy-poll up
 * to `spin` iterations, then yield; drive() passes spin=0 when the
 * pool is wider than the machine, where spinning only steals cycles
 * from the thread being waited on.
 */
template <typename Pred>
void
spinWait(unsigned spin, Pred pred)
{
    for (unsigned i = 0; i < spin; ++i)
        if (pred())
            return;
    while (!pred())
        std::this_thread::yield();
}

/** Canonical cross-shard delivery order: thread count never changes
 * it because it depends only on simulated time and shard identity. */
struct CanonicalOrder
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return a.prio < b.prio;
        if (a.src != b.src)
            return a.src < b.src;
        return a.seq < b.seq;
    }
};

} // namespace

ShardSet::ShardSet(std::vector<EventQueue *> queues_, Tick lookahead)
    : queues(std::move(queues_)), lookaheadTicks(lookahead),
      out(queues.size())
{
    if (queues.empty())
        panic("ShardSet needs at least one shard");
    if (lookaheadTicks == 0)
        panic("ShardSet lookahead must be positive (a zero-latency "
              "cross-shard path admits no conservative window)");
    for (unsigned s = 0; s < numShards(); ++s)
        queues[s]->setShard(this, s);
}

unsigned
ShardSet::current() const
{
    return tlsOwner == this ? tlsShard : 0;
}

bool
ShardSet::mayTouch(unsigned shard) const
{
    if (!parallelPhase())
        return true;
    return tlsOwner == this && tlsShard == shard;
}

void
ShardSet::call(unsigned dst, std::function<void()> fn,
               EventPriority prio)
{
    if (!parallelPhase() || current() == dst) {
        fn();
        return;
    }
    const unsigned src = current();
    Outbox &ob = out[src];
    ob.posts.push_back(Post{queues[src]->now() + lookaheadTicks,
                            static_cast<int>(prio), src, ob.nextSeq++,
                            dst, std::move(fn)});
}

void
ShardSet::callSequenced(std::function<std::function<void()>()> fn,
                        EventPriority prio)
{
    const unsigned src = current();
    if (!parallelPhase()) {
        // No window in flight (host phases): the calling thread IS
        // the coordinator, so run in place with the same +lookahead
        // delivery the windowed path applies.
        auto cont = fn();
        queues[src]->scheduleIn(lookaheadTicks, std::move(cont), prio);
        return;
    }
    Outbox &ob = out[src];
    ob.reqs.push_back(SeqReq{queues[src]->now(),
                             static_cast<int>(prio), src, ob.nextSeq++,
                             std::move(fn)});
}

void
ShardSet::drainOutboxes()
{
    // Collect everything, then deliver in one canonical order; a
    // post's delivery tick (sender-now + lookahead) always lands at
    // or past the next window start, so scheduling into a queue whose
    // clock sits at the old window's end is legal.
    std::vector<Post> posts;
    std::vector<SeqReq> reqs;
    for (Outbox &ob : out) {
        std::move(ob.posts.begin(), ob.posts.end(),
                  std::back_inserter(posts));
        ob.posts.clear();
        std::move(ob.reqs.begin(), ob.reqs.end(),
                  std::back_inserter(reqs));
        ob.reqs.clear();
    }
    std::sort(posts.begin(), posts.end(), CanonicalOrder{});
    std::sort(reqs.begin(), reqs.end(), CanonicalOrder{});
    for (Post &p : posts)
        queues[p.dst]->schedule(p.when, std::move(p.fn),
                                static_cast<EventPriority>(p.prio));
    for (SeqReq &r : reqs) {
        auto cont = r.fn();
        queues[r.src]->schedule(r.when + lookaheadTicks,
                                std::move(cont),
                                static_cast<EventPriority>(r.prio));
    }
}

Tick
ShardSet::minNextPending()
{
    Tick t = maxTick;
    for (EventQueue *q : queues)
        t = std::min(t, q->nextPendingTick());
    return t;
}

void
ShardSet::runShardRange(unsigned self, unsigned threads, Tick limit)
{
    for (unsigned s = self; s < numShards(); s += threads) {
        tlsOwner = this;
        tlsShard = s;
        queues[s]->runUntil(limit);
    }
    tlsOwner = nullptr;
    tlsShard = 0;
}

void
ShardSet::workerLoop(unsigned self, unsigned threads)
{
    std::uint64_t seen = 0;
    for (;;) {
        spinWait(spinIters, [this, seen] {
            return round.load(std::memory_order_acquire) != seen;
        });
        ++seen;
        if (stopWorkers.load(std::memory_order_relaxed))
            return;
        runShardRange(self, threads, windowLimit);
        arrived.fetch_add(1, std::memory_order_release);
    }
}

void
ShardSet::runWindow(Tick limit, unsigned threads)
{
    windowLimit = limit;
    parallel.store(true, std::memory_order_relaxed);
    if (threads > 1) {
        const std::uint64_t target =
            arrived.load(std::memory_order_relaxed) + (threads - 1);
        round.fetch_add(1, std::memory_order_release);
        runShardRange(0, threads, limit);
        spinWait(spinIters, [this, target] {
            return arrived.load(std::memory_order_acquire) >= target;
        });
    } else {
        runShardRange(0, 1, limit);
    }
    parallel.store(false, std::memory_order_relaxed);
}

void
ShardSet::drive(unsigned threads, const std::function<bool()> &done)
{
    threads = std::max(1u, std::min(threads, numShards()));
    syncClocks();

    std::vector<std::thread> workers;
    if (threads > 1) {
        const unsigned hw = std::thread::hardware_concurrency();
        spinIters = (hw == 0 || threads <= hw) ? 16384 : 0;
        // Fresh pool per drive(): reset the hand-off counters while
        // no worker is alive so a second run starts from round 0.
        stopWorkers.store(false, std::memory_order_relaxed);
        round.store(0, std::memory_order_relaxed);
        arrived.store(0, std::memory_order_relaxed);
        workers.reserve(threads - 1);
        for (unsigned i = 1; i < threads; ++i)
            workers.emplace_back(
                [this, i, threads] { workerLoop(i, threads); });
    }

    while (!done()) {
        drainOutboxes();
        const Tick t = minNextPending();
        if (t == maxTick)
            break; // Queues and outboxes fully drained.
        const Tick limit = maxTick - t > lookaheadTicks
                               ? t + lookaheadTicks - 1
                               : maxTick;
        runWindow(limit, threads);
    }

    if (!workers.empty()) {
        stopWorkers.store(true, std::memory_order_relaxed);
        round.fetch_add(1, std::memory_order_release);
        for (std::thread &w : workers)
            w.join();
    }
    // Deliver any posts the final window produced so no cross-shard
    // message is lost; their events stay pending like any other
    // post-kernel work (retry timers, polling).
    drainOutboxes();
    syncClocks();
}

bool
ShardSet::stepMerged()
{
    unsigned best = 0;
    Tick bt = maxTick;
    for (unsigned s = 0; s < numShards(); ++s) {
        const Tick t = queues[s]->nextPendingTick();
        if (t < bt) {
            bt = t;
            best = s;
        }
    }
    if (bt == maxTick)
        return false;
    // Drag every other clock to just below the firing tick so a
    // directly-invoked cross-shard handler schedules at (almost) the
    // time the caller intended; nothing fires on them (their next
    // pending tick is >= bt).
    if (bt > 0)
        for (unsigned s = 0; s < numShards(); ++s)
            if (s != best)
                queues[s]->runUntil(bt - 1);
    // The fired handler must see its own shard as current so
    // shard-aware components (cq(), per-shard stat lanes) resolve to
    // the queue that is actually executing.
    tlsOwner = this;
    tlsShard = best;
    const bool fired = queues[best]->step();
    tlsOwner = nullptr;
    tlsShard = 0;
    return fired;
}

void
ShardSet::syncClocks()
{
    Tick m = 0;
    for (EventQueue *q : queues)
        m = std::max(m, q->now());
    for (unsigned s = 0; s < numShards(); ++s) {
        // Events that fire during the drag execute with their own
        // shard current (see stepMerged).
        tlsOwner = this;
        tlsShard = s;
        queues[s]->runUntil(m);
    }
    tlsOwner = nullptr;
    tlsShard = 0;
}

} // namespace dimmlink
