/**
 * @file
 * Conservative parallel execution of the event kernel (see
 * docs/parallel_kernel.md). A ShardSet owns one EventQueue per shard
 * and runs all of them over the same sequence of lookahead windows
 * [T, T+L): within a window every shard executes independently (on a
 * thread pool when sim.threads > 1), and all cross-shard interaction
 * is deferred into per-shard outboxes that the coordinator drains at
 * the window barrier in one canonical (tick, priority, shard,
 * sequence) order. Because the windowed algorithm -- including the
 * barrier-drain order -- is identical whether the shards run on one
 * thread or many, the simulation is bit-for-bit deterministic across
 * thread counts by construction.
 */

#ifndef DIMMLINK_SIM_SHARD_HH
#define DIMMLINK_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

/**
 * A set of per-shard event queues advancing in lockstep lookahead
 * windows. Shard 0 is the host (channels, forwarder, sync manager,
 * runner); shard 1+g is DIMM group g. The ShardSet never owns the
 * queues; the System does.
 */
class ShardSet
{
  public:
    /**
     * @param queues one EventQueue per shard, shard 0 first. Each
     *        queue gets its shard id installed (setShard()) so
     *        schedule() can assert single-writer discipline.
     * @param lookahead the conservative window length: no cross-shard
     *        effect may take fewer than @p lookahead ticks. Must be
     *        positive.
     */
    ShardSet(std::vector<EventQueue *> queues, Tick lookahead);

    unsigned
    numShards() const
    {
        return static_cast<unsigned>(queues.size());
    }

    Tick lookahead() const { return lookaheadTicks; }

    EventQueue &queue(unsigned s) { return *queues[s]; }

    /**
     * Shard the calling thread is currently executing (0 outside
     * window execution -- the coordinator acts as the host shard).
     */
    unsigned current() const;

    /** True while shards are executing a window (possibly on worker
     * threads); cross-shard calls must go through the mailbox then. */
    bool
    parallelPhase() const
    {
        return parallel.load(std::memory_order_relaxed);
    }

    /**
     * Run @p fn in the context of shard @p dst. Inside a window a
     * cross-shard call is posted to the calling shard's outbox and
     * delivered as an event on @p dst's queue at sender-now +
     * lookahead; a same-shard call (and any call outside a window)
     * runs immediately. Identical behavior at every thread count.
     */
    void call(unsigned dst, std::function<void()> fn,
              EventPriority prio = EventPriority::Default);

    /**
     * Run @p fn on the coordinator thread at the next window barrier,
     * in canonical (tick, priority, shard, sequence) order across all
     * shards' requests, then deliver the continuation it returns back
     * on the calling shard's queue at request-time + lookahead. This
     * is how order-sensitive shared state (the workload program
     * oracle) is touched from shard context without races: every
     * thread count replays the same total order.
     */
    void callSequenced(std::function<std::function<void()>()> fn,
                       EventPriority prio = EventPriority::Core);

    /**
     * Run every shard until @p done returns true or all queues and
     * outboxes drain. @p threads worker threads execute the windows
     * (clamped to [1, numShards()]); the calling thread is worker 0
     * and the barrier coordinator.
     */
    void drive(unsigned threads, const std::function<bool()> &done);

    /**
     * Sequential cross-shard stepping for the host-access phases:
     * fire the globally next event (ties broken toward the lowest
     * shard), keeping every other queue's clock within one tick.
     * @return false when all queues are drained.
     */
    bool stepMerged();

    /** Advance every queue to the maximum now() across shards (runs
     * any events on the way); used at phase boundaries. */
    void syncClocks();

    /** May the calling thread schedule into @p shard's queue right
     * now? (single-writer assertion used by EventQueue::schedule). */
    bool mayTouch(unsigned shard) const;

  private:
    struct Post
    {
        Tick when;
        int prio;
        unsigned src;
        std::uint64_t seq;
        unsigned dst;
        std::function<void()> fn;
    };

    struct SeqReq
    {
        Tick when;
        int prio;
        unsigned src;
        std::uint64_t seq;
        std::function<std::function<void()>()> fn;
    };

    /** Single-writer while its shard executes a window; padded so
     * neighboring outboxes never share a cache line. */
    struct alignas(64) Outbox
    {
        std::vector<Post> posts;
        std::vector<SeqReq> reqs;
        std::uint64_t nextSeq = 0;
    };

    void drainOutboxes();
    Tick minNextPending();
    void runWindow(Tick limit, unsigned threads);
    void runShardRange(unsigned self, unsigned threads, Tick limit);
    void workerLoop(unsigned self, unsigned threads);

    std::vector<EventQueue *> queues;
    Tick lookaheadTicks;
    std::vector<Outbox> out;

    std::atomic<bool> parallel{false};

    // Window hand-off between the coordinator and the worker pool:
    // round is bumped (release) once per window after windowLimit is
    // set; workers add to arrived (release) when their shards finish.
    std::atomic<std::uint64_t> round{0};
    std::atomic<std::uint64_t> arrived{0};
    std::atomic<bool> stopWorkers{false};
    Tick windowLimit = 0;
    /// Busy-poll budget for barrier waits; 0 when the pool is wider
    /// than the machine (set per drive()).
    unsigned spinIters = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_SIM_SHARD_HH
