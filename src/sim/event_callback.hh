/**
 * @file
 * EventCallback: the type-erased callable the event kernel stores in
 * every event slot. Unlike std::function it never touches the global
 * heap on the hot path: captures up to inlineCapacity bytes live
 * directly inside the object (covering the dominant shapes -- `this`
 * plus a couple of words, or a moved-in std::function), and larger
 * captures fall back to a pooled slab allocator whose blocks are
 * recycled through per-size free lists.
 */

#ifndef DIMMLINK_SIM_EVENT_CALLBACK_HH
#define DIMMLINK_SIM_EVENT_CALLBACK_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace dimmlink {

namespace detail {

/**
 * Slab-backed pool for callback captures that do not fit inline.
 * Freed blocks go onto a per-size-class free list and are reused by
 * the next oversized capture, so steady-state scheduling performs no
 * operator-new calls even for large captures. Not thread-safe, like
 * the EventQueue it serves.
 */
class CallbackArena
{
  public:
    static void *allocate(std::size_t bytes);
    static void deallocate(void *p, std::size_t bytes) noexcept;
};

} // namespace detail

/**
 * A move-only `void()` callable with small-buffer optimization.
 * Invoking an empty callback is undefined; the kernel only stores
 * engaged callbacks.
 */
class EventCallback
{
  public:
    /** Captures up to this many bytes are stored inline. */
    static constexpr std::size_t inlineCapacity = 56;

    EventCallback() noexcept = default;

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    EventCallback(EventCallback &&other) noexcept : ops(other.ops)
    {
        if (ops) {
            ops->relocate(buf, other.buf);
            other.ops = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops = other.ops;
            if (ops) {
                ops->relocate(buf, other.buf);
                other.ops = nullptr;
            }
        }
        return *this;
    }

    /** Wrap any `void()` invocable (lambda, std::function, ...). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    EventCallback(F &&f) // NOLINT: intentional implicit conversion
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            void *mem = detail::CallbackArena::allocate(sizeof(Fn));
            auto *obj = ::new (mem) Fn(std::forward<F>(f));
            *reinterpret_cast<Fn **>(buf) = obj;
            ops = &pooledOps<Fn>;
        }
    }

    ~EventCallback() { reset(); }

    /** Destroy the held callable, leaving the callback empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    void operator()() { ops->invoke(buf); }

    explicit operator bool() const noexcept { return ops != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct *dst from *src, then destroy *src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *self) { (*static_cast<Fn *>(self))(); },
        [](void *dst, void *src) noexcept {
            auto *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *self) noexcept { static_cast<Fn *>(self)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops pooledOps = {
        [](void *self) { (**static_cast<Fn **>(self))(); },
        [](void *dst, void *src) noexcept {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *self) noexcept {
            Fn *obj = *static_cast<Fn **>(self);
            obj->~Fn();
            detail::CallbackArena::deallocate(obj, sizeof(Fn));
        },
    };

    const Ops *ops = nullptr;
    alignas(std::max_align_t) unsigned char buf[inlineCapacity];
};

} // namespace dimmlink

#endif // DIMMLINK_SIM_EVENT_CALLBACK_HH
