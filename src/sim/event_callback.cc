#include "sim/event_callback.hh"

#include <cstdlib>
#include <vector>

namespace dimmlink {
namespace detail {

namespace {

/**
 * Power-of-two size classes from 64 B to 4 KiB. Captures beyond the
 * largest class (none exist in the simulator today) fall through to
 * operator new.
 */
constexpr std::size_t minClassBytes = 64;
constexpr std::size_t maxClassBytes = 4096;
constexpr unsigned numClasses = 7; // 64,128,256,512,1024,2048,4096

/** Blocks carved per slab refill; slabs are never returned to the OS. */
constexpr std::size_t blocksPerSlab = 64;

struct FreeNode
{
    FreeNode *next;
};

struct Pool
{
    FreeNode *freeList[numClasses] = {};
    // Slab backing storage. Deliberately leaked (no destructor): the
    // parallel kernel allocates callbacks on per-window worker
    // threads, and blocks carved from a worker's slab can still be
    // live in an event queue after that worker exits. Freeing slabs
    // at thread exit would turn those callbacks into dangling
    // pointers; the leak is bounded by each thread's allocation
    // high-water mark.
    std::vector<void *> slabs;
};

Pool &
pool()
{
    // One pool per thread: allocation and the free-list push in
    // deallocate() are single-threaded without locks. Blocks of one
    // size class are interchangeable, so a block allocated on thread
    // A and freed on thread B simply joins B's free list.
    static thread_local Pool p;
    return p;
}

unsigned
classOf(std::size_t bytes)
{
    std::size_t sz = minClassBytes;
    unsigned cls = 0;
    while (sz < bytes) {
        sz <<= 1;
        ++cls;
    }
    return cls;
}

std::size_t
classBytes(unsigned cls)
{
    return minClassBytes << cls;
}

} // namespace

void *
CallbackArena::allocate(std::size_t bytes)
{
    if (bytes > maxClassBytes)
        return ::operator new(bytes);
    const unsigned cls = classOf(bytes);
    Pool &p = pool();
    if (!p.freeList[cls]) {
        // Refill: carve one slab into blocksPerSlab free blocks.
        const std::size_t bsz = classBytes(cls);
        auto *slab = static_cast<unsigned char *>(
            ::operator new(bsz * blocksPerSlab));
        p.slabs.push_back(slab);
        for (std::size_t i = 0; i < blocksPerSlab; ++i) {
            auto *node = reinterpret_cast<FreeNode *>(slab + i * bsz);
            node->next = p.freeList[cls];
            p.freeList[cls] = node;
        }
    }
    FreeNode *node = p.freeList[cls];
    p.freeList[cls] = node->next;
    return node;
}

void
CallbackArena::deallocate(void *ptr, std::size_t bytes) noexcept
{
    if (bytes > maxClassBytes) {
        ::operator delete(ptr);
        return;
    }
    const unsigned cls = classOf(bytes);
    Pool &p = pool();
    auto *node = static_cast<FreeNode *>(ptr);
    node->next = p.freeList[cls];
    p.freeList[cls] = node;
}

} // namespace detail
} // namespace dimmlink
