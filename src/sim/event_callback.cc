#include "sim/event_callback.hh"

#include <cstdlib>
#include <vector>

namespace dimmlink {
namespace detail {

namespace {

/**
 * Power-of-two size classes from 64 B to 4 KiB. Captures beyond the
 * largest class (none exist in the simulator today) fall through to
 * operator new.
 */
constexpr std::size_t minClassBytes = 64;
constexpr std::size_t maxClassBytes = 4096;
constexpr unsigned numClasses = 7; // 64,128,256,512,1024,2048,4096

/** Blocks carved per slab refill; slabs are never returned to the OS. */
constexpr std::size_t blocksPerSlab = 64;

struct FreeNode
{
    FreeNode *next;
};

struct Pool
{
    FreeNode *freeList[numClasses] = {};
    // Slab backing storage, kept alive for the process lifetime.
    std::vector<void *> slabs;

    ~Pool()
    {
        for (void *s : slabs)
            ::operator delete(s);
    }
};

Pool &
pool()
{
    static Pool p;
    return p;
}

unsigned
classOf(std::size_t bytes)
{
    std::size_t sz = minClassBytes;
    unsigned cls = 0;
    while (sz < bytes) {
        sz <<= 1;
        ++cls;
    }
    return cls;
}

std::size_t
classBytes(unsigned cls)
{
    return minClassBytes << cls;
}

} // namespace

void *
CallbackArena::allocate(std::size_t bytes)
{
    if (bytes > maxClassBytes)
        return ::operator new(bytes);
    const unsigned cls = classOf(bytes);
    Pool &p = pool();
    if (!p.freeList[cls]) {
        // Refill: carve one slab into blocksPerSlab free blocks.
        const std::size_t bsz = classBytes(cls);
        auto *slab = static_cast<unsigned char *>(
            ::operator new(bsz * blocksPerSlab));
        p.slabs.push_back(slab);
        for (std::size_t i = 0; i < blocksPerSlab; ++i) {
            auto *node = reinterpret_cast<FreeNode *>(slab + i * bsz);
            node->next = p.freeList[cls];
            p.freeList[cls] = node;
        }
    }
    FreeNode *node = p.freeList[cls];
    p.freeList[cls] = node->next;
    return node;
}

void
CallbackArena::deallocate(void *ptr, std::size_t bytes) noexcept
{
    if (bytes > maxClassBytes) {
        ::operator delete(ptr);
        return;
    }
    const unsigned cls = classOf(bytes);
    Pool &p = pool();
    auto *node = static_cast<FreeNode *>(ptr);
    node->next = p.freeList[cls];
    p.freeList[cls] = node;
}

} // namespace detail
} // namespace dimmlink
