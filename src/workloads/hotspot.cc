/**
 * @file
 * Hotspot: the classic 2D thermal stencil (Table IV). The grid is
 * split into row strips, one per thread; every iteration each thread
 * reads its neighbors' boundary rows — a nearest-neighbor exchange
 * that maps beautifully onto DIMM-Link's adjacent-DIMM links.
 */

#include <cmath>

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class HotspotWorkload : public Workload
{
  public:
    HotspotWorkload(WorkloadParams params_,
                    const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          rows(static_cast<std::uint32_t>(64ull << (p.scale / 2))),
          cols(static_cast<std::uint32_t>(64ull << ((p.scale + 1) / 2))),
          iterations(p.rounds ? std::min(p.rounds, 16u) : 8u)
    {
        // Temperature grids (double buffered) and static power map,
        // placed strip-by-strip with each owner thread.
        tempAddr[0].resize(p.numThreads);
        tempAddr[1].resize(p.numThreads);
        powerAddr.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t strip_bytes =
                static_cast<std::uint64_t>(rEnd(t) - rStart(t)) *
                cols * 4;
            tempAddr[0][t] = alloc.alloc(sliceHome(t), strip_bytes);
            tempAddr[1][t] = alloc.alloc(sliceHome(t), strip_bytes);
            powerAddr[t] = alloc.alloc(sliceHome(t), strip_bytes);
        }

        Rng rng(p.seed);
        power.resize(static_cast<std::size_t>(rows) * cols);
        initTemp.resize(power.size());
        for (auto &v : power)
            v = static_cast<float>(rng.real() * 0.5);
        for (auto &v : initTemp)
            v = static_cast<float>(320.0 + rng.real() * 20.0);
        reset();
    }

    std::string name() const override { return "hotspot"; }

    void
    reset() override
    {
        temp[0] = initTemp;
        temp[1].assign(initTemp.size(), 0.0f);
    }

    bool
    verify() const override
    {
        std::vector<float> a = initTemp;
        std::vector<float> b(a.size(), 0.0f);
        for (unsigned it = 0; it < iterations; ++it) {
            referenceStep(a, b);
            a.swap(b);
        }
        const auto &result = temp[iterations % 2];
        for (std::size_t i = 0; i < a.size(); ++i)
            if (std::abs(a[i] - result[i]) > 1e-3f)
                return false;
        return true;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return static_cast<std::uint64_t>(rows) * cols * 10 *
               iterations;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        // Five line-granular references per 16-cell line.
        return static_cast<std::uint64_t>(rows) * cols * 5 / 16 *
               iterations;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    std::uint32_t rStart(ThreadId t) const
    {
        return static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(rows) * t / p.numThreads);
    }
    std::uint32_t rEnd(ThreadId t) const
    {
        return static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(rows) * (t + 1) /
            p.numThreads);
    }

    float
    cell(const std::vector<float> &g, std::uint32_t r,
         std::uint32_t c) const
    {
        return g[static_cast<std::size_t>(r) * cols + c];
    }

    void
    referenceStep(const std::vector<float> &src,
                  std::vector<float> &dst) const
    {
        for (std::uint32_t r = 0; r < rows; ++r) {
            for (std::uint32_t c = 0; c < cols; ++c) {
                const float up = r > 0 ? cell(src, r - 1, c)
                                       : cell(src, r, c);
                const float down = r + 1 < rows
                                       ? cell(src, r + 1, c)
                                       : cell(src, r, c);
                const float left = c > 0 ? cell(src, r, c - 1)
                                         : cell(src, r, c);
                const float right = c + 1 < cols
                                        ? cell(src, r, c + 1)
                                        : cell(src, r, c);
                const float self = cell(src, r, c);
                const float pwr =
                    power[static_cast<std::size_t>(r) * cols + c];
                dst[static_cast<std::size_t>(r) * cols + c] =
                    self + 0.2f * (up + down + left + right -
                                   4.0f * self) + 0.05f * pwr;
            }
        }
    }

    /** Owner thread of grid row @p r. */
    ThreadId
    ownerOf(std::uint32_t r) const
    {
        unsigned lo = 0, hi = p.numThreads - 1;
        while (lo < hi) {
            const unsigned mid = (lo + hi + 1) / 2;
            if (rStart(mid) <= r)
                lo = mid;
            else
                hi = mid - 1;
        }
        return lo;
    }

    /** Address of row @p r in buffer @p buf. */
    Addr
    rowAddr(unsigned buf, std::uint32_t r) const
    {
        const ThreadId t = ownerOf(r);
        return tempAddr[buf][t] +
               static_cast<Addr>(r - rStart(t)) * cols * 4;
    }

    OpStream
    run(ThreadId tid)
    {
        const std::uint32_t rs = rStart(tid);
        const std::uint32_t re = rEnd(tid);
        const std::uint32_t row_lines = cols * 4 / 64;

        for (unsigned it = 0; it < iterations; ++it) {
            const unsigned src = it % 2;
            const unsigned dst = 1 - src;
            const auto &sg = temp[src];
            auto &dg = temp[dst];

            for (std::uint32_t r = rs; r < re; ++r) {
                std::vector<MemRef> batch;
                // Boundary rows owned by neighbor threads are shared
                // read-write (they change every iteration); interior
                // rows are private.
                const bool top_remote = r == rs && r > 0;
                const bool bot_remote = r == re - 1 && r + 1 < rows;
                for (std::uint32_t l = 0; l < row_lines; ++l) {
                    const Addr off = static_cast<Addr>(l) * 64;
                    if (r > 0)
                        batch.push_back(MemRef{
                            rowAddr(src, r - 1) + off, 64, false,
                            top_remote ? DataClass::SharedRO
                                       : DataClass::Private});
                    batch.push_back(MemRef{rowAddr(src, r) + off,
                                           64, false,
                                           DataClass::Private});
                    if (r + 1 < rows)
                        batch.push_back(MemRef{
                            rowAddr(src, r + 1) + off, 64, false,
                            bot_remote ? DataClass::SharedRO
                                       : DataClass::Private});
                    batch.push_back(MemRef{
                        powerAddr[tid] +
                            static_cast<Addr>(r - rs) * cols * 4 +
                            off,
                        64, false, DataClass::Private});
                    batch.push_back(MemRef{rowAddr(dst, r) + off,
                                           64, true,
                                           DataClass::Private});
                    if (batch.size() >= 32) {
                        co_yield Op::compute(16 * 10);
                        co_yield Op::mem(std::move(batch));
                        batch.clear();
                    }
                }
                // Functional row update.
                for (std::uint32_t c = 0; c < cols; ++c) {
                    const float up = r > 0 ? cell(sg, r - 1, c)
                                           : cell(sg, r, c);
                    const float down = r + 1 < rows
                                           ? cell(sg, r + 1, c)
                                           : cell(sg, r, c);
                    const float left = c > 0 ? cell(sg, r, c - 1)
                                             : cell(sg, r, c);
                    const float right = c + 1 < cols
                                            ? cell(sg, r, c + 1)
                                            : cell(sg, r, c);
                    const float self = cell(sg, r, c);
                    const float pwr =
                        power[static_cast<std::size_t>(r) * cols +
                              c];
                    dg[static_cast<std::size_t>(r) * cols + c] =
                        self + 0.2f * (up + down + left + right -
                                       4.0f * self) + 0.05f * pwr;
                }
                if (!batch.empty()) {
                    co_yield Op::compute(16 * 10);
                    co_yield Op::mem(std::move(batch));
                }
            }
            co_yield Op::barrier();
        }
    }

    std::uint32_t rows;
    std::uint32_t cols;
    unsigned iterations;
    std::vector<float> power;
    std::vector<float> initTemp;
    std::vector<float> temp[2];
    std::vector<Addr> tempAddr[2];
    std::vector<Addr> powerAddr;
};

WorkloadFactory::Registrar reg("hotspot",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<HotspotWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
