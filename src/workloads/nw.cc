/**
 * @file
 * Needleman-Wunsch global sequence alignment (Table IV). The DP
 * matrix is split into row strips (one per thread) and processed in
 * column blocks along anti-diagonal wavefronts: before computing
 * block (t, j), thread t reads the bottom boundary row of block
 * (t-1, j) from its neighbor's DIMM — a pipeline-shaped dependence
 * pattern whose forwarding cost dominates on CPU-forwarding fabrics.
 */

#include <algorithm>

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class NwWorkload : public Workload
{
  public:
    static constexpr int matchScore = 2;
    static constexpr int mismatchScore = -1;
    static constexpr int gapPenalty = -2;

    NwWorkload(WorkloadParams params_,
               const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          len(static_cast<std::uint32_t>(256ull << (p.scale / 2))),
          blockCols(64)
    {
        Rng rng(p.seed);
        seqA.resize(len);
        seqB.resize(len);
        for (auto &ch : seqA)
            ch = static_cast<char>('A' + rng.below(4));
        for (auto &ch : seqB)
            ch = static_cast<char>('A' + rng.below(4));

        // Strip r-ranges over the (len+1) x (len+1) DP matrix rows
        // 1..len; row 0 is the constant gap row.
        stripAddr.resize(p.numThreads);
        boundaryAddr.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t strip_rows = rEnd(t) - rStart(t);
            stripAddr[t] = alloc.alloc(
                sliceHome(t),
                strip_rows * (static_cast<std::uint64_t>(len) + 1) *
                    4);
            // The strip's bottom row, published for the next thread.
            boundaryAddr[t] = alloc.alloc(
                sliceHome(t),
                (static_cast<std::uint64_t>(len) + 1) * 4);
        }
        reset();
    }

    std::string name() const override { return "nw"; }

    void
    reset() override
    {
        score.assign(
            (static_cast<std::size_t>(len) + 1) * (len + 1), 0);
        for (std::uint32_t i = 0; i <= len; ++i) {
            at(i, 0) = static_cast<int>(i) * gapPenalty;
            at(0, i) = static_cast<int>(i) * gapPenalty;
        }
    }

    bool
    verify() const override
    {
        std::vector<int> ref(
            (static_cast<std::size_t>(len) + 1) * (len + 1), 0);
        auto rat = [&](std::uint32_t r, std::uint32_t c) -> int & {
            return ref[static_cast<std::size_t>(r) * (len + 1) + c];
        };
        for (std::uint32_t i = 0; i <= len; ++i) {
            rat(i, 0) = static_cast<int>(i) * gapPenalty;
            rat(0, i) = static_cast<int>(i) * gapPenalty;
        }
        for (std::uint32_t r = 1; r <= len; ++r)
            for (std::uint32_t c = 1; c <= len; ++c)
                rat(r, c) = cellScore(rat(r - 1, c - 1),
                                      rat(r - 1, c), rat(r, c - 1),
                                      r, c);
        return ref == score;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return static_cast<std::uint64_t>(len) * len * 8;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return static_cast<std::uint64_t>(len) * len / 8;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    std::uint32_t rStart(ThreadId t) const
    {
        return 1 + static_cast<std::uint32_t>(
                       static_cast<std::uint64_t>(len) * t /
                       p.numThreads);
    }
    std::uint32_t rEnd(ThreadId t) const
    {
        return 1 + static_cast<std::uint32_t>(
                       static_cast<std::uint64_t>(len) * (t + 1) /
                       p.numThreads);
    }

    int &
    at(std::uint32_t r, std::uint32_t c)
    {
        return score[static_cast<std::size_t>(r) * (len + 1) + c];
    }
    int
    at(std::uint32_t r, std::uint32_t c) const
    {
        return score[static_cast<std::size_t>(r) * (len + 1) + c];
    }

    int
    cellScore(int diag, int up, int left, std::uint32_t r,
              std::uint32_t c) const
    {
        const int match = seqA[r - 1] == seqB[c - 1] ? matchScore
                                                     : mismatchScore;
        return std::max({diag + match, up + gapPenalty,
                         left + gapPenalty});
    }

    OpStream
    run(ThreadId tid)
    {
        const std::uint32_t rs = rStart(tid);
        const std::uint32_t re = rEnd(tid);
        const std::uint32_t num_blocks =
            (len + blockCols - 1) / blockCols;
        const unsigned t_cnt = p.numThreads;

        // Wavefront steps: thread t computes block j at step t + j.
        for (std::uint32_t step = 0;
             step < t_cnt + num_blocks - 1; ++step) {
            if (step >= tid && step - tid < num_blocks) {
                const std::uint32_t j = step - tid;
                const std::uint32_t cs = 1 + j * blockCols;
                const std::uint32_t ce =
                    std::min(len + 1, cs + blockCols);

                std::vector<MemRef> batch;
                // Read the upper boundary row segment published by
                // thread tid-1 (remote when strips straddle DIMMs).
                if (tid > 0) {
                    // The neighbor's boundary row was published a
                    // wavefront step earlier; read-only here.
                    for (std::uint32_t c = cs - 1; c < ce;
                         c += 16)
                        batch.push_back(MemRef{
                            boundaryAddr[tid - 1] +
                                static_cast<Addr>(c) * 4,
                            64, false, DataClass::SharedRO});
                }
                co_yield Op::mem(std::move(batch), true);
                batch.clear();

                // Compute the block, streaming strip rows locally.
                std::uint64_t instr = 0;
                for (std::uint32_t r = rs; r < re; ++r) {
                    for (std::uint32_t c = cs; c < ce; ++c) {
                        at(r, c) = cellScore(at(r - 1, c - 1),
                                             at(r - 1, c),
                                             at(r, c - 1), r, c);
                        instr += 8;
                    }
                    for (std::uint32_t c = cs; c < ce; c += 16) {
                        batch.push_back(MemRef{
                            stripAddr[tid] +
                                (static_cast<Addr>(r - rs) *
                                     (len + 1) +
                                 c) * 4,
                            64, true, DataClass::Private});
                        batch.push_back(MemRef{
                            stripAddr[tid] +
                                (static_cast<Addr>(r - rs) *
                                     (len + 1) +
                                 c) * 4,
                            64, false, DataClass::Private});
                    }
                    if (batch.size() >= 32) {
                        co_yield Op::compute(instr);
                        instr = 0;
                        co_yield Op::mem(std::move(batch));
                        batch.clear();
                    }
                }
                // Publish the bottom row segment of this block.
                for (std::uint32_t c = cs; c < ce; c += 16)
                    batch.push_back(MemRef{
                        boundaryAddr[tid] + static_cast<Addr>(c) * 4,
                        64, true, DataClass::SharedRW});
                co_yield Op::compute(instr);
                co_yield Op::mem(std::move(batch), true);
            }
            co_yield Op::barrier();
        }
    }

    std::uint32_t len;
    std::uint32_t blockCols;
    std::vector<char> seqA;
    std::vector<char> seqB;
    std::vector<int> score;
    std::vector<Addr> stripAddr;
    std::vector<Addr> boundaryAddr;
};

WorkloadFactory::Registrar reg("nw",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<NwWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
