/**
 * @file
 * PageRank (Table IV; Fig. 10 and Fig. 12). Two phases per iteration:
 * owners publish contrib[v] = damping * rank[v] / deg[v], then every
 * thread pulls the contributions of its vertices' in-neighbors. In
 * broadcast mode each DIMM broadcasts its slice's contributions once
 * per iteration (the ABC-DIMM-style pattern) and the pull phase reads
 * a local copy instead of reaching across DIMMs.
 */

#include <cmath>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class PagerankWorkload : public Workload
{
  public:
    static constexpr double damping = 0.85;

    PagerankWorkload(WorkloadParams params_,
                     const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          graph(Graph::rmat(static_cast<unsigned>(p.scale), 8,
                            p.seed)),
          // Arrays: 0 = rank, 1 = contrib, 2 = next rank.
          slices(graph, p, alloc, /*prop_arrays=*/3, /*bytes=*/8),
          iterations(p.rounds ? std::min(p.rounds, 8u) : 5u)
    {
        // Broadcast mode: a per-DIMM local copy of the full contrib
        // vector, refreshed by the explicit broadcasts.
        if (p.broadcastMode) {
            localCopy.resize(p.numDimms);
            for (unsigned d = 0; d < p.numDimms; ++d)
                localCopy[d] = alloc.alloc(
                    static_cast<DimmId>(d),
                    static_cast<std::uint64_t>(graph.numVertices()) *
                        8);
        }
        reset();
    }

    std::string name() const override { return "pagerank"; }

    void
    reset() override
    {
        const std::uint32_t n = graph.numVertices();
        rank.assign(n, 1.0 / n);
        contrib.assign(n, 0.0);
        next.assign(n, 0.0);
    }

    bool
    verify() const override
    {
        const auto ref = graph.pagerankReference(iterations, damping);
        for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
            if (std::abs(ref[v] - rank[v]) > 1e-9)
                return false;
        return true;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return (graph.numEdges() * 3 + graph.numVertices() * 10) *
               iterations;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return (graph.numEdges() + graph.numVertices() * 3) *
               iterations;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    OpStream
    run(ThreadId tid)
    {
        const std::uint32_t vs = slices.vStart(tid);
        const std::uint32_t ve = slices.vEnd(tid);
        const std::uint32_t n = graph.numVertices();
        const DimmId home = sliceHome(tid);
        const bool dimm_leader =
            tid == 0 || sliceHome(tid - 1) != home;

        for (unsigned it = 0; it < iterations; ++it) {
            // Phase 1: publish contributions (all local traffic).
            {
                std::vector<MemRef> batch;
                std::uint64_t instr = 0;
                for (std::uint32_t v = vs; v < ve; ++v) {
                    const std::uint32_t deg = graph.degree(v);
                    contrib[v] =
                        deg ? damping * rank[v] / deg : 0.0;
                    // Own-slice streams are line-granular (8
                    // elements per 64-byte line).
                    if ((v - vs) % 8 == 0) {
                        batch.push_back(
                            MemRef{slices.propAddr(0, v), 64,
                                   false, DataClass::Private});
                        batch.push_back(
                            MemRef{slices.propAddr(1, v), 64,
                                   true, DataClass::SharedRW});
                    }
                    instr += 4;
                    if (batch.size() >= 32) {
                        co_yield Op::compute(instr);
                        instr = 0;
                        co_yield Op::mem(std::move(batch));
                        batch.clear();
                    }
                }
                if (!batch.empty()) {
                    co_yield Op::compute(instr);
                    co_yield Op::mem(std::move(batch));
                }
            }
            co_yield Op::barrier();

            // Broadcast mode: each DIMM's leader thread broadcasts
            // the DIMM's freshly published contrib block.
            if (p.broadcastMode) {
                if (dimm_leader) {
                    // The DIMM's contrib block spans this DIMM's
                    // slices; broadcast it in one explicit call.
                    const std::uint64_t bytes = dimmContribBytes(home);
                    co_yield Op::broadcast(slices.propAddr(1, vs),
                                           bytes);
                }
                co_yield Op::barrier();
            }

            // Phase 2: pull neighbor contributions.
            {
                std::vector<MemRef> batch;
                std::uint64_t instr = 0;
                for (std::uint32_t v = vs; v < ve; ++v) {
                    double sum = (1.0 - damping) / n;
                    const std::uint64_t eb = graph.edgeBegin(v);
                    const std::uint64_t ee = graph.edgeEnd(v);
                    for (std::uint64_t e = eb; e < ee; e += 8)
                        batch.push_back(
                            MemRef{slices.edgeAddr(tid, e), 64,
                                   false, DataClass::Private});
                    for (std::uint64_t e = eb; e < ee; ++e) {
                        const std::uint32_t u = graph.neighbor(e);
                        sum += contrib[u];
                        instr += 2;
                        if (p.broadcastMode) {
                            // Local copy refreshed by the broadcast.
                            batch.push_back(MemRef{
                                localCopy[home] +
                                    static_cast<Addr>(u) * 8,
                                8, false, DataClass::Private});
                        } else {
                            // contrib is read-only during the pull
                            // phase: shared-RO (cacheable until the
                            // next barrier's invalidation).
                            batch.push_back(
                                MemRef{slices.propAddr(1, u), 8,
                                       false, DataClass::SharedRO});
                        }
                        if (batch.size() >= 32) {
                            co_yield Op::compute(instr);
                            instr = 0;
                            co_yield Op::mem(std::move(batch));
                            batch.clear();
                        }
                    }
                    next[v] = sum;
                    if ((v - vs) % 8 == 0)
                        batch.push_back(
                            MemRef{slices.propAddr(2, v), 64, true,
                                   DataClass::Private});
                }
                if (!batch.empty()) {
                    co_yield Op::compute(instr);
                    co_yield Op::mem(std::move(batch));
                }
            }
            co_yield Op::barrier();

            // Swap rank <- next for the owned slice; thread 0 swaps
            // the functional arrays after everyone is done.
            for (std::uint32_t v = vs; v < ve; ++v)
                rank[v] = next[v];
            co_yield Op::barrier();
        }
    }

    /** Bytes of the contrib block owned by DIMM @p d. */
    std::uint64_t
    dimmContribBytes(DimmId d) const
    {
        std::uint64_t verts = 0;
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const DimmId home = static_cast<DimmId>(
                static_cast<std::uint64_t>(t) * p.numDimms /
                p.numThreads);
            if (home == d)
                verts += slices.vEnd(t) - slices.vStart(t);
        }
        return verts * 8;
    }

    Graph graph;
    GraphSlices slices;
    unsigned iterations;
    std::vector<double> rank;
    std::vector<double> contrib;
    std::vector<double> next;
    std::vector<Addr> localCopy;
};

WorkloadFactory::Registrar reg("pagerank",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<PagerankWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
