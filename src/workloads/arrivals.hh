/**
 * @file
 * Load-generation primitives for the serving frontend
 * (docs/serving.md): a deterministic Poisson arrival process with
 * optional bursty phases, and a YCSB-style Zipfian popularity
 * sampler. Both are pure functions of their seeds, so a serving plan
 * built from them is byte-identical across runs and kernels.
 */

#ifndef DIMMLINK_WORKLOADS_ARRIVALS_HH
#define DIMMLINK_WORKLOADS_ARRIVALS_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"

namespace dimmlink {
namespace workloads {

/**
 * An open-loop arrival process: Poisson at @p offered_qps, optionally
 * modulated by periodic bursty phases during which the instantaneous
 * rate is multiplied by burst_factor (Lewis-Shedler thinning against
 * the burst-phase maximum keeps the draw exact). Arrival ticks are
 * strictly increasing and relative to an arbitrary origin (the
 * serving kernel treats them as offsets from its start).
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(double offered_qps, std::uint64_t seed,
                   double burst_factor = 1.0, Tick burst_period_ps = 0,
                   Tick burst_len_ps = 0);

    /** The next arrival tick (strictly after the previous one). */
    Tick next();

    /** Is @p t inside a burst phase? */
    bool inBurst(Tick t) const;

  private:
    Rng rng;
    double ratePerPs;
    double burstFactor;
    Tick periodPs;
    Tick lenPs;
    Tick t_ = 0;
};

/**
 * YCSB-style Zipfian sampler over ranks [0, n): rank 0 is the hottest
 * key, P(rank i) proportional to 1 / (i+1)^theta. theta = 0 degrades
 * to uniform. O(n) zeta precomputation at construction, O(1) per
 * sample (Gray et al., "Quickly generating billion-record synthetic
 * databases").
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw a popularity rank using the caller's stream. */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t n() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_ = 0;
    double alpha_ = 0;
    double eta_ = 0;
    double halfPow_ = 0;
};

/** SplitMix64 finalizer: scatters popularity ranks over the keyspace
 * so hot keys spread across DIMMs ("scrambled Zipfian"). */
inline std::uint64_t
scatterHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace workloads
} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_ARRIVALS_HH
