/**
 * @file
 * STREAM-triad microworkload: a[i] = b[i] + s * c[i] over
 * thread-private, block-distributed arrays. Entirely local and
 * bandwidth-bound — it validates the rank-parallel local-memory path
 * (the aggregate-NMP-bandwidth side of Fig. 1) and gives the fabrics
 * a lower bound where IDC plays no role.
 */

#include <cmath>

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class StreamWorkload : public Workload
{
  public:
    StreamWorkload(WorkloadParams params_,
                   const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          elems(16384ull << p.scale),
          iterations(p.rounds ? p.rounds : 4u),
          scalar(3.0)
    {
        aAddr.resize(p.numThreads);
        bAddr.resize(p.numThreads);
        cAddr.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t n = end(t) - start(t);
            aAddr[t] = alloc.alloc(sliceHome(t), n * 8);
            bAddr[t] = alloc.alloc(sliceHome(t), n * 8);
            cAddr[t] = alloc.alloc(sliceHome(t), n * 8);
        }
        Rng rng(p.seed);
        b.resize(elems);
        c.resize(elems);
        for (std::uint64_t i = 0; i < elems; ++i) {
            b[i] = rng.real();
            c[i] = rng.real();
        }
        reset();
    }

    std::string name() const override { return "stream"; }

    void reset() override { a.assign(elems, 0.0); }

    bool
    verify() const override
    {
        for (std::uint64_t i = 0; i < elems; ++i)
            if (std::abs(a[i] - (b[i] + scalar * c[i])) > 1e-12)
                return false;
        return true;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return elems * 2 * iterations;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return elems * 3 / 8 * iterations;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

    /** Bytes the kernel moves (for bandwidth reporting). */
    std::uint64_t
    bytesMoved() const
    {
        return elems * 3 * 8 * iterations;
    }

  private:
    std::uint64_t start(ThreadId t) const
    {
        return elems * t / p.numThreads;
    }
    std::uint64_t end(ThreadId t) const
    {
        return elems * (t + 1) / p.numThreads;
    }

    OpStream
    run(ThreadId tid)
    {
        const std::uint64_t s = start(tid);
        const std::uint64_t e = end(tid);

        for (unsigned it = 0; it < iterations; ++it) {
            std::vector<MemRef> batch;
            std::uint64_t instr = 0;
            for (std::uint64_t i = s; i < e; ++i) {
                a[i] = b[i] + scalar * c[i];
                instr += 2;
                // Streams touch one new line of each array per 8
                // elements.
                if ((i - s) % 8 == 0) {
                    const Addr off = (i - s) * 8;
                    batch.push_back(MemRef{bAddr[tid] + off, 64,
                                           false,
                                           DataClass::Private});
                    batch.push_back(MemRef{cAddr[tid] + off, 64,
                                           false,
                                           DataClass::Private});
                    batch.push_back(MemRef{aAddr[tid] + off, 64,
                                           true,
                                           DataClass::Private});
                }
                if (batch.size() >= 32) {
                    co_yield Op::compute(instr);
                    instr = 0;
                    co_yield Op::mem(std::move(batch));
                    batch.clear();
                }
            }
            if (!batch.empty()) {
                co_yield Op::compute(instr);
                co_yield Op::mem(std::move(batch));
                batch.clear();
            }
            co_yield Op::barrier();
        }
    }

    std::uint64_t elems;
    unsigned iterations;
    double scalar;
    std::vector<double> a, b, c;
    std::vector<Addr> aAddr, bAddr, cAddr;
};

WorkloadFactory::Registrar reg("stream",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<StreamWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
