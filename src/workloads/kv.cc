/**
 * @file
 * Key-value serving workload (docs/serving.md): GET/PUT requests over
 * a value store block-partitioned across the DIMMs. Keys follow the
 * Zipfian popularity of serve.zipfTheta, so hot keys concentrate on a
 * few home DIMMs and most requests touch a foreign value -- the
 * request-level analogue of the random-access microbenchmarks. PUTs
 * XOR a deterministic mix into the value so concurrent functional
 * updates commute with the precomputed reference.
 */

#include <algorithm>

#include "workloads/arrivals.hh"
#include "workloads/op_stream.hh"
#include "workloads/serving.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class KvWorkload : public Workload
{
  public:
    KvWorkload(WorkloadParams params_,
               const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          keys(p.serve.keys),
          valueBytes(p.serve.valueBytes),
          perDimm((keys + p.numDimms - 1) / p.numDimms),
          plans(serving::buildPlans(p.serve, p.numThreads, 1))
    {
        blockAddr.resize(p.numDimms);
        for (unsigned d = 0; d < p.numDimms; ++d)
            blockAddr[d] = alloc.alloc(static_cast<DimmId>(d),
                                       perDimm * valueBytes);
        // Hedged GETs read a replica of each value block living on a
        // far DIMM (docs/serving.md). Allocated after the primary
        // blocks, and only when hedging is on, so every primary
        // address -- and every non-hedging run -- is unchanged.
        if (p.serve.hedgeAfterUs > 0) {
            replicaAddr_.resize(p.numDimms);
            for (unsigned d = 0; d < p.numDimms; ++d)
                replicaAddr_[d] = alloc.alloc(static_cast<DimmId>(d),
                                              perDimm * valueBytes);
        }
        reset();
    }

    std::string name() const override { return "kv"; }

    void
    reset() override
    {
        store.assign(keys, 0);
        expected.assign(keys, 0);
        // Replay every planned PUT into the reference; XOR updates
        // commute, so the concurrent run matches in any order.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const auto &plan = plans[t];
            for (std::size_t i = 0; i < plan.reqs.size(); ++i)
                if (!plan.reqs[i].isGet)
                    expected[plan.keys[i]] ^=
                        putMix(plan.keys[i], t, i);
        }
    }

    bool
    verify() const override
    {
        return store == expected;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return p.serve.requests * 32;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return p.serve.requests * refsPerValue();
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    static std::uint64_t
    putMix(std::uint64_t key, unsigned tid, std::uint64_t i)
    {
        return scatterHash(key ^
                           (static_cast<std::uint64_t>(tid) << 40) ^
                           (i * 0x9e3779b9ull));
    }

    std::uint64_t
    refsPerValue() const
    {
        return (valueBytes + 63) / 64;
    }

    DimmId
    keyDimm(std::uint64_t key) const
    {
        return static_cast<DimmId>(
            std::min<std::uint64_t>(key / perDimm, p.numDimms - 1));
    }

    Addr
    keyAddr(std::uint64_t key) const
    {
        const DimmId d = keyDimm(key);
        const std::uint64_t off =
            key - static_cast<std::uint64_t>(d) * perDimm;
        return blockAddr[d] + off * valueBytes;
    }

    /** The key's replica slot: same offset, on a DIMM half the pool
     * away so the hedge usually takes an independent route. */
    Addr
    keyReplicaAddr(std::uint64_t key) const
    {
        const DimmId d = keyDimm(key);
        const std::uint64_t off =
            key - static_cast<std::uint64_t>(d) * perDimm;
        const auto rd = static_cast<DimmId>(
            (static_cast<unsigned>(d) +
             std::max(1u, p.numDimms / 2)) % p.numDimms);
        return replicaAddr_[rd] + off * valueBytes;
    }

    std::vector<MemRef>
    valueRefs(Addr base, bool is_write) const
    {
        std::vector<MemRef> refs;
        for (std::uint32_t off = 0; off < valueBytes; off += 64) {
            const auto chunk = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(64, valueBytes - off));
            refs.push_back(MemRef{base + off, chunk, is_write,
                                  DataClass::SharedRW});
        }
        return refs;
    }

    OpStream
    run(ThreadId tid)
    {
        const auto &plan = plans[tid];
        const bool open = p.serve.mode == "open";
        const bool rel = p.serve.relEnabled();
        const bool hedge = p.serve.hedgeAfterUs > 0;
        for (std::size_t i = 0; i < plan.reqs.size(); ++i) {
            const serving::Request &req = plan.reqs[i];
            const std::uint64_t key = plan.keys[i];
            if (rel)
                co_yield Op::reqStartServe(
                    open ? req.arrivalPs : Op::reqNow,
                    req.shedAfterPs,
                    static_cast<std::int32_t>(keyDimm(key)));
            else
                co_yield open ? Op::reqStart(req.arrivalPs)
                              : Op::reqStartNow();
            // Hash the key and dispatch to the value's home.
            co_yield Op::compute(16);
            if (!req.isGet)
                store[key] ^= putMix(key, tid, i);
            // Only GETs hedge: duplicating a PUT would double-apply
            // the update when both sides land.
            if (hedge && req.isGet)
                co_yield Op::memHedged(
                    valueRefs(keyAddr(key), false),
                    valueRefs(keyReplicaAddr(key), false));
            else
                co_yield Op::mem(valueRefs(keyAddr(key), !req.isGet));
            // Format the response; reqEnd drains the value refs.
            co_yield Op::compute(16);
            co_yield Op::reqEnd();
        }
        co_yield Op::barrier();
    }

    std::uint64_t keys;
    std::uint32_t valueBytes;
    std::uint64_t perDimm;
    std::vector<serving::ThreadPlan> plans;
    std::vector<std::uint64_t> store;
    std::vector<std::uint64_t> expected;
    std::vector<Addr> blockAddr;
    std::vector<Addr> replicaAddr_; ///< Empty unless hedging is on.
};

WorkloadFactory::Registrar reg("kv",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<KvWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
