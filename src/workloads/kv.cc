/**
 * @file
 * Key-value serving workload (docs/serving.md): GET/PUT requests over
 * a value store block-partitioned across the DIMMs. Keys follow the
 * Zipfian popularity of serve.zipfTheta, so hot keys concentrate on a
 * few home DIMMs and most requests touch a foreign value -- the
 * request-level analogue of the random-access microbenchmarks. PUTs
 * XOR a deterministic mix into the value so concurrent functional
 * updates commute with the precomputed reference.
 */

#include <algorithm>

#include "workloads/arrivals.hh"
#include "workloads/op_stream.hh"
#include "workloads/serving.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class KvWorkload : public Workload
{
  public:
    KvWorkload(WorkloadParams params_,
               const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          keys(p.serve.keys),
          valueBytes(p.serve.valueBytes),
          perDimm((keys + p.numDimms - 1) / p.numDimms),
          plans(serving::buildPlans(p.serve, p.numThreads, 1))
    {
        blockAddr.resize(p.numDimms);
        for (unsigned d = 0; d < p.numDimms; ++d)
            blockAddr[d] = alloc.alloc(static_cast<DimmId>(d),
                                       perDimm * valueBytes);
        reset();
    }

    std::string name() const override { return "kv"; }

    void
    reset() override
    {
        store.assign(keys, 0);
        expected.assign(keys, 0);
        // Replay every planned PUT into the reference; XOR updates
        // commute, so the concurrent run matches in any order.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const auto &plan = plans[t];
            for (std::size_t i = 0; i < plan.reqs.size(); ++i)
                if (!plan.reqs[i].isGet)
                    expected[plan.keys[i]] ^=
                        putMix(plan.keys[i], t, i);
        }
    }

    bool
    verify() const override
    {
        return store == expected;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return p.serve.requests * 32;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return p.serve.requests * refsPerValue();
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    static std::uint64_t
    putMix(std::uint64_t key, unsigned tid, std::uint64_t i)
    {
        return scatterHash(key ^
                           (static_cast<std::uint64_t>(tid) << 40) ^
                           (i * 0x9e3779b9ull));
    }

    std::uint64_t
    refsPerValue() const
    {
        return (valueBytes + 63) / 64;
    }

    Addr
    keyAddr(std::uint64_t key) const
    {
        const auto d = static_cast<DimmId>(
            std::min<std::uint64_t>(key / perDimm, p.numDimms - 1));
        const std::uint64_t off =
            key - static_cast<std::uint64_t>(d) * perDimm;
        return blockAddr[d] + off * valueBytes;
    }

    OpStream
    run(ThreadId tid)
    {
        const auto &plan = plans[tid];
        const bool open = p.serve.mode == "open";
        for (std::size_t i = 0; i < plan.reqs.size(); ++i) {
            const serving::Request &req = plan.reqs[i];
            const std::uint64_t key = plan.keys[i];
            co_yield open ? Op::reqStart(req.arrivalPs)
                          : Op::reqStartNow();
            // Hash the key and dispatch to the value's home.
            co_yield Op::compute(16);
            if (!req.isGet)
                store[key] ^= putMix(key, tid, i);
            std::vector<MemRef> refs;
            const Addr base = keyAddr(key);
            for (std::uint32_t off = 0; off < valueBytes;
                 off += 64) {
                const auto chunk = static_cast<std::uint16_t>(
                    std::min<std::uint32_t>(64, valueBytes - off));
                refs.push_back(MemRef{base + off, chunk,
                                      !req.isGet,
                                      DataClass::SharedRW});
            }
            co_yield Op::mem(std::move(refs));
            // Format the response; reqEnd drains the value refs.
            co_yield Op::compute(16);
            co_yield Op::reqEnd();
        }
        co_yield Op::barrier();
    }

    std::uint64_t keys;
    std::uint32_t valueBytes;
    std::uint64_t perDimm;
    std::vector<serving::ThreadPlan> plans;
    std::vector<std::uint64_t> store;
    std::vector<std::uint64_t> expected;
    std::vector<Addr> blockAddr;
};

WorkloadFactory::Registrar reg("kv",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<KvWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
