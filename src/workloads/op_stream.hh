/**
 * @file
 * A C++20 coroutine generator of Ops. Workload kernels are written as
 * straight-line algorithms that co_yield Compute/Mem/Barrier ops; the
 * adapter exposes them through the ThreadProgram interface the NMP
 * cores consume.
 */

#ifndef DIMMLINK_WORKLOADS_OP_STREAM_HH
#define DIMMLINK_WORKLOADS_OP_STREAM_HH

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>

#include "dimm/op.hh"

namespace dimmlink {

class OpStream
{
  public:
    struct promise_type
    {
        Op value;

        OpStream
        get_return_object()
        {
            return OpStream(std::coroutine_handle<
                            promise_type>::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        std::suspend_always
        yield_value(Op op) noexcept
        {
            value = std::move(op);
            return {};
        }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    OpStream() = default;
    explicit OpStream(std::coroutine_handle<promise_type> h)
        : handle(h)
    {}
    OpStream(OpStream &&o) noexcept
        : handle(std::exchange(o.handle, nullptr))
    {}
    OpStream &
    operator=(OpStream &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle = std::exchange(o.handle, nullptr);
        }
        return *this;
    }
    OpStream(const OpStream &) = delete;
    OpStream &operator=(const OpStream &) = delete;
    ~OpStream() { destroy(); }

    /** Produce the next op; Done forever once the coroutine ends. */
    Op
    next()
    {
        if (!handle || handle.done())
            return Op::done();
        handle.resume();
        if (handle.done())
            return Op::done();
        return std::move(handle.promise().value);
    }

  private:
    void
    destroy()
    {
        if (handle)
            handle.destroy();
        handle = nullptr;
    }

    std::coroutine_handle<promise_type> handle = nullptr;
};

/** ThreadProgram adapter over an OpStream. */
class CoroProgram : public ThreadProgram
{
  public:
    explicit CoroProgram(OpStream s) : stream(std::move(s)) {}

    Op next() override { return stream.next(); }

  private:
    OpStream stream;
};

/** Convenience: wrap a coroutine into a heap ThreadProgram. */
inline std::unique_ptr<ThreadProgram>
makeProgram(OpStream s)
{
    return std::make_unique<CoroProgram>(std::move(s));
}

} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_OP_STREAM_HH
