/**
 * @file
 * Shared data layout for the graph kernels: vertices are divided into
 * T contiguous thread slices; each slice's property arrays and edge
 * lists live on the slice's home DIMM (block distribution). Threads
 * therefore read their own slice locally and reach into other DIMMs
 * for neighbor properties — the access pattern whose cost the IDC
 * fabrics differ on.
 */

#ifndef DIMMLINK_WORKLOADS_GRAPH_LAYOUT_HH
#define DIMMLINK_WORKLOADS_GRAPH_LAYOUT_HH

#include <vector>

#include "workloads/graph.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

class GraphSlices
{
  public:
    /**
     * @param prop_arrays number of per-vertex property arrays to
     *        place (e.g. dist, rank, contrib).
     * @param prop_bytes  bytes per property element.
     */
    GraphSlices(const Graph &g, const WorkloadParams &p,
                AddressAllocator &alloc, unsigned prop_arrays,
                unsigned prop_bytes = 4)
        : graph(g), params(p), propBytes(prop_bytes)
    {
        const std::uint32_t v_cnt = g.numVertices();
        const unsigned t_cnt = p.numThreads;
        // Edge-balanced contiguous slices: skewed degree
        // distributions (R-MAT hubs) would otherwise concentrate
        // most of the work in slice 0 and serialize every
        // barrier-synchronized kernel on one thread.
        bounds.resize(t_cnt + 1);
        bounds[0] = 0;
        bounds[t_cnt] = v_cnt;
        const std::uint64_t e_cnt = g.numEdges();
        std::uint32_t v = 0;
        for (unsigned t = 1; t < t_cnt; ++t) {
            const std::uint64_t target = e_cnt * t / t_cnt;
            while (v < v_cnt && g.edgeBegin(v) < target)
                ++v;
            // Keep at least one vertex per remaining slice when the
            // graph is tiny.
            const std::uint32_t max_start = v_cnt - (t_cnt - t);
            bounds[t] = std::min(std::max(v, bounds[t - 1]),
                                 std::min(max_start,
                                          v_cnt));
            bounds[t] = std::max(bounds[t], bounds[t - 1]);
            v = bounds[t];
        }

        propBase.assign(prop_arrays, std::vector<Addr>(t_cnt, 0));
        edgeBase.assign(t_cnt, 0);
        for (unsigned t = 0; t < t_cnt; ++t) {
            const DimmId home = static_cast<DimmId>(
                static_cast<std::uint64_t>(t) * p.numDimms / t_cnt);
            const std::uint32_t verts = bounds[t + 1] - bounds[t];
            for (unsigned a = 0; a < prop_arrays; ++a)
                propBase[a][t] = alloc.alloc(
                    home, static_cast<std::uint64_t>(verts) *
                              prop_bytes);
            const std::uint64_t edges =
                g.edgeBegin(bounds[t + 1]) - g.edgeBegin(bounds[t]);
            edgeBase[t] = alloc.alloc(home, edges * 8);
        }
    }

    std::uint32_t vStart(ThreadId t) const { return bounds[t]; }
    std::uint32_t vEnd(ThreadId t) const { return bounds[t + 1]; }

    /** The thread slice that owns vertex @p v. */
    ThreadId
    sliceOf(std::uint32_t v) const
    {
        // bounds is sorted; find the last start <= v.
        unsigned lo = 0, hi = params.numThreads - 1;
        while (lo < hi) {
            const unsigned mid = (lo + hi + 1) / 2;
            if (bounds[mid] <= v)
                lo = mid;
            else
                hi = mid - 1;
        }
        return lo;
    }

    /** Home DIMM of vertex @p v's data. */
    DimmId
    homeOf(std::uint32_t v) const
    {
        const ThreadId t = sliceOf(v);
        return static_cast<DimmId>(
            static_cast<std::uint64_t>(t) * params.numDimms /
            params.numThreads);
    }

    /** Address of property @p array element for vertex @p v. */
    Addr
    propAddr(unsigned array, std::uint32_t v) const
    {
        const ThreadId t = sliceOf(v);
        return propBase[array][t] +
               static_cast<Addr>(v - bounds[t]) * propBytes;
    }

    /** Address of edge @p e (owned by slice @p t). */
    Addr
    edgeAddr(ThreadId t, std::uint64_t e) const
    {
        return edgeBase[t] +
               (e - graph.edgeBegin(bounds[t])) * 8;
    }

  private:
    const Graph &graph;
    const WorkloadParams &params;
    unsigned propBytes;
    std::vector<std::uint32_t> bounds;
    std::vector<std::vector<Addr>> propBase;
    std::vector<Addr> edgeBase;
};

} // namespace workloads
} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_GRAPH_LAYOUT_HH
