/**
 * @file
 * The workload framework: the benchmark kernels of Table IV expressed
 * as real algorithms over real data that emit per-thread op streams.
 * Each workload owns its data, places it across the DIMMs through a
 * bump allocator over the global address map, and can verify its
 * computed result against a sequential reference.
 */

#ifndef DIMMLINK_WORKLOADS_WORKLOAD_HH
#define DIMMLINK_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/factory.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "dimm/op.hh"
#include "dram/address_map.hh"

namespace dimmlink {
namespace workloads {

/** Problem sizing and mode knobs. */
struct WorkloadParams
{
    unsigned numThreads = 16;
    unsigned numDimms = 4;
    /** Generic size knob; each workload documents its meaning. */
    std::uint64_t scale = 1;
    std::uint64_t seed = 1;
    /** PR/SSSP/SpMV: distribute shared vectors with explicit DL
     * broadcasts instead of remote reads (Fig. 12 mode). */
    bool broadcastMode = false;
    /** Sync microkernel: instructions between barriers (Fig. 14). */
    std::uint64_t syncIntervalInstr = 2000;
    /** Sync microkernel / TS.Pow: number of barrier rounds. */
    unsigned rounds = 32;
    /** Serving workloads (kv, embed): arrival process, keyspace and
     * popularity knobs; copied from SystemConfig::serve by drivers. */
    ServeConfig serve;
};

/** Per-DIMM bump allocator over the global physical address space. */
class AddressAllocator
{
  public:
    explicit AddressAllocator(const dram::GlobalAddressMap &gmap)
        : gmap_(gmap), next(gmap.numDimms(), 0)
    {}

    /** Allocate @p bytes on DIMM @p d; 64-byte aligned. */
    Addr alloc(DimmId d, std::uint64_t bytes);

    /** Bytes allocated so far on DIMM @p d. */
    std::uint64_t used(DimmId d) const { return next[d]; }

  private:
    const dram::GlobalAddressMap &gmap_;
    std::vector<std::uint64_t> next;
};

/**
 * A benchmark kernel. The runner calls programs() once per (re)start;
 * thread tid's program is the kernel slice bound to tid. Data
 * placement is fixed at construction; the mapper moves threads, not
 * data (migration-by-restart, Section IV-B).
 */
class Workload
{
  public:
    Workload(WorkloadParams params, const dram::GlobalAddressMap &gmap)
        : p(std::move(params)), gmap(gmap), alloc(gmap)
    {}
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Build thread @p tid's program for a fresh kernel run. */
    virtual std::unique_ptr<ThreadProgram> program(ThreadId tid) = 0;

    /** Clear result state before a re-run (migration restart). */
    virtual void reset() {}

    /** Check the computed result against the reference. */
    virtual bool verify() const { return true; }

    /** Approximate dynamic instructions (speedup denominators). */
    virtual std::uint64_t approxInstructions() const { return 0; }

    /** Approximate memory references one run issues; sizes the
     * profiling window of the distance-aware mapper (~1%). */
    virtual std::uint64_t
    approxMemRefs() const
    {
        return approxInstructions() / 3;
    }

    const WorkloadParams &params() const { return p; }

  protected:
    /** Home DIMM of thread-slice @p tid's data: block distribution. */
    DimmId
    sliceHome(ThreadId tid) const
    {
        return static_cast<DimmId>(
            static_cast<std::uint64_t>(tid) * p.numDimms /
            p.numThreads);
    }

    WorkloadParams p;
    const dram::GlobalAddressMap &gmap;
    AddressAllocator alloc;
};

/**
 * The workload registry: each kernel's translation unit registers its
 * implementation under its CLI name ("bfs", "pagerank", ...).
 */
using WorkloadFactory =
    Factory<Workload, const WorkloadParams &,
            const dram::GlobalAddressMap &>;

/** Build the workload registered under @p name; fatal()s with the
 * registered names when it is unknown. */
std::unique_ptr<Workload> makeWorkload(
    const std::string &name, const WorkloadParams &params,
    const dram::GlobalAddressMap &gmap);

/** Every registered workload name, sorted. */
std::vector<std::string> knownWorkloads();

/** The six P2P workloads of Fig. 10, in paper order. */
std::vector<std::string> p2pWorkloadNames();

/** The three broadcast workloads of Fig. 12. */
std::vector<std::string> broadcastWorkloadNames();

} // namespace workloads

template <>
struct FactoryTraits<workloads::Workload>
{
    static constexpr const char *noun = "workload";
};

} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_WORKLOAD_HH
