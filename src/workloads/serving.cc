#include "workloads/serving.hh"

#include <string>

#include "common/log.hh"
#include "workloads/arrivals.hh"

namespace dimmlink {
namespace workloads {
namespace serving {

std::vector<ThreadPlan>
buildPlans(const ServeConfig &s, unsigned num_threads,
           unsigned keys_per_req)
{
    if (num_threads == 0)
        panic("serving plan for zero threads");
    const bool open = s.mode == "open";
    const ZipfSampler zipf(s.keys, s.zipfTheta);

    std::vector<ThreadPlan> plans(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        ThreadPlan &plan = plans[t];
        const std::uint64_t count =
            s.requests / num_threads +
            (t < s.requests % num_threads ? 1 : 0);
        plan.reqs.reserve(count);
        plan.keys.reserve(count * keys_per_req);

        // Independent per-thread streams, derived like the per-link
        // fault streams: key/type draws and arrival draws never share
        // a stream, so changing one knob cannot shift the other.
        Rng rng(s.seed * 1000003 + t);
        ArrivalProcess arrivals(s.offeredQps / num_threads,
                                (s.seed ^ 0xa55a5aa5deadbeefull) *
                                        1000003 + t,
                                s.burstFactor, s.burstPeriodPs,
                                s.burstLenPs);

        for (std::uint64_t i = 0; i < count; ++i) {
            Request req;
            if (open)
                req.arrivalPs = arrivals.next();
            req.isGet = rng.real() < s.getFraction;
            plan.reqs.push_back(req);
            for (unsigned k = 0; k < keys_per_req; ++k) {
                const std::uint64_t rank = zipf(rng);
                plan.keys.push_back(
                    s.scramble ? scatterHash(rank) % s.keys : rank);
            }
        }

        // Admission control (docs/serving.md): request i's shed
        // horizon is the arrival of request i + maxInflight on the
        // same thread -- if i has not started by then, at least
        // maxInflight requests are queued behind it.
        if (open && s.maxInflight > 0) {
            for (std::uint64_t i = 0;
                 i + s.maxInflight < plan.reqs.size(); ++i)
                plan.reqs[i].shedAfterPs =
                    plan.reqs[i + s.maxInflight].arrivalPs;
        }
    }
    return plans;
}

namespace {

/** The DIMM id encoded in a per-core stats group name
 * ("dimm3.core1" -> 3), or -1 for host-side and aggregate groups. */
int
dimmOfGroupName(const std::string &name)
{
    if (name.compare(0, 4, "dimm") != 0)
        return -1;
    std::size_t i = 4;
    int id = 0;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9')
        id = id * 10 + (name[i++] - '0');
    return i > 4 ? id : -1;
}

} // namespace

bool
aggregate(stats::Registry &reg, const SystemConfig &cfg,
          Tick kernel_ticks)
{
    // Collect first, then write: creating the "serve" group while
    // forEachGroup walks the map would mutate it mid-iteration.
    stats::Histogram merged(
        static_cast<double>(cfg.serve.latBucketPs),
        cfg.serve.latBuckets);
    double wait_ps = 0;
    // Reliability counters (docs/serving.md): the per-core scalars
    // exist only when a core dispatched a ReqStart with the layer
    // armed, so folding them keeps rel-off runs byte-identical.
    struct RelCounter
    {
        const char *coreName; ///< Per-core scalar name.
        const char *outName;  ///< Aggregated "serve" scalar name.
        double sum = 0;
    };
    RelCounter relCounters[] = {
        {"reqDeadlineMisses", "deadlineMisses"},
        {"reqShed", "shedRequests"},
        {"reqRetries", "retries"},
        {"reqFastFails", "breakerFastFails"},
        {"reqFailed", "failedRequests"},
        {"reqHedges", "hedgedRequests"},
        {"reqHedgeWins", "hedgeWins"},
    };
    bool relSeen = false;
    // Under rack pooling the same walk also folds each host's pool
    // partition into a per-host SLO histogram; single-host runs
    // build nothing extra so their stats JSON keeps its shape.
    std::vector<stats::Histogram> perHost;
    if (cfg.rackEnabled())
        perHost.assign(cfg.rack.hosts,
                       stats::Histogram(
                           static_cast<double>(cfg.serve.latBucketPs),
                           cfg.serve.latBuckets));
    reg.forEachGroup([&](const stats::Group &g) {
        if (g.name() == "serve")
            return;
        const auto it = g.histograms().find("reqLatencyPs");
        if (it != g.histograms().end()) {
            merged.merge(it->second);
            if (!perHost.empty()) {
                const int d = dimmOfGroupName(g.name());
                if (d >= 0)
                    perHost[cfg.hostOf(static_cast<DimmId>(d))].merge(
                        it->second);
            }
        }
        const auto sit = g.scalars().find("reqWaitPs");
        if (sit != g.scalars().end())
            wait_ps += sit->second.value();
        for (RelCounter &rc : relCounters) {
            const auto rit = g.scalars().find(rc.coreName);
            if (rit != g.scalars().end()) {
                relSeen = true;
                rc.sum += rit->second.value();
            }
        }
    });
    // Zero completed requests still produce an explicit all-zero
    // block when the reliability layer ran (everything may have been
    // shed or failed fast -- that IS the result); without it there is
    // nothing serving-shaped to report.
    if (merged.total() == 0 && !relSeen)
        return false;

    stats::Group &serve = reg.group("serve");
    stats::Histogram &lat = serve.histogram(
        "latencyPs", static_cast<double>(cfg.serve.latBucketPs),
        cfg.serve.latBuckets);
    lat.reset();
    lat.merge(merged);

    const auto requests = static_cast<double>(merged.total());
    serve.scalar("requests").set(requests);
    serve.scalar("latencyP50Ps").set(merged.percentile(0.50));
    serve.scalar("latencyP95Ps").set(merged.percentile(0.95));
    serve.scalar("latencyP99Ps").set(merged.percentile(0.99));
    serve.scalar("achievedQps")
        .set(kernel_ticks > 0
                 ? requests /
                       (static_cast<double>(kernel_ticks) * 1e-12)
                 : 0);
    // Echo the offered load for open-loop runs so a stats dump is
    // self-describing; closed-loop runs have no offered rate.
    serve.scalar("offeredQps")
        .set(cfg.serve.mode == "open" ? cfg.serve.offeredQps : 0);
    serve.scalar("reqWaitPs").set(wait_ps);
    if (relSeen) {
        for (const RelCounter &rc : relCounters)
            serve.scalar(rc.outName).set(rc.sum);
        // Goodput: on-time completions per second. Deadline-missed,
        // shed and failed requests never sample the histogram, so
        // every merged completion counts.
        serve.scalar("goodputQps")
            .set(kernel_ticks > 0
                     ? requests /
                           (static_cast<double>(kernel_ticks) * 1e-12)
                     : 0);
        // Error budget: errors over everything the run disposed of.
        const double errors = relCounters[0].sum +  // deadlineMisses
                              relCounters[1].sum +  // shedRequests
                              relCounters[4].sum;   // failedRequests
        const double disposed = requests + errors;
        serve.scalar("errorRate")
            .set(disposed > 0 ? errors / disposed : 0);
    }
    // Per-host SLO percentiles: requests served by each host's pool
    // partition (a request lands on the DIMM that owns its key, so a
    // host's tail shows remote-pool crossings and rack failovers).
    for (std::size_t h = 0; h < perHost.size(); ++h) {
        const std::string prefix = "host" + std::to_string(h) + ".";
        const stats::Histogram &hh = perHost[h];
        serve.scalar(prefix + "requests")
            .set(static_cast<double>(hh.total()));
        serve.scalar(prefix + "latencyP50Ps").set(hh.percentile(0.50));
        serve.scalar(prefix + "latencyP95Ps").set(hh.percentile(0.95));
        serve.scalar(prefix + "latencyP99Ps").set(hh.percentile(0.99));
    }
    return true;
}

} // namespace serving
} // namespace workloads
} // namespace dimmlink
