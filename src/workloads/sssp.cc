/**
 * @file
 * Single-Source Shortest Path via round-synchronous Bellman-Ford
 * (Table IV; Fig. 10 and Fig. 12). Each round, threads relax the
 * outgoing edges of vertices whose distance changed in the previous
 * round. Distance reads/writes of foreign vertices cross DIMMs; the
 * broadcast variant publishes each DIMM's updated distance block once
 * per round instead.
 */

#include <limits>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

constexpr std::uint64_t inf64 =
    std::numeric_limits<std::uint64_t>::max();

class SsspWorkload : public Workload
{
  public:
    SsspWorkload(WorkloadParams params_,
                 const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          graph(Graph::rmat(static_cast<unsigned>(p.scale), 8,
                            p.seed)),
          // Arrays: 0 = dist (8B), 1 = changed flag (4B rounded).
          slices(graph, p, alloc, /*prop_arrays=*/2, /*bytes=*/8),
          source(0)
    {
        flagAddr[0] = alloc.alloc(0, 64);
        flagAddr[1] = alloc.alloc(0, 64);
        if (p.broadcastMode) {
            localCopy.resize(p.numDimms);
            for (unsigned d = 0; d < p.numDimms; ++d)
                localCopy[d] = alloc.alloc(
                    static_cast<DimmId>(d),
                    static_cast<std::uint64_t>(graph.numVertices()) *
                        8);
        }
        reset();
    }

    std::string name() const override { return "sssp"; }

    void
    reset() override
    {
        dist.assign(graph.numVertices(), inf64);
        changed.assign(graph.numVertices(), 0);
        dist[source] = 0;
        changed[source] = 1;
        anyChanged[0] = true;
        anyChanged[1] = false;
    }

    bool
    verify() const override
    {
        return dist == graph.ssspReference(source);
    }

    std::uint64_t
    approxInstructions() const override
    {
        return graph.numEdges() * 12 + graph.numVertices() * 8;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    OpStream
    run(ThreadId tid)
    {
        const std::uint32_t vs = slices.vStart(tid);
        const std::uint32_t ve = slices.vEnd(tid);
        const DimmId home = sliceHome(tid);
        const bool dimm_leader =
            tid == 0 || sliceHome(tid - 1) != home;
        // Bellman-Ford needs at most V-1 rounds; skewed R-MAT
        // instances converge in a few dozen.
        const unsigned max_rounds = graph.numVertices();

        for (unsigned round = 0; round < max_rounds; ++round) {
            const unsigned parity = round & 1;
            co_yield Op::read(flagAddr[parity], 4,
                              DataClass::SharedRW);
            if (!anyChanged[parity])
                break;

            if (p.broadcastMode) {
                // Publish this DIMM's distance block to all DIMMs.
                if (dimm_leader)
                    co_yield Op::broadcast(slices.propAddr(0, vs),
                                           dimmBlockBytes(home));
                co_yield Op::barrier();
            }

            std::vector<MemRef> batch;
            std::uint64_t instr = 0;
            bool relaxed_any = false;

            for (std::uint32_t v = vs; v < ve; ++v) {
                // Stream the own slice's changed flags (8 per line).
                if ((v - vs) % 8 == 0)
                    batch.push_back(MemRef{slices.propAddr(1, v),
                                           64, false,
                                           DataClass::Private});
                instr += 1;
                if (!changedPrev(v, round))
                    continue;
                const std::uint64_t dv = dist[v];
                const std::uint64_t eb = graph.edgeBegin(v);
                const std::uint64_t ee = graph.edgeEnd(v);
                for (std::uint64_t e = eb; e < ee; e += 8)
                    batch.push_back(MemRef{slices.edgeAddr(tid, e),
                                           64, false,
                                           DataClass::Private});
                for (std::uint64_t e = eb; e < ee; ++e) {
                    const std::uint32_t u = graph.neighbor(e);
                    const std::uint64_t nd = dv + graph.weight(e);
                    instr += 3;
                    if (p.broadcastMode) {
                        batch.push_back(MemRef{
                            localCopy[home] +
                                static_cast<Addr>(u) * 8,
                            8, false, DataClass::Private});
                    } else {
                        batch.push_back(
                            MemRef{slices.propAddr(0, u), 8, false,
                                   DataClass::SharedRW});
                    }
                    if (nd < dist[u]) {
                        dist[u] = nd;
                        markChanged(u, round);
                        relaxed_any = true;
                        batch.push_back(
                            MemRef{slices.propAddr(0, u), 8, true,
                                   DataClass::SharedRW});
                        batch.push_back(
                            MemRef{slices.propAddr(1, u), 8, true,
                                   DataClass::SharedRW});
                    }
                    if (batch.size() >= 32) {
                        co_yield Op::compute(instr);
                        instr = 0;
                        co_yield Op::mem(std::move(batch));
                        batch.clear();
                    }
                }
            }
            if (!batch.empty()) {
                co_yield Op::compute(instr);
                co_yield Op::mem(std::move(batch));
                batch.clear();
            }

            if (relaxed_any) {
                anyChanged[1 - parity] = true;
                co_yield Op::write(flagAddr[1 - parity], 4,
                                   DataClass::SharedRW);
            }
            co_yield Op::barrier();
            if (tid == 0) {
                anyChanged[parity] = false;
                clearRound(round);
                co_yield Op::write(flagAddr[parity], 4,
                                   DataClass::SharedRW);
            }
            co_yield Op::barrier();
        }
    }

    /** changed-flags are generation-stamped to avoid re-clearing. */
    bool
    changedPrev(std::uint32_t v, unsigned round) const
    {
        return changed[v] == round + 1 || (round == 0 && v == source);
    }

    void
    markChanged(std::uint32_t v, unsigned round)
    {
        changed[v] = round + 2; // active in the next round.
    }

    void
    clearRound(unsigned round)
    {
        (void)round; // Generation stamps make clearing implicit.
    }

    std::uint64_t
    dimmBlockBytes(DimmId d) const
    {
        std::uint64_t verts = 0;
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const DimmId h = static_cast<DimmId>(
                static_cast<std::uint64_t>(t) * p.numDimms /
                p.numThreads);
            if (h == d)
                verts += slices.vEnd(t) - slices.vStart(t);
        }
        return verts * 8;
    }

    Graph graph;
    GraphSlices slices;
    std::uint32_t source;
    std::vector<std::uint64_t> dist;
    std::vector<std::uint32_t> changed; ///< generation stamp.
    bool anyChanged[2] = {false, false};
    Addr flagAddr[2] = {0, 0};
    std::vector<Addr> localCopy;
};

WorkloadFactory::Registrar reg("sssp",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<SsspWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
