/**
 * @file
 * Shared machinery of the request-level serving workloads
 * (docs/serving.md): per-thread request plans -- arrival ticks,
 * request types and key choices, all precomputed deterministically
 * from serve.seed at workload (re)construction -- and post-run
 * aggregation of the per-core request-latency histograms into the
 * "serve" stats group.
 *
 * Plans are built host-side, before the kernel runs, so the op
 * streams a serving workload emits are a pure function of the config:
 * the same plan drives the sequential kernel, the sharded kernel at
 * any thread count, and the host baseline.
 */

#ifndef DIMMLINK_WORKLOADS_SERVING_HH
#define DIMMLINK_WORKLOADS_SERVING_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dimmlink {
namespace workloads {
namespace serving {

/** One planned request of one thread. */
struct Request
{
    /** Arrival tick relative to kernel start (open mode only). */
    Tick arrivalPs = 0;
    /** kv: GET (true) or PUT (false); ignored by embed. */
    bool isGet = true;
    /** Load shedding horizon: the arrival of the serve.maxInflight'th
     * later request on this thread; a request still waiting to start
     * past it is shed. 0 = never shed (knob off, closed mode, or no
     * later request that deep in the plan). */
    Tick shedAfterPs = 0;
};

/** One thread's request plan. Request i's keys occupy
 * keys[i * keysPerReq, (i + 1) * keysPerReq). */
struct ThreadPlan
{
    std::vector<Request> reqs;
    std::vector<std::uint64_t> keys;
};

/**
 * Build every thread's plan. The total serve.requests are split
 * evenly across threads (earlier threads absorb the remainder); each
 * thread owns independent arrival and key streams derived from
 * serve.seed, so plans do not depend on thread interleaving.
 * @p keys_per_req is 1 for kv and serve.pooling for embed.
 */
std::vector<ThreadPlan> buildPlans(const ServeConfig &s,
                                   unsigned num_threads,
                                   unsigned keys_per_req);

/**
 * Merge the per-core "reqLatencyPs" histograms into the "serve"
 * group: histogram "latencyPs" plus requests / latencyP50Ps /
 * latencyP95Ps / latencyP99Ps / achievedQps / offeredQps scalars.
 * Rebuilt from scratch each call (idempotent); cores are visited in
 * sorted-name order and count merges commute, so the result is
 * byte-identical at every thread count. Returns false (and writes
 * nothing) when no core retired a request.
 */
bool aggregate(stats::Registry &reg, const SystemConfig &cfg,
               Tick kernel_ticks);

} // namespace serving
} // namespace workloads
} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_SERVING_HH
