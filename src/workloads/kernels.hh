/**
 * @file
 * Internal factory entry points for the individual kernels; the
 * public factory in workload.cc dispatches to these.
 */

#ifndef DIMMLINK_WORKLOADS_KERNELS_HH
#define DIMMLINK_WORKLOADS_KERNELS_HH

#include <memory>

#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

std::unique_ptr<Workload> makeBfs(const WorkloadParams &,
                                  const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeHotspot(const WorkloadParams &,
                                      const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeKmeans(const WorkloadParams &,
                                     const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeNw(const WorkloadParams &,
                                 const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makePagerank(const WorkloadParams &,
                                       const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeSssp(const WorkloadParams &,
                                   const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeSpmv(const WorkloadParams &,
                                   const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeTsPow(const WorkloadParams &,
                                    const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeSyncBench(const WorkloadParams &,
                                        const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeStream(const WorkloadParams &,
                                     const dram::GlobalAddressMap &);
std::unique_ptr<Workload> makeGups(const WorkloadParams &,
                                   const dram::GlobalAddressMap &);

} // namespace workloads
} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_KERNELS_HH
