#include "workloads/graph.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/log.hh"

namespace dimmlink {
namespace workloads {

Graph
Graph::fromEdges(
    std::uint32_t vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
    Rng &rng)
{
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    // Drop self loops.
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const auto &e) {
                                   return e.first == e.second;
                               }),
                edges.end());

    Graph g;
    g.rowPtr.assign(vertices + 1, 0);
    for (const auto &[u, v] : edges) {
        (void)v;
        ++g.rowPtr[u + 1];
    }
    for (std::uint32_t v = 0; v < vertices; ++v)
        g.rowPtr[v + 1] += g.rowPtr[v];
    g.colIdx.resize(edges.size());
    g.weights.resize(edges.size());
    std::vector<std::uint64_t> cursor(g.rowPtr.begin(),
                                      g.rowPtr.end() - 1);
    for (const auto &[u, v] : edges) {
        const std::uint64_t slot = cursor[u]++;
        g.colIdx[slot] = v;
        g.weights[slot] = static_cast<std::uint32_t>(
            1 + rng.below(63)); // weights in [1, 64)
    }
    return g;
}

Graph
Graph::rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed)
{
    const std::uint32_t n = 1u << scale;
    const std::uint64_t m =
        static_cast<std::uint64_t>(edge_factor) * n;
    Rng rng(seed);

    // LiveJournal-like skew.
    const double a = 0.57, b = 0.19, c = 0.19;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(m * 2);
    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint32_t u = 0, v = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.real();
            unsigned ub = 0, vb = 0;
            if (r < a) {
                // top-left
            } else if (r < a + b) {
                vb = 1;
            } else if (r < a + b + c) {
                ub = 1;
            } else {
                ub = 1;
                vb = 1;
            }
            u = (u << 1) | ub;
            v = (v << 1) | vb;
        }
        edges.emplace_back(u, v);
        edges.emplace_back(v, u); // symmetrize
    }
    return fromEdges(n, std::move(edges), rng);
}

Graph
Graph::uniform(std::uint32_t vertices, std::uint64_t edge_count,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(edge_count * 2);
    for (std::uint64_t e = 0; e < edge_count; ++e) {
        const auto u =
            static_cast<std::uint32_t>(rng.below(vertices));
        const auto v =
            static_cast<std::uint32_t>(rng.below(vertices));
        edges.emplace_back(u, v);
        edges.emplace_back(v, u);
    }
    return fromEdges(vertices, std::move(edges), rng);
}

Graph
Graph::grid2d(std::uint32_t rows, std::uint32_t cols)
{
    Rng rng(7);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    auto id = [cols](std::uint32_t r, std::uint32_t c) {
        return r * cols + c;
    };
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                edges.emplace_back(id(r, c), id(r, c + 1));
                edges.emplace_back(id(r, c + 1), id(r, c));
            }
            if (r + 1 < rows) {
                edges.emplace_back(id(r, c), id(r + 1, c));
                edges.emplace_back(id(r + 1, c), id(r, c));
            }
        }
    }
    return fromEdges(rows * cols, std::move(edges), rng);
}

std::vector<std::uint32_t>
Graph::bfsReference(std::uint32_t source) const
{
    constexpr auto inf = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> dist(numVertices(), inf);
    std::queue<std::uint32_t> q;
    dist[source] = 0;
    q.push(source);
    while (!q.empty()) {
        const std::uint32_t v = q.front();
        q.pop();
        for (std::uint64_t e = edgeBegin(v); e < edgeEnd(v); ++e) {
            const std::uint32_t u = neighbor(e);
            if (dist[u] == inf) {
                dist[u] = dist[v] + 1;
                q.push(u);
            }
        }
    }
    return dist;
}

std::vector<std::uint64_t>
Graph::ssspReference(std::uint32_t source) const
{
    constexpr auto inf = std::numeric_limits<std::uint64_t>::max();
    std::vector<std::uint64_t> dist(numVertices(), inf);
    using Item = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[source] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v])
            continue;
        for (std::uint64_t e = edgeBegin(v); e < edgeEnd(v); ++e) {
            const std::uint32_t u = neighbor(e);
            const std::uint64_t nd = d + weight(e);
            if (nd < dist[u]) {
                dist[u] = nd;
                pq.emplace(nd, u);
            }
        }
    }
    return dist;
}

std::vector<double>
Graph::pagerankReference(unsigned iterations, double damping) const
{
    const std::uint32_t n = numVertices();
    std::vector<double> rank(n, 1.0 / n);
    std::vector<double> next(n, 0.0);
    for (unsigned it = 0; it < iterations; ++it) {
        std::fill(next.begin(), next.end(), (1.0 - damping) / n);
        for (std::uint32_t v = 0; v < n; ++v) {
            const std::uint32_t deg = degree(v);
            if (deg == 0)
                continue;
            const double share = damping * rank[v] / deg;
            for (std::uint64_t e = edgeBegin(v); e < edgeEnd(v); ++e)
                next[neighbor(e)] += share;
        }
        rank.swap(next);
    }
    return rank;
}

} // namespace workloads
} // namespace dimmlink
