#include "workloads/workload.hh"

#include "common/bitfield.hh"
#include "common/log.hh"
#include "workloads/kernels.hh"

namespace dimmlink {
namespace workloads {

Addr
AddressAllocator::alloc(DimmId d, std::uint64_t bytes)
{
    if (d >= next.size())
        panic("allocation on nonexistent DIMM %u", d);
    const std::uint64_t base = roundUp(next[d], 64);
    const std::uint64_t end = base + roundUp(bytes, 64);
    if (end > gmap_.dimmCapacity())
        fatal("DIMM %u out of memory (%llu bytes requested)", d,
              static_cast<unsigned long long>(bytes));
    next[d] = end;
    return gmap_.globalOf(d, base);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params,
             const dram::GlobalAddressMap &gmap)
{
    if (name == "bfs")
        return makeBfs(params, gmap);
    if (name == "hotspot")
        return makeHotspot(params, gmap);
    if (name == "kmeans")
        return makeKmeans(params, gmap);
    if (name == "nw")
        return makeNw(params, gmap);
    if (name == "pagerank")
        return makePagerank(params, gmap);
    if (name == "sssp")
        return makeSssp(params, gmap);
    if (name == "spmv")
        return makeSpmv(params, gmap);
    if (name == "tspow")
        return makeTsPow(params, gmap);
    if (name == "syncbench")
        return makeSyncBench(params, gmap);
    if (name == "stream")
        return makeStream(params, gmap);
    if (name == "gups")
        return makeGups(params, gmap);
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
p2pWorkloadNames()
{
    return {"bfs", "hotspot", "kmeans", "nw", "pagerank", "sssp"};
}

std::vector<std::string>
broadcastWorkloadNames()
{
    return {"pagerank", "sssp", "spmv"};
}

} // namespace workloads
} // namespace dimmlink
