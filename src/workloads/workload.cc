#include "workloads/workload.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {
namespace workloads {

Addr
AddressAllocator::alloc(DimmId d, std::uint64_t bytes)
{
    if (d >= next.size())
        panic("allocation on nonexistent DIMM %u", d);
    const std::uint64_t base = roundUp(next[d], 64);
    const std::uint64_t end = base + roundUp(bytes, 64);
    if (end > gmap_.dimmCapacity())
        fatal("DIMM %u out of memory (%llu bytes requested)", d,
              static_cast<unsigned long long>(bytes));
    next[d] = end;
    return gmap_.globalOf(d, base);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params,
             const dram::GlobalAddressMap &gmap)
{
    return WorkloadFactory::instance().create(name, params, gmap);
}

std::vector<std::string>
knownWorkloads()
{
    return WorkloadFactory::instance().known();
}

std::vector<std::string>
p2pWorkloadNames()
{
    return {"bfs", "hotspot", "kmeans", "nw", "pagerank", "sssp"};
}

std::vector<std::string>
broadcastWorkloadNames()
{
    return {"pagerank", "sssp", "spmv"};
}

} // namespace workloads
} // namespace dimmlink
