/**
 * @file
 * K-Means clustering (Table IV). Points are thread-private and
 * block-distributed; the centroid table is a shared structure homed
 * on DIMM 0 that every thread re-reads each iteration (the
 * broadcast-unfriendly shared-read pattern the paper cites), and
 * thread 0 gathers every thread's partial sums to recompute the
 * centroids.
 */

#include <cmath>

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class KmeansWorkload : public Workload
{
  public:
    static constexpr unsigned k = 8;   ///< clusters
    static constexpr unsigned dim = 8; ///< feature dimensions

    KmeansWorkload(WorkloadParams params_,
                   const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          numPoints(1024ull << p.scale),
          iterations(p.rounds ? std::min(p.rounds, 10u) : 6u)
    {
        // Points: block distribution, thread-private.
        pointAddr.resize(p.numThreads);
        sumAddr.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t cnt = pEnd(t) - pStart(t);
            pointAddr[t] = alloc.alloc(sliceHome(t),
                                       cnt * dim * 4);
            // Partial sums + counts, gathered by thread 0.
            sumAddr[t] = alloc.alloc(sliceHome(t),
                                     k * (dim + 1) * 8);
        }
        centroidAddr = alloc.alloc(0, k * dim * 4);

        // Deterministic synthetic data around k seeded centers.
        Rng rng(p.seed);
        points.resize(numPoints * dim);
        std::vector<double> centers(k * dim);
        for (auto &c : centers)
            c = rng.real() * 100.0;
        for (std::uint64_t i = 0; i < numPoints; ++i) {
            const unsigned c = static_cast<unsigned>(rng.below(k));
            for (unsigned d = 0; d < dim; ++d)
                points[i * dim + d] =
                    centers[c * dim + d] + (rng.real() - 0.5) * 8.0;
        }
        reset();
    }

    std::string name() const override { return "kmeans"; }

    void
    reset() override
    {
        centroids.assign(k * dim, 0.0);
        for (unsigned c = 0; c < k; ++c)
            for (unsigned d = 0; d < dim; ++d)
                centroids[c * dim + d] = points[c * dim + d];
        assignment.assign(numPoints, 0);
        partial.assign(
            static_cast<std::size_t>(p.numThreads) * k * (dim + 1),
            0.0);
    }

    bool
    verify() const override
    {
        // Re-run the same algorithm sequentially.
        std::vector<double> cent(k * dim);
        for (unsigned c = 0; c < k; ++c)
            for (unsigned d = 0; d < dim; ++d)
                cent[c * dim + d] = points[c * dim + d];
        std::vector<std::uint32_t> assign(numPoints, 0);
        for (unsigned it = 0; it < iterations; ++it) {
            std::vector<double> sum(k * dim, 0.0);
            std::vector<double> cnt(k, 0.0);
            for (std::uint64_t i = 0; i < numPoints; ++i) {
                assign[i] = nearest(points.data() + i * dim,
                                    cent.data());
                cnt[assign[i]] += 1;
                for (unsigned d = 0; d < dim; ++d)
                    sum[assign[i] * dim + d] +=
                        points[i * dim + d];
            }
            for (unsigned c = 0; c < k; ++c)
                if (cnt[c] > 0)
                    for (unsigned d = 0; d < dim; ++d)
                        cent[c * dim + d] = sum[c * dim + d] / cnt[c];
        }
        return assign == assignment;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return numPoints * k * dim * 3 * iterations;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return (numPoints + p.numThreads * 32) * iterations;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    static unsigned
    nearest(const float *pt, const double *cent)
    {
        unsigned best = 0;
        double best_d = 1e300;
        for (unsigned c = 0; c < k; ++c) {
            double d2 = 0;
            for (unsigned d = 0; d < dim; ++d) {
                const double diff = pt[d] - cent[c * dim + d];
                d2 += diff * diff;
            }
            if (d2 < best_d) {
                best_d = d2;
                best = c;
            }
        }
        return best;
    }

    std::uint64_t pStart(ThreadId t) const
    {
        return numPoints * t / p.numThreads;
    }
    std::uint64_t pEnd(ThreadId t) const
    {
        return numPoints * (t + 1) / p.numThreads;
    }

    OpStream
    run(ThreadId tid)
    {
        const std::uint64_t ps = pStart(tid);
        const std::uint64_t pe = pEnd(tid);

        for (unsigned it = 0; it < iterations; ++it) {
            // Fetch the shared centroid table (remote for most
            // DIMMs; k*dim*4 = 256 bytes = 4 lines).
            {
                // Centroids are read-only during the assignment
                // phase; the barrier invalidates the cached copies
                // before thread 0 rewrites them.
                std::vector<MemRef> refs;
                for (unsigned off = 0; off < k * dim * 4; off += 64)
                    refs.push_back(MemRef{centroidAddr + off, 64,
                                          false,
                                          DataClass::SharedRO});
                co_yield Op::mem(std::move(refs), true);
            }

            // Assignment phase over the private points.
            double *sums =
                &partial[static_cast<std::size_t>(tid) * k *
                         (dim + 1)];
            for (unsigned z = 0; z < k * (dim + 1); ++z)
                sums[z] = 0;

            std::vector<MemRef> batch;
            std::uint64_t instr = 0;
            for (std::uint64_t i = ps; i < pe; ++i) {
                const unsigned c =
                    nearest(points.data() + i * dim,
                            centroids.data());
                assignment[i] = c;
                sums[c * (dim + 1) + dim] += 1;
                for (unsigned d = 0; d < dim; ++d)
                    sums[c * (dim + 1) + d] +=
                        points[i * dim + d];

                // One point = dim*4 = 32 bytes: half a line.
                batch.push_back(
                    MemRef{pointAddr[tid] + (i - ps) * dim * 4,
                           static_cast<std::uint16_t>(dim * 4),
                           false, DataClass::Private});
                instr += k * dim * 3;
                if (batch.size() >= 32) {
                    co_yield Op::compute(instr);
                    instr = 0;
                    co_yield Op::mem(std::move(batch));
                    batch.clear();
                }
            }
            // Publish partial sums for the reducer.
            for (unsigned off = 0; off < k * (dim + 1) * 8;
                 off += 64)
                batch.push_back(MemRef{sumAddr[tid] + off, 64, true,
                                       DataClass::SharedRW});
            co_yield Op::compute(instr);
            co_yield Op::mem(std::move(batch));
            batch.clear();
            co_yield Op::barrier();

            // Thread 0 gathers all partial sums and rewrites the
            // centroid table.
            if (tid == 0) {
                std::vector<MemRef> gather;
                for (unsigned t = 0; t < p.numThreads; ++t)
                    for (unsigned off = 0; off < k * (dim + 1) * 8;
                         off += 64)
                        gather.push_back(
                            MemRef{sumAddr[t] + off, 64, false,
                                   DataClass::SharedRW});
                co_yield Op::mem(std::move(gather), true);

                std::vector<double> sum(k * dim, 0.0);
                std::vector<double> cnt(k, 0.0);
                for (unsigned t = 0; t < p.numThreads; ++t) {
                    const double *sp =
                        &partial[static_cast<std::size_t>(t) * k *
                                 (dim + 1)];
                    for (unsigned c = 0; c < k; ++c) {
                        cnt[c] += sp[c * (dim + 1) + dim];
                        for (unsigned d = 0; d < dim; ++d)
                            sum[c * dim + d] +=
                                sp[c * (dim + 1) + d];
                    }
                }
                for (unsigned c = 0; c < k; ++c)
                    if (cnt[c] > 0)
                        for (unsigned d = 0; d < dim; ++d)
                            centroids[c * dim + d] =
                                sum[c * dim + d] / cnt[c];

                std::vector<MemRef> wb;
                for (unsigned off = 0; off < k * dim * 4; off += 64)
                    wb.push_back(MemRef{centroidAddr + off, 64, true,
                                        DataClass::SharedRW});
                co_yield Op::compute(
                    static_cast<std::uint64_t>(p.numThreads) * k *
                    dim * 2);
                co_yield Op::mem(std::move(wb), true);
            }
            co_yield Op::barrier();
        }
    }

    std::uint64_t numPoints;
    unsigned iterations;
    std::vector<float> points;
    std::vector<double> centroids;
    std::vector<std::uint32_t> assignment;
    std::vector<double> partial;
    std::vector<Addr> pointAddr;
    std::vector<Addr> sumAddr;
    Addr centroidAddr = 0;
};

WorkloadFactory::Registrar reg("kmeans",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<KmeansWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
