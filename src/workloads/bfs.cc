/**
 * @file
 * Level-synchronous parallel BFS (Table IV). Threads own contiguous
 * vertex slices; relaxing a neighbor that lives in another slice
 * touches that slice's home DIMM, producing the scattered inter-DIMM
 * traffic BFS is known for (and why the paper calls it
 * broadcast-unfriendly).
 */

#include <limits>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

constexpr std::uint32_t inf = std::numeric_limits<std::uint32_t>::max();

class BfsWorkload : public Workload
{
  public:
    BfsWorkload(WorkloadParams params_,
                const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          graph(Graph::rmat(static_cast<unsigned>(p.scale), 8,
                            p.seed)),
          slices(graph, p, alloc, /*prop_arrays=*/1),
          source(0)
    {
        // Shared level-termination flags (double-buffered), homed on
        // DIMM 0 like any global.
        flagAddr[0] = alloc.alloc(0, 64);
        flagAddr[1] = alloc.alloc(0, 64);
        reset();
    }

    std::string name() const override { return "bfs"; }

    void
    reset() override
    {
        dist.assign(graph.numVertices(), inf);
        dist[source] = 0;
        frontierNonEmpty[0] = true; // level 0 has the source.
        frontierNonEmpty[1] = false;
    }

    bool
    verify() const override
    {
        return dist == graph.bfsReference(source);
    }

    std::uint64_t
    approxInstructions() const override
    {
        return graph.numEdges() * 4 + graph.numVertices() * 8;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    OpStream
    run(ThreadId tid)
    {
        const std::uint32_t vs = slices.vStart(tid);
        const std::uint32_t ve = slices.vEnd(tid);

        for (std::uint32_t level = 0;; ++level) {
            const unsigned parity = level & 1;
            if (!frontierNonEmpty[parity]) {
                // Simulated check of the shared flag.
                co_yield Op::read(flagAddr[parity], 4,
                                  DataClass::SharedRW);
                break;
            }
            co_yield Op::read(flagAddr[parity], 4,
                              DataClass::SharedRW);

            std::vector<MemRef> batch;
            std::uint64_t instr = 0;
            bool relaxed_any = false;

            for (std::uint32_t v = vs; v < ve; ++v) {
                // Scan the slice's dist values (local; the NMP
                // runtime streams its own slice line-granularly,
                // UPMEM-DMA style).
                if ((v - vs) % 16 == 0)
                    batch.push_back(MemRef{slices.propAddr(0, v),
                                           64, false,
                                           DataClass::SharedRW});
                instr += 1;
                if (dist[v] == level) {
                    // Stream this vertex's edge list (local).
                    const std::uint64_t eb = graph.edgeBegin(v);
                    const std::uint64_t ee = graph.edgeEnd(v);
                    for (std::uint64_t e = eb; e < ee; e += 8) {
                        batch.push_back(
                            MemRef{slices.edgeAddr(tid, e), 64,
                                   false, DataClass::Private});
                    }
                    for (std::uint64_t e = eb; e < ee; ++e) {
                        const std::uint32_t u = graph.neighbor(e);
                        instr += 2;
                        batch.push_back(
                            MemRef{slices.propAddr(0, u), 4, false,
                                   DataClass::SharedRW});
                        if (dist[u] == inf) {
                            dist[u] = level + 1;
                            relaxed_any = true;
                            batch.push_back(
                                MemRef{slices.propAddr(0, u), 4,
                                       true, DataClass::SharedRW});
                        }
                        if (batch.size() >= 32) {
                            co_yield Op::compute(instr);
                            instr = 0;
                            co_yield Op::mem(std::move(batch));
                            batch.clear();
                        }
                    }
                }
                if (batch.size() >= 32) {
                    co_yield Op::compute(instr);
                    instr = 0;
                    co_yield Op::mem(std::move(batch));
                    batch.clear();
                }
            }
            if (!batch.empty()) {
                co_yield Op::compute(instr);
                co_yield Op::mem(std::move(batch));
                batch.clear();
            }

            if (relaxed_any) {
                frontierNonEmpty[1 - parity] = true;
                co_yield Op::write(flagAddr[1 - parity], 4,
                                   DataClass::SharedRW);
            }
            co_yield Op::barrier();
            if (tid == 0) {
                // Reset this level's flag for its next reuse.
                frontierNonEmpty[parity] = false;
                co_yield Op::write(flagAddr[parity], 4,
                                   DataClass::SharedRW);
            }
            co_yield Op::barrier();
        }
    }

    Graph graph;
    GraphSlices slices;
    std::uint32_t source;
    std::vector<std::uint32_t> dist;
    bool frontierNonEmpty[2] = {false, false};
    Addr flagAddr[2] = {0, 0};
};

WorkloadFactory::Registrar reg("bfs",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<BfsWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
