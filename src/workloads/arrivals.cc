#include "workloads/arrivals.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dimmlink {
namespace workloads {

ArrivalProcess::ArrivalProcess(double offered_qps, std::uint64_t seed,
                               double burst_factor,
                               Tick burst_period_ps, Tick burst_len_ps)
    : rng(seed),
      ratePerPs(offered_qps * 1e-12),
      burstFactor(burst_factor),
      periodPs(burst_period_ps),
      lenPs(burst_len_ps)
{
    if (offered_qps <= 0)
        panic("arrival process needs a positive rate, got %g",
              offered_qps);
    if (burstFactor < 1.0)
        panic("burst factor %g must be >= 1", burstFactor);
}

bool
ArrivalProcess::inBurst(Tick t) const
{
    if (periodPs == 0 || burstFactor <= 1.0)
        return false;
    return t % periodPs < lenPs;
}

Tick
ArrivalProcess::next()
{
    // Draw from a homogeneous process at the burst-phase maximum,
    // then thin outside bursts with probability 1/burstFactor; the
    // accepted points follow the piecewise-constant rate exactly.
    const double lambda_max = ratePerPs * burstFactor;
    for (;;) {
        const double u = rng.real(); // [0, 1)
        const double dt = -std::log1p(-u) / lambda_max;
        t_ += std::max<Tick>(1, static_cast<Tick>(dt + 0.5));
        if (inBurst(t_) || burstFactor <= 1.0 ||
            rng.real() * burstFactor < 1.0)
            return t_;
    }
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        panic("zipf sampler over an empty keyspace");
    if (theta < 0.0 || theta >= 1.0)
        panic("zipf theta %g outside [0, 1)", theta);
    if (theta_ <= 0.0 || n_ < 2)
        return; // Uniform path needs no tables.
    double z = 0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        z += 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan_ = z;
    halfPow_ = 1.0 + std::pow(0.5, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = halfPow_;
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    if (theta_ <= 0.0 || n_ < 2)
        return n_ < 2 ? 0 : rng.below(n_);
    const double u = rng.real();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < halfPow_)
        return 1;
    const double r = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    const auto rank = static_cast<std::uint64_t>(r);
    return std::min(rank, n_ - 1);
}

} // namespace workloads
} // namespace dimmlink
