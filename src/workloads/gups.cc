/**
 * @file
 * GUPS (giga-updates-per-second) microworkload: random read-modify-
 * write over one table distributed across every DIMM. The purest
 * stress of fine-grained random IDC — nearly every update lands on a
 * foreign DIMM — and the microbenchmark where the fabrics separate
 * the most.
 */

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class GupsWorkload : public Workload
{
  public:
    GupsWorkload(WorkloadParams params_,
                 const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          tableElems(8192ull << p.scale),
          updatesPerThread(2048ull << p.scale)
    {
        // Table block-distributed across DIMMs.
        const std::uint64_t per_dimm =
            tableElems / p.numDimms * 8;
        blockAddr.resize(p.numDimms);
        for (unsigned d = 0; d < p.numDimms; ++d)
            blockAddr[d] =
                alloc.alloc(static_cast<DimmId>(d), per_dimm);
        reset();
    }

    std::string name() const override { return "gups"; }

    void
    reset() override
    {
        table.assign(tableElems, 0);
        expected.assign(tableElems, 0);
        // Precompute the reference result: the update sequence is
        // deterministic per thread.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng rng(p.seed * 1000003 + t);
            for (std::uint64_t u = 0; u < updatesPerThread; ++u) {
                const std::uint64_t idx = rng.below(tableElems);
                expected[idx] ^= (idx * 0x9e37u) ^ u;
            }
        }
    }

    bool
    verify() const override
    {
        return table == expected;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return updatesPerThread * p.numThreads * 4;
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return updatesPerThread * p.numThreads * 2;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    Addr
    elemAddr(std::uint64_t idx) const
    {
        const std::uint64_t per_dimm = tableElems / p.numDimms;
        const auto d =
            static_cast<DimmId>(std::min<std::uint64_t>(
                idx / per_dimm, p.numDimms - 1));
        const std::uint64_t off =
            idx - static_cast<std::uint64_t>(d) * per_dimm;
        return blockAddr[d] + off * 8;
    }

    OpStream
    run(ThreadId tid)
    {
        // XOR-updates commute, so the concurrent functional updates
        // match the precomputed reference regardless of ordering.
        Rng rng(p.seed * 1000003 + tid);
        std::vector<MemRef> batch;
        std::uint64_t instr = 0;
        for (std::uint64_t u = 0; u < updatesPerThread; ++u) {
            const std::uint64_t idx = rng.below(tableElems);
            table[idx] ^= (idx * 0x9e37u) ^ u;
            const Addr a = elemAddr(idx);
            batch.push_back(MemRef{a, 8, false,
                                   DataClass::SharedRW});
            batch.push_back(MemRef{a, 8, true,
                                   DataClass::SharedRW});
            instr += 4;
            if (batch.size() >= 32) {
                co_yield Op::compute(instr);
                instr = 0;
                co_yield Op::mem(std::move(batch));
                batch.clear();
            }
        }
        if (!batch.empty()) {
            co_yield Op::compute(instr);
            co_yield Op::mem(std::move(batch), true);
        }
        co_yield Op::barrier();
    }

    std::uint64_t tableElems;
    std::uint64_t updatesPerThread;
    std::vector<std::uint64_t> table;
    std::vector<std::uint64_t> expected;
    std::vector<Addr> blockAddr;
};

WorkloadFactory::Registrar reg("gups",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<GupsWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
