/**
 * @file
 * The synchronization microkernel of Fig. 14-(a): every thread
 * computes for a configurable instruction interval, then hits a
 * barrier, repeated for a fixed number of rounds. Sweeping the
 * interval exposes the cost of each synchronization scheme.
 */

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class SyncBenchWorkload : public Workload
{
  public:
    SyncBenchWorkload(WorkloadParams params_,
                      const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_)
    {
        scratch.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t)
            scratch[t] = alloc.alloc(sliceHome(t), 4096);
    }

    std::string name() const override { return "syncbench"; }

    std::uint64_t
    approxInstructions() const override
    {
        return static_cast<std::uint64_t>(p.rounds) *
               p.syncIntervalInstr * p.numThreads;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    OpStream
    run(ThreadId tid)
    {
        for (unsigned round = 0; round < p.rounds; ++round) {
            // The compute interval touches a little local data so
            // the cores are not purely arithmetic.
            co_yield Op::compute(p.syncIntervalInstr);
            co_yield Op::read(scratch[tid] + (round % 64) * 64, 64,
                              DataClass::Private);
            co_yield Op::barrier();
        }
    }

    std::vector<Addr> scratch;
};

WorkloadFactory::Registrar reg("syncbench",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<SyncBenchWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
