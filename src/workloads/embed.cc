/**
 * @file
 * Embedding-table serving workload (docs/serving.md): each request
 * gathers serve.pooling rows of a table block-partitioned across the
 * DIMMs, reduces them (sum pooling over serve.embedDim floats), and
 * writes the pooled vector to thread-private scratch. The gather is
 * the recommendation-inference pattern: many small reads scattered by
 * Zipfian popularity, mostly on foreign DIMMs, with a fence before
 * the reduction.
 */

#include <algorithm>

#include "workloads/arrivals.hh"
#include "workloads/op_stream.hh"
#include "workloads/serving.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class EmbedWorkload : public Workload
{
  public:
    EmbedWorkload(WorkloadParams params_,
                  const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          rows(p.serve.keys),
          rowBytes(p.serve.embedDim * 4),
          pooling(p.serve.pooling),
          perDimm((rows + p.numDimms - 1) / p.numDimms),
          plans(serving::buildPlans(p.serve, p.numThreads, pooling))
    {
        blockAddr.resize(p.numDimms);
        for (unsigned d = 0; d < p.numDimms; ++d)
            blockAddr[d] = alloc.alloc(static_cast<DimmId>(d),
                                       perDimm * rowBytes);
        // Per-thread pooled-output scratch beside the thread's slice.
        outAddr.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t)
            outAddr[t] = alloc.alloc(
                sliceHome(static_cast<ThreadId>(t)), rowBytes);
        // Replica table for hedged gathers, allocated last so every
        // primary and scratch address is unchanged when hedging is
        // off (docs/serving.md).
        if (p.serve.hedgeAfterUs > 0) {
            replicaAddr_.resize(p.numDimms);
            for (unsigned d = 0; d < p.numDimms; ++d)
                replicaAddr_[d] = alloc.alloc(static_cast<DimmId>(d),
                                              perDimm * rowBytes);
        }
        reset();
    }

    std::string name() const override { return "embed"; }

    void
    reset() override
    {
        sums.assign(p.numThreads, 0);
        // Reference: the wrap-around sum of every gathered row's
        // digest; uint64 addition commutes across threads.
        expected = 0;
        for (const auto &plan : plans)
            for (const std::uint64_t row : plan.keys)
                expected += rowDigest(row);
    }

    bool
    verify() const override
    {
        std::uint64_t total = 0;
        for (const std::uint64_t s : sums)
            total += s;
        return total == expected;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return p.serve.requests * reduceInstr();
    }

    std::uint64_t
    approxMemRefs() const override
    {
        return p.serve.requests * (pooling * refsPerRow() + 1);
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    static std::uint64_t
    rowDigest(std::uint64_t row)
    {
        return scatterHash(row ^ 0xe3bedd1feedull);
    }

    std::uint64_t
    refsPerRow() const
    {
        return (rowBytes + 63) / 64;
    }

    /** 8-wide FMA sum-pooling: pooling * dim multiply-adds. */
    std::uint64_t
    reduceInstr() const
    {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(pooling) *
                   p.serve.embedDim / 4);
    }

    DimmId
    rowDimm(std::uint64_t row) const
    {
        return static_cast<DimmId>(
            std::min<std::uint64_t>(row / perDimm, p.numDimms - 1));
    }

    Addr
    rowAddr(std::uint64_t row) const
    {
        const DimmId d = rowDimm(row);
        const std::uint64_t off =
            row - static_cast<std::uint64_t>(d) * perDimm;
        return blockAddr[d] + off * rowBytes;
    }

    /** The row's replica slot: same offset, on a DIMM half the pool
     * away so the hedged gather takes independent routes. */
    Addr
    rowReplicaAddr(std::uint64_t row) const
    {
        const DimmId d = rowDimm(row);
        const std::uint64_t off =
            row - static_cast<std::uint64_t>(d) * perDimm;
        const auto rd = static_cast<DimmId>(
            (static_cast<unsigned>(d) +
             std::max(1u, p.numDimms / 2)) % p.numDimms);
        return replicaAddr_[rd] + off * rowBytes;
    }

    void
    pushRowRefs(std::vector<MemRef> &refs, Addr base) const
    {
        for (std::uint32_t off = 0; off < rowBytes; off += 64) {
            const auto chunk = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(64, rowBytes - off));
            refs.push_back(MemRef{base + off, chunk, false,
                                  DataClass::SharedRO});
        }
    }

    OpStream
    run(ThreadId tid)
    {
        const auto &plan = plans[tid];
        const bool open = p.serve.mode == "open";
        const bool rel = p.serve.relEnabled();
        const bool hedge = p.serve.hedgeAfterUs > 0;
        for (std::size_t i = 0; i < plan.reqs.size(); ++i) {
            if (rel)
                co_yield Op::reqStartServe(
                    open ? plan.reqs[i].arrivalPs : Op::reqNow,
                    plan.reqs[i].shedAfterPs,
                    static_cast<std::int32_t>(
                        rowDimm(plan.keys[i * pooling])));
            else
                co_yield open ? Op::reqStart(plan.reqs[i].arrivalPs)
                              : Op::reqStartNow();
            std::vector<MemRef> refs;
            std::vector<MemRef> hedgeRefs;
            for (unsigned k = 0; k < pooling; ++k) {
                const std::uint64_t row = plan.keys[i * pooling + k];
                sums[tid] += rowDigest(row);
                pushRowRefs(refs, rowAddr(row));
                if (hedge)
                    pushRowRefs(hedgeRefs, rowReplicaAddr(row));
            }
            // Fence: every row must land before the reduction. A
            // hedged gather is fenced by construction and the first
            // full fanout (primary table or replica) to land wins.
            if (hedge)
                co_yield Op::memHedged(std::move(refs),
                                       std::move(hedgeRefs));
            else
                co_yield Op::mem(std::move(refs), true);
            co_yield Op::compute(reduceInstr());
            std::vector<MemRef> out;
            for (std::uint32_t off = 0; off < rowBytes; off += 64) {
                const auto chunk = static_cast<std::uint16_t>(
                    std::min<std::uint32_t>(64, rowBytes - off));
                out.push_back(MemRef{outAddr[tid] + off, chunk, true,
                                     DataClass::Private});
            }
            co_yield Op::mem(std::move(out));
            co_yield Op::reqEnd();
        }
        co_yield Op::barrier();
    }

    std::uint64_t rows;
    std::uint32_t rowBytes;
    unsigned pooling;
    std::uint64_t perDimm;
    std::vector<serving::ThreadPlan> plans;
    std::vector<std::uint64_t> sums;
    std::uint64_t expected = 0;
    std::vector<Addr> outAddr;
    std::vector<Addr> blockAddr;
    std::vector<Addr> replicaAddr_; ///< Empty unless hedging is on.
};

WorkloadFactory::Registrar reg("embed",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<EmbedWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
