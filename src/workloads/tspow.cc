/**
 * @file
 * TS.Pow: the synchronization-heavy time-series kernel SynCron uses
 * (Fig. 14-b). Threads slide windows over a partitioned series,
 * compute the per-window power, and maintain a global running
 * maximum behind fine-grained synchronization — the barrier rate is
 * what differentiates the sync schemes.
 */

#include <cmath>

#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class TsPowWorkload : public Workload
{
  public:
    static constexpr unsigned windowLen = 64;

    TsPowWorkload(WorkloadParams params_,
                  const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          seriesLen(4096ull << p.scale),
          chunkWindows(16)
    {
        seriesAddr.resize(p.numThreads);
        for (unsigned t = 0; t < p.numThreads; ++t)
            seriesAddr[t] = alloc.alloc(
                sliceHome(t), (wEnd(t) - wStart(t) + windowLen) * 4);
        globalMaxAddr = alloc.alloc(0, 64);

        Rng rng(p.seed);
        series.resize(seriesLen);
        for (auto &v : series)
            v = static_cast<float>(rng.real() * 2.0 - 1.0);
        reset();
    }

    std::string name() const override { return "tspow"; }

    void
    reset() override
    {
        globalMax = -1.0;
        computedMax = -1.0;
    }

    bool
    verify() const override
    {
        double ref = -1.0;
        for (std::uint64_t w = 0; w + windowLen <= seriesLen; ++w) {
            double pow_sum = 0;
            for (unsigned i = 0; i < windowLen; ++i)
                pow_sum += static_cast<double>(series[w + i]) *
                           series[w + i];
            ref = std::max(ref, pow_sum);
        }
        return std::abs(ref - globalMax) < 1e-9;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return seriesLen * windowLen * 2;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    std::uint64_t wStart(ThreadId t) const
    {
        return (seriesLen - windowLen + 1) * t / p.numThreads;
    }
    std::uint64_t wEnd(ThreadId t) const
    {
        return (seriesLen - windowLen + 1) * (t + 1) / p.numThreads;
    }

    OpStream
    run(ThreadId tid)
    {
        const std::uint64_t ws = wStart(tid);
        const std::uint64_t we = wEnd(tid);
        // All threads execute the same number of chunks so the
        // barriers stay balanced.
        std::uint64_t max_windows = 0;
        for (unsigned t = 0; t < p.numThreads; ++t)
            max_windows =
                std::max(max_windows, wEnd(t) - wStart(t));
        const std::uint64_t chunks =
            (max_windows + chunkWindows - 1) / chunkWindows;

        double local_max = -1.0;
        for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
            const std::uint64_t cs = ws + chunk * chunkWindows;
            const std::uint64_t ce =
                std::min(we, cs + chunkWindows);

            std::vector<MemRef> batch;
            std::uint64_t instr = 0;
            for (std::uint64_t w = cs; w < ce; ++w) {
                double pow_sum = 0;
                for (unsigned i = 0; i < windowLen; ++i)
                    pow_sum += static_cast<double>(series[w + i]) *
                               series[w + i];
                local_max = std::max(local_max, pow_sum);
                // The sliding window advances one element: one new
                // line read every 16 windows, modeled as a read of
                // the window tail.
                batch.push_back(MemRef{
                    seriesAddr[tid] +
                        static_cast<Addr>(w - ws) * 4,
                    64, false, DataClass::Private});
                instr += windowLen * 2;
            }
            if (!batch.empty()) {
                co_yield Op::compute(instr);
                co_yield Op::mem(std::move(batch));
            }

            // Fine-grained global-max update: read-modify-write on
            // the shared cell, then a barrier (SynCron's pattern).
            if (local_max > globalMax)
                globalMax = local_max;
            std::vector<MemRef> rmw;
            rmw.push_back(MemRef{globalMaxAddr, 8, false,
                                 DataClass::SharedRW});
            rmw.push_back(MemRef{globalMaxAddr, 8, true,
                                 DataClass::SharedRW});
            co_yield Op::mem(std::move(rmw), true);
            co_yield Op::barrier();
        }
        computedMax = std::max(computedMax, local_max);
    }

    std::uint64_t seriesLen;
    std::uint64_t chunkWindows;
    std::vector<float> series;
    std::vector<Addr> seriesAddr;
    Addr globalMaxAddr = 0;
    double globalMax = -1.0;
    double computedMax = -1.0;
};

WorkloadFactory::Registrar reg("tspow",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<TsPowWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
