/**
 * @file
 * Sparse matrix-vector multiplication, run as a power-iteration style
 * sequence of y = A x passes (Fig. 12's broadcast workload). Within a
 * pass the dense vector x is read-only: the baseline reaches across
 * DIMMs for foreign x elements, the broadcast variant distributes x
 * to every DIMM first and reads locally.
 */

#include <cmath>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/op_stream.hh"
#include "workloads/workload.hh"

namespace dimmlink {
namespace workloads {

namespace {

class SpmvWorkload : public Workload
{
  public:
    SpmvWorkload(WorkloadParams params_,
                 const dram::GlobalAddressMap &gmap_)
        : Workload(std::move(params_), gmap_),
          graph(Graph::rmat(static_cast<unsigned>(p.scale), 8,
                            p.seed)),
          // Arrays: 0 = x, 1 = y.
          slices(graph, p, alloc, /*prop_arrays=*/2, /*bytes=*/8),
          passes(p.rounds ? std::min(p.rounds, 6u) : 4u)
    {
        if (p.broadcastMode) {
            localCopy.resize(p.numDimms);
            for (unsigned d = 0; d < p.numDimms; ++d)
                localCopy[d] = alloc.alloc(
                    static_cast<DimmId>(d),
                    static_cast<std::uint64_t>(graph.numVertices()) *
                        8);
        }
        reset();
    }

    std::string name() const override { return "spmv"; }

    void
    reset() override
    {
        x.assign(graph.numVertices(), 1.0);
        y.assign(graph.numVertices(), 0.0);
    }

    bool
    verify() const override
    {
        // Recompute the reference passes sequentially.
        std::vector<double> rx(graph.numVertices(), 1.0);
        std::vector<double> ry(graph.numVertices(), 0.0);
        for (unsigned pass = 0; pass < passes; ++pass) {
            for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
                double sum = 0;
                for (std::uint64_t e = graph.edgeBegin(v);
                     e < graph.edgeEnd(v); ++e)
                    sum += graph.weight(e) * rx[graph.neighbor(e)];
                ry[v] = sum;
            }
            for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
                rx[v] = ry[v] / 64.0;
        }
        for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
            if (std::abs(rx[v] - x[v]) > 1e-6 * std::abs(rx[v]))
                return false;
        return true;
    }

    std::uint64_t
    approxInstructions() const override
    {
        return graph.numEdges() * 3 * passes;
    }

    std::unique_ptr<ThreadProgram>
    program(ThreadId tid) override
    {
        return dimmlink::makeProgram(run(tid));
    }

  private:
    OpStream
    run(ThreadId tid)
    {
        const std::uint32_t vs = slices.vStart(tid);
        const std::uint32_t ve = slices.vEnd(tid);
        const DimmId home = sliceHome(tid);
        const bool dimm_leader =
            tid == 0 || sliceHome(tid - 1) != home;

        for (unsigned pass = 0; pass < passes; ++pass) {
            if (p.broadcastMode) {
                if (dimm_leader)
                    co_yield Op::broadcast(slices.propAddr(0, vs),
                                           dimmBlockBytes(home));
                co_yield Op::barrier();
            }

            std::vector<MemRef> batch;
            std::uint64_t instr = 0;
            for (std::uint32_t v = vs; v < ve; ++v) {
                double sum = 0;
                const std::uint64_t eb = graph.edgeBegin(v);
                const std::uint64_t ee = graph.edgeEnd(v);
                for (std::uint64_t e = eb; e < ee; e += 8)
                    batch.push_back(MemRef{slices.edgeAddr(tid, e),
                                           64, false,
                                           DataClass::Private});
                for (std::uint64_t e = eb; e < ee; ++e) {
                    const std::uint32_t u = graph.neighbor(e);
                    sum += graph.weight(e) * x[u];
                    instr += 2;
                    if (p.broadcastMode) {
                        batch.push_back(MemRef{
                            localCopy[home] +
                                static_cast<Addr>(u) * 8,
                            8, false, DataClass::Private});
                    } else {
                        // x is read-only within the pass: SharedRO
                        // (cacheable) but scattered across DIMMs.
                        batch.push_back(
                            MemRef{slices.propAddr(0, u), 8, false,
                                   DataClass::SharedRO});
                    }
                    if (batch.size() >= 32) {
                        co_yield Op::compute(instr);
                        instr = 0;
                        co_yield Op::mem(std::move(batch));
                        batch.clear();
                    }
                }
                y[v] = sum;
                if ((v - vs) % 8 == 0)
                    batch.push_back(MemRef{slices.propAddr(1, v),
                                           64, true,
                                           DataClass::Private});
            }
            if (!batch.empty()) {
                co_yield Op::compute(instr);
                co_yield Op::mem(std::move(batch));
                batch.clear();
            }
            co_yield Op::barrier();

            // Owners scale x <- y / 64 (keeps values bounded).
            {
                std::vector<MemRef> wb;
                for (std::uint32_t v = vs; v < ve; ++v) {
                    x[v] = y[v] / 64.0;
                    if ((v - vs) % 8 == 0)
                        wb.push_back(
                            MemRef{slices.propAddr(0, v), 64, true,
                                   DataClass::SharedRW});
                    if (wb.size() >= 32) {
                        co_yield Op::mem(std::move(wb));
                        wb.clear();
                    }
                }
                if (!wb.empty())
                    co_yield Op::mem(std::move(wb));
            }
            co_yield Op::barrier();
        }
    }

    std::uint64_t
    dimmBlockBytes(DimmId d) const
    {
        std::uint64_t verts = 0;
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const DimmId h = static_cast<DimmId>(
                static_cast<std::uint64_t>(t) * p.numDimms /
                p.numThreads);
            if (h == d)
                verts += slices.vEnd(t) - slices.vStart(t);
        }
        return verts * 8;
    }

    Graph graph;
    GraphSlices slices;
    unsigned passes;
    std::vector<double> x;
    std::vector<double> y;
    std::vector<Addr> localCopy;
};

WorkloadFactory::Registrar reg("spmv",
    [](const WorkloadParams &params, const dram::GlobalAddressMap &gmap)
        -> std::unique_ptr<Workload> {
        return std::make_unique<SpmvWorkload>(params, gmap);
    });

} // namespace

} // namespace workloads
} // namespace dimmlink
