/**
 * @file
 * A CSR graph container with a deterministic R-MAT generator. The
 * paper evaluates PR/SSSP on the LiveJournal graph; we substitute a
 * scaled-down R-MAT instance with LiveJournal-like skew
 * (a=0.57, b=0.19, c=0.19, d=0.05) so the remote-access imbalance the
 * evaluation depends on is preserved (see DESIGN.md, substitutions).
 */

#ifndef DIMMLINK_WORKLOADS_GRAPH_HH
#define DIMMLINK_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace dimmlink {
namespace workloads {

class Graph
{
  public:
    /** Build an R-MAT graph with 2^scale vertices and roughly
     * edge_factor x 2^scale undirected edges. */
    static Graph rmat(unsigned scale, unsigned edge_factor,
                      std::uint64_t seed);

    /** Build a uniform random graph (Erdos-Renyi style). */
    static Graph uniform(std::uint32_t vertices,
                         std::uint64_t edges, std::uint64_t seed);

    /** 2D grid graph (stencil-like connectivity, for tests). */
    static Graph grid2d(std::uint32_t rows, std::uint32_t cols);

    std::uint32_t numVertices() const
    {
        return static_cast<std::uint32_t>(rowPtr.size() - 1);
    }
    std::uint64_t numEdges() const { return colIdx.size(); }

    /** Out-degree of @p v. */
    std::uint32_t
    degree(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(rowPtr[v + 1] - rowPtr[v]);
    }

    /** Neighbors of @p v: [begin, end) indices into colIdx/weights. */
    std::uint64_t edgeBegin(std::uint32_t v) const { return rowPtr[v]; }
    std::uint64_t edgeEnd(std::uint32_t v) const
    {
        return rowPtr[v + 1];
    }
    std::uint32_t neighbor(std::uint64_t e) const { return colIdx[e]; }
    std::uint32_t weight(std::uint64_t e) const { return weights[e]; }

    /** Reference sequential algorithms (result verification). */
    std::vector<std::uint32_t> bfsReference(std::uint32_t source) const;
    std::vector<std::uint64_t> ssspReference(std::uint32_t source)
        const;
    std::vector<double> pagerankReference(unsigned iterations,
                                          double damping) const;

  private:
    /** Finalize from an edge list (sorts, dedups, builds CSR). */
    static Graph fromEdges(
        std::uint32_t vertices,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
        Rng &rng);

    std::vector<std::uint64_t> rowPtr;
    std::vector<std::uint32_t> colIdx;
    std::vector<std::uint32_t> weights;
};

} // namespace workloads
} // namespace dimmlink

#endif // DIMMLINK_WORKLOADS_GRAPH_HH
