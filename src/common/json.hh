/**
 * @file
 * A minimal reader for the flat JSON dialect SystemConfig files use:
 * one object whose members are numbers, strings, or booleans, either
 * with dotted keys ("host.numCores") or grouped into nested section
 * objects ({"host": {"numCores": 16}}). Nested sections flatten into
 * dotted keys. Line comments (// and #) are allowed so example
 * configs can document themselves. Arrays and null are rejected —
 * config files stay a flat key/value namespace on purpose.
 */

#ifndef DIMMLINK_COMMON_JSON_HH
#define DIMMLINK_COMMON_JSON_HH

#include <string>
#include <vector>

namespace dimmlink {
namespace json {

/** One flattened member: dotted key plus the unquoted value text. */
struct Entry
{
    std::string key;
    std::string value;
    /** True when the value was a quoted string in the document. */
    bool wasString = false;
};

/**
 * Parse @p text as a flat config document. @p origin names the source
 * (file name) in error messages. fatal()s on malformed input.
 * Members are returned in document order.
 */
std::vector<Entry> parseFlat(const std::string &text,
                             const std::string &origin);

/** Read @p path and parseFlat() its contents; fatal()s on I/O error. */
std::vector<Entry> parseFlatFile(const std::string &path);

} // namespace json
} // namespace dimmlink

#endif // DIMMLINK_COMMON_JSON_HH
