/**
 * @file
 * Generic string-keyed implementation registry. Every pluggable seam
 * of the simulator (IDC fabrics, NoC topologies, host polling modes,
 * DRAM scheduling policies, workloads) registers its implementations
 * here, so adding a backend means adding one translation unit with a
 * static Registrar — no central switch to edit.
 *
 * Usage, next to the implementation:
 *
 *   namespace {
 *   FooFactory::Registrar regBar("bar", [](Args... a)
 *       -> std::unique_ptr<Foo> {
 *       return std::make_unique<BarFoo>(a...);
 *   });
 *   } // namespace
 *
 * Registration happens during static initialization; lookups are only
 * legal from main() onward. Duplicate keys panic (two implementations
 * claiming one name is a build bug); unknown keys are a user error and
 * fatal() with the list of registered names.
 */

#ifndef DIMMLINK_COMMON_FACTORY_HH
#define DIMMLINK_COMMON_FACTORY_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace dimmlink {

/**
 * The human-readable noun a Factory uses in its error messages
 * ("workload", "IDC fabric", ...). Specialize next to the interface.
 */
template <typename Interface>
struct FactoryTraits
{
    static constexpr const char *noun = "component";
};

template <typename Interface, typename... Args>
class Factory
{
  public:
    /** Creators are stateless: a captureless lambda or free function. */
    using Creator = std::unique_ptr<Interface> (*)(Args...);

    /** The process-wide registry for this interface. */
    static Factory &
    instance()
    {
        static Factory f;
        return f;
    }

    /** Register @p create under @p name; panics on duplicates. */
    void
    add(const std::string &name, Creator create)
    {
        if (!creators.emplace(name, create).second)
            panic("duplicate %s registration '%s'",
                  FactoryTraits<Interface>::noun, name.c_str());
    }

    bool
    contains(const std::string &name) const
    {
        return creators.count(name) > 0;
    }

    /** Registered names, sorted. */
    std::vector<std::string>
    known() const
    {
        std::vector<std::string> names;
        names.reserve(creators.size());
        for (const auto &[name, create] : creators)
            names.push_back(name);
        return names;
    }

    /** known() joined with ", " for error messages. */
    std::string
    knownList() const
    {
        std::string out;
        for (const auto &[name, create] : creators) {
            if (!out.empty())
                out += ", ";
            out += name;
        }
        return out;
    }

    /**
     * Build the implementation registered under @p name; fatal()s with
     * the registered names when @p name is unknown.
     */
    std::unique_ptr<Interface>
    create(const std::string &name, Args... args) const
    {
        const auto it = creators.find(name);
        if (it == creators.end())
            fatal("unknown %s '%s' (registered: %s)",
                  FactoryTraits<Interface>::noun, name.c_str(),
                  knownList().c_str());
        return it->second(std::forward<Args>(args)...);
    }

    /** Self-registration handle: declare one static instance per
     * implementation. */
    struct Registrar
    {
        Registrar(const std::string &name, Creator create)
        {
            Factory::instance().add(name, create);
        }
    };

  private:
    Factory() = default;

    std::map<std::string, Creator> creators;
};

} // namespace dimmlink

#endif // DIMMLINK_COMMON_FACTORY_HH
