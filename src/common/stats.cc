#include "common/stats.hh"

#include <cmath>

#include "common/log.hh"

namespace dimmlink {
namespace stats {

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0;
    const double mean_v = mean();
    return sumSq_ / count_ - mean_v * mean_v;
}

void
Histogram::sample(double v)
{
    ++totalCount;
    if (v < 0) {
        ++underflowCount;
        return;
    }
    // Compare before casting: converting a quotient beyond the
    // size_t range (one huge sample) or NaN to size_t is UB.
    const double q = v / bucketSize;
    if (!(q < static_cast<double>(buckets.size()))) {
        ++overflowCount;
        return;
    }
    ++buckets[static_cast<std::size_t>(q)];
}

double
Histogram::percentile(double p) const
{
    if (totalCount == 0)
        return 0;
    if (p < 0)
        p = 0;
    if (p > 1)
        p = 1;
    const double rank = p * static_cast<double>(totalCount);
    // Underflow samples rank below bucket 0; their exact values were
    // not retained, so they resolve to the histogram's lower edge.
    double cum = static_cast<double>(underflowCount);
    if (underflowCount > 0 && rank <= cum)
        return 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const auto cnt = static_cast<double>(buckets[b]);
        if (cum + cnt >= rank && cnt > 0) {
            // Interpolate within the bucket that crosses the rank.
            const double frac = (rank - cum) / cnt;
            return bucketSize * (static_cast<double>(b) + frac);
        }
        cum += cnt;
    }
    // The rank lands among overflow samples, whose exact values were
    // not retained: report the histogram's upper edge.
    return bucketSize * static_cast<double>(buckets.size());
}

void
Histogram::merge(const Histogram &o)
{
    if (o.bucketSize != bucketSize || o.buckets.size() != buckets.size())
        panic("merging histograms with different geometry "
              "(%g x %zu vs %g x %zu)", bucketSize, buckets.size(),
              o.bucketSize, o.buckets.size());
    for (std::size_t b = 0; b < buckets.size(); ++b)
        buckets[b] += o.buckets[b];
    underflowCount += o.underflowCount;
    overflowCount += o.overflowCount;
    totalCount += o.totalCount;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    underflowCount = 0;
    overflowCount = 0;
    totalCount = 0;
}

Group &
Registry::group(const std::string &name)
{
    auto it = groups.find(name);
    if (it == groups.end()) {
        it = groups.emplace(name, Group{}).first;
        it->second.name_ = name;
    }
    return it->second;
}

/** Resolve "group.stat". Stat names may themselves contain dots
 * (e.g. the serving frontend's "serve.host0.requests" is the scalar
 * "host0.requests" in group "serve"), so try every split point from
 * the rightmost dot leftwards until a (group, stat) pair matches. */
const Scalar *
Registry::findScalar(const std::string &dotted) const
{
    for (auto pos = dotted.rfind('.'); pos != std::string::npos;
         pos = pos == 0 ? std::string::npos : dotted.rfind('.', pos - 1)) {
        const auto git = groups.find(dotted.substr(0, pos));
        if (git == groups.end())
            continue;
        const auto sit = git->second.scalars_.find(dotted.substr(pos + 1));
        if (sit != git->second.scalars_.end())
            return &sit->second;
    }
    return nullptr;
}

double
Registry::scalar(const std::string &dotted) const
{
    if (dotted.find('.') == std::string::npos)
        panic("malformed stat name '%s'", dotted.c_str());
    const Scalar *s = findScalar(dotted);
    if (!s)
        panic("unknown stat '%s'", dotted.c_str());
    return s->value();
}

bool
Registry::hasScalar(const std::string &dotted) const
{
    return findScalar(dotted) != nullptr;
}

double
Registry::sumScalar(const std::string &group_prefix,
                    const std::string &stat) const
{
    double sum = 0;
    for (const auto &[name, group] : groups) {
        if (name.rfind(group_prefix, 0) != 0)
            continue;
        const auto sit = group.scalars_.find(stat);
        if (sit != group.scalars_.end())
            sum += sit->second.value();
    }
    return sum;
}

void
Registry::resetAll()
{
    for (auto &[name, group] : groups)
        group.reset();
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &[gname, group] : groups) {
        for (const auto &[sname, s] : group.scalars_) {
            if (s.value() != 0)
                os << gname << '.' << sname << " = " << s.value() << '\n';
        }
        for (const auto &[dname, d] : group.distributions()) {
            if (d.count() == 0)
                continue;
            os << gname << '.' << dname << " : count=" << d.count()
               << " mean=" << d.mean() << " min=" << d.min()
               << " max=" << d.max()
               << " stddev=" << std::sqrt(d.variance()) << '\n';
        }
        for (const auto &[hname, h] : group.histograms()) {
            if (h.total() == 0)
                continue;
            os << gname << '.' << hname << " : total=" << h.total()
               << " underflow=" << h.underflow()
               << " overflow=" << h.overflow()
               << " p50=" << h.percentile(0.50)
               << " p95=" << h.percentile(0.95)
               << " p99=" << h.percentile(0.99) << '\n';
        }
    }
}

Scalar &
Group::scalar(const std::string &name)
{
    return scalars_[name];
}

Distribution &
Group::distribution(const std::string &name)
{
    return dists_[name];
}

Histogram &
Group::histogram(const std::string &name, double bucket_size,
                 unsigned num_buckets)
{
    auto it = hists_.find(name);
    if (it == hists_.end())
        it = hists_.emplace(name, Histogram(bucket_size,
                                            num_buckets)).first;
    return it->second;
}

void
Group::reset()
{
    for (auto &[n, s] : scalars_)
        s.reset();
    for (auto &[n, d] : dists_)
        d.reset();
    for (auto &[n, h] : hists_)
        h.reset();
}

} // namespace stats
} // namespace dimmlink
