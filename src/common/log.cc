#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dimmlink {

namespace {

LogLevel globalLevel = LogLevel::Warn;

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

std::string
strFormat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace dimmlink
