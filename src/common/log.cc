#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace dimmlink {

namespace {

LogLevel globalLevel = LogLevel::Warn;

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

namespace {

std::map<std::string, std::uint64_t> &
warnCounts()
{
    static std::map<std::string, std::uint64_t> counts;
    return counts;
}

// Warnings can originate from concurrent shards of the parallel
// kernel; the counter map is the only logging state they share.
std::mutex &
warnMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
warnRateLimited(const char *key, unsigned every, const char *fmt, ...)
{
    std::uint64_t n = 0;
    {
        std::lock_guard<std::mutex> lock(warnMutex());
        n = ++warnCounts()[key];
    }
    const bool print =
        n == 1 || (every != 0 && n % every == 0);
    if (!print || globalLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (n == 1)
        std::fprintf(stderr, "warn: %s (repeats of '%s' are "
                     "rate-limited)\n", msg.c_str(), key);
    else
        std::fprintf(stderr, "warn: %s (occurrence %llu of '%s')\n",
                     msg.c_str(),
                     static_cast<unsigned long long>(n), key);
}

std::uint64_t
warnCount(const char *key)
{
    std::lock_guard<std::mutex> lock(warnMutex());
    const auto &counts = warnCounts();
    const auto it = counts.find(key);
    return it == counts.end() ? 0 : it->second;
}

void
resetWarnCounts()
{
    std::lock_guard<std::mutex> lock(warnMutex());
    warnCounts().clear();
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

std::string
strFormat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace dimmlink
