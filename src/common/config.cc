#include "common/config.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {

const char *
toString(IdcMethod m)
{
    switch (m) {
      case IdcMethod::CpuForwarding: return "MCN";
      case IdcMethod::DedicatedBus: return "AIM";
      case IdcMethod::ChannelBroadcast: return "ABC-DIMM";
      case IdcMethod::DimmLink: return "DIMM-Link";
    }
    return "?";
}

const char *
toString(PollingMode m)
{
    switch (m) {
      case PollingMode::Baseline: return "Base";
      case PollingMode::BaselineInterrupt: return "Base+Itrpt";
      case PollingMode::Proxy: return "P-P";
      case PollingMode::ProxyInterrupt: return "P-P+Itrpt";
    }
    return "?";
}

const char *
toString(Topology t)
{
    switch (t) {
      case Topology::HalfRing: return "HalfRing";
      case Topology::Ring: return "Ring";
      case Topology::Mesh: return "Mesh";
      case Topology::Torus: return "Torus";
    }
    return "?";
}

const char *
toString(SyncScheme s)
{
    switch (s) {
      case SyncScheme::Centralized: return "Centralized";
      case SyncScheme::Hierarchical: return "Hierarchical";
    }
    return "?";
}

unsigned
SystemConfig::groupSize() const
{
    if (dimmsPerGroup != 0)
        return dimmsPerGroup;
    // Paper's organization: one DL group per side of the CPU socket.
    // A 4-DIMM system forms a single group; larger systems form two.
    if (numDimms <= 4)
        return numDimms;
    return numDimms / 2;
}

unsigned
SystemConfig::numGroups() const
{
    return divCeil(numDimms, groupSize());
}

void
SystemConfig::validate() const
{
    if (numDimms == 0)
        fatal("numDimms must be positive");
    if (numChannels == 0 || numDimms % numChannels != 0)
        fatal("numDimms (%u) must be a multiple of numChannels (%u)",
              numDimms, numChannels);
    if (dimmsPerChannel() > 3 && idcMethod == IdcMethod::ChannelBroadcast)
        warn("more than 3 DIMMs per channel is not practical for "
             "DDR4 multi-drop buses (paper Section II-B)");
    if (numDimms % groupSize() != 0)
        fatal("numDimms (%u) must be a multiple of the group size (%u)",
              numDimms, groupSize());
    if (link.topology == Topology::Mesh ||
        link.topology == Topology::Torus) {
        if (groupSize() % 2 != 0 && groupSize() > 2)
            fatal("mesh/torus groups need an even number of DIMMs, "
                  "got %u", groupSize());
    }
    if (host.numChannels < numChannels)
        fatal("host provides %u channels but the system needs %u",
              host.numChannels, numChannels);
    if (dimm.maxOutstanding == 0)
        fatal("NMP cores need at least one MSHR");
}

SystemConfig
SystemConfig::preset(const std::string &name)
{
    SystemConfig cfg;
    if (name == "4D-2C") {
        cfg.numDimms = 4;
        cfg.numChannels = 2;
    } else if (name == "8D-4C") {
        cfg.numDimms = 8;
        cfg.numChannels = 4;
    } else if (name == "12D-6C") {
        cfg.numDimms = 12;
        cfg.numChannels = 6;
    } else if (name == "16D-8C") {
        cfg.numDimms = 16;
        cfg.numChannels = 8;
    } else {
        fatal("unknown system preset '%s'", name.c_str());
    }
    cfg.host.numChannels = cfg.numChannels;
    return cfg;
}

void
SystemConfig::print(std::ostream &os) const
{
    os << "System configuration (Table V reconstruction)\n"
       << "  DIMMs: " << numDimms << "  channels: " << numChannels
       << "  DIMMs/channel: " << dimmsPerChannel()
       << "  DL groups: " << numGroups() << " x " << groupSize() << "\n"
       << "  IDC method: " << toString(idcMethod)
       << "  polling: " << toString(pollingMode)
       << "  sync: " << toString(syncScheme)
       << "  mapping: " << (distanceAwareMapping ? "distance-aware"
                                                 : "static") << "\n"
       << "  Host: " << host.numCores << " OoO cores @ "
       << host.coreFreqMHz / 1000.0 << " GHz, "
       << host.numChannels << " channels @ " << host.channelGBps
       << " GB/s\n"
       << "  NMP DIMM: " << dimm.numCores << " cores @ "
       << dimm.coreFreqMHz / 1000.0 << " GHz, L1 "
       << dimm.l1Bytes / 1024 << " KB, shared L2 "
       << dimm.l2Bytes / 1024 << " KB, " << dimm.numRanks
       << " ranks\n"
       << "  DIMM-Link: " << link.linkGBps << " GB/s/dir per link, "
       << toString(link.topology) << ", " << link.flitBits
       << "-bit flits, " << link.bufferFlits << "-flit buffers\n"
       << "  AIM bus: " << bus.busGBps << " GB/s shared\n"
       << "  DRAM preset: " << dramPreset << "\n";
}

} // namespace dimmlink
