#include "common/config.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "common/bitfield.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "dram/sched_policy.hh"
#include "dram/timing.hh"
#include "fault/fault_model.hh"
#include "proto/dll.hh"
#include "rack/inter_host_fabric.hh"

namespace dimmlink {

const char *
toString(IdcMethod m)
{
    switch (m) {
      case IdcMethod::CpuForwarding: return "MCN";
      case IdcMethod::DedicatedBus: return "AIM";
      case IdcMethod::ChannelBroadcast: return "ABC-DIMM";
      case IdcMethod::DimmLink: return "DIMM-Link";
    }
    return "?";
}

const char *
toString(PollingMode m)
{
    switch (m) {
      case PollingMode::Baseline: return "Base";
      case PollingMode::BaselineInterrupt: return "Base+Itrpt";
      case PollingMode::Proxy: return "P-P";
      case PollingMode::ProxyInterrupt: return "P-P+Itrpt";
    }
    return "?";
}

const char *
toString(Topology t)
{
    switch (t) {
      case Topology::HalfRing: return "HalfRing";
      case Topology::Ring: return "Ring";
      case Topology::Mesh: return "Mesh";
      case Topology::Torus: return "Torus";
    }
    return "?";
}

const char *
toString(SyncScheme s)
{
    switch (s) {
      case SyncScheme::Centralized: return "Centralized";
      case SyncScheme::Hierarchical: return "Hierarchical";
    }
    return "?";
}

namespace {

/** Lowercase with punctuation stripped: "P-P+Itrpt" -> "ppitrpt". */
std::string
normalized(const std::string &s)
{
    std::string out;
    for (const char c : s)
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

IdcMethod
idcMethodFromString(const std::string &s)
{
    const std::string n = normalized(s);
    if (n == "mcn" || n == "cpuforwarding")
        return IdcMethod::CpuForwarding;
    if (n == "aim" || n == "dedicatedbus")
        return IdcMethod::DedicatedBus;
    if (n == "abcdimm" || n == "abc" || n == "channelbroadcast")
        return IdcMethod::ChannelBroadcast;
    if (n == "dimmlink" || n == "dl")
        return IdcMethod::DimmLink;
    fatal("unknown IDC method '%s' (valid: MCN, AIM, ABC-DIMM, "
          "DIMM-Link)", s.c_str());
}

PollingMode
pollingModeFromString(const std::string &s)
{
    const std::string n = normalized(s);
    if (n == "base" || n == "baseline")
        return PollingMode::Baseline;
    if (n == "baseitrpt" || n == "baselineinterrupt")
        return PollingMode::BaselineInterrupt;
    if (n == "pp" || n == "proxy")
        return PollingMode::Proxy;
    if (n == "ppitrpt" || n == "proxyitrpt" || n == "proxyinterrupt")
        return PollingMode::ProxyInterrupt;
    fatal("unknown polling mode '%s' (valid: Base, Base+Itrpt, P-P, "
          "P-P+Itrpt)", s.c_str());
}

Topology
topologyFromString(const std::string &s)
{
    const std::string n = normalized(s);
    if (n == "halfring" || n == "chain")
        return Topology::HalfRing;
    if (n == "ring")
        return Topology::Ring;
    if (n == "mesh")
        return Topology::Mesh;
    if (n == "torus")
        return Topology::Torus;
    fatal("unknown topology '%s' (valid: HalfRing, Ring, Mesh, Torus)",
          s.c_str());
}

SyncScheme
syncSchemeFromString(const std::string &s)
{
    const std::string n = normalized(s);
    if (n == "centralized" || n == "central")
        return SyncScheme::Centralized;
    if (n == "hierarchical" || n == "hier")
        return SyncScheme::Hierarchical;
    fatal("unknown sync scheme '%s' (valid: Centralized, Hierarchical)",
          s.c_str());
}

namespace {

// ---- config key schema -------------------------------------------------
//
// One Field per knob: the dotted key, a getter producing the value's
// JSON token, and a setter parsing the config-file spelling. The
// parse/format pairs below are chosen by overload on the member type.

[[noreturn]] void
badValue(const char *key, const std::string &v, const char *expected)
{
    fatal("config key '%s': cannot parse '%s' as %s", key, v.c_str(),
          expected);
}

std::uint64_t
parseValue(const std::string &v, const char *key, std::uint64_t)
{
    char *end = nullptr;
    if (!v.empty() && v[0] == '-')
        badValue(key, v, "a non-negative integer");
    const unsigned long long r = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        badValue(key, v, "a non-negative integer");
    return r;
}

unsigned
parseValue(const std::string &v, const char *key, unsigned)
{
    const std::uint64_t r = parseValue(v, key, std::uint64_t{});
    if (r > 0xffffffffull)
        badValue(key, v, "a 32-bit unsigned integer");
    return static_cast<unsigned>(r);
}

double
parseValue(const std::string &v, const char *key, double)
{
    char *end = nullptr;
    const double r = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        badValue(key, v, "a number");
    return r;
}

bool
parseValue(const std::string &v, const char *key, bool)
{
    const std::string n = normalized(v);
    if (n == "true" || n == "1" || n == "yes" || n == "on")
        return true;
    if (n == "false" || n == "0" || n == "no" || n == "off")
        return false;
    badValue(key, v, "a boolean (true/false)");
}

std::string
parseValue(const std::string &v, const char *, const std::string &)
{
    return v;
}

IdcMethod
parseValue(const std::string &v, const char *, IdcMethod)
{
    return idcMethodFromString(v);
}

PollingMode
parseValue(const std::string &v, const char *, PollingMode)
{
    return pollingModeFromString(v);
}

Topology
parseValue(const std::string &v, const char *, Topology)
{
    return topologyFromString(v);
}

SyncScheme
parseValue(const std::string &v, const char *, SyncScheme)
{
    return syncSchemeFromString(v);
}

std::string
formatValue(unsigned v)
{
    return std::to_string(v);
}

std::string
formatValue(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
formatValue(bool v)
{
    return v ? "true" : "false";
}

/** Shortest decimal form that parses back to exactly @p v. */
std::string
formatValue(double v)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
quoted(const std::string &s)
{
    return "\"" + s + "\"";
}

std::string
formatValue(const std::string &v)
{
    return quoted(v);
}

std::string formatValue(IdcMethod v) { return quoted(toString(v)); }
std::string formatValue(PollingMode v) { return quoted(toString(v)); }
std::string formatValue(Topology v) { return quoted(toString(v)); }
std::string formatValue(SyncScheme v) { return quoted(toString(v)); }

struct Field
{
    const char *key;
    std::string (*get)(const SystemConfig &);
    void (*set)(SystemConfig &, const std::string &);
    /** Part of describe()/describeEntries()? The obs.* keys are not:
     * tracing never changes simulation results, and keeping them out
     * of the config header means stats JSON is byte-identical whether
     * a run was traced or not. */
    bool describable = true;
};

#define CFG_FIELD(key, expr)                                            \
    Field{key,                                                          \
          [](const SystemConfig &c) { return formatValue(c.expr); },    \
          [](SystemConfig &c, const std::string &v) {                   \
              c.expr = parseValue(v, key, c.expr);                      \
          },                                                            \
          true}

#define CFG_FIELD_HIDDEN(key, expr)                                     \
    Field{key,                                                          \
          [](const SystemConfig &c) { return formatValue(c.expr); },    \
          [](SystemConfig &c, const std::string &v) {                   \
              c.expr = parseValue(v, key, c.expr);                      \
          },                                                            \
          false}

const std::vector<Field> &
fields()
{
    static const std::vector<Field> table = {
        CFG_FIELD("system.numDimms", numDimms),
        CFG_FIELD("system.numChannels", numChannels),
        CFG_FIELD("system.dimmsPerGroup", dimmsPerGroup),
        CFG_FIELD("system.idcMethod", idcMethod),
        CFG_FIELD("system.pollingMode", pollingMode),
        CFG_FIELD("system.syncScheme", syncScheme),
        CFG_FIELD("system.distanceAwareMapping", distanceAwareMapping),
        CFG_FIELD("system.profileFraction", profileFraction),
        CFG_FIELD("system.dramPreset", dramPreset),
        CFG_FIELD("system.dramScheduler", dramScheduler),
        CFG_FIELD("system.seed", seed),

        // The `dram` section aliases into the timing-preset registry:
        // `dram.standard = ddr5` resolves to that family's default
        // speed grade, an exact grade name passes through. Hidden so
        // the config header embedded in stats JSON (and with it the
        // default path's byte-identity) is unchanged;
        // `system.dramPreset` stays the describable source of truth.
        Field{"dram.standard",
              [](const SystemConfig &c) {
                  return formatValue(
                      dram::Timing::familyOf(c.dramPreset));
              },
              [](SystemConfig &c, const std::string &v) {
                  c.dramPreset = dram::Timing::resolveName(
                      parseValue(v, "dram.standard", std::string()));
              },
              false},

        CFG_FIELD("host.numCores", host.numCores),
        CFG_FIELD("host.coreFreqMHz", host.coreFreqMHz),
        CFG_FIELD("host.computeIpc", host.computeIpc),
        CFG_FIELD("host.numChannels", host.numChannels),
        CFG_FIELD("host.channelGBps", host.channelGBps),
        CFG_FIELD("host.l1Bytes", host.l1Bytes),
        CFG_FIELD("host.l1Assoc", host.l1Assoc),
        CFG_FIELD("host.llcBytes", host.llcBytes),
        CFG_FIELD("host.llcAssoc", host.llcAssoc),
        CFG_FIELD("host.lineBytes", host.lineBytes),
        CFG_FIELD("host.l1LatencyPs", host.l1LatencyPs),
        CFG_FIELD("host.llcLatencyPs", host.llcLatencyPs),
        CFG_FIELD("host.forwardLatencyPs", host.forwardLatencyPs),
        CFG_FIELD("host.interruptLatencyPs", host.interruptLatencyPs),
        CFG_FIELD("host.pollIntervalPs", host.pollIntervalPs),
        CFG_FIELD("host.pollReadBytes", host.pollReadBytes),
        CFG_FIELD("host.pollChannelPs", host.pollChannelPs),
        CFG_FIELD("host.pollThreads", host.pollThreads),
        CFG_FIELD("host.forwardIssuePs", host.forwardIssuePs),

        CFG_FIELD("dimm.numCores", dimm.numCores),
        CFG_FIELD("dimm.coreFreqMHz", dimm.coreFreqMHz),
        CFG_FIELD("dimm.computeIpc", dimm.computeIpc),
        CFG_FIELD("dimm.l1Bytes", dimm.l1Bytes),
        CFG_FIELD("dimm.l1Assoc", dimm.l1Assoc),
        CFG_FIELD("dimm.l2Bytes", dimm.l2Bytes),
        CFG_FIELD("dimm.l2Assoc", dimm.l2Assoc),
        CFG_FIELD("dimm.lineBytes", dimm.lineBytes),
        CFG_FIELD("dimm.l1LatencyPs", dimm.l1LatencyPs),
        CFG_FIELD("dimm.l2LatencyPs", dimm.l2LatencyPs),
        CFG_FIELD("dimm.maxOutstanding", dimm.maxOutstanding),
        CFG_FIELD("dimm.numRanks", dimm.numRanks),
        CFG_FIELD("dimm.capacityBytes", dimm.capacityBytes),

        CFG_FIELD("link.linkGBps", link.linkGBps),
        CFG_FIELD("link.routerLatencyPs", link.routerLatencyPs),
        CFG_FIELD("link.wireLatencyPs", link.wireLatencyPs),
        CFG_FIELD("link.bufferFlits", link.bufferFlits),
        CFG_FIELD("link.flitBits", link.flitBits),
        CFG_FIELD("link.retryTimeoutPs", link.retryTimeoutPs),
        CFG_FIELD("link.maxRetries", link.maxRetries),
        CFG_FIELD("link.retryWindow", link.retryWindow),
        CFG_FIELD("link.topology", link.topology),

        CFG_FIELD("bus.busGBps", bus.busGBps),
        CFG_FIELD("bus.arbitrationPs", bus.arbitrationPs),

        CFG_FIELD("faults.model", faults.model),
        CFG_FIELD("faults.ber", faults.ber),
        CFG_FIELD("faults.seed", faults.seed),
        CFG_FIELD("faults.burstProb", faults.burstProb),
        CFG_FIELD("faults.burstLen", faults.burstLen),
        CFG_FIELD("faults.degradeFactor", faults.degradeFactor),
        CFG_FIELD("faults.stuckAtPs", faults.stuckAtPs),
        CFG_FIELD("faults.stuckForPs", faults.stuckForPs),
        CFG_FIELD("faults.stuckPeriodPs", faults.stuckPeriodPs),
        CFG_FIELD("faults.linkFilter", faults.linkFilter),
        CFG_FIELD_HIDDEN("faults.suspectAfter", faults.suspectAfter),
        CFG_FIELD_HIDDEN("faults.reprobeIntervalPs",
                         faults.reprobeIntervalPs),
        CFG_FIELD_HIDDEN("faults.onExhausted", faults.onExhausted),

        CFG_FIELD("serve.mode", serve.mode),
        CFG_FIELD("serve.offeredQps", serve.offeredQps),
        CFG_FIELD("serve.requests", serve.requests),
        CFG_FIELD("serve.seed", serve.seed),
        CFG_FIELD("serve.keys", serve.keys),
        CFG_FIELD("serve.zipfTheta", serve.zipfTheta),
        CFG_FIELD("serve.scramble", serve.scramble),
        CFG_FIELD("serve.getFraction", serve.getFraction),
        CFG_FIELD("serve.valueBytes", serve.valueBytes),
        CFG_FIELD("serve.embedDim", serve.embedDim),
        CFG_FIELD("serve.pooling", serve.pooling),
        CFG_FIELD("serve.burstFactor", serve.burstFactor),
        CFG_FIELD("serve.burstPeriodPs", serve.burstPeriodPs),
        CFG_FIELD("serve.burstLenPs", serve.burstLenPs),
        CFG_FIELD("serve.latBucketPs", serve.latBucketPs),
        CFG_FIELD("serve.latBuckets", serve.latBuckets),
        // Hidden like rack.*: a run with the reliability layer off
        // must dump byte-identical stats JSON to a build without it.
        CFG_FIELD_HIDDEN("serve.deadlineUs", serve.deadlineUs),
        CFG_FIELD_HIDDEN("serve.maxRetries", serve.maxRetries),
        CFG_FIELD_HIDDEN("serve.backoffUs", serve.backoffUs),
        CFG_FIELD_HIDDEN("serve.hedgeAfterUs", serve.hedgeAfterUs),
        CFG_FIELD_HIDDEN("serve.maxInflight", serve.maxInflight),

        CFG_FIELD("energy.linkPjPerBit", energy.linkPjPerBit),
        CFG_FIELD("energy.ddrRdWrPjPerBit", energy.ddrRdWrPjPerBit),
        CFG_FIELD("energy.busIoPjPerBit", energy.busIoPjPerBit),
        CFG_FIELD("energy.activateNj", energy.activateNj),
        CFG_FIELD("energy.nmpCoreWatt", energy.nmpCoreWatt),
        CFG_FIELD("energy.hostForwardNjPerPkt",
                  energy.hostForwardNjPerPkt),
        CFG_FIELD("energy.hostPollNj", energy.hostPollNj),
        CFG_FIELD("energy.dedicatedBusPjPerBit",
                  energy.dedicatedBusPjPerBit),

        CFG_FIELD_HIDDEN("obs.trace", obs.trace),
        CFG_FIELD_HIDDEN("obs.traceOut", obs.traceOut),
        CFG_FIELD_HIDDEN("obs.categories", obs.categories),
        CFG_FIELD_HIDDEN("obs.sampleIntervalPs", obs.sampleIntervalPs),
        CFG_FIELD_HIDDEN("obs.sampleOut", obs.sampleOut),
        CFG_FIELD_HIDDEN("obs.ringCapacity", obs.ringCapacity),

        CFG_FIELD_HIDDEN("watchdog.stallPs", watchdog.stallPs),

        CFG_FIELD_HIDDEN("sim.threads", sim.threads),
        CFG_FIELD_HIDDEN("sim.shard", sim.shard),
        CFG_FIELD_HIDDEN("sim.lookaheadPs", sim.lookaheadPs),

        // Hidden like sim.*: a single-host config (rack.hosts = 1)
        // must dump byte-identical stats JSON to a build without the
        // rack layer.
        CFG_FIELD_HIDDEN("rack.hosts", rack.hosts),
        CFG_FIELD_HIDDEN("rack.fabric", rack.fabric),
        CFG_FIELD_HIDDEN("rack.idcMode", rack.idcMode),
        CFG_FIELD_HIDDEN("rack.latencyPs", rack.latencyPs),
        CFG_FIELD_HIDDEN("rack.switchHopPs", rack.switchHopPs),
        CFG_FIELD_HIDDEN("rack.portGBps", rack.portGBps),
        CFG_FIELD_HIDDEN("rack.pooledGBps", rack.pooledGBps),
        CFG_FIELD_HIDDEN("rack.groupsPerHost", rack.groupsPerHost),
        CFG_FIELD_HIDDEN("rack.hostDownId", rack.hostDownId),
        CFG_FIELD_HIDDEN("rack.hostDownAtPs", rack.hostDownAtPs),
        CFG_FIELD_HIDDEN("rack.hostDownForPs", rack.hostDownForPs),
        CFG_FIELD_HIDDEN("rack.nodeDownId", rack.nodeDownId),
        CFG_FIELD_HIDDEN("rack.nodeDownAtPs", rack.nodeDownAtPs),
        CFG_FIELD_HIDDEN("rack.nodeDownForPs", rack.nodeDownForPs),
    };
    return table;
}

#undef CFG_FIELD
#undef CFG_FIELD_HIDDEN

/** Shared cache-geometry constraints (mirrors the Cache ctor checks,
 * surfaced here so a bad config fails before any component builds). */
void
validateCache(const char *what, unsigned bytes, unsigned assoc,
              unsigned line)
{
    if (line < 8 || !isPow2(line))
        fatal("%s: line size %u must be a power of two >= 8", what,
              line);
    if (assoc == 0)
        fatal("%s: associativity must be positive", what);
    if (bytes == 0 || bytes % (assoc * line) != 0)
        fatal("%s: %u bytes do not divide into %u ways of %u-byte "
              "lines", what, bytes, assoc, line);
    const unsigned sets = bytes / (assoc * line);
    if (!isPow2(sets))
        fatal("%s: set count %u must be a power of two", what, sets);
}

} // namespace

unsigned
SystemConfig::groupSize() const
{
    if (dimmsPerGroup != 0)
        return dimmsPerGroup;
    // Paper's organization: one DL group per side of the CPU socket.
    // A 4-DIMM system forms a single group; larger systems form two.
    if (numDimms <= 4)
        return numDimms;
    return numDimms / 2;
}

unsigned
SystemConfig::numGroups() const
{
    return divCeil(numDimms, groupSize());
}

void
SystemConfig::validate() const
{
    // System shape: DIMMs, channels, groups.
    if (numDimms == 0)
        fatal("numDimms must be positive");
    if (numChannels == 0 || numDimms % numChannels != 0)
        fatal("numDimms (%u) must be a multiple of numChannels (%u)",
              numDimms, numChannels);
    if (dimmsPerChannel() > 3 && idcMethod == IdcMethod::ChannelBroadcast)
        warn("more than 3 DIMMs per channel is not practical for "
             "DDR4 multi-drop buses (paper Section II-B)");
    if (numDimms % groupSize() != 0)
        fatal("numDimms (%u) must be a multiple of the group size (%u)",
              numDimms, groupSize());
    if (host.numChannels < numChannels)
        fatal("host provides %u channels but the system needs %u",
              host.numChannels, numChannels);

    // Topology vs. group shape.
    if (link.topology == Topology::Mesh ||
        link.topology == Topology::Torus) {
        if (groupSize() % 2 != 0 && groupSize() > 2)
            fatal("mesh/torus groups need an even number of DIMMs, "
                  "got %u", groupSize());
    }
    if (link.linkGBps <= 0)
        fatal("link.linkGBps must be positive, got %g", link.linkGBps);
    if (link.flitBits == 0 || link.flitBits % 8 != 0)
        fatal("link.flitBits (%u) must be a positive multiple of 8",
              link.flitBits);
    if (link.bufferFlits == 0)
        fatal("link.bufferFlits must be positive");

    // Address map: the DIMM-id bits sit above the capacity bits, so
    // per-DIMM capacity must be a power of two and line-aligned.
    if (!isPow2(dimm.capacityBytes))
        fatal("dimm.capacityBytes (%llu) must be a power of two "
              "(the DIMM id occupies the high address bits)",
              static_cast<unsigned long long>(dimm.capacityBytes));
    if (dimm.capacityBytes % dimm.lineBytes != 0)
        fatal("dimm.capacityBytes must be a multiple of the line size");

    // Cache geometry (checked here so errors name the config keys).
    validateCache("host L1", host.l1Bytes, host.l1Assoc,
                  host.lineBytes);
    validateCache("host LLC", host.llcBytes, host.llcAssoc,
                  host.lineBytes);
    validateCache("NMP L1", dimm.l1Bytes, dimm.l1Assoc,
                  dimm.lineBytes);
    validateCache("NMP L2", dimm.l2Bytes, dimm.l2Assoc,
                  dimm.lineBytes);

    // Host and DIMM resources.
    if (host.numCores == 0 || dimm.numCores == 0)
        fatal("host and DIMM core counts must be positive");
    if (host.coreFreqMHz <= 0 || dimm.coreFreqMHz <= 0)
        fatal("core frequencies must be positive");
    if (host.channelGBps <= 0 || bus.busGBps <= 0)
        fatal("channel and bus bandwidths must be positive");
    if (host.pollThreads == 0)
        fatal("host.pollThreads must be positive (the forwarder "
              "issues through the polling threads)");
    if (host.pollIntervalPs == 0)
        fatal("host.pollIntervalPs must be positive");
    if (dimm.maxOutstanding == 0)
        fatal("NMP cores need at least one MSHR");
    if (dimm.numRanks == 0)
        fatal("dimm.numRanks must be positive");

    // Registry-keyed names, checked here so a bad config fails with
    // the valid alternatives before any component builds.
    const auto &sched = dram::SchedPolicyFactory::instance();
    if (!sched.contains(dramScheduler))
        fatal("unknown DRAM scheduling policy '%s' (registered: %s)",
              dramScheduler.c_str(), sched.knownList().c_str());
    const auto &timings = dram::TimingFactory::instance();
    if (!timings.contains(dramPreset))
        fatal("unknown DRAM timing preset '%s' (registered: %s)",
              dramPreset.c_str(), timings.knownList().c_str());

    // DLL retry window: the selective-repeat dedup logic needs the
    // old and new halves of the 16-bit sequence space to stay
    // disjoint.
    if (link.retryWindow == 0 ||
        link.retryWindow > proto::RetrySender::maxWindow)
        fatal("link.retryWindow (%u) must be within [1, %u]",
              link.retryWindow, proto::RetrySender::maxWindow);

    // Fault injection.
    const auto &fm = fault::FaultModelFactory::instance();
    if (!fm.contains(faults.model))
        fatal("unknown fault model '%s' (registered: %s)",
              faults.model.c_str(), fm.knownList().c_str());
    if (faults.ber < 0.0 || faults.ber >= 1.0)
        fatal("faults.ber (%g) must be within [0, 1)", faults.ber);
    if (faults.burstProb < 0.0 || faults.burstProb > 1.0)
        fatal("faults.burstProb (%g) must be within [0, 1]",
              faults.burstProb);
    if (faults.burstLen == 0)
        fatal("faults.burstLen must be positive");
    if (faults.degradeFactor <= 0.0 || faults.degradeFactor > 1.0)
        fatal("faults.degradeFactor (%g) must be within (0, 1]",
              faults.degradeFactor);
    if (faults.model == "ber" || faults.model == "burst") {
        if (faults.ber == 0.0)
            warn("fault model '%s' with faults.ber = 0 injects "
                 "nothing", faults.model.c_str());
    }
    if (faults.suspectAfter == 0)
        fatal("faults.suspectAfter must be positive");
    if (faults.reprobeIntervalPs == 0)
        fatal("faults.reprobeIntervalPs must be positive");
    if (faults.onExhausted != "failover" && faults.onExhausted != "drop"
        && faults.onExhausted != "panic")
        fatal("faults.onExhausted must be one of failover, drop, "
              "panic (got '%s')", faults.onExhausted.c_str());

    // Serving frontend.
    if (serve.mode != "open" && serve.mode != "closed")
        fatal("serve.mode must be 'open' or 'closed' (got '%s')",
              serve.mode.c_str());
    if (serve.offeredQps <= 0)
        fatal("serve.offeredQps (%g) must be positive",
              serve.offeredQps);
    if (serve.requests == 0)
        fatal("serve.requests must be positive");
    if (serve.keys == 0)
        fatal("serve.keys must be positive");
    if (serve.zipfTheta < 0.0 || serve.zipfTheta >= 1.0)
        fatal("serve.zipfTheta (%g) must be within [0, 1) (the YCSB "
              "zipfian generator's range)", serve.zipfTheta);
    if (serve.getFraction < 0.0 || serve.getFraction > 1.0)
        fatal("serve.getFraction (%g) must be within [0, 1]",
              serve.getFraction);
    if (serve.valueBytes == 0)
        fatal("serve.valueBytes must be positive");
    if (serve.embedDim == 0 || serve.pooling == 0)
        fatal("serve.embedDim and serve.pooling must be positive");
    if (serve.burstFactor < 1.0)
        fatal("serve.burstFactor (%g) must be >= 1 (it multiplies "
              "the base rate during bursts)", serve.burstFactor);
    if (serve.burstPeriodPs != 0 &&
        (serve.burstLenPs == 0 || serve.burstLenPs >= serve.burstPeriodPs))
        fatal("serve.burstLenPs must be within (0, burstPeriodPs) "
              "when bursty phases are on");
    if (serve.latBucketPs == 0 || serve.latBuckets == 0)
        fatal("serve.latBucketPs and serve.latBuckets must be "
              "positive");
    if (serve.deadlineUs < 0 || serve.backoffUs < 0 ||
        serve.hedgeAfterUs < 0)
        fatal("serve.deadlineUs, serve.backoffUs and "
              "serve.hedgeAfterUs must be non-negative");
    if (serve.maxRetries > 0 && serve.backoffUs <= 0)
        fatal("serve.maxRetries = %u needs a positive serve.backoffUs "
              "(the retry delay doubles from it)", serve.maxRetries);
    if (serve.maxInflight > 0 && serve.mode != "open")
        fatal("serve.maxInflight (load shedding) needs serve.mode = "
              "open: closed-loop threads never queue arrivals");

    // Mapping knobs.
    if (profileFraction < 0.0 || profileFraction > 1.0)
        fatal("profileFraction (%g) must be within [0, 1]",
              profileFraction);

    // Parallel execution engine.
    if (sim.shard != "none" && sim.shard != "group")
        fatal("sim.shard must be 'none' or 'group' (got '%s')",
              sim.shard.c_str());
    if (sim.threads == 0)
        fatal("sim.threads must be positive");
    if (sim.threads > 1 && !sharded())
        fatal("sim.threads = %u needs sim.shard = group (the "
              "sequential kernel has nothing to parallelize)",
              sim.threads);
    if (sharded()) {
        if (idcMethod != IdcMethod::DimmLink)
            fatal("sim.shard = group requires the DIMM-Link fabric "
                  "(got %s): only its cross-group paths carry the "
                  "latency the conservative window needs",
                  toString(idcMethod));
        if (distanceAwareMapping)
            fatal("sim.shard = group does not support "
                  "distance-aware mapping (migration restarts "
                  "cross shard boundaries mid-kernel)");
        if (resolvedLookaheadPs() == 0)
            fatal("sim.shard = group needs a positive lookahead: "
                  "link.routerLatencyPs + link.wireLatencyPs is 0 "
                  "and sim.lookaheadPs is not set (a zero-latency "
                  "cross-shard hop admits no conservative window)");
        if (obs.sampleIntervalPs != 0)
            fatal("sim.shard = group cannot run the periodic counter "
                  "sampler (it reads live cross-shard gauges); set "
                  "obs.sampleIntervalPs = 0");
    }

    // Rack-scale pooling. Only the multi-host case is constrained:
    // single-host configs must never fatal on leftover rack keys (the
    // layer is invisible when unused).
    if (rack.hosts == 0)
        fatal("rack.hosts must be positive (1 = single-host)");
    if (rack.hosts > 1) {
        if (idcMethod != IdcMethod::DimmLink)
            fatal("rack.hosts = %u requires the DIMM-Link fabric "
                  "(got %s): only its inter-group path composes with "
                  "the rack crossing", rack.hosts, toString(idcMethod));
        if (rack.hosts > numGroups())
            fatal("rack.hosts (%u) exceeds the number of DL groups "
                  "(%u): each host needs at least one pool group",
                  rack.hosts, numGroups());
        if (groupsPerHost() * rack.hosts != numGroups())
            fatal("rack.hosts (%u) x groupsPerHost (%u) must cover "
                  "the %u DL groups exactly", rack.hosts,
                  groupsPerHost(), numGroups());
        if ((groupsPerHost() * groupSize()) % dimmsPerChannel() != 0)
            fatal("a host's %u DIMMs do not align with whole "
                  "channels of %u DIMMs (channels cannot straddle "
                  "hosts)", groupsPerHost() * groupSize(),
                  dimmsPerChannel());
        const auto &rf = rack::InterHostFabricFactory::instance();
        if (!rf.contains(rack.fabric))
            fatal("unknown inter-host fabric '%s' (registered: %s)",
                  rack.fabric.c_str(), rf.knownList().c_str());
        if (rack.idcMode != "pooled" && rack.idcMode != "forwarded")
            fatal("rack.idcMode must be 'pooled' or 'forwarded' "
                  "(got '%s')", rack.idcMode.c_str());
        if (rack.latencyPs == 0)
            fatal("rack.latencyPs must be positive (a zero-latency "
                  "rack crossing admits no conservative window)");
        if (rack.portGBps <= 0 || rack.pooledGBps <= 0)
            fatal("rack.portGBps and rack.pooledGBps must be "
                  "positive");
        if (rack.hostDownAtPs != 0 && rack.hostDownId >= rack.hosts)
            fatal("rack.hostDownId (%u) out of range (rack has %u "
                  "hosts)", rack.hostDownId, rack.hosts);
        if (rack.nodeDownAtPs != 0) {
            if (rack.nodeDownId >= numGroups())
                fatal("rack.nodeDownId (%u) out of range (%u pool "
                      "groups)", rack.nodeDownId, numGroups());
            if (rack.nodeDownId % groupsPerHost() != 0)
                fatal("rack.nodeDownId (%u) is not a gateway pool "
                      "node (the bridge lanes attach at each host's "
                      "first group: multiples of %u)",
                      rack.nodeDownId, groupsPerHost());
        }
        // The rack fabric sets the cross-host lookahead floor: every
        // cross-host hop routes through the host shard and pays at
        // least rack.latencyPs, so the conservative window only has
        // to respect the (smaller) intra-host hop -- unless an
        // explicit sim.lookaheadPs undercuts the rack latency.
        if (sharded() && resolvedLookaheadPs() > rack.latencyPs)
            fatal("sim.lookaheadPs (%llu) exceeds rack.latencyPs "
                  "(%llu): the window would overrun the shortest "
                  "cross-host crossing",
                  static_cast<unsigned long long>(resolvedLookaheadPs()),
                  static_cast<unsigned long long>(rack.latencyPs));
    }

    // Observability. Category names are validated where the tracer is
    // built (obs::categoryMaskFromString) to keep common/ free of an
    // obs/ dependency.
    if (obs.ringCapacity == 0)
        fatal("obs.ringCapacity must be positive");
    if (obs.trace && obs.traceOut.empty())
        fatal("obs.trace is on but obs.traceOut is empty");
}

SystemConfig
SystemConfig::preset(const std::string &name)
{
    SystemConfig cfg;
    if (name == "4D-2C") {
        cfg.numDimms = 4;
        cfg.numChannels = 2;
    } else if (name == "8D-4C") {
        cfg.numDimms = 8;
        cfg.numChannels = 4;
    } else if (name == "12D-6C") {
        cfg.numDimms = 12;
        cfg.numChannels = 6;
    } else if (name == "16D-8C") {
        cfg.numDimms = 16;
        cfg.numChannels = 8;
    } else {
        fatal("unknown system preset '%s' (valid: 4D-2C, 8D-4C, "
              "12D-6C, 16D-8C)", name.c_str());
    }
    cfg.host.numChannels = cfg.numChannels;
    return cfg;
}

void
SystemConfig::set(const std::string &key, const std::string &value)
{
    for (const Field &f : fields()) {
        if (key == f.key) {
            f.set(*this, value);
            return;
        }
    }
    // Unknown key: point at the section's keys when the section
    // exists, otherwise list the sections.
    const std::string section = key.substr(0, key.find('.'));
    std::string siblings;
    for (const Field &f : fields()) {
        const std::string fkey = f.key;
        if (fkey.compare(0, section.size() + 1, section + ".") == 0) {
            if (!siblings.empty())
                siblings += ", ";
            siblings += fkey;
        }
    }
    if (!siblings.empty())
        fatal("unknown config key '%s' (keys in section '%s': %s)",
              key.c_str(), section.c_str(), siblings.c_str());
    fatal("unknown config key '%s' (sections: system, host, dimm, "
          "dram, link, bus, faults, serve, energy, obs, watchdog, "
          "sim, rack)", key.c_str());
}

void
SystemConfig::applyOverride(const std::string &key_eq_value)
{
    const std::size_t eq = key_eq_value.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("malformed override '%s' (expected section.key=value)",
              key_eq_value.c_str());
    set(key_eq_value.substr(0, eq), key_eq_value.substr(eq + 1));
}

std::vector<std::string>
SystemConfig::knownKeys()
{
    std::vector<std::string> keys;
    keys.reserve(fields().size());
    for (const Field &f : fields())
        keys.push_back(f.key);
    return keys;
}

dram::Timing
SystemConfig::dramTiming() const
{
    return dram::Timing::preset(dramPreset);
}

SystemConfig
SystemConfig::fromString(const std::string &text,
                         const std::string &origin)
{
    SystemConfig cfg;
    for (const json::Entry &e : json::parseFlat(text, origin))
        cfg.set(e.key, e.value);
    return cfg;
}

SystemConfig
SystemConfig::fromFile(const std::string &path)
{
    SystemConfig cfg;
    for (const json::Entry &e : json::parseFlatFile(path))
        cfg.set(e.key, e.value);
    return cfg;
}

std::vector<std::pair<std::string, std::string>>
SystemConfig::describeEntries() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(fields().size());
    for (const Field &f : fields())
        if (f.describable)
            out.emplace_back(f.key, f.get(*this));
    return out;
}

std::string
SystemConfig::describe() const
{
    std::string out = "{\n";
    const auto entries = describeEntries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        out += "  \"" + entries[i].first + "\": " + entries[i].second;
        if (i + 1 < entries.size())
            out += ",";
        out += "\n";
    }
    out += "}\n";
    return out;
}

void
SystemConfig::print(std::ostream &os) const
{
    os << "System configuration (Table V reconstruction)\n"
       << "  DIMMs: " << numDimms << "  channels: " << numChannels
       << "  DIMMs/channel: " << dimmsPerChannel()
       << "  DL groups: " << numGroups() << " x " << groupSize() << "\n"
       << "  IDC method: " << toString(idcMethod)
       << "  polling: " << toString(pollingMode)
       << "  sync: " << toString(syncScheme)
       << "  mapping: " << (distanceAwareMapping ? "distance-aware"
                                                 : "static") << "\n"
       << "  Host: " << host.numCores << " OoO cores @ "
       << host.coreFreqMHz / 1000.0 << " GHz, "
       << host.numChannels << " channels @ " << host.channelGBps
       << " GB/s\n"
       << "  NMP DIMM: " << dimm.numCores << " cores @ "
       << dimm.coreFreqMHz / 1000.0 << " GHz, L1 "
       << dimm.l1Bytes / 1024 << " KB, shared L2 "
       << dimm.l2Bytes / 1024 << " KB, " << dimm.numRanks
       << " ranks\n"
       << "  DIMM-Link: " << link.linkGBps << " GB/s/dir per link, "
       << toString(link.topology) << ", " << link.flitBits
       << "-bit flits, " << link.bufferFlits << "-flit buffers\n"
       << "  AIM bus: " << bus.busGBps << " GB/s shared\n"
       << "  DRAM preset: " << dramPreset
       << "  scheduler: " << dramScheduler << "\n";
    if (rackEnabled()) {
        os << "  Rack: " << rack.hosts << " hosts x "
           << groupsPerHost() << " pool groups, \"" << rack.fabric
           << "\" fabric, CXL " << rack.latencyPs / 1000.0 << " ns + "
           << rack.switchHopPs / 1000.0 << " ns/hop, ports "
           << rack.portGBps << " GB/s, pooled bridges "
           << rack.pooledGBps << " GB/s (primary: " << rack.idcMode
           << ")\n";
    }
}

} // namespace dimmlink
