/**
 * @file
 * Fundamental type aliases shared by every DIMM-Link subsystem.
 */

#ifndef DIMMLINK_COMMON_TYPES_HH
#define DIMMLINK_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dimmlink {

/**
 * Global simulation time unit. One tick is one picosecond, which lets
 * every clock domain in the system (2 GHz NMP cores, 3.6 GHz host cores,
 * 1200 MHz DDR4 command clock, bandwidth-derived link serialization)
 * schedule exact integer periods.
 */
using Tick = std::uint64_t;

/** A tick value that no event will ever be scheduled at. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per common time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * 1000;
constexpr Tick tickPerMs = 1000ull * 1000 * 1000;
constexpr Tick tickPerS = 1000ull * 1000 * 1000 * 1000;

/** Physical memory address within the simulated global address space. */
using Addr = std::uint64_t;

/** Number of cycles in some component-local clock domain. */
using Cycles = std::uint64_t;

/** Identifies a DIMM module in the system (0-based, globally unique). */
using DimmId = std::uint16_t;

/** Identifies a memory channel on the host. */
using ChannelId = std::uint16_t;

/** Identifies a software thread of an NMP kernel. */
using ThreadId = std::uint32_t;

/** Identifies an NMP core within a DIMM. */
using CoreId = std::uint16_t;

/** Sentinel for "no DIMM" / broadcast destination. */
constexpr DimmId invalidDimm = 0xffff;

/**
 * Convert a frequency in MHz to a clock period in ticks (picoseconds),
 * rounded to the nearest integer tick.
 */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/**
 * Number of ticks needed to move @p bytes over a resource with the given
 * bandwidth in GB/s (decimal GB), rounded up so back-to-back transfers
 * never exceed the configured bandwidth.
 */
constexpr Tick
serializationTicks(std::uint64_t bytes, double gbps)
{
    // bytes / (GB/s) = bytes * 1e12 ps / (gbps * 1e9 bytes) .
    const double ps = static_cast<double>(bytes) * 1000.0 / gbps;
    const Tick t = static_cast<Tick>(ps);
    return (static_cast<double>(t) < ps) ? t + 1 : t;
}

} // namespace dimmlink

#endif // DIMMLINK_COMMON_TYPES_HH
