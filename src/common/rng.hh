/**
 * @file
 * Deterministic pseudo-random number generation. All simulator
 * randomness must flow through Rng instances seeded from the config so
 * that every run of a bench prints identical tables.
 */

#ifndef DIMMLINK_COMMON_RNG_HH
#define DIMMLINK_COMMON_RNG_HH

#include <cstdint>

namespace dimmlink {

/**
 * A small, fast, deterministic generator (xoshiro256**). We avoid
 * std::mt19937 in simulator hot paths and avoid std::random_device /
 * time-based seeding entirely.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            const std::uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace dimmlink

#endif // DIMMLINK_COMMON_RNG_HH
