/**
 * @file
 * Status and error reporting in the gem5 idiom: panic() for simulator
 * bugs, fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef DIMMLINK_COMMON_LOG_HH
#define DIMMLINK_COMMON_LOG_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace dimmlink {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity; defaults to Warn so benches stay quiet. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious-but-survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Rate-limited warning for conditions that can recur thousands of
 * times per run (a dead link exhausting transfer after transfer).
 * Occurrences are counted per @p key; the first one prints (with a
 * note that repeats are suppressed) and every @p every-th occurrence
 * prints a reminder with the running count. @p every == 0 prints the
 * first occurrence only.
 */
void warnRateLimited(const char *key, unsigned every, const char *fmt,
                     ...) __attribute__((format(printf, 3, 4)));

/** warnRateLimited() printing only the first occurrence per key. */
#define DIMMLINK_WARN_ONCE(key, ...) \
    ::dimmlink::warnRateLimited(key, 0, __VA_ARGS__)

/** Occurrences recorded for @p key so far (tests, diagnostics). */
std::uint64_t warnCount(const char *key);

/** Forget all rate-limited warning state (tests). */
void resetWarnCounts();

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Developer-level tracing, only printed at LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dimmlink

#endif // DIMMLINK_COMMON_LOG_HH
