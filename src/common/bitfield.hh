/**
 * @file
 * Bit-manipulation helpers used by the DRAM address mapper and the
 * DL-packet codec.
 */

#ifndef DIMMLINK_COMMON_BITFIELD_HH
#define DIMMLINK_COMMON_BITFIELD_HH

#include <cstdint>

namespace dimmlink {

/** Extract bits [first, first+count) of @p value (LSB = bit 0). */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned count)
{
    if (count == 0)
        return 0;
    if (count >= 64)
        return value >> first;
    return (value >> first) & ((1ull << count) - 1);
}

/** Insert the low @p count bits of @p field at position @p first. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned count,
           std::uint64_t field)
{
    const std::uint64_t mask =
        (count >= 64) ? ~0ull : ((1ull << count) - 1);
    return (value & ~(mask << first)) | ((field & mask) << first);
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); @pre value > 0. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned l = 0;
    while (value >>= 1)
        ++l;
    return l;
}

/** ceil(log2(value)); @pre value > 0. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return isPow2(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/** Round @p value up to the next multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace dimmlink

#endif // DIMMLINK_COMMON_BITFIELD_HH
