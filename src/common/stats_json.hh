/**
 * @file
 * JSON export of the statistics registry, for plotting scripts and
 * external tooling (every bench's tables can be re-derived from the
 * raw counters this emits).
 */

#ifndef DIMMLINK_COMMON_STATS_JSON_HH
#define DIMMLINK_COMMON_STATS_JSON_HH

#include <ostream>
#include <string>

#include "common/stats.hh"

namespace dimmlink {

struct SystemConfig;

namespace stats {

/**
 * Serialize the registry as a JSON object:
 *   { "group": { "scalars": {..}, "distributions": { name:
 *     {count,mean,min,max} } }, ... }
 * Groups with no populated statistics are omitted unless
 * @p include_empty is set. Output is deterministic (sorted names).
 *
 * When @p config is given, a leading "config" section holds the fully
 * resolved configuration (SystemConfig::describeEntries()), so every
 * stats file records the exact machine that produced it.
 */
void dumpJson(const Registry &reg, std::ostream &os,
              bool include_empty = false,
              const SystemConfig *config = nullptr);

/** JSON string-escape helper (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &s);

} // namespace stats
} // namespace dimmlink

#endif // DIMMLINK_COMMON_STATS_JSON_HH
