/**
 * @file
 * SystemConfig: every knob of the simulated machine in one value type
 * (the reconstruction of the paper's Table V plus the sweep parameters
 * used by the evaluation section).
 */

#ifndef DIMMLINK_COMMON_CONFIG_HH
#define DIMMLINK_COMMON_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace dimmlink {

/** Which inter-DIMM communication fabric the system is built with. */
enum class IdcMethod {
    CpuForwarding,  ///< MCN / UPMEM style: host polls and forwards.
    DedicatedBus,   ///< AIM style: one shared multi-drop bus.
    ChannelBroadcast, ///< ABC-DIMM style: broadcast within a channel.
    DimmLink,       ///< This paper: packet routing over SerDes bridges.
};

/** Polling mechanisms of Table III. */
enum class PollingMode {
    Baseline,          ///< Host scans every DIMM periodically.
    BaselineInterrupt, ///< ALERT_N interrupt, then scan the channel.
    Proxy,             ///< Host polls one proxy DIMM per DL group.
    ProxyInterrupt,    ///< ALERT_N from the proxy, scan one DIMM.
};

/** Intra-group link topologies explored in Section VI (Fig. 17). */
enum class Topology {
    HalfRing, ///< The practical baseline: a linear chain of DIMMs.
    Ring,     ///< Chain plus a wrap-around link.
    Mesh,     ///< 2D mesh (groups arranged as 2 x N/2).
    Torus,    ///< 2D torus.
};

/** Synchronization schemes compared in Fig. 14. */
enum class SyncScheme {
    Centralized,  ///< One global master NMP core collects all arrivals.
    Hierarchical, ///< Master core / master DIMM / global (Section III-D).
};

const char *toString(IdcMethod m);
const char *toString(PollingMode m);
const char *toString(Topology t);
const char *toString(SyncScheme s);

/**
 * Enum parsers for config files and CLI flags. Matching is
 * case-insensitive and ignores punctuation, so the canonical paper
 * names ("DIMM-Link", "P-P+Itrpt") and the CLI spellings ("dimmlink",
 * "proxy-itrpt") both parse; unknown names fatal() listing the valid
 * ones. Each round-trips with its toString().
 */
IdcMethod idcMethodFromString(const std::string &s);
PollingMode pollingModeFromString(const std::string &s);
Topology topologyFromString(const std::string &s);
SyncScheme syncSchemeFromString(const std::string &s);

/** Host CPU and memory-channel parameters. */
struct HostConfig
{
    unsigned numCores = 16;
    double coreFreqMHz = 3600.0;
    /** Approximate IPC of one OoO host core on compute phases. */
    double computeIpc = 2.0;
    unsigned numChannels = 8;
    /** Peak bandwidth of one memory channel (DDR4-2400, 8B bus). */
    double channelGBps = 19.2;
    /** L1D per core. Like the LLC below, scaled with the problem
     * sizes (see DESIGN.md) so the baseline reproduces the paper's
     * cache-miss regime. */
    unsigned l1Bytes = 8 * 1024;
    unsigned l1Assoc = 8;
    /** Shared LLC. The evaluation scales problem sizes down ~500x
     * from the paper's inputs (see DESIGN.md); the LLC is scaled
     * with them so the host baseline stays in the memory-bound
     * regime the paper measures. */
    unsigned llcBytes = 128 * 1024;
    unsigned llcAssoc = 16;
    unsigned lineBytes = 64;
    /** Load-to-use latency of L1 / LLC / DRAM seen by a host core. */
    Tick l1LatencyPs = 1200;
    Tick llcLatencyPs = 11000;
    /** Fixed host-side latency to forward one DL packet (gem5-profiled
     * in the paper; a constant playing the same role here). */
    Tick forwardLatencyPs = 120 * tickPerNs;
    /** Latency to enter the interrupt handler for ALERT_N polling. */
    Tick interruptLatencyPs = 1500 * tickPerNs;
    /** Period of the periodic polling loop. */
    Tick pollIntervalPs = 1 * tickPerUs;
    /** Bytes moved over the channel by a single polling read. */
    unsigned pollReadBytes = 64;
    /** Channel occupancy of one polling read: an uncached MMIO-style
     * read holds the bus for the whole round trip to the buffer
     * chip's polling registers, far longer than the burst itself. */
    Tick pollChannelPs = 150 * tickPerNs;
    /** Host cores dedicated to polling/forwarding in NMP mode. */
    unsigned pollThreads = 4;
    /** Host occupancy to issue one forwarded packet (the copy loop
     * itself; transfers pipeline through the MC queues). */
    Tick forwardIssuePs = 8 * tickPerNs;
};

/** One NMP DIMM (centralized buffer-chip architecture). */
struct DimmConfig
{
    unsigned numCores = 4;
    double coreFreqMHz = 2000.0;
    /** In-order NMP cores: IPC on compute phases. */
    double computeIpc = 1.0;
    unsigned l1Bytes = 16 * 1024;
    unsigned l1Assoc = 4;
    unsigned l2Bytes = 128 * 1024;
    unsigned l2Assoc = 8;
    unsigned lineBytes = 64;
    Tick l1LatencyPs = 1500;
    Tick l2LatencyPs = 6000;
    /** Maximum outstanding memory requests per core (MSHR window). */
    unsigned maxOutstanding = 16;
    /** Ranks per DIMM; NMP cores access ranks in parallel. */
    unsigned numRanks = 2;
    /** Capacity per DIMM. */
    std::uint64_t capacityBytes = 16ull * 1024 * 1024 * 1024;
};

/** The DIMM-Link interconnect (DL-Bridge + DL-Controllers). */
struct LinkConfig
{
    /** Bandwidth per direction per link; the paper's default is GRS
     * at 25 GB/s, swept from 4 to 64 in Fig. 16. */
    double linkGBps = 25.0;
    /** Per-hop router pipeline latency. */
    Tick routerLatencyPs = 4 * tickPerNs;
    /** SerDes + wire latency of one DL-Bridge hop. */
    Tick wireLatencyPs = 8 * tickPerNs;
    /** Input buffer depth per port, in flits. Must fit a whole
     * packet (17 flits: 1 header/tail flit + 16 payload flits) plus,
     * on cyclic topologies, the bubble the routers reserve for
     * deadlock freedom (another 17 flits). */
    unsigned bufferFlits = 64;
    /** Flit width in bits (Fig. 3: 128-bit flits). */
    unsigned flitBits = 128;
    /** Retry timeout of the data link layer. */
    Tick retryTimeoutPs = 2 * tickPerUs;
    /** Maximum retries before the DLL declares the link failed. */
    unsigned maxRetries = 8;
    /** DLL selective-repeat window (outstanding sequence numbers per
     * sender; further sends are queued). Must stay well below 2^15 so
     * duplicate filtering survives sequence wraparound. */
    unsigned retryWindow = 64;
    Topology topology = Topology::HalfRing;
};

/** Dedicated-bus (AIM) fabric parameters. */
struct BusConfig
{
    /** The paper assumes the dedicated bus matches memory-bus beta. */
    double busGBps = 19.2;
    Tick arbitrationPs = 6 * tickPerNs;
};

/**
 * Deterministic link-fault injection: the driver that turns the DLL
 * retry machinery from dead code into a measured subsystem. Every
 * link derives its own RNG stream from `seed` and its name, so runs
 * are reproducible and seed-sweepable.
 */
struct FaultConfig
{
    /** Registered fault model: "none", "ber", "burst", "degrade",
     * "stuck". */
    std::string model = "none";
    /** Independent per-bit flip probability (the in-burst rate for
     * the burst model). */
    double ber = 1e-5;
    /** Base seed; per-link streams are derived from it. */
    std::uint64_t seed = 1;
    /** burst: probability that a message outside a burst starts one. */
    double burstProb = 1e-3;
    /** burst: burst length, in consecutive messages. */
    unsigned burstLen = 8;
    /** degrade: effective-bandwidth multiplier in (0, 1]. */
    double degradeFactor = 0.5;
    /** stuck: outage start tick. */
    Tick stuckAtPs = 0;
    /** stuck: outage duration (messages stall until it ends). */
    Tick stuckForPs = 10 * tickPerUs;
    /** stuck: outage repeat period (0 = a single outage). */
    Tick stuckPeriodPs = 0;
    /** Only links whose name contains this substring are faulted
     * (empty = every link). */
    std::string linkFilter;

    // Failure recovery. These keys are hidden from describe() (like
    // obs.*) so the config header in stats JSON keeps its shape: a
    // faults.model=none run dumps byte-identical output whether or
    // not a build knows about recovery.
    /** Consecutive DLL retry exhaustions blaming a link before its
     * health drops from up to suspect (probing then decides). */
    unsigned suspectAfter = 2;
    /** Cadence of re-probe packets on suspect/down links; a probe
     * that answers within link.retryTimeoutPs recovers the link. */
    Tick reprobeIntervalPs = 20 * tickPerUs;
    /** What a transfer does when its retry budget exhausts:
     * "failover" re-submits it over the host CPU-forwarding path,
     * "drop" completes it losslessly in simulation but counts the
     * loss, "panic" aborts the run. */
    std::string onExhausted = "failover";
};

/**
 * Hang watchdog (src/system/watchdog.hh): detects an event queue that
 * went quiescent while the kernel still has outstanding work, and
 * fatal()s with a diagnostic dump instead of spinning or silently
 * mis-terminating. Off by default; the watchdog.* keys are hidden
 * from describe() for the same stats-shape reason as obs.*.
 */
struct WatchdogConfig
{
    /** Progress-check period; 0 disables the watchdog. */
    Tick stallPs = 0;
};

/**
 * Observability: event tracing and periodic counter sampling
 * (src/obs/, docs/observability.md). Tracing is read-only -- turning
 * it on or off never changes what the simulation computes -- and the
 * obs.* keys are deliberately excluded from describe()/describeEntries()
 * so stats JSON stays byte-identical across tracing configurations.
 */
struct ObsConfig
{
    /** Master switch for the event tracer. */
    bool trace = false;
    /** Chrome trace-event JSON output path. */
    std::string traceOut = "trace.json";
    /** Comma-separated category list ("all", "dram,noc,dll,..."). */
    std::string categories = "all";
    /** Counter sampling period in ticks; 0 disables the sampler. */
    Tick sampleIntervalPs = 0;
    /** Time-series CSV output path (empty = don't write a file). */
    std::string sampleOut;
    /** Trace records kept per track before old ones are dropped. */
    unsigned ringCapacity = 16384;
};

/**
 * Execution-engine knobs: the sharded parallel event kernel
 * (src/sim/shard.hh, docs/parallel_kernel.md). Like faults.suspectAfter
 * and the obs.* keys, the sim.* keys are hidden from describe() so the
 * config header embedded in stats JSON keeps its seed shape; the
 * determinism guarantee is that within sim.shard=group, stats output
 * is byte-identical for every sim.threads value.
 */
struct SimConfig
{
    /** Worker threads driving the shards; 1 = run the windowed
     * algorithm on the calling thread. Requires shard=group when >1.
     * Never affects simulation results. */
    unsigned threads = 1;
    /** Shard partitioning: "none" (the sequential reference kernel)
     * or "group" (one shard per DL group plus a host shard,
     * synchronized with conservative lookahead windows). */
    std::string shard = "none";
    /** Conservative lookahead window in ticks; 0 = auto (the minimum
     * cross-shard latency: one DL-Bridge hop, router + wire). */
    Tick lookaheadPs = 0;
};

/**
 * The serving frontend (docs/serving.md): request-level workloads
 * ("kv", "embed") driven by an open-loop arrival process with Zipfian
 * key popularity, or closed-loop for saturation sweeps. Like
 * faults.seed, every random stream derives deterministically from
 * serve.seed, so a fixed seed is byte-identical across runs and --
 * within sim.shard=group -- across thread counts.
 */
struct ServeConfig
{
    /** "open": requests arrive on a Poisson process at offeredQps
     * and latency includes queueing from the arrival; "closed": each
     * thread issues its next request as soon as the previous one
     * finishes (saturation throughput). */
    std::string mode = "open";
    /** Aggregate offered load, requests per second, across all
     * serving threads (open mode). */
    double offeredQps = 2e6;
    /** Total requests across all threads for one run. */
    std::uint64_t requests = 2048;
    /** Base seed of the per-thread arrival and key streams. */
    std::uint64_t seed = 1;
    /** Keyspace size: kv keys / embed table rows, block-distributed
     * across the DIMMs. */
    std::uint64_t keys = 65536;
    /** Zipfian skew of key popularity; 0 = uniform, YCSB default is
     * 0.99. Must stay below 1 (the YCSB generator's range). */
    double zipfTheta = 0.99;
    /** Hash popularity ranks over the keyspace so hot keys spread
     * across DIMMs (YCSB "scrambled Zipfian"); false concentrates
     * them on the first DIMMs. */
    bool scramble = true;
    /** kv: fraction of requests that are GETs (rest are PUTs). */
    double getFraction = 0.95;
    /** kv: value size per key. */
    unsigned valueBytes = 128;
    /** embed: floats per table row (row is embedDim * 4 bytes). */
    unsigned embedDim = 64;
    /** embed: rows gathered and reduced per request. */
    unsigned pooling = 32;
    /** Open-loop bursty phases: rate multiplier while a burst is on
     * (1 = plain Poisson). */
    double burstFactor = 1.0;
    /** Burst cycle period; 0 disables bursty phases. */
    Tick burstPeriodPs = 0;
    /** Burst duration within each period. */
    Tick burstLenPs = 0;
    /** Request-latency histogram geometry (per core, merged into the
     * "serve" stats group after a run). The default spans 512 us --
     * wide enough that tails stay resolvable well past saturation,
     * where queueing inflates latencies far beyond the service time. */
    Tick latBucketPs = 250000;
    unsigned latBuckets = 2048;

    // --- Request-level reliability layer (docs/serving.md). Hidden
    // keys like rack.*: with every knob at its default the layer
    // builds nothing and stats JSON is byte-identical to a build
    // that predates it.

    /** End-to-end deadline per request; a request still in flight
     * past arrival + deadline is aborted and counted as
     * serve.deadlineMisses instead of polluting the latency SLO.
     * 0 = no deadlines. */
    double deadlineUs = 0;
    /** Retries after a circuit-breaker fast-fail before the request
     * is counted as serve.failedRequests. 0 = fail immediately. */
    unsigned maxRetries = 0;
    /** Base delay of the exponential backoff between retries
     * (doubled per attempt, plus deterministic jitter from the
     * per-thread stream off serve.seed). */
    double backoffUs = 5.0;
    /** Hedge GETs: if the primary fanout has not completed after
     * this long, duplicate it to the replica key range and take the
     * first completion. 0 = no hedging. */
    double hedgeAfterUs = 0;
    /** Admission control (open mode): a request still waiting when
     * maxInflight later arrivals have queued behind it on its thread
     * is shed at arrival and counted as serve.shedRequests.
     * 0 = never shed. */
    unsigned maxInflight = 0;

    /** Is any part of the reliability layer on? */
    bool
    relEnabled() const
    {
        return deadlineUs > 0 || maxRetries > 0 || hedgeAfterUs > 0 ||
               maxInflight > 0;
    }
};

/**
 * Rack-scale memory pooling (src/rack/, docs/rack.md): N hosts share
 * the pool of NMP-DIMM nodes over a switched, CXL.mem-style
 * inter-host fabric. The DL groups partition across the hosts
 * (whole groups, whole channels), and inter-group traffic whose
 * endpoints live under different hosts crosses the rack, either
 * host-forwarded (climb to the source host, cross the rack fabric,
 * descend at the destination host) or over pooled DIMM-Link bridges
 * that connect the hosts' gateway pool nodes directly and bypass
 * both host CPUs.
 *
 * Like sim.* and obs.*, every rack.* key is hidden from describe():
 * with rack.hosts = 1 (the default) the rack layer builds nothing,
 * touches nothing, and a config without a rack section produces
 * byte-identical stats JSON to a build that predates it.
 */
struct RackConfig
{
    /** Hosts sharing the pool; 1 = single-host (rack layer off). */
    unsigned hosts = 1;
    /** Registered inter-host fabric: "switch" (every crossing takes
     * two switch hops through a central CXL switch) or "direct"
     * (dedicated point-to-point host cables, no switch hops). */
    std::string fabric = "switch";
    /** Primary route of a cross-host IDC transfer: "pooled" (direct
     * DIMM-Link bridges between the hosts' gateway pool nodes) or
     * "forwarded" (climb to the source host and cross the rack
     * fabric). The other route is the failover path. */
    std::string idcMode = "pooled";
    /** One-way CXL.mem load/store latency of the rack fabric (the
     * research context sweeps 300-1500 ns). */
    Tick latencyPs = 500 * tickPerNs;
    /** Added latency per switch hop of the crossing. */
    Tick switchHopPs = 25 * tickPerNs;
    /** Per-direction bandwidth of each host's rack port. */
    double portGBps = 32.0;
    /** Per-direction bandwidth of one pooled DIMM-Link bridge lane. */
    double pooledGBps = 25.0;
    /** DL groups owned by each host; 0 = auto (numGroups / hosts). */
    unsigned groupsPerHost = 0;
    /** Failure injection: host whose rack port (and cross-host
     * forwarding CPU) dies at hostDownAtPs; its pool nodes stay
     * powered and reachable over the pooled bridges. 0 ticks = no
     * outage. */
    unsigned hostDownId = 0;
    Tick hostDownAtPs = 0;
    /** Outage duration; 0 = permanent (no recovery). */
    Tick hostDownForPs = 0;
    /** Failure injection: gateway pool node (a group id; must be the
     * first group of its host) whose bridge attach dies at
     * nodeDownAtPs, taking its host's pooled lanes down. */
    unsigned nodeDownId = 0;
    Tick nodeDownAtPs = 0;
    Tick nodeDownForPs = 0;
};

/** Energy model constants (Section V-C). */
struct EnergyConfig
{
    double linkPjPerBit = 1.17;     ///< GRS SerDes.
    double ddrRdWrPjPerBit = 14.0;  ///< DRAM array read/write.
    double busIoPjPerBit = 22.0;    ///< Off-chip IO over the memory bus.
    double activateNj = 2.1;        ///< One DDR ACT command.
    double nmpCoreWatt = 1.8 / 4;   ///< Per-core share of the 1.8 W quad.
    double hostForwardNjPerPkt = 60.0; ///< gem5+McPAT-profiled constant.
    double hostPollNj = 8.0;        ///< One polling read at the host.
    double dedicatedBusPjPerBit = 22.0; ///< AIM bus == memory-bus IO.
};

namespace dram {
struct Timing;
} // namespace dram

/** Everything needed to build a System. */
struct SystemConfig
{
    unsigned numDimms = 4;
    unsigned numChannels = 2;
    /** DIMMs per DL group (one group per CPU side; 0 = auto: split the
     * DIMMs into two equal groups unless there are <= 4). */
    unsigned dimmsPerGroup = 0;

    IdcMethod idcMethod = IdcMethod::DimmLink;
    PollingMode pollingMode = PollingMode::Proxy;
    SyncScheme syncScheme = SyncScheme::Hierarchical;
    bool distanceAwareMapping = false;
    /** Fraction of the kernel profiled before remapping (paper: ~1%). */
    double profileFraction = 0.01;

    HostConfig host;
    DimmConfig dimm;
    LinkConfig link;
    BusConfig bus;
    FaultConfig faults;
    ServeConfig serve;
    EnergyConfig energy;
    ObsConfig obs;
    WatchdogConfig watchdog;
    SimConfig sim;
    RackConfig rack;

    /** DRAM timing preset name, keyed into the timing registry
     * (DDR4_2400, DDR5_4800, LPDDR5X_8533, HBM2_2000, ...). Set
     * directly, or via the `dram.standard` family alias
     * (ddr4|ddr5|lpddr5x|hbm2); see docs/dram_timing.md. */
    std::string dramPreset = "DDR4_2400";

    /** DRAM controller scheduling policy (registry-keyed; the seed
     * behavior is "FRFCFS", "FCFS" serves strictly in order). */
    std::string dramScheduler = "FRFCFS";

    std::uint64_t seed = 1;

    /** The registered timing table dramPreset names (the seam
     * System::build, host_runner and the energy model read). */
    dram::Timing dramTiming() const;

    /** DIMMs per channel (derived). */
    unsigned dimmsPerChannel() const { return numDimms / numChannels; }
    /** Actual group size after resolving the auto setting. */
    unsigned groupSize() const;
    /** Number of DL groups. */
    unsigned numGroups() const;
    /** Group index of a DIMM. */
    unsigned groupOf(DimmId d) const { return d / groupSize(); }
    /** Channel that a DIMM sits on. */
    ChannelId channelOf(DimmId d) const
    {
        return static_cast<ChannelId>(d / dimmsPerChannel());
    }

    /** Is the sharded (parallel-capable) kernel selected? */
    bool sharded() const { return sim.shard == "group"; }

    /** Is the rack layer (multi-host pooling) in play? */
    bool rackEnabled() const { return rack.hosts > 1; }
    /** DL groups owned by each host (resolves the 0 = auto setting;
     * numGroups() when single-host, so hostOf() degenerates to 0). */
    unsigned
    groupsPerHost() const
    {
        if (rack.groupsPerHost != 0)
            return rack.groupsPerHost;
        return rack.hosts > 1 ? numGroups() / rack.hosts : numGroups();
    }
    /** Host that owns DL group @p g. */
    unsigned hostOfGroup(unsigned g) const { return g / groupsPerHost(); }
    /** Host that owns DIMM @p d. */
    unsigned hostOf(DimmId d) const { return hostOfGroup(groupOf(d)); }
    /** Gateway pool node (group id) anchoring host @p h's pooled
     * bridge lanes: its first group. */
    unsigned gatewayGroupOf(unsigned h) const { return h * groupsPerHost(); }

    /** The effective conservative lookahead window (resolves the
     * sim.lookaheadPs=0 auto setting to one DL-Bridge hop). */
    Tick
    resolvedLookaheadPs() const
    {
        return sim.lookaheadPs != 0
                   ? sim.lookaheadPs
                   : link.routerLatencyPs + link.wireLatencyPs;
    }

    /** Validate every cross-field invariant; fatal() on bad configs. */
    void validate() const;

    /** Named preset for the four paper configurations. */
    static SystemConfig preset(const std::string &name);

    /**
     * Build a config from a flat JSON document (see configs/ for the
     * schema): defaults first, then every "section.key" member applied
     * through set(). fatal()s on unknown keys or malformed values.
     */
    static SystemConfig fromFile(const std::string &path);
    static SystemConfig fromString(const std::string &text,
                                   const std::string &origin = "<config>");

    /**
     * Set one field by its dotted config key ("system.numDimms",
     * "link.topology", ...). Values use the same spellings as config
     * files; fatal()s on unknown keys with the keys of the section.
     */
    void set(const std::string &key, const std::string &value);

    /** Apply one Ramulator-style "-p section.key=value" override. */
    void applyOverride(const std::string &key_eq_value);

    /** Every config key, sorted, for tooling and error messages. */
    static std::vector<std::string> knownKeys();

    /**
     * The fully-resolved config as (dotted key, JSON token) pairs in
     * schema order: the source of truth for describe() and for the
     * config section embedded into stats JSON dumps.
     */
    std::vector<std::pair<std::string, std::string>>
    describeEntries() const;

    /**
     * Dump the fully-resolved config as a flat JSON document. The
     * output reparses through fromString() into an identical config,
     * so every run is reproducible from its own stats header.
     */
    std::string describe() const;

    /** Table V-style dump. */
    void print(std::ostream &os) const;
};

} // namespace dimmlink

#endif // DIMMLINK_COMMON_CONFIG_HH
