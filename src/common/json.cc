#include "common/json.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dimmlink {
namespace json {

namespace {

/** Cursor over the document with line tracking for error messages. */
class Lexer
{
  public:
    Lexer(const std::string &text, const std::string &origin)
        : text(text), origin(origin)
    {}

    [[noreturn]] void
    error(const std::string &what) const
    {
        fatal("%s:%u: %s", origin.c_str(), line, what.c_str());
    }

    /** Skip whitespace and // / # line comments. */
    void
    skip()
    {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '\n') {
                ++line;
                ++pos;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '#' ||
                       (c == '/' && pos + 1 < text.size() &&
                        text[pos + 1] == '/')) {
                while (pos < text.size() && text[pos] != '\n')
                    ++pos;
            } else {
                return;
            }
        }
    }

    bool
    atEnd()
    {
        skip();
        return pos >= text.size();
    }

    char
    peek()
    {
        skip();
        if (pos >= text.size())
            error("unexpected end of document");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            error(strFormat("expected '%c', got '%c'", c, text[pos]));
        ++pos;
    }

    bool
    consumeIf(char c)
    {
        if (!atEnd() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::string
    quotedString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                error("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c == '\n')
                error("newline inside string");
            if (c == '\\') {
                if (pos >= text.size())
                    error("unterminated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default:
                    error(strFormat("unsupported escape '\\%c'", e));
                }
            } else {
                out += c;
            }
        }
    }

    /** An unquoted scalar: number, true, or false. */
    std::string
    bareScalar()
    {
        skip();
        std::string out;
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '+' || c == '-' || c == '.' || c == '_') {
                out += c;
                ++pos;
            } else {
                break;
            }
        }
        if (out.empty())
            error("expected a value");
        if (out == "null")
            error("null is not a valid config value");
        return out;
    }

  private:
    const std::string &text;
    const std::string &origin;
    std::size_t pos = 0;
    unsigned line = 1;
};

void
parseObject(Lexer &lx, const std::string &prefix,
            std::vector<Entry> &out, unsigned depth)
{
    if (depth > 4)
        lx.error("config objects nest too deeply");
    lx.expect('{');
    if (lx.consumeIf('}'))
        return;
    while (true) {
        const std::string key = lx.quotedString();
        if (key.empty())
            lx.error("empty key");
        const std::string path =
            prefix.empty() ? key : prefix + "." + key;
        lx.expect(':');
        const char c = lx.peek();
        if (c == '{') {
            parseObject(lx, path, out, depth + 1);
        } else if (c == '[') {
            lx.error("arrays are not valid config values");
        } else if (c == '"') {
            out.push_back(Entry{path, lx.quotedString(), true});
        } else {
            out.push_back(Entry{path, lx.bareScalar(), false});
        }
        if (lx.consumeIf(','))
            continue;
        lx.expect('}');
        return;
    }
}

} // namespace

std::vector<Entry>
parseFlat(const std::string &text, const std::string &origin)
{
    Lexer lx(text, origin);
    std::vector<Entry> out;
    parseObject(lx, "", out, 0);
    if (!lx.atEnd())
        lx.error("trailing content after the config object");
    return out;
}

std::vector<Entry>
parseFlatFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseFlat(ss.str(), path);
}

} // namespace json
} // namespace dimmlink
