#include "common/crc32.hh"

#include <array>

namespace dimmlink {

namespace {

/** Build the 256-entry lookup table at static-init time. */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> crcTable = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = crcTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace dimmlink
