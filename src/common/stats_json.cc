#include "common/stats_json.hh"

#include <cmath>
#include <iomanip>

#include "common/config.hh"

namespace dimmlink {
namespace stats {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Print a double that round-trips and is valid JSON. */
void
num(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    os << std::setprecision(15) << v;
}

} // namespace

void
dumpJson(const Registry &reg, std::ostream &os, bool include_empty,
         const SystemConfig *config)
{
    // Walk groups via a const-cast-free path: Registry only exposes
    // groups through dump(); we mirror its deterministic iteration
    // by re-dumping through the public accessors.
    os << "{";
    bool first_group = true;
    if (config) {
        first_group = false;
        os << "\n  \"config\": {";
        bool first = true;
        for (const auto &[key, value] : config->describeEntries()) {
            if (!first)
                os << ", ";
            first = false;
            // The value is already a JSON token (describeEntries
            // quotes strings itself).
            os << "\"" << jsonEscape(key) << "\": " << value;
        }
        os << "}";
    }
    reg.forEachGroup([&](const Group &g) {
        const bool has_scalars = [&] {
            for (const auto &[n, s] : g.scalars())
                if (s.value() != 0)
                    return true;
            return false;
        }();
        const bool has_dists = [&] {
            for (const auto &[n, d] : g.distributions())
                if (d.count() > 0)
                    return true;
            return false;
        }();
        const bool has_hists = [&] {
            for (const auto &[n, h] : g.histograms())
                if (h.total() > 0)
                    return true;
            return false;
        }();
        if (!include_empty && !has_scalars && !has_dists && !has_hists)
            return;

        if (!first_group)
            os << ",";
        first_group = false;
        os << "\n  \"" << jsonEscape(g.name()) << "\": {";

        bool first = true;
        os << "\"scalars\": {";
        for (const auto &[n, s] : g.scalars()) {
            if (!include_empty && s.value() == 0)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << "\"" << jsonEscape(n) << "\": ";
            num(os, s.value());
        }
        os << "}";

        os << ", \"distributions\": {";
        first = true;
        for (const auto &[n, d] : g.distributions()) {
            if (!include_empty && d.count() == 0)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << "\"" << jsonEscape(n) << "\": {\"count\": "
               << d.count() << ", \"mean\": ";
            num(os, d.mean());
            os << ", \"min\": ";
            num(os, d.min());
            os << ", \"max\": ";
            num(os, d.max());
            os << "}";
        }
        os << "}";

        if (include_empty || has_hists) {
            os << ", \"histograms\": {";
            first = true;
            for (const auto &[n, h] : g.histograms()) {
                if (!include_empty && h.total() == 0)
                    continue;
                if (!first)
                    os << ", ";
                first = false;
                os << "\"" << jsonEscape(n)
                   << "\": {\"bucketWidth\": ";
                num(os, h.bucketWidth());
                os << ", \"total\": " << h.total()
                   << ", \"underflow\": " << h.underflow()
                   << ", \"overflow\": " << h.overflow()
                   << ", \"p50\": ";
                num(os, h.percentile(0.50));
                os << ", \"p95\": ";
                num(os, h.percentile(0.95));
                os << ", \"p99\": ";
                num(os, h.percentile(0.99));
                os << ", \"counts\": [";
                bool first_b = true;
                for (const std::uint64_t c : h.data()) {
                    if (!first_b)
                        os << ", ";
                    first_b = false;
                    os << c;
                }
                os << "]}";
            }
            os << "}";
        }
        os << "}";
    });
    os << "\n}\n";
}

} // namespace stats
} // namespace dimmlink
