/**
 * @file
 * A small statistics package in the spirit of gem5's: components own a
 * StatGroup, register named scalars / averages / histograms in it, and a
 * StatRegistry can dump everything or look values up by dotted name.
 */

#ifndef DIMMLINK_COMMON_STATS_HH
#define DIMMLINK_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dimmlink {
namespace stats {

/**
 * A named monotonically-updated scalar statistic.
 *
 * Storage is a relaxed atomic so the parallel kernel's single-writer
 * counters (each owned by one shard) can be read concurrently -- by
 * the watchdog's progress probe or a cross-shard diagnostic -- without
 * a data race. The default mutators stay non-RMW load/store (free on
 * x86) and are only safe under that single-writer discipline; the few
 * stats genuinely written from several shards (the inter-group fabric
 * counters) must use addConcurrent().
 */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &
    operator+=(double v)
    {
        value_.store(value_.load(std::memory_order_relaxed) + v,
                     std::memory_order_relaxed);
        return *this;
    }
    Scalar &operator++() { return *this += 1; }
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void reset() { set(0); }
    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /**
     * Multi-writer add (CAS loop). Every concurrent increment in the
     * simulator adds an integer-valued count or byte total, and
     * integer sums below 2^53 are exact in double no matter the order
     * of addition -- so concurrent accumulation stays deterministic.
     */
    void
    addConcurrent(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            cur, cur + v, std::memory_order_relaxed,
            std::memory_order_relaxed)) {
        }
    }

  private:
    std::atomic<double> value_{0};
};

/** Tracks mean / min / max / count of a sampled quantity. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        sumSq_ += v * v;
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        ++count_;
    }

    void
    reset()
    {
        sum_ = sumSq_ = min_ = max_ = 0;
        count_ = 0;
    }

    /**
     * Fold another distribution's samples into this one (the parallel
     * kernel keeps per-shard lanes and merges them in fixed shard
     * order at end of run, so the result is deterministic).
     */
    void
    merge(const Distribution &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0 || o.min_ < min_)
            min_ = o.min_;
        if (count_ == 0 || o.max_ > max_)
            max_ = o.max_;
        sum_ += o.sum_;
        sumSq_ += o.sumSq_;
        count_ += o.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    double min() const { return min_; }
    double max() const { return max_; }
    double variance() const;

  private:
    double sum_ = 0;
    double sumSq_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucketSize * numBuckets). */
class Histogram
{
  public:
    explicit Histogram(double bucket_size = 1.0, unsigned num_buckets = 32)
        : bucketSize(bucket_size), buckets(num_buckets, 0)
    {}

    void sample(double v);
    void reset();

    /**
     * The value below which fraction @p p (in [0, 1]) of the samples
     * fall, linearly interpolated within the owning bucket. Samples
     * below zero (the underflow region) rank below bucket 0 and
     * resolve to the histogram's lower edge; samples in the overflow
     * region resolve to the upper edge (the exact values are not
     * retained in either case). Returns 0 on an empty histogram.
     */
    double percentile(double p) const;

    /**
     * Fold another histogram's counts into this one. Both must share
     * the same bucket geometry. Count addition commutes, so merging
     * per-core histograms in any fixed order is deterministic.
     */
    void merge(const Histogram &o);

    double bucketWidth() const { return bucketSize; }
    const std::vector<std::uint64_t> &data() const { return buckets; }
    std::uint64_t underflow() const { return underflowCount; }
    std::uint64_t overflow() const { return overflowCount; }
    std::uint64_t total() const { return totalCount; }

  private:
    double bucketSize;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflowCount = 0;
    std::uint64_t overflowCount = 0;
    std::uint64_t totalCount = 0;
};

class Group;

/**
 * Owns a tree of stat groups. The root registry lives in the System and
 * is used by the metric collectors and by `dump()`-style reporting.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Create (or fetch) a group with a dotted path name. */
    Group &group(const std::string &name);

    /** Look up a scalar by "group.stat" name; panics when missing. */
    double scalar(const std::string &dotted) const;

    /** True when "group.stat" names a registered scalar. */
    bool hasScalar(const std::string &dotted) const;

    /** Shared resolver behind scalar()/hasScalar(): stat names may
     * contain dots, so every split point is tried right-to-left. */
    const Scalar *findScalar(const std::string &dotted) const;

    /** Sum a scalar stat over all groups whose name matches a prefix. */
    double sumScalar(const std::string &group_prefix,
                     const std::string &stat) const;

    /** Reset every statistic in every group. */
    void resetAll();

    /** Pretty-print all non-zero statistics. */
    void dump(std::ostream &os) const;

    /** Visit every group in deterministic (sorted-name) order.
     * (Defined after Group below, which must be complete.) */
    template <typename Fn>
    void forEachGroup(Fn &&fn) const;

  private:
    friend class Group;
    // std::map for deterministic iteration order in dump().
    std::map<std::string, Group> groups;
};

/**
 * A named collection of statistics belonging to one component instance
 * (e.g. "dimm3.localMc"). Components hold references to the registered
 * stats, the group owns storage.
 */
class Group
{
  public:
    Scalar &scalar(const std::string &name);
    Distribution &distribution(const std::string &name);
    Histogram &histogram(const std::string &name, double bucket_size,
                         unsigned num_buckets);

    const std::string &name() const { return name_; }

    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    void reset();

  private:
    friend class Registry;
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, Histogram> hists_;
};

template <typename Fn>
void
Registry::forEachGroup(Fn &&fn) const
{
    for (const auto &[name, group] : groups) {
        (void)name;
        fn(group);
    }
}

} // namespace stats
} // namespace dimmlink

#endif // DIMMLINK_COMMON_STATS_HH
