/**
 * @file
 * A small statistics package in the spirit of gem5's: components own a
 * StatGroup, register named scalars / averages / histograms in it, and a
 * StatRegistry can dump everything or look values up by dotted name.
 */

#ifndef DIMMLINK_COMMON_STATS_HH
#define DIMMLINK_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dimmlink {
namespace stats {

/** A named monotonically-updated scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/** Tracks mean / min / max / count of a sampled quantity. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        sumSq_ += v * v;
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        ++count_;
    }

    void
    reset()
    {
        sum_ = sumSq_ = min_ = max_ = 0;
        count_ = 0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    double min() const { return min_; }
    double max() const { return max_; }
    double variance() const;

  private:
    double sum_ = 0;
    double sumSq_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucketSize * numBuckets). */
class Histogram
{
  public:
    explicit Histogram(double bucket_size = 1.0, unsigned num_buckets = 32)
        : bucketSize(bucket_size), buckets(num_buckets, 0)
    {}

    void sample(double v);
    void reset();

    /**
     * The value below which fraction @p p (in [0, 1]) of the samples
     * fall, linearly interpolated within the owning bucket. Samples in
     * the overflow region resolve to the histogram's upper edge (the
     * exact values are not retained). Returns 0 on an empty histogram.
     */
    double percentile(double p) const;

    double bucketWidth() const { return bucketSize; }
    const std::vector<std::uint64_t> &data() const { return buckets; }
    std::uint64_t overflow() const { return overflowCount; }
    std::uint64_t total() const { return totalCount; }

  private:
    double bucketSize;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflowCount = 0;
    std::uint64_t totalCount = 0;
};

class Group;

/**
 * Owns a tree of stat groups. The root registry lives in the System and
 * is used by the metric collectors and by `dump()`-style reporting.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Create (or fetch) a group with a dotted path name. */
    Group &group(const std::string &name);

    /** Look up a scalar by "group.stat" name; panics when missing. */
    double scalar(const std::string &dotted) const;

    /** True when "group.stat" names a registered scalar. */
    bool hasScalar(const std::string &dotted) const;

    /** Sum a scalar stat over all groups whose name matches a prefix. */
    double sumScalar(const std::string &group_prefix,
                     const std::string &stat) const;

    /** Reset every statistic in every group. */
    void resetAll();

    /** Pretty-print all non-zero statistics. */
    void dump(std::ostream &os) const;

    /** Visit every group in deterministic (sorted-name) order.
     * (Defined after Group below, which must be complete.) */
    template <typename Fn>
    void forEachGroup(Fn &&fn) const;

  private:
    friend class Group;
    // std::map for deterministic iteration order in dump().
    std::map<std::string, Group> groups;
};

/**
 * A named collection of statistics belonging to one component instance
 * (e.g. "dimm3.localMc"). Components hold references to the registered
 * stats, the group owns storage.
 */
class Group
{
  public:
    Scalar &scalar(const std::string &name);
    Distribution &distribution(const std::string &name);
    Histogram &histogram(const std::string &name, double bucket_size,
                         unsigned num_buckets);

    const std::string &name() const { return name_; }

    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    void reset();

  private:
    friend class Registry;
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, Histogram> hists_;
};

template <typename Fn>
void
Registry::forEachGroup(Fn &&fn) const
{
    for (const auto &[name, group] : groups) {
        (void)name;
        fn(group);
    }
}

} // namespace stats
} // namespace dimmlink

#endif // DIMMLINK_COMMON_STATS_HH
