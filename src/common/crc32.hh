/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) used by the DL packet data-link layer
 * (Section III-B of the paper: a 32-bit CRC in each packet tail).
 */

#ifndef DIMMLINK_COMMON_CRC32_HH
#define DIMMLINK_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace dimmlink {

/**
 * Compute the CRC-32 of a byte buffer. Standard reflected CRC-32
 * (poly 0xEDB88320, init 0xFFFFFFFF, final xor 0xFFFFFFFF), table-driven.
 */
std::uint32_t crc32(const void *data, std::size_t len);

/** Incrementally extend a CRC: pass the previous return value back in. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

} // namespace dimmlink

#endif // DIMMLINK_COMMON_CRC32_HH
