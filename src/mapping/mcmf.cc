#include "mapping/mcmf.hh"

#include <deque>
#include <limits>

#include "common/log.hh"

namespace dimmlink {
namespace mapping {

MinCostMaxFlow::MinCostMaxFlow(int num_vertices)
    : n(num_vertices), adj(static_cast<std::size_t>(num_vertices))
{
}

int
MinCostMaxFlow::addEdge(int u, int v, std::int64_t cap,
                        std::int64_t cost)
{
    if (u < 0 || u >= n || v < 0 || v >= n)
        panic("MCMF edge endpoints out of range");
    const int id = static_cast<int>(edges.size());
    edges.push_back(Edge{v, cap, cost});
    edges.push_back(Edge{u, 0, -cost}); // residual
    adj[static_cast<std::size_t>(u)].push_back(id);
    adj[static_cast<std::size_t>(v)].push_back(id + 1);
    return id;
}

bool
MinCostMaxFlow::spfa(int s, int t, std::vector<std::int64_t> &dist,
                     std::vector<int> &prev_edge)
{
    constexpr std::int64_t inf =
        std::numeric_limits<std::int64_t>::max() / 4;
    dist.assign(static_cast<std::size_t>(n), inf);
    prev_edge.assign(static_cast<std::size_t>(n), -1);
    std::vector<bool> in_queue(static_cast<std::size_t>(n), false);

    std::deque<int> q;
    dist[static_cast<std::size_t>(s)] = 0;
    q.push_back(s);
    in_queue[static_cast<std::size_t>(s)] = true;

    while (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        in_queue[static_cast<std::size_t>(u)] = false;
        for (int id : adj[static_cast<std::size_t>(u)]) {
            const Edge &e = edges[static_cast<std::size_t>(id)];
            if (e.cap - e.flow <= 0)
                continue;
            const std::int64_t nd =
                dist[static_cast<std::size_t>(u)] + e.cost;
            if (nd < dist[static_cast<std::size_t>(e.to)]) {
                dist[static_cast<std::size_t>(e.to)] = nd;
                prev_edge[static_cast<std::size_t>(e.to)] = id;
                if (!in_queue[static_cast<std::size_t>(e.to)]) {
                    // SLF heuristic keeps SPFA fast on these graphs.
                    if (!q.empty() &&
                        nd < dist[static_cast<std::size_t>(
                                 q.front())])
                        q.push_front(e.to);
                    else
                        q.push_back(e.to);
                    in_queue[static_cast<std::size_t>(e.to)] = true;
                }
            }
        }
    }
    return prev_edge[static_cast<std::size_t>(t)] != -1;
}

MinCostMaxFlow::Result
MinCostMaxFlow::solve(int s, int t)
{
    Result r;
    std::vector<std::int64_t> dist;
    std::vector<int> prev_edge;

    while (spfa(s, t, dist, prev_edge)) {
        // Find the bottleneck along the shortest path.
        std::int64_t push =
            std::numeric_limits<std::int64_t>::max();
        for (int v = t; v != s;) {
            const int id = prev_edge[static_cast<std::size_t>(v)];
            const Edge &e = edges[static_cast<std::size_t>(id)];
            push = std::min(push, e.cap - e.flow);
            v = edges[static_cast<std::size_t>(id ^ 1)].to;
        }
        for (int v = t; v != s;) {
            const int id = prev_edge[static_cast<std::size_t>(v)];
            edges[static_cast<std::size_t>(id)].flow += push;
            edges[static_cast<std::size_t>(id ^ 1)].flow -= push;
            v = edges[static_cast<std::size_t>(id ^ 1)].to;
        }
        r.flow += push;
        r.cost += push * dist[static_cast<std::size_t>(t)];
    }
    return r;
}

std::int64_t
MinCostMaxFlow::flowOn(int id) const
{
    return edges[static_cast<std::size_t>(id)].flow;
}

} // namespace mapping
} // namespace dimmlink
