#include "mapping/profiler.hh"

#include "common/log.hh"

namespace dimmlink {
namespace mapping {

TrafficProfiler::TrafficProfiler(unsigned num_threads,
                                 unsigned num_dimms)
    : threads(num_threads),
      dimms(num_dimms),
      m(static_cast<std::size_t>(num_threads) * num_dimms, 0)
{
}

void
TrafficProfiler::record(ThreadId tid, DimmId d, std::uint32_t bytes)
{
    if (tid >= threads || d >= dimms)
        panic("profiler record out of range (tid=%u dimm=%u)", tid, d);
    m[static_cast<std::size_t>(tid) * dimms + d] += bytes;
    ++refs;
}

std::uint64_t
TrafficProfiler::accesses(ThreadId tid, DimmId d) const
{
    return m[static_cast<std::size_t>(tid) * dimms + d];
}

void
TrafficProfiler::reset()
{
    for (auto &v : m)
        v = 0;
    refs = 0;
}

} // namespace mapping
} // namespace dimmlink
