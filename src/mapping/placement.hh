/**
 * @file
 * Algorithm 1 of the paper: derive an optimized thread placement from
 * profiled traffic. Step 1 builds the distance-weighted cost table
 * C[i][j]; Step 2 solves a min-cost max-flow over the Source ->
 * Threads -> DIMMs -> Sink network; Step 3 reads the placement off
 * the saturated bipartite edges.
 */

#ifndef DIMMLINK_MAPPING_PLACEMENT_HH
#define DIMMLINK_MAPPING_PLACEMENT_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "mapping/profiler.hh"

namespace dimmlink {
namespace mapping {

/** dist(j, k): relative cost of DIMM j accessing DIMM k. */
using DistanceFn = std::function<double(DimmId, DimmId)>;

/**
 * Compute the cost table C[T][N] (Step 1).
 * @return row-major costs, C[i*N + j].
 */
std::vector<double> costTable(const TrafficProfiler &profile,
                              const DistanceFn &dist);

/**
 * Solve the placement (Steps 2-3).
 * @param max_threads_per_dimm the paper's L (DIMM vertex capacity).
 * @return thread -> DIMM assignment, size T.
 */
std::vector<DimmId> solvePlacement(const TrafficProfiler &profile,
                                   const DistanceFn &dist,
                                   unsigned max_threads_per_dimm);

/** Brute-force optimal placement for small instances (test oracle). */
std::vector<DimmId> bruteForcePlacement(
    const TrafficProfiler &profile, const DistanceFn &dist,
    unsigned max_threads_per_dimm);

/** Total distance-weighted cost of an assignment. */
double placementCost(const TrafficProfiler &profile,
                     const DistanceFn &dist,
                     const std::vector<DimmId> &assignment);

} // namespace mapping
} // namespace dimmlink

#endif // DIMMLINK_MAPPING_PLACEMENT_HH
