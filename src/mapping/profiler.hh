/**
 * @file
 * The profiling phase of the distance-aware task mapping (Fig. 8):
 * each DIMM records how much traffic every thread sends to every
 * DIMM; the host accumulates the counters into the table M[T][N].
 */

#ifndef DIMMLINK_MAPPING_PROFILER_HH
#define DIMMLINK_MAPPING_PROFILER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dimmlink {
namespace mapping {

class TrafficProfiler
{
  public:
    TrafficProfiler(unsigned num_threads, unsigned num_dimms);

    /** Record @p bytes of traffic from thread @p tid to DIMM @p d. */
    void record(ThreadId tid, DimmId d, std::uint32_t bytes);

    /** Total access bytes of thread @p tid to DIMM @p d. */
    std::uint64_t accesses(ThreadId tid, DimmId d) const;

    /** Total references recorded (profiling-window sizing). */
    std::uint64_t totalRefs() const { return refs; }

    void reset();

    unsigned numThreads() const { return threads; }
    unsigned numDimms() const { return dimms; }

    /** The raw M table, row-major [T][N], in bytes. */
    const std::vector<std::uint64_t> &table() const { return m; }

  private:
    unsigned threads;
    unsigned dimms;
    std::vector<std::uint64_t> m;
    std::uint64_t refs = 0;
};

} // namespace mapping
} // namespace dimmlink

#endif // DIMMLINK_MAPPING_PROFILER_HH
