/**
 * @file
 * Minimum-cost maximum-flow via successive shortest paths with SPFA
 * (the Bellman-Ford variant Algorithm 1 cites). Costs are integers;
 * capacities are integers; complexity is O(V * E * flow), which for
 * the thread-placement instances (T + N + 2 vertices) matches the
 * paper's O(T^2 N^2) bound.
 */

#ifndef DIMMLINK_MAPPING_MCMF_HH
#define DIMMLINK_MAPPING_MCMF_HH

#include <cstdint>
#include <vector>

namespace dimmlink {
namespace mapping {

class MinCostMaxFlow
{
  public:
    explicit MinCostMaxFlow(int num_vertices);

    /**
     * Add a directed edge with @p cap capacity and @p cost per unit.
     * @return the edge id (usable with flowOn()).
     */
    int addEdge(int u, int v, std::int64_t cap, std::int64_t cost);

    struct Result
    {
        std::int64_t flow = 0;
        std::int64_t cost = 0;
    };

    /** Compute the min-cost max-flow from @p s to @p t. */
    Result solve(int s, int t);

    /** Flow pushed through edge @p id after solve(). */
    std::int64_t flowOn(int id) const;

  private:
    struct Edge
    {
        int to;
        std::int64_t cap;
        std::int64_t cost;
        std::int64_t flow = 0;
    };

    bool spfa(int s, int t, std::vector<std::int64_t> &dist,
              std::vector<int> &prev_edge);

    int n;
    std::vector<Edge> edges;
    std::vector<std::vector<int>> adj;
};

} // namespace mapping
} // namespace dimmlink

#endif // DIMMLINK_MAPPING_MCMF_HH
