#include "mapping/placement.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "mapping/mcmf.hh"

namespace dimmlink {
namespace mapping {

std::vector<double>
costTable(const TrafficProfiler &profile, const DistanceFn &dist)
{
    const unsigned t_cnt = profile.numThreads();
    const unsigned n_cnt = profile.numDimms();
    std::vector<double> cost(static_cast<std::size_t>(t_cnt) * n_cnt,
                             0.0);
    // C[i][j] = sum_k dist(j, k) * M[i][k]  (Algorithm 1, Step 1).
    for (unsigned i = 0; i < t_cnt; ++i) {
        for (unsigned j = 0; j < n_cnt; ++j) {
            double c = 0;
            for (unsigned k = 0; k < n_cnt; ++k) {
                c += dist(static_cast<DimmId>(j),
                          static_cast<DimmId>(k)) *
                     static_cast<double>(
                         profile.accesses(i, static_cast<DimmId>(k)));
            }
            cost[static_cast<std::size_t>(i) * n_cnt + j] = c;
        }
    }
    return cost;
}

std::vector<DimmId>
solvePlacement(const TrafficProfiler &profile, const DistanceFn &dist,
               unsigned max_threads_per_dimm)
{
    const unsigned t_cnt = profile.numThreads();
    const unsigned n_cnt = profile.numDimms();
    if (t_cnt > n_cnt * max_threads_per_dimm)
        fatal("placement infeasible: %u threads > %u DIMMs x %u slots",
              t_cnt, n_cnt, max_threads_per_dimm);

    const std::vector<double> cost = costTable(profile, dist);

    // Scale fractional costs to integers for the flow solver.
    double max_cost = 0;
    for (double c : cost)
        max_cost = std::max(max_cost, c);
    const double scale =
        max_cost > 0 ? 1e6 / max_cost : 1.0;

    // Vertices: 0 = source, 1..T = threads, T+1..T+N = DIMMs,
    // T+N+1 = sink (Algorithm 1, Step 2).
    const int src = 0;
    const int sink = static_cast<int>(t_cnt + n_cnt + 1);
    MinCostMaxFlow flow(sink + 1);

    std::vector<int> bipartite_edge(
        static_cast<std::size_t>(t_cnt) * n_cnt, -1);
    for (unsigned i = 0; i < t_cnt; ++i)
        flow.addEdge(src, static_cast<int>(1 + i), 1, 0);
    for (unsigned i = 0; i < t_cnt; ++i) {
        for (unsigned j = 0; j < n_cnt; ++j) {
            const auto c = static_cast<std::int64_t>(
                std::llround(cost[static_cast<std::size_t>(i) * n_cnt
                                  + j] * scale));
            bipartite_edge[static_cast<std::size_t>(i) * n_cnt + j] =
                flow.addEdge(static_cast<int>(1 + i),
                             static_cast<int>(1 + t_cnt + j), 1, c);
        }
    }
    for (unsigned j = 0; j < n_cnt; ++j)
        flow.addEdge(static_cast<int>(1 + t_cnt + j), sink,
                     max_threads_per_dimm, 0);

    const auto result = flow.solve(src, sink);
    if (result.flow != static_cast<std::int64_t>(t_cnt))
        panic("placement flow incomplete: %lld of %u threads placed",
              static_cast<long long>(result.flow), t_cnt);

    // Step 3: flowed bipartite edges define the placement.
    std::vector<DimmId> assignment(t_cnt, 0);
    for (unsigned i = 0; i < t_cnt; ++i) {
        bool placed = false;
        for (unsigned j = 0; j < n_cnt; ++j) {
            const int id =
                bipartite_edge[static_cast<std::size_t>(i) * n_cnt +
                               j];
            if (flow.flowOn(id) > 0) {
                assignment[i] = static_cast<DimmId>(j);
                placed = true;
                break;
            }
        }
        if (!placed)
            panic("thread %u left unplaced by the flow solution", i);
    }
    return assignment;
}

double
placementCost(const TrafficProfiler &profile, const DistanceFn &dist,
              const std::vector<DimmId> &assignment)
{
    double total = 0;
    const unsigned n_cnt = profile.numDimms();
    for (unsigned i = 0; i < assignment.size(); ++i) {
        for (unsigned k = 0; k < n_cnt; ++k) {
            total += dist(assignment[i], static_cast<DimmId>(k)) *
                     static_cast<double>(
                         profile.accesses(i, static_cast<DimmId>(k)));
        }
    }
    return total;
}

namespace {

void
bruteRecurse(const TrafficProfiler &profile, const DistanceFn &dist,
             unsigned max_per_dimm, std::vector<DimmId> &cur,
             std::vector<unsigned> &load, unsigned i, double cur_cost,
             double &best_cost, std::vector<DimmId> &best)
{
    const unsigned t_cnt = profile.numThreads();
    const unsigned n_cnt = profile.numDimms();
    if (cur_cost >= best_cost)
        return;
    if (i == t_cnt) {
        best_cost = cur_cost;
        best = cur;
        return;
    }
    for (unsigned j = 0; j < n_cnt; ++j) {
        if (load[j] >= max_per_dimm)
            continue;
        double c = 0;
        for (unsigned k = 0; k < n_cnt; ++k)
            c += dist(static_cast<DimmId>(j), static_cast<DimmId>(k)) *
                 static_cast<double>(
                     profile.accesses(i, static_cast<DimmId>(k)));
        cur[i] = static_cast<DimmId>(j);
        ++load[j];
        bruteRecurse(profile, dist, max_per_dimm, cur, load, i + 1,
                     cur_cost + c, best_cost, best);
        --load[j];
    }
}

} // namespace

std::vector<DimmId>
bruteForcePlacement(const TrafficProfiler &profile,
                    const DistanceFn &dist, unsigned max_threads_per_dimm)
{
    std::vector<DimmId> cur(profile.numThreads(), 0);
    std::vector<DimmId> best(profile.numThreads(), 0);
    std::vector<unsigned> load(profile.numDimms(), 0);
    double best_cost = std::numeric_limits<double>::infinity();
    bruteRecurse(profile, dist, max_threads_per_dimm, cur, load, 0,
                 0.0, best_cost, best);
    return best;
}

} // namespace mapping
} // namespace dimmlink
