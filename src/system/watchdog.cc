#include "system/watchdog.hh"

#include <sstream>

#include "common/log.hh"

namespace dimmlink {

Watchdog::Watchdog(EventQueue &eq, Tick stall_ps)
    : eventq(eq), stall(stall_ps)
{
    if (stall == 0)
        panic("watchdog built with stallPs == 0");
}

void
Watchdog::addProgress(std::string label, std::function<double()> fn)
{
    progress.emplace_back(std::move(label), std::move(fn));
}

void
Watchdog::addDumper(std::function<std::string()> fn)
{
    dumpers.push_back(std::move(fn));
}

void
Watchdog::arm()
{
    if (armed_)
        return;
    armed_ = true;
    lastSnapshot.clear();
    for (const auto &p : progress)
        lastSnapshot.push_back(p.second());
    checkEv = eventq.scheduleIn(stall, [this] { check(); },
                                EventPriority::Stat);
}

void
Watchdog::disarm()
{
    if (!armed_)
        return;
    armed_ = false;
    eventq.deschedule(checkEv);
    checkEv = 0;
}

void
Watchdog::check()
{
    if (!armed_)
        return;
    bool moved = false;
    for (std::size_t i = 0; i < progress.size(); ++i) {
        const double v = progress[i].second();
        if (v != lastSnapshot[i])
            moved = true;
        lastSnapshot[i] = v;
    }
    if (!moved)
        fire();
    checkEv = eventq.scheduleIn(stall, [this] { check(); },
                                EventPriority::Stat);
}

void
Watchdog::fire()
{
    fatal("hang watchdog: no forward progress for %llu ps\n%s",
          static_cast<unsigned long long>(stall),
          diagnostics().c_str());
}

std::string
Watchdog::diagnostics() const
{
    std::ostringstream os;
    os << "watchdog progress counters:\n";
    for (const auto &p : progress)
        os << "  " << p.first << " = " << p.second() << "\n";
    for (const auto &d : dumpers)
        os << d();
    return os.str();
}

} // namespace dimmlink
