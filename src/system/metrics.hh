/**
 * @file
 * Result records shared by the runners and the bench harnesses: the
 * metrics the paper's evaluation section reports.
 */

#ifndef DIMMLINK_SYSTEM_METRICS_HH
#define DIMMLINK_SYSTEM_METRICS_HH

#include <cstdint>

#include "common/types.hh"
#include "energy/energy_model.hh"

namespace dimmlink {

/** Outcome of one kernel execution. */
struct RunResult
{
    /** Wall-clock simulated kernel time (including any profiling
     * phase, as the paper reports). */
    Tick kernelTicks = 0;
    /** Portion spent in the task-mapping profiling phase. */
    Tick profilingTicks = 0;
    /** Sum over cores of remote-attributed stall time. */
    double idcStallPs = 0;
    /** Sum over cores of barrier wait time. */
    double barrierPs = 0;
    /** kernelTicks x active cores: denominator for stall ratios. */
    double coreTimePs = 0;
    /** Ratio of non-overlapped IDC cycles (the Fig. 10 line plot). */
    double
    idcStallRatio() const
    {
        return coreTimePs > 0 ? idcStallPs / coreTimePs : 0;
    }

    std::uint64_t instructions = 0;
    bool verified = false;

    /** Traffic breakdown (Fig. 11). */
    double localBytes = 0;
    double linkBytes = 0;
    double hostBytes = 0;
    double busBytes = 0;

    /** Memory-bus occupancy during the kernel (Fig. 15-b). */
    double busOccupancy = 0;

    EnergyReport energy;
};

} // namespace dimmlink

#endif // DIMMLINK_SYSTEM_METRICS_HH
