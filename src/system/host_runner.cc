#include "system/host_runner.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/log.hh"
#include "sim/clocked.hh"
#include "workloads/serving.hh"

namespace dimmlink {

/**
 * One OoO-approximated host core: same op semantics as an NMP core,
 * but with host frequency/IPC, the host cache hierarchy, and
 * channel-based DRAM access.
 */
class HostRunner::HostCore : public Clocked
{
  public:
    HostCore(HostRunner &owner, unsigned idx)
        : Clocked(owner.eventq,
                  "hostcore" + std::to_string(idx),
                  owner.cfg.host.coreFreqMHz),
          owner(owner),
          idx(idx),
          statInstructions(owner.registry
                               .group(name())
                               .scalar("instructions")),
          statStallPs(
              owner.registry.group(name()).scalar("stallPs")),
          statRequests(
              owner.registry.group(name()).scalar("requests")),
          statGroup(owner.registry.group(name()))
    {
    }

    void
    run(std::unique_ptr<ThreadProgram> program,
        std::function<void()> on_done)
    {
        prog = std::move(program);
        onDone = std::move(on_done);
        haveOp = false;
        outstanding = 0;
        issueDebt = 0;
        runStart = now();
        reqStart = now();
        state = State::Ready;
        queue().schedule(clockEdge(), [this] { advance(); },
                         EventPriority::Core);
    }

    bool busy() const { return state != State::Idle; }

  private:
    enum class State {
        Idle, Ready, Computing, StallMshr, Fence, Barrier, Broadcast,
        Waiting
    };

    void
    onResponse()
    {
        --outstanding;
        if (state == State::StallMshr ||
            (state == State::Fence && outstanding == 0)) {
            statStallPs += static_cast<double>(now() - stallStart);
            state = State::Ready;
            advance();
        }
    }

    void
    issueRef(const MemRef &ref)
    {
        ++statInstructions;
        ++outstanding;
        owner.memAccess(ref.addr, ref.bytes, ref.isWrite, ref.cls,
                        idx, [this] { onResponse(); });
    }

    void
    advance()
    {
        while (state == State::Ready) {
            if (issueDebt > 0) {
                const auto cyc = static_cast<Cycles>(std::max(
                    1.0, static_cast<double>(issueDebt) /
                             owner.cfg.host.computeIpc));
                issueDebt = 0;
                state = State::Computing;
                scheduleCycles(cyc,
                               [this] {
                                   state = State::Ready;
                                   advance();
                               },
                               EventPriority::Core);
                return;
            }
            if (!haveOp) {
                op = prog->next();
                haveOp = true;
                refIdx = 0;
            }
            switch (op.kind) {
              case Op::Kind::Compute: {
                statInstructions +=
                    static_cast<double>(op.instructions);
                const auto cyc = std::max<Cycles>(
                    1, static_cast<Cycles>(
                           static_cast<double>(op.instructions) /
                           owner.cfg.host.computeIpc + 0.5));
                state = State::Computing;
                scheduleCycles(cyc,
                               [this] {
                                   state = State::Ready;
                                   haveOp = false;
                                   advance();
                               },
                               EventPriority::Core);
                return;
              }
              case Op::Kind::Mem:
              // The host baseline has no reliability engine: a hedged
              // batch runs as its primary fanout (fenced), and the
              // replica refs are ignored. memHedged() always sets
              // fenceAfter, so the shared path below drains it.
              case Op::Kind::HedgedMem: {
                while (refIdx < op.refs.size()) {
                    if (outstanding >= mshrs) {
                        state = State::StallMshr;
                        stallStart = now();
                        return;
                    }
                    issueRef(op.refs[refIdx]);
                    ++refIdx;
                    ++issueDebt;
                }
                if (op.fenceAfter && outstanding > 0) {
                    state = State::Fence;
                    stallStart = now();
                    return;
                }
                haveOp = false;
                break;
              }
              case Op::Kind::Barrier: {
                if (outstanding > 0) {
                    state = State::Fence;
                    stallStart = now();
                    return;
                }
                state = State::Barrier;
                owner.coreBarrier([this] {
                    state = State::Ready;
                    haveOp = false;
                    advance();
                });
                return;
              }
              case Op::Kind::Broadcast: {
                if (outstanding > 0) {
                    state = State::Fence;
                    stallStart = now();
                    return;
                }
                state = State::Broadcast;
                owner.broadcast(op.bcastAddr, op.bcastBytes, [this] {
                    state = State::Ready;
                    haveOp = false;
                    advance();
                });
                return;
              }
              case Op::Kind::ReqStart: {
                // Same semantics as the NMP core: open-loop arrivals
                // are relative to runStart and start the latency
                // clock even when they are already in the past.
                const Tick arrival = op.tickArg == Op::reqNow
                                         ? now()
                                         : runStart + op.tickArg;
                reqStart = arrival;
                if (arrival > now()) {
                    state = State::Waiting;
                    queue().schedule(arrival,
                                     [this] {
                                         state = State::Ready;
                                         haveOp = false;
                                         advance();
                                     },
                                     EventPriority::Core);
                    return;
                }
                haveOp = false;
                break;
              }
              case Op::Kind::ReqEnd: {
                if (outstanding > 0) {
                    state = State::Fence;
                    stallStart = now();
                    return;
                }
                if (!reqHist)
                    reqHist = &statGroup.histogram(
                        "reqLatencyPs",
                        static_cast<double>(
                            owner.cfg.serve.latBucketPs),
                        owner.cfg.serve.latBuckets);
                reqHist->sample(
                    static_cast<double>(now() - reqStart));
                ++statRequests;
                haveOp = false;
                break;
              }
              case Op::Kind::Done: {
                state = State::Idle;
                prog.reset();
                haveOp = false;
                auto cb = std::move(onDone);
                onDone = nullptr;
                if (cb)
                    cb();
                return;
              }
            }
        }
    }

    HostRunner &owner;
    unsigned idx;
    static constexpr unsigned mshrs = 16;

    State state = State::Idle;
    std::unique_ptr<ThreadProgram> prog;
    std::function<void()> onDone;
    Op op;
    std::size_t refIdx = 0;
    bool haveOp = false;
    std::uint64_t issueDebt = 0;
    unsigned outstanding = 0;
    Tick stallStart = 0;
    Tick runStart = 0;
    Tick reqStart = 0;

    stats::Scalar &statInstructions;
    stats::Scalar &statStallPs;
    stats::Scalar &statRequests;
    stats::Group &statGroup;
    stats::Histogram *reqHist = nullptr;
};

HostRunner::HostRunner(SystemConfig cfg_) : cfg(std::move(cfg_))
{
    gmap = std::make_unique<dram::GlobalAddressMap>(
        cfg.numDimms, cfg.dimm.capacityBytes);
    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        const std::string name = "host.channel" + std::to_string(c);
        channels.push_back(std::make_unique<host::Channel>(
            eventq, name, cfg.host.channelGBps,
            registry.group(name)));
    }
    const dram::Timing timing = cfg.dramTiming();
    dramPending.resize(cfg.numChannels);
    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        const std::string n = "host.dram" + std::to_string(c);
        dramCtrl.push_back(std::make_unique<dram::DramController>(
            eventq, n, timing, /*num_ranks=*/2, cfg.host.lineBytes,
            registry.group(n), cfg.dramScheduler));
        dramCtrl.back()->setUnblockCallback(
            [this, c] { drainDram(static_cast<ChannelId>(c)); });
    }
    llc = std::make_unique<Cache>(
        "host.llc", cfg.host.llcBytes, cfg.host.llcAssoc,
        cfg.host.lineBytes, registry.group("host.llc"));
    for (unsigned i = 0; i < cfg.host.numCores; ++i) {
        l1s.push_back(std::make_unique<Cache>(
            "hostcore" + std::to_string(i) + ".l1",
            cfg.host.l1Bytes, cfg.host.l1Assoc, cfg.host.lineBytes,
            registry.group("hostcore" + std::to_string(i) + ".l1")));
        cores.push_back(std::make_unique<HostCore>(*this, i));
    }
}

HostRunner::~HostRunner() = default;

void
HostRunner::coreBarrier(std::function<void()> release)
{
    barrierWaiters.push_back(std::move(release));
    if (++barrierArrived < cores.size())
        return;
    barrierArrived = 0;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    eventq.scheduleIn(barrierLatencyPs,
                      [waiters = std::move(waiters)] {
                          for (const auto &w : waiters)
                              w();
                      },
                      EventPriority::Core);
}

void
HostRunner::dramLine(ChannelId ch, Addr addr, bool is_write,
                     std::function<void()> done)
{
    // DRAM command/array timing first, then the data burst crosses
    // the shared channel.
    auto after = [this, ch, done = std::move(done)]() mutable {
        if (!done)
            return;
        const Tick end =
            channels[ch]->transfer(cfg.host.lineBytes);
        eventq.schedule(end, std::move(done),
                        EventPriority::Delivery);
    };
    auto submit = [this, ch, addr, is_write,
                   after = std::move(after)]() mutable {
        dram::DramRequest req;
        req.local = addr;
        req.isWrite = is_write;
        req.done = std::move(after);
        dramCtrl[ch]->enqueue(std::move(req));
    };
    if (dramCtrl[ch]->full(is_write)) {
        dramPending[ch].push_back(std::move(submit));
        return;
    }
    submit();
}

void
HostRunner::drainDram(ChannelId ch)
{
    while (!dramPending[ch].empty()) {
        if (dramCtrl[ch]->full(false) || dramCtrl[ch]->full(true))
            return;
        auto job = std::move(dramPending[ch].front());
        dramPending[ch].pop_front();
        job();
    }
}

void
HostRunner::memAccess(Addr addr, std::uint32_t bytes, bool is_write,
                      DataClass cls, unsigned core_idx,
                      std::function<void()> done)
{
    const unsigned line = cfg.host.lineBytes;
    const Addr first = roundDown(addr, line);
    const Addr last = roundDown(addr + bytes - 1, line);

    auto lines = static_cast<std::size_t>((last - first) / line) + 1;
    auto remaining = std::make_shared<std::size_t>(lines);
    auto done_sh =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish_line = [remaining, done_sh] {
        if (--*remaining == 0 && *done_sh)
            (*done_sh)();
    };

    for (Addr a = first; a <= last; a += line) {
        // Private data sits in the core's L1 (hardware coherence
        // makes everything cacheable on the host; shared classes go
        // to the inclusive LLC the cores agree on).
        if (cls == DataClass::Private) {
            const Cache::Result r1 =
                l1s[core_idx]->access(a, is_write);
            if (r1.hit) {
                eventq.scheduleIn(cfg.host.l1LatencyPs, finish_line,
                                  EventPriority::Delivery);
                continue;
            }
        }
        const Cache::Result r2 = llc->access(a, is_write);
        if (r2.hit) {
            eventq.scheduleIn(cfg.host.llcLatencyPs, finish_line,
                              EventPriority::Delivery);
            continue;
        }
        if (r2.writeback) {
            // Posted victim writeback: bus plus a DRAM write.
            const ChannelId wch =
                cfg.channelOf(gmap->dimmOf(r2.victimAddr));
            channels[wch]->transfer(line);
            dramLine(wch, r2.victimAddr, /*is_write=*/true, nullptr);
        }
        const ChannelId ch = cfg.channelOf(gmap->dimmOf(a));
        dramLine(ch, a, /*is_write=*/false, finish_line);
    }
}

void
HostRunner::broadcast(Addr addr, std::uint64_t bytes,
                      std::function<void()> done)
{
    // A CPU "broadcast" is a memcpy into every DIMM's local copy.
    (void)addr;
    Tick last = eventq.now();
    for (unsigned d = 0; d < cfg.numDimms; ++d) {
        const Tick end =
            channels[cfg.channelOf(static_cast<DimmId>(d))]
                ->transfer(bytes);
        last = std::max(last, end);
    }
    eventq.schedule(last, std::move(done), EventPriority::Delivery);
}

RunResult
HostRunner::run(workloads::Workload &wl)
{
    if (wl.params().numThreads != cfg.host.numCores)
        fatal("host baseline expects %u threads, workload has %u",
              cfg.host.numCores, wl.params().numThreads);

    threadsDone = 0;
    allDone = false;
    barrierArrived = 0;
    barrierWaiters.clear();

    const double instr0 =
        registry.sumScalar("hostcore", "instructions");
    const Tick start = eventq.now();

    for (unsigned i = 0; i < cores.size(); ++i) {
        cores[i]->run(wl.program(static_cast<ThreadId>(i)), [this] {
            if (++threadsDone == cores.size())
                allDone = true;
        });
    }

    while (!allDone && eventq.step()) {
    }
    if (!allDone)
        panic("host event queue drained before the kernel finished");

    RunResult r;
    r.kernelTicks = eventq.now() - start;
    r.coreTimePs =
        static_cast<double>(r.kernelTicks) * cores.size();
    r.instructions = static_cast<std::uint64_t>(
        registry.sumScalar("hostcore", "instructions") - instr0);
    r.verified = wl.verify();
    workloads::serving::aggregate(registry, cfg, r.kernelTicks);
    return r;
}

} // namespace dimmlink
