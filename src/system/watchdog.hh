/**
 * @file
 * The hang watchdog: a periodic self-check that fires while the
 * kernel is running (armed between enterNmpMode and exitNmpMode) and
 * fatal()s with a diagnostic dump when no registered progress counter
 * has moved for a whole stall interval — a lost completion callback,
 * a wedged retry engine, or a forwarding job that never ran would
 * otherwise spin the simulation forever.
 *
 * Progress is measured through counters, not queue occupancy: the
 * failure-recovery machinery (link re-probes) keeps events pending
 * even in a genuine hang, so "queue empty" is not a usable signal.
 */

#ifndef DIMMLINK_SYSTEM_WATCHDOG_HH
#define DIMMLINK_SYSTEM_WATCHDOG_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

class Watchdog
{
  public:
    /** @param stall_ps firing threshold; must be positive. */
    Watchdog(EventQueue &eq, Tick stall_ps);

    /**
     * Register a monotonic counter; the watchdog fires only when ALL
     * registered counters are unchanged across one stall interval.
     */
    void addProgress(std::string label, std::function<double()> fn);

    /** Extra diagnostic text appended to the firing message. */
    void addDumper(std::function<std::string()> fn);

    /** Start checking (kernel entry). */
    void arm();
    /** Stop checking (kernel exit). */
    void disarm();
    bool armed() const { return armed_; }

    Tick stallPs() const { return stall; }

    /** Current counter values plus every dumper's text. */
    std::string diagnostics() const;

  private:
    void check();
    [[noreturn]] void fire();

    EventQueue &eventq;
    Tick stall;
    bool armed_ = false;
    EventQueue::EventId checkEv = 0;
    std::vector<std::pair<std::string, std::function<double()>>>
        progress;
    std::vector<double> lastSnapshot;
    std::vector<std::function<std::string()>> dumpers;
};

} // namespace dimmlink

#endif // DIMMLINK_SYSTEM_WATCHDOG_HH
