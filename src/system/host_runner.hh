/**
 * @file
 * The 16-core host CPU baseline of Fig. 10: the same workload op
 * streams execute on OoO-approximated host cores with an L1 + shared
 * LLC hierarchy and shared-channel DRAM bandwidth — the denominator
 * of every speedup the paper reports.
 */

#ifndef DIMMLINK_SYSTEM_HOST_RUNNER_HH
#define DIMMLINK_SYSTEM_HOST_RUNNER_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "dimm/cache.hh"
#include "dimm/op.hh"
#include "dram/address_map.hh"
#include "dram/dram_controller.hh"
#include "host/channel.hh"
#include "sim/event_queue.hh"
#include "system/metrics.hh"
#include "workloads/workload.hh"

namespace dimmlink {

/**
 * A self-contained host-CPU machine model (its own event queue and
 * channels; no NMP hardware). Build the workload with
 * numThreads == cfg.host.numCores.
 */
class HostRunner
{
  public:
    explicit HostRunner(SystemConfig cfg);
    ~HostRunner();

    RunResult run(workloads::Workload &wl);

    stats::Registry &stats() { return registry; }

  private:
    class HostCore;

    SystemConfig cfg;
    EventQueue eventq;
    stats::Registry registry;
    std::unique_ptr<dram::GlobalAddressMap> gmap;
    std::vector<std::unique_ptr<host::Channel>> channels;
    /** One real DDR4 controller per channel: host misses pay full
     * DRAM timing (bank conflicts, refresh) plus bus occupancy. */
    std::vector<std::unique_ptr<dram::DramController>> dramCtrl;
    std::vector<std::deque<std::function<void()>>> dramPending;
    std::unique_ptr<Cache> llc;
    std::vector<std::unique_ptr<Cache>> l1s;
    std::vector<std::unique_ptr<HostCore>> cores;

    unsigned threadsDone = 0;
    bool allDone = false;

    /** Simple centralized shared-memory barrier. */
    unsigned barrierArrived = 0;
    std::vector<std::function<void()>> barrierWaiters;
    static constexpr Tick barrierLatencyPs = 300 * tickPerNs;

    void coreBarrier(std::function<void()> release);
    void memAccess(Addr addr, std::uint32_t bytes, bool is_write,
                   DataClass cls, unsigned core_idx,
                   std::function<void()> done);
    /** Line fetch through channel @p ch's DRAM controller + bus. */
    void dramLine(ChannelId ch, Addr addr, bool is_write,
                  std::function<void()> done);
    void drainDram(ChannelId ch);
    void broadcast(Addr addr, std::uint64_t bytes,
                   std::function<void()> done);

    friend class HostCore;
};

} // namespace dimmlink

#endif // DIMMLINK_SYSTEM_HOST_RUNNER_HH
