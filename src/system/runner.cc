#include "system/runner.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"
#include "energy/energy_model.hh"
#include "mapping/placement.hh"
#include "workloads/serving.hh"

namespace dimmlink {

Runner::Runner(System &sys_, workloads::Workload &wl_)
    : sys(sys_), wl(wl_)
{
    const auto &p = wl.params();
    if (p.numDimms != sys.config().numDimms)
        fatal("workload built for %u DIMMs on a %u-DIMM system",
              p.numDimms, sys.config().numDimms);
    if (p.numThreads >
        sys.config().numDimms * sys.config().dimm.numCores)
        fatal("%u threads exceed %u cores", p.numThreads,
              sys.config().numDimms * sys.config().dimm.numCores);
}

std::vector<DimmId>
Runner::defaultPlacement() const
{
    // Natural first-touch placement: thread t runs beside its data
    // slice (block distribution over the DIMMs).
    const auto &p = wl.params();
    std::vector<DimmId> map(p.numThreads);
    for (unsigned t = 0; t < p.numThreads; ++t)
        map[t] = static_cast<DimmId>(
            static_cast<std::uint64_t>(t) * p.numDimms /
            p.numThreads);
    return map;
}

void
Runner::launch(const std::vector<DimmId> &map)
{
    currentMap = map;
    sys.sync().setParticipants(map);
    threadsDone = 0;

    // Assign cores in placement order within each DIMM.
    std::map<DimmId, CoreId> next_core;
    for (unsigned t = 0; t < map.size(); ++t) {
        const DimmId d = map[t];
        const CoreId c = next_core[d]++;
        if (c >= sys.config().dimm.numCores)
            fatal("placement puts more than %u threads on DIMM %u",
                  sys.config().dimm.numCores, d);
        sys.dimm(d).core(c).run(
            static_cast<ThreadId>(t), wl.program(t), [this] {
                // Completion callbacks fire on the core's shard; the
                // progress counters stay single-writer by hopping to
                // the host shard (a direct call when unsharded, and
                // shard 0 always executes on the coordinator thread
                // that also reads allDone between windows).
                auto mark = [this] {
                    if (++threadsDone == currentMap.size())
                        allDone = true;
                };
                if (auto *shs = sys.shards())
                    shs->call(0, std::move(mark));
                else
                    mark();
            });
    }
}

void
Runner::attachProbes(mapping::TrafficProfiler &prof,
                     std::uint64_t ref_limit)
{
    for (unsigned d = 0; d < sys.numDimms(); ++d) {
        for (unsigned c = 0; c < sys.config().dimm.numCores; ++c) {
            sys.dimm(static_cast<DimmId>(d))
                .core(static_cast<CoreId>(c))
                .setTrafficProbe([this, &prof, ref_limit](
                                     ThreadId tid, DimmId home,
                                     std::uint32_t bytes) {
                    prof.record(tid, home, bytes);
                    if (prof.totalRefs() >= ref_limit &&
                        !migrationPending && !allDone) {
                        migrationPending = true;
                        sys.queue().scheduleIn(
                            0, [this] { migrate(); },
                            EventPriority::Stat);
                    }
                });
        }
    }
}

void
Runner::detachProbes()
{
    for (unsigned d = 0; d < sys.numDimms(); ++d)
        for (unsigned c = 0; c < sys.config().dimm.numCores; ++c)
            sys.dimm(static_cast<DimmId>(d))
                .core(static_cast<CoreId>(c))
                .setTrafficProbe(nullptr);
}

void
Runner::migrate()
{
    if (allDone)
        return; // Kernel finished before the profile window closed.
    profileEndTick = sys.queue().now();
    detachProbes();

    // Cancel every running core (the same binaries restart with new
    // thread indices; checkpointing is unnecessary, Section IV-B).
    for (unsigned d = 0; d < sys.numDimms(); ++d)
        for (unsigned c = 0; c < sys.config().dimm.numCores; ++c)
            sys.dimm(static_cast<DimmId>(d))
                .core(static_cast<CoreId>(c))
                .cancel();

    const auto placement = mapping::solvePlacement(
        *profiler,
        [this](DimmId j, DimmId k) {
            return sys.fabric().distance(j, k);
        },
        sys.config().dimm.numCores);

    wl.reset();
    launch(placement);
}

RunResult
Runner::run()
{
    auto &reg = sys.stats();
    const auto &cfg = sys.config();

    // Pre-run snapshots of the stats we report as deltas.
    const double stall0 = reg.sumScalar("dimm", "stallRemotePs");
    const double barrier0 = reg.sumScalar("dimm", "barrierPs");
    const double instr0 = reg.sumScalar("dimm", "instructions");
    const double local0 = reg.sumScalar("dimm", "localBytes");
    const double link0 = reg.sumScalar("fabric", "bytesViaLink");
    const double hostb0 = reg.sumScalar("fabric", "bytesViaHost");
    const double busb0 = reg.sumScalar("fabric", "bytesViaBus");
    const double chan0 = sys.channelBusyPs();

    EnergyModel energy(cfg);
    energy.snapshotFrom(reg);

    allDone = false;
    migrationPending = false;
    profileEndTick = 0;

    const Tick start = sys.queue().now();
    sys.enterNmpMode();

    if (cfg.distanceAwareMapping) {
        profiler = std::make_unique<mapping::TrafficProfiler>(
            wl.params().numThreads, cfg.numDimms);
        // Profile roughly cfg.profileFraction of the kernel's
        // references (the paper profiles ~1% of total cycles).
        const std::uint64_t est_refs =
            std::max<std::uint64_t>(wl.approxMemRefs(), 20000);
        const auto limit = std::max<std::uint64_t>(
            200, static_cast<std::uint64_t>(
                     cfg.profileFraction *
                     static_cast<double>(est_refs)));
        attachProbes(*profiler, limit);
    }

    launch(defaultPlacement());

    if (auto *shs = sys.shards())
        // Conservative-window parallel kernel: the shard set owns the
        // drive loop (and falls back to windowed sequential execution
        // when sim.threads is 1).
        shs->drive(cfg.sim.threads, [this] { return allDone; });
    else
        while (!allDone && sys.queue().step()) {
        }
    if (!allDone)
        panic("event queue drained before the kernel finished\n%s",
              sys.hangDiagnostics().c_str());

    const Tick end = sys.queue().now();
    sys.exitNmpMode();
    detachProbes();

    RunResult r;
    r.kernelTicks = end - start;
    r.profilingTicks = profileEndTick > start
                           ? profileEndTick - start
                           : 0;
    r.idcStallPs = reg.sumScalar("dimm", "stallRemotePs") - stall0;
    r.barrierPs = reg.sumScalar("dimm", "barrierPs") - barrier0;
    r.coreTimePs = static_cast<double>(r.kernelTicks) *
                   wl.params().numThreads;
    r.instructions = static_cast<std::uint64_t>(
        reg.sumScalar("dimm", "instructions") - instr0);
    r.verified = wl.verify();
    r.localBytes = reg.sumScalar("dimm", "localBytes") - local0;
    r.linkBytes = reg.sumScalar("fabric", "bytesViaLink") - link0;
    r.hostBytes = reg.sumScalar("fabric", "bytesViaHost") - hostb0;
    r.busBytes = reg.sumScalar("fabric", "bytesViaBus") - busb0;
    r.busOccupancy =
        (sys.channelBusyPs() - chan0) /
        (static_cast<double>(r.kernelTicks) * sys.numChannels());
    r.energy = energy.report(reg, r.kernelTicks, sys.numDimms());
    // Serving workloads: fold the per-core request-latency histograms
    // into the "serve" group (no-op for the batch kernels).
    workloads::serving::aggregate(reg, cfg, r.kernelTicks);
    return r;
}

} // namespace dimmlink
