#include "system/system.hh"

#include <sstream>

#include "common/log.hh"
#include "dram/timing.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"

namespace dimmlink {

namespace {

/**
 * Barrier endpoint for sharded systems: arrivals hop from the core's
 * group shard to the host shard (where the SyncManager and its fabric
 * sync messages live), and releases hop back to the arriving core's
 * shard. Outside a parallel window the hops degenerate to direct
 * calls, so the sequenced behavior is the same at every thread count.
 */
class ShardedBarrier : public BarrierEndpoint
{
  public:
    ShardedBarrier(ShardSet &sh_, SyncManager &sm_,
                   const SystemConfig &cfg_)
        : sh(sh_), sm(sm_), cfg(cfg_)
    {}

    void
    arrive(ThreadId tid, DimmId dimm,
           std::function<void()> release) override
    {
        const unsigned back = 1 + cfg.groupOf(dimm);
        sh.call(0, [this, tid, dimm, back,
                    release = std::move(release)]() mutable {
            sm.arrive(tid, dimm,
                      [this, back,
                       release = std::move(release)]() mutable {
                          sh.call(back, std::move(release),
                                  EventPriority::Core);
                      });
        });
    }

  private:
    ShardSet &sh;
    SyncManager &sm;
    const SystemConfig &cfg;
};

} // namespace

System::System(SystemConfig cfg_) : cfg(std::move(cfg_))
{
    cfg.validate();

    if (cfg.obs.trace) {
        tracer_ = std::make_unique<obs::Tracer>(
            obs::categoryMaskFromString(cfg.obs.categories),
            cfg.obs.ringCapacity);
        eventq.setTracer(tracer_.get());
    }

    if (cfg.sharded()) {
        for (unsigned g = 0; g < cfg.numGroups(); ++g) {
            auto q = std::make_unique<EventQueue>();
            if (tracer_)
                q->setTracer(tracer_.get());
            groupQueues_.push_back(std::move(q));
        }
        std::vector<EventQueue *> qs;
        qs.push_back(&eventq);
        for (auto &q : groupQueues_)
            qs.push_back(q.get());
        shards_ = std::make_unique<ShardSet>(
            std::move(qs), cfg.resolvedLookaheadPs());
    }

    gmap = std::make_unique<dram::GlobalAddressMap>(
        cfg.numDimms, cfg.dimm.capacityBytes);

    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        const std::string name =
            "host.channel" + std::to_string(c);
        channels.push_back(std::make_unique<host::Channel>(
            eventq, name, cfg.host.channelGBps,
            registry.group(name)));
    }

    std::vector<host::Channel *> chan_ptrs;
    for (auto &ch : channels)
        chan_ptrs.push_back(ch.get());
    fabric_ = idc::makeFabric(eventq, cfg, chan_ptrs, registry);

    const dram::Timing timing = cfg.dramTiming();
    for (unsigned d = 0; d < cfg.numDimms; ++d)
        dimms.push_back(std::make_unique<Dimm>(
            // Each DIMM's components live (and schedule) on its
            // group's shard queue; the classic build keeps the one
            // global queue.
            shards_ ? *groupQueues_[cfg.groupOf(static_cast<DimmId>(d))]
                    : eventq,
            static_cast<DimmId>(d), cfg, timing, *gmap, registry));

    sync_ = std::make_unique<SyncManager>(eventq, cfg, fabric_.get(),
                                          registry);

    // Wire remote memory accesses into the destination DIMM's MC.
    // Sharded: the MC belongs to the destination's group shard, so a
    // cross-shard access hops there and its completion hops back to
    // the shard that asked.
    fabric_->setMemAccess([this](DimmId d, Addr addr,
                                 std::uint32_t bytes, bool is_write,
                                 std::function<void()> done) {
        if (!shards_) {
            dimms[d]->localMc().remoteAccess(addr, bytes, is_write,
                                             std::move(done));
            return;
        }
        const unsigned dst = 1 + cfg.groupOf(d);
        const unsigned src = shards_->current();
        shards_->call(dst, [this, d, addr, bytes, is_write, src,
                            done = std::move(done)]() mutable {
            dimms[d]->localMc().remoteAccess(
                addr, bytes, is_write,
                [this, src, done = std::move(done)]() mutable {
                    shards_->call(src, std::move(done));
                });
        });
    });

    if (shards_)
        barrierAdapter_ = std::make_unique<ShardedBarrier>(
            *shards_, *sync_, cfg);
    BarrierEndpoint *barrier =
        barrierAdapter_ ? barrierAdapter_.get()
                        : static_cast<BarrierEndpoint *>(sync_.get());

    for (auto &dimm : dimms)
        dimm->connect(fabric_.get(), barrier, gmap.get());

    if (shards_) {
        // Workload programs may touch state shared across threads
        // when generating ops, so a sharded core never resumes its
        // program in place: the fetch is a sequenced call that runs
        // on the coordinator at the window barrier in one canonical
        // order, and the op is delivered back a lookahead later.
        for (auto &dimm : dimms) {
            for (unsigned c = 0; c < cfg.dimm.numCores; ++c) {
                dimm->core(static_cast<CoreId>(c))
                    .setOpSource([this](ThreadProgram *p,
                                        std::function<void(Op)> give) {
                        shards_->callSequenced(
                            [p, give = std::move(give)]() mutable
                            -> std::function<void()> {
                                Op o = p->next();
                                return [give = std::move(give),
                                        o = std::move(o)]() mutable {
                                    give(std::move(o));
                                };
                            },
                            EventPriority::Core);
                    });
            }
        }
    }

    if (cfg.serve.relEnabled())
        wireReliability();

    if (cfg.obs.sampleIntervalPs > 0)
        buildSampler();
    if (cfg.watchdog.stallPs > 0)
        buildWatchdog();
}

void
System::wireReliability()
{
    relParams_ = serve_rel::Params::from(cfg.serve);
    const unsigned hosts = cfg.rackEnabled() ? cfg.rack.hosts : 0;
    const unsigned nviews =
        shards_ ? 1 + cfg.numGroups() : 1;
    relViews_.assign(nviews, serve_rel::HostHealthView(hosts));

    for (unsigned d = 0; d < cfg.numDimms; ++d) {
        const DimmId id = static_cast<DimmId>(d);
        // A core consults the view of the shard it executes on.
        const unsigned v = shards_ ? 1 + cfg.groupOf(id) : 0;
        for (unsigned c = 0; c < cfg.dimm.numCores; ++c)
            dimms[d]->core(static_cast<CoreId>(c))
                .setReliability(&relParams_, &relViews_[v],
                                cfg.hostOf(id));
    }

    if (!cfg.rackEnabled())
        return;
    // Availability transitions originate on the host shard (the rack
    // fabric's LinkHealth); fan each one out to every shard's view
    // through that shard's own queue, keeping views single-writer and
    // the delivery tick (+lookahead inside a window) deterministic at
    // every sim.threads count.
    fabric_->setHostAvailabilitySink([this](unsigned host, bool is_gw,
                                            bool up) {
        for (unsigned v = 0; v < relViews_.size(); ++v) {
            auto apply = [this, v, host, is_gw, up] {
                auto &view = relViews_[v];
                if (host >= view.portUp.size())
                    return;
                (is_gw ? view.gwUp : view.portUp)[host] = up ? 1 : 0;
            };
            if (shards_ && v != 0)
                shards_->call(v, std::move(apply));
            else
                apply();
        }
    });
}

System::~System() = default;

void
System::buildSampler()
{
    sampler_ = std::make_unique<obs::Sampler>(
        eventq, cfg.obs.sampleIntervalPs, tracer_.get());

    // Cumulative stats become per-interval deltas; sumScalar() is
    // find-based, so probes over stats a given fabric doesn't register
    // simply read as a flat zero.
    auto delta = [this](const char *label, std::string prefix,
                        std::string stat) {
        sampler_->addProbe(
            label,
            [this, prefix = std::move(prefix),
             stat = std::move(stat)] {
                return registry.sumScalar(prefix, stat);
            },
            /*cumulative=*/true);
    };
    delta("linkFlits", "fabric.", "flits");
    delta("dramReads", "dimm", "reads");
    delta("dramWrites", "dimm", "writes");
    delta("dramActivates", "dimm", "activates");
    delta("coreStallRemotePs", "dimm", "stallRemotePs");
    delta("hostForwards", "host.forwarder", "forwards");
    delta("dllRetries", "fabric.dl", "dllRetries");
    delta("dllFailovers", "fabric.dl", "dllFailovers");

    // Live occupancy gauges.
    sampler_->addProbe(
        "forwardBacklog",
        [this] {
            return static_cast<double>(fabric_->forwardBacklog());
        },
        /*cumulative=*/false);
    sampler_->addProbe(
        "dllInFlight",
        [this] {
            return static_cast<double>(fabric_->dllInFlight());
        },
        /*cumulative=*/false);

    sampler_->start();
}

void
System::buildWatchdog()
{
    watchdog_ = std::make_unique<Watchdog>(eventq, cfg.watchdog.stallPs);
    // Progress = any of these counters moving. Together they cover
    // every layer that can be the last one still working: the cores,
    // the DRAM controllers, the host forwarder, and the DLL transport.
    auto sum = [this](std::string prefix, std::string stat) {
        return [this, prefix = std::move(prefix),
                stat = std::move(stat)] {
            return registry.sumScalar(prefix, stat);
        };
    };
    watchdog_->addProgress("instructions", sum("dimm", "instructions"));
    watchdog_->addProgress("dramReads", sum("dimm", "reads"));
    watchdog_->addProgress("dramWrites", sum("dimm", "writes"));
    watchdog_->addProgress("hostForwards",
                           sum("host.forwarder", "forwards"));
    watchdog_->addProgress("dllAcked", sum("fabric.dl", "dllAcked"));
    watchdog_->addDumper([this] { return hangDiagnostics(); });
}

std::string
System::hangDiagnostics()
{
    std::ostringstream os;
    os << "queue: now=" << eventq.now() << " pending=" << eventq.size()
       << " executed=" << eventq.executed() << "\n";
    for (std::size_t g = 0; g < groupQueues_.size(); ++g) {
        const auto &q = *groupQueues_[g];
        os << "  shard" << (g + 1) << ": now=" << q.now()
           << " pending=" << q.size() << " executed=" << q.executed()
           << "\n";
    }
    os << "fabric: forwardBacklog=" << fabric_->forwardBacklog()
       << " dllInFlight=" << fabric_->dllInFlight() << "\n";
    for (unsigned d = 0; d < numDimms(); ++d) {
        for (unsigned c = 0; c < cfg.dimm.numCores; ++c) {
            auto &core = dimms[d]->core(static_cast<CoreId>(c));
            if (!core.busy())
                continue;
            os << "  dimm" << d << ".core" << c << ": busy (thread "
               << core.threadId() << ")\n";
        }
    }
    os << fabric_->debugDump();
    return os.str();
}

void
System::enterNmpMode()
{
    if (nmpMode)
        panic("already in NMP-Access mode");
    nmpMode = true;
    fabric_->enterNmpMode();
    if (watchdog_)
        watchdog_->arm();
}

void
System::exitNmpMode()
{
    if (!nmpMode)
        panic("not in NMP-Access mode");
    nmpMode = false;
    if (watchdog_)
        watchdog_->disarm();
    fabric_->exitNmpMode();
    // Sharded kernels accumulate latency samples in per-shard lanes;
    // fold them (in fixed shard order) before anyone reads stats.
    fabric_->mergeShardStats();
    // Kernel end: NMP caches flush so the host sees fresh DRAM.
    for (auto &dimm : dimms)
        dimm->flushCaches();
}

Tick
System::hostAccess(Addr global, std::uint64_t bytes, bool is_write)
{
    if (nmpMode)
        panic("host DRAM access while the DIMMs are in NMP-Access "
              "mode (Section III-E forbids concurrent access)");
    const Tick start = eventq.now();
    const unsigned line = cfg.dimm.lineBytes;
    std::uint64_t outstanding = 0;

    for (Addr a = global; a < global + bytes; a += line) {
        const DimmId d = gmap->dimmOf(a);
        // The burst crosses the DIMM's channel, then the DIMM's DRAM
        // performs the access (the host MC owns the devices in HA
        // mode, but the same rank timing applies).
        channels[cfg.channelOf(d)]->transfer(line);
        ++outstanding;
        dimms[d]->localMc().remoteAccess(
            gmap->localOf(a), line, is_write, [&outstanding] {
                --outstanding;
            });
    }
    // Sharded systems interleave the per-shard queues in global tick
    // order here (no parallelism: HA-mode phases are host-driven and
    // cheap relative to the kernel).
    while (outstanding > 0 &&
           (shards_ ? shards_->stepMerged() : eventq.step())) {
    }
    if (outstanding > 0)
        panic("host access did not drain");
    if (shards_)
        shards_->syncClocks();
    return eventq.now() - start;
}

Tick
System::hostLoad(Addr global, std::uint64_t bytes)
{
    return hostAccess(global, bytes, /*is_write=*/true);
}

Tick
System::hostReadback(Addr global, std::uint64_t bytes)
{
    return hostAccess(global, bytes, /*is_write=*/false);
}

double
System::channelBusyPs() const
{
    double sum = 0;
    for (const auto &ch : channels)
        sum += ch->busyPs();
    return sum;
}

} // namespace dimmlink
