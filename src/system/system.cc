#include "system/system.hh"

#include <sstream>

#include "common/log.hh"
#include "dram/timing.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"

namespace dimmlink {

System::System(SystemConfig cfg_) : cfg(std::move(cfg_))
{
    cfg.validate();

    if (cfg.obs.trace) {
        tracer_ = std::make_unique<obs::Tracer>(
            obs::categoryMaskFromString(cfg.obs.categories),
            cfg.obs.ringCapacity);
        eventq.setTracer(tracer_.get());
    }

    gmap = std::make_unique<dram::GlobalAddressMap>(
        cfg.numDimms, cfg.dimm.capacityBytes);

    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        const std::string name =
            "host.channel" + std::to_string(c);
        channels.push_back(std::make_unique<host::Channel>(
            eventq, name, cfg.host.channelGBps,
            registry.group(name)));
    }

    std::vector<host::Channel *> chan_ptrs;
    for (auto &ch : channels)
        chan_ptrs.push_back(ch.get());
    fabric_ = idc::makeFabric(eventq, cfg, chan_ptrs, registry);

    const dram::Timing timing = dram::Timing::preset(cfg.dramPreset);
    for (unsigned d = 0; d < cfg.numDimms; ++d)
        dimms.push_back(std::make_unique<Dimm>(
            eventq, static_cast<DimmId>(d), cfg, timing, *gmap,
            registry));

    sync_ = std::make_unique<SyncManager>(eventq, cfg, fabric_.get(),
                                          registry);

    // Wire remote memory accesses into the destination DIMM's MC.
    fabric_->setMemAccess([this](DimmId d, Addr addr,
                                 std::uint32_t bytes, bool is_write,
                                 std::function<void()> done) {
        dimms[d]->localMc().remoteAccess(addr, bytes, is_write,
                                         std::move(done));
    });

    for (auto &dimm : dimms)
        dimm->connect(fabric_.get(), sync_.get(), gmap.get());

    if (cfg.obs.sampleIntervalPs > 0)
        buildSampler();
    if (cfg.watchdog.stallPs > 0)
        buildWatchdog();
}

System::~System() = default;

void
System::buildSampler()
{
    sampler_ = std::make_unique<obs::Sampler>(
        eventq, cfg.obs.sampleIntervalPs, tracer_.get());

    // Cumulative stats become per-interval deltas; sumScalar() is
    // find-based, so probes over stats a given fabric doesn't register
    // simply read as a flat zero.
    auto delta = [this](const char *label, std::string prefix,
                        std::string stat) {
        sampler_->addProbe(
            label,
            [this, prefix = std::move(prefix),
             stat = std::move(stat)] {
                return registry.sumScalar(prefix, stat);
            },
            /*cumulative=*/true);
    };
    delta("linkFlits", "fabric.", "flits");
    delta("dramReads", "dimm", "reads");
    delta("dramWrites", "dimm", "writes");
    delta("dramActivates", "dimm", "activates");
    delta("coreStallRemotePs", "dimm", "stallRemotePs");
    delta("hostForwards", "host.forwarder", "forwards");
    delta("dllRetries", "fabric.dl", "dllRetries");
    delta("dllFailovers", "fabric.dl", "dllFailovers");

    // Live occupancy gauges.
    sampler_->addProbe(
        "forwardBacklog",
        [this] {
            return static_cast<double>(fabric_->forwardBacklog());
        },
        /*cumulative=*/false);
    sampler_->addProbe(
        "dllInFlight",
        [this] {
            return static_cast<double>(fabric_->dllInFlight());
        },
        /*cumulative=*/false);

    sampler_->start();
}

void
System::buildWatchdog()
{
    watchdog_ = std::make_unique<Watchdog>(eventq, cfg.watchdog.stallPs);
    // Progress = any of these counters moving. Together they cover
    // every layer that can be the last one still working: the cores,
    // the DRAM controllers, the host forwarder, and the DLL transport.
    auto sum = [this](std::string prefix, std::string stat) {
        return [this, prefix = std::move(prefix),
                stat = std::move(stat)] {
            return registry.sumScalar(prefix, stat);
        };
    };
    watchdog_->addProgress("instructions", sum("dimm", "instructions"));
    watchdog_->addProgress("dramReads", sum("dimm", "reads"));
    watchdog_->addProgress("dramWrites", sum("dimm", "writes"));
    watchdog_->addProgress("hostForwards",
                           sum("host.forwarder", "forwards"));
    watchdog_->addProgress("dllAcked", sum("fabric.dl", "dllAcked"));
    watchdog_->addDumper([this] { return hangDiagnostics(); });
}

std::string
System::hangDiagnostics()
{
    std::ostringstream os;
    os << "queue: now=" << eventq.now() << " pending=" << eventq.size()
       << " executed=" << eventq.executed() << "\n";
    os << "fabric: forwardBacklog=" << fabric_->forwardBacklog()
       << " dllInFlight=" << fabric_->dllInFlight() << "\n";
    for (unsigned d = 0; d < numDimms(); ++d) {
        for (unsigned c = 0; c < cfg.dimm.numCores; ++c) {
            auto &core = dimms[d]->core(static_cast<CoreId>(c));
            if (!core.busy())
                continue;
            os << "  dimm" << d << ".core" << c << ": busy (thread "
               << core.threadId() << ")\n";
        }
    }
    os << fabric_->debugDump();
    return os.str();
}

void
System::enterNmpMode()
{
    if (nmpMode)
        panic("already in NMP-Access mode");
    nmpMode = true;
    fabric_->enterNmpMode();
    if (watchdog_)
        watchdog_->arm();
}

void
System::exitNmpMode()
{
    if (!nmpMode)
        panic("not in NMP-Access mode");
    nmpMode = false;
    if (watchdog_)
        watchdog_->disarm();
    fabric_->exitNmpMode();
    // Kernel end: NMP caches flush so the host sees fresh DRAM.
    for (auto &dimm : dimms)
        dimm->flushCaches();
}

Tick
System::hostAccess(Addr global, std::uint64_t bytes, bool is_write)
{
    if (nmpMode)
        panic("host DRAM access while the DIMMs are in NMP-Access "
              "mode (Section III-E forbids concurrent access)");
    const Tick start = eventq.now();
    const unsigned line = cfg.dimm.lineBytes;
    std::uint64_t outstanding = 0;

    for (Addr a = global; a < global + bytes; a += line) {
        const DimmId d = gmap->dimmOf(a);
        // The burst crosses the DIMM's channel, then the DIMM's DRAM
        // performs the access (the host MC owns the devices in HA
        // mode, but the same rank timing applies).
        channels[cfg.channelOf(d)]->transfer(line);
        ++outstanding;
        dimms[d]->localMc().remoteAccess(
            gmap->localOf(a), line, is_write, [&outstanding] {
                --outstanding;
            });
    }
    while (outstanding > 0 && eventq.step()) {
    }
    if (outstanding > 0)
        panic("host access did not drain");
    return eventq.now() - start;
}

Tick
System::hostLoad(Addr global, std::uint64_t bytes)
{
    return hostAccess(global, bytes, /*is_write=*/true);
}

Tick
System::hostReadback(Addr global, std::uint64_t bytes)
{
    return hostAccess(global, bytes, /*is_write=*/false);
}

double
System::channelBusyPs() const
{
    double sum = 0;
    for (const auto &ch : channels)
        sum += ch->busyPs();
    return sum;
}

} // namespace dimmlink
