/**
 * @file
 * Drives one NMP kernel through the coarse-grained execution flow:
 * thread placement, NA-mode entry, optional profiling + distance-
 * aware remapping (migration-by-restart), completion detection, and
 * metric collection.
 */

#ifndef DIMMLINK_SYSTEM_RUNNER_HH
#define DIMMLINK_SYSTEM_RUNNER_HH

#include <memory>
#include <vector>

#include "mapping/profiler.hh"
#include "system/metrics.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

namespace dimmlink {

class Runner
{
  public:
    Runner(System &sys, workloads::Workload &wl);

    /** Execute the kernel to completion and collect metrics. */
    RunResult run();

    /** The placement used for the (final phase of the) run. */
    const std::vector<DimmId> &placement() const { return currentMap; }

  private:
    std::vector<DimmId> defaultPlacement() const;
    void launch(const std::vector<DimmId> &map);
    void attachProbes(mapping::TrafficProfiler &prof,
                      std::uint64_t ref_limit);
    void detachProbes();
    void migrate();

    System &sys;
    workloads::Workload &wl;
    std::vector<DimmId> currentMap;
    unsigned threadsDone = 0;
    bool allDone = false;
    bool migrationPending = false;
    std::unique_ptr<mapping::TrafficProfiler> profiler;
    Tick profileEndTick = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_SYSTEM_RUNNER_HH
