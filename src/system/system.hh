/**
 * @file
 * The full simulated machine: channels, host polling/forwarding, the
 * selected IDC fabric, the NMP DIMMs, and the synchronization
 * manager, assembled from one SystemConfig.
 */

#ifndef DIMMLINK_SYSTEM_SYSTEM_HH
#define DIMMLINK_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "dimm/dimm.hh"
#include "dimm/reliability.hh"
#include "host/channel.hh"
#include "idc/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "sync/sync_manager.hh"
#include "system/watchdog.hh"

namespace dimmlink {

namespace obs {
class Tracer;
class Sampler;
} // namespace obs

class System
{
  public:
    explicit System(SystemConfig cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg; }
    EventQueue &queue() { return eventq; }
    stats::Registry &stats() { return registry; }
    const dram::GlobalAddressMap &addressMap() const { return *gmap; }

    /**
     * The conservative-parallel shard set (sim.shard=group), or null
     * in the classic single-queue configuration. Shard 0 is the host
     * queue; shard 1+g is DIMM group g's queue.
     */
    ShardSet *shards() { return shards_.get(); }

    Dimm &dimm(DimmId d) { return *dimms[d]; }
    unsigned numDimms() const
    {
        return static_cast<unsigned>(dimms.size());
    }
    idc::Fabric &fabric() { return *fabric_; }
    SyncManager &sync() { return *sync_; }
    host::Channel &channel(ChannelId c) { return *channels[c]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels.size());
    }

    /** Coarse-grained execution flow: HA <-> NA mode switches. */
    void enterNmpMode();
    void exitNmpMode();
    bool inNmpMode() const { return nmpMode; }

    /**
     * Host-Access-mode data movement (Section II-A: before a kernel
     * the host writes data and code into the NMP DIMMs through its
     * memory controller; afterwards it reads the results back).
     * Streams @p bytes at @p global through the DIMM's channel and
     * its DRAM, runs the event queue to completion, and returns the
     * simulated duration. @pre not in NMP-Access mode.
     */
    Tick hostLoad(Addr global, std::uint64_t bytes);
    Tick hostReadback(Addr global, std::uint64_t bytes);

    /** Total busy picoseconds across all channels. */
    double channelBusyPs() const;

    /** The event tracer, or null when obs.trace is off. */
    obs::Tracer *tracer() { return tracer_.get(); }
    /** The counter sampler, or null when obs.sampleIntervalPs is 0. */
    obs::Sampler *sampler() { return sampler_.get(); }
    /** The hang watchdog, or null when watchdog.stallPs is 0. */
    Watchdog *watchdog() { return watchdog_.get(); }

    /**
     * A diagnostic snapshot of in-flight state: queue occupancy,
     * fabric backlogs, busy cores, DLL retry windows. Printed by the
     * watchdog when it fires and by the drained-queue panic path.
     */
    std::string hangDiagnostics();

  private:
    void buildSampler();
    void buildWatchdog();
    void wireReliability();

    Tick hostAccess(Addr global, std::uint64_t bytes, bool is_write);

    SystemConfig cfg;
    EventQueue eventq;
    stats::Registry registry;
    // Built before any component so construction-time track/name
    // registration sees the tracer through eventq.tracer().
    std::unique_ptr<obs::Tracer> tracer_;
    // Sharded mode: one extra queue per DIMM group plus the ShardSet
    // binding them to the host queue. Built before the fabric so
    // every component constructor can reach the set through its
    // queue's shards() pointer.
    std::vector<std::unique_ptr<EventQueue>> groupQueues_;
    std::unique_ptr<ShardSet> shards_;
    std::unique_ptr<dram::GlobalAddressMap> gmap;
    std::vector<std::unique_ptr<host::Channel>> channels;
    std::unique_ptr<idc::Fabric> fabric_;
    std::vector<std::unique_ptr<Dimm>> dimms;
    std::unique_ptr<SyncManager> sync_;
    /** Shard-normalizing barrier wrapper around sync_ (sharded only). */
    std::unique_ptr<BarrierEndpoint> barrierAdapter_;
    std::unique_ptr<obs::Sampler> sampler_;
    std::unique_ptr<Watchdog> watchdog_;
    /** Resolved serve.* reliability knobs; the cores hold pointers
     * into these, so both live for the System's lifetime and
     * relViews_ is never resized after wireReliability(). One view
     * per shard (just [0] when unsharded), each written only through
     * its own shard's queue. */
    serve_rel::Params relParams_;
    std::vector<serve_rel::HostHealthView> relViews_;
    bool nmpMode = false;
};

} // namespace dimmlink

#endif // DIMMLINK_SYSTEM_SYSTEM_HH
