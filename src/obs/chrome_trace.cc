#include "obs/chrome_trace.hh"

#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <string>

#include "obs/tracer.hh"

namespace dimmlink {
namespace obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Trace-event timestamps are microseconds; ticks are picoseconds. */
std::string
micros(Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f",
                  static_cast<double>(t) / 1e6);
    return buf;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
writeChromeTrace(const Tracer &tracer, std::ostream &os)
{
    // Processes in registration order; pid 0 is reserved by some
    // viewers, so start at 1.
    std::map<std::string, int> pids;
    for (const Tracer::TrackInfo &ti : tracer.tracks())
        if (!pids.count(ti.process))
            pids.emplace(ti.process,
                         static_cast<int>(pids.size()) + 1);
    // tids within a process, also in registration order.
    std::map<std::string, int> tids;
    std::vector<int> track_pid, track_tid;
    for (const Tracer::TrackInfo &ti : tracer.tracks()) {
        const std::string key = ti.process + "\x1f" + ti.thread;
        if (!tids.count(key))
            tids.emplace(key, static_cast<int>(tids.size()) + 1);
        track_pid.push_back(pids.at(ti.process));
        track_tid.push_back(tids.at(key));
    }

    os << "[\n";
    bool first = true;
    auto emit = [&](const std::string &body) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {" << body << "}";
    };

    for (const auto &pv : pids)
        emit("\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
             std::to_string(pv.second) +
             ",\"args\":{\"name\":\"" + jsonEscape(pv.first) + "\"}");
    for (std::size_t i = 0; i < tracer.tracks().size(); ++i) {
        const Tracer::TrackInfo &ti = tracer.tracks()[i];
        emit("\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
             std::to_string(track_pid[i]) + ",\"tid\":" +
             std::to_string(track_tid[i]) +
             ",\"args\":{\"name\":\"" + jsonEscape(ti.thread) + "\"}");
    }

    const std::vector<std::string> &names = tracer.names();
    for (std::uint32_t trk = 0;
         trk < static_cast<std::uint32_t>(tracer.tracks().size());
         ++trk) {
        const std::string pid = std::to_string(track_pid[trk]);
        const std::string tid = std::to_string(track_tid[trk]);
        const char *cat =
            categoryName(tracer.tracks()[trk].category);
        tracer.forEachRecord(trk, [&](const Record &r) {
            const std::string nm = jsonEscape(names[r.name]);
            const std::string common =
                "\"name\":\"" + nm + "\",\"cat\":\"" + cat +
                "\",\"ts\":" + micros(r.tick) + ",\"pid\":" + pid +
                ",\"tid\":" + tid;
            switch (r.kind) {
              case RecordKind::Complete:
                emit(common + ",\"ph\":\"X\",\"dur\":" +
                     micros(r.arg));
                break;
              case RecordKind::Instant:
                emit(common + ",\"ph\":\"i\",\"s\":\"t\"" +
                     ",\"args\":{\"arg\":" + std::to_string(r.arg) +
                     "}");
                break;
              case RecordKind::AsyncBegin:
                emit(common + ",\"ph\":\"b\",\"id\":" +
                     std::to_string(r.arg));
                break;
              case RecordKind::AsyncEnd:
                emit(common + ",\"ph\":\"e\",\"id\":" +
                     std::to_string(r.arg));
                break;
              case RecordKind::Counter: {
                double v;
                std::memcpy(&v, &r.arg, sizeof(v));
                emit(common + ",\"ph\":\"C\",\"args\":{\"" + nm +
                     "\":" + formatDouble(v) + "}");
                break;
              }
            }
        });
    }
    os << "\n]\n";
}

} // namespace obs
} // namespace dimmlink
