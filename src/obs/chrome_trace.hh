/**
 * @file
 * Chrome trace-event JSON export for the obs::Tracer. The output is
 * the "JSON Array Format" understood by chrome://tracing and by
 * Perfetto's trace viewer (https://ui.perfetto.dev): open the file
 * directly, no conversion needed.
 */

#ifndef DIMMLINK_OBS_CHROME_TRACE_HH
#define DIMMLINK_OBS_CHROME_TRACE_HH

#include <iosfwd>

namespace dimmlink {
namespace obs {

class Tracer;

/**
 * Write every surviving record as Chrome trace events. Processes are
 * numbered in track-registration order (pid 1 upward) and announced
 * with process_name/thread_name metadata, so Perfetto shows e.g.
 * "dimm0.mc" as a process with one row per rank.
 */
void writeChromeTrace(const Tracer &tracer, std::ostream &os);

} // namespace obs
} // namespace dimmlink

#endif // DIMMLINK_OBS_CHROME_TRACE_HH
