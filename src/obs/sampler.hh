/**
 * @file
 * The periodic counter sampler: a clocked object on the simulation
 * queue that snapshots registered probes every obs.sampleIntervalPs
 * and keeps the resulting time series for CSV export (and, when a
 * tracer with the "counter" category is attached, as Chrome counter
 * tracks).
 *
 * The sampler fires at EventPriority::Stat, after all same-tick
 * delivery/control/core events, and only ever reads probe values --
 * it never mutates simulation state, so enabling it cannot change
 * what the simulation computes (it does add events to the queue, so
 * kernel-level counters like executed() will differ).
 */

#ifndef DIMMLINK_OBS_SAMPLER_HH
#define DIMMLINK_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dimmlink {

class EventQueue;

namespace obs {

class Tracer;

/** Collects probe snapshots on a fixed simulated-time cadence. */
class Sampler
{
  public:
    /**
     * @param eq        the simulation queue to clock on.
     * @param interval  sampling period in ticks (> 0).
     * @param tracer    optional tracer for Chrome counter tracks.
     */
    Sampler(EventQueue &eq, Tick interval, Tracer *tracer);

    /**
     * Register a value source. @p cumulative probes (monotonic stat
     * counters) are reported as per-interval deltas; gauges (queue
     * depths, in-flight counts) are reported as-is.
     */
    void addProbe(const std::string &name,
                  std::function<double()> fn, bool cumulative);

    /** Schedule the first sample; call once after probes are added. */
    void start();

    /** One sampled interval. */
    struct Row
    {
        Tick tick = 0;
        std::vector<double> values;
    };

    Tick interval() const { return period; }
    const std::vector<std::string> &probeNames() const { return names; }
    const std::vector<Row> &rows() const { return series; }

    /** Write the series as CSV: tickPs,probe1,probe2,... */
    void writeCsv(std::ostream &os) const;

  private:
    void sample();

    struct Probe
    {
        std::function<double()> fn;
        double last = 0; ///< Previous raw value for delta probes.
        bool cumulative = false;
    };

    EventQueue &eq;
    Tick period;
    Tracer *tr;
    std::uint32_t trk = 0;
    std::vector<std::string> names;
    std::vector<Probe> probes;
    std::vector<std::uint16_t> nameIds;
    std::vector<Row> series;
};

} // namespace obs
} // namespace dimmlink

#endif // DIMMLINK_OBS_SAMPLER_HH
