#include "obs/sampler.hh"

#include <cstdio>
#include <ostream>

#include "common/log.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace obs {

Sampler::Sampler(EventQueue &eq, Tick interval, Tracer *tracer)
    : eq(eq), period(interval),
      tr(tracer && tracer->enabled(CatCounter) ? tracer : nullptr)
{
    if (period == 0)
        fatal("obs.sampleIntervalPs must be > 0 to sample");
    if (tr)
        trk = tr->track("sampler", "counters", CatCounter);
}

void
Sampler::addProbe(const std::string &name, std::function<double()> fn,
                  bool cumulative)
{
    names.push_back(name);
    Probe p;
    p.fn = std::move(fn);
    p.cumulative = cumulative;
    probes.push_back(std::move(p));
    nameIds.push_back(tr ? tr->intern(name) : 0);
}

void
Sampler::start()
{
    eq.scheduleIn(period, [this] { sample(); }, EventPriority::Stat);
}

void
Sampler::sample()
{
    Row row;
    row.tick = eq.now();
    row.values.reserve(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        Probe &p = probes[i];
        const double raw = p.fn();
        double v = raw;
        if (p.cumulative) {
            v = raw - p.last;
            p.last = raw;
        }
        row.values.push_back(v);
        if (tr)
            tr->counter(trk, nameIds[i], row.tick, v);
    }
    series.push_back(std::move(row));
    // The queue never drains on its own (DRAM refresh reschedules
    // forever); the Runner stops at a condition, so a perpetual
    // resample is safe and keeps the cadence exact.
    eq.scheduleIn(period, [this] { sample(); }, EventPriority::Stat);
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "tickPs";
    for (const std::string &n : names)
        os << ',' << n;
    os << '\n';
    char buf[40];
    for (const Row &row : series) {
        os << row.tick;
        for (double v : row.values) {
            std::snprintf(buf, sizeof(buf), "%.6g", v);
            os << ',' << buf;
        }
        os << '\n';
    }
}

} // namespace obs
} // namespace dimmlink
