/**
 * @file
 * The timeline observability tracer: a low-overhead binary event
 * recorder for the simulated machine. Components register a track
 * (one Chrome-trace pid/tid pair) and intern their event names once
 * at construction; the hot path is then a single predicted
 * null-pointer branch followed by writing one fixed-size record into
 * a per-track ring buffer. Nothing here ever schedules events or
 * touches the stats registry, so tracing cannot perturb a simulation.
 */

#ifndef DIMMLINK_OBS_TRACER_HH
#define DIMMLINK_OBS_TRACER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dimmlink {
namespace obs {

/**
 * Trace categories, a bitmask. Each instrumented layer guards its
 * records behind one bit so `obs.categories` can cut recording cost
 * to exactly the layers under investigation.
 */
enum Category : unsigned {
    CatDram = 1u << 0,    ///< DRAM controller command timeline.
    CatNoc = 1u << 1,     ///< DL-Bridge routers and links.
    CatDll = 1u << 2,     ///< Packet lifetimes and DLL retries.
    CatCore = 1u << 3,    ///< NMP core compute/stall/barrier spans.
    CatHost = 1u << 4,    ///< Host forwarding path.
    CatCounter = 1u << 5, ///< Periodic sampler counter series.
    CatAll = (1u << 6) - 1,
};

/**
 * Parse a comma-separated category list ("dram,noc", "all") into a
 * mask; fatal()s on unknown names listing the valid ones.
 */
unsigned categoryMaskFromString(const std::string &list);

/** Canonical name of one category bit ("dram", "noc", ...). */
const char *categoryName(unsigned one_bit);

/** What one trace record means. */
enum class RecordKind : std::uint8_t {
    Complete,   ///< A span with a known duration (arg = ticks).
    Instant,    ///< A point event (arg free for the instrument site).
    AsyncBegin, ///< Start of an overlapping span (arg = async id).
    AsyncEnd,   ///< End of an overlapping span (arg = async id).
    Counter,    ///< A sampled value (arg = bit-cast double).
};

/** One fixed-size binary trace record (24 bytes). */
struct Record
{
    Tick tick = 0;
    std::uint64_t arg = 0;
    std::uint32_t track = 0;
    std::uint16_t name = 0;
    RecordKind kind = RecordKind::Instant;
};

/**
 * The global tracer, owned by the System and exposed to components
 * through EventQueue::tracer(). Null when tracing is off; components
 * additionally receive null when their category is disabled, so every
 * record site costs one predicted branch in the common case.
 */
class Tracer
{
  public:
    /**
     * @param categories     enabled-category mask (CatAll for all).
     * @param ring_capacity  records kept per track; older records are
     *                       overwritten and counted as dropped.
     */
    Tracer(unsigned categories, std::size_t ring_capacity);

    bool enabled(unsigned cat) const { return (cats & cat) != 0; }
    unsigned categories() const { return cats; }
    std::size_t ringCapacity() const { return cap; }

    /**
     * Register a track under an explicit (process, thread) pair; the
     * exporter maps processes to pids and threads to tids.
     */
    std::uint32_t track(const std::string &process,
                        const std::string &thread, unsigned cat);

    /**
     * Register a track from a dotted component name, split at the
     * last dot: "dimm0.mc.rank1" becomes process "dimm0.mc", thread
     * "rank1". Names without a dot become their own process.
     */
    std::uint32_t track(const std::string &component_name, unsigned cat);

    /** Intern an event-name string; stable for the tracer's lifetime. */
    std::uint16_t intern(const std::string &name);

    /** Globally unique id for AsyncBegin/AsyncEnd pairing. */
    std::uint64_t
    nextAsyncId()
    {
        return asyncSeq.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    // -- record emission (hot path) -------------------------------------
    void
    complete(std::uint32_t trk, std::uint16_t nm, Tick start, Tick dur)
    {
        push(Record{start, dur, trk, nm, RecordKind::Complete});
    }

    void
    instant(std::uint32_t trk, std::uint16_t nm, Tick t,
            std::uint64_t arg = 0)
    {
        push(Record{t, arg, trk, nm, RecordKind::Instant});
    }

    void
    asyncBegin(std::uint32_t trk, std::uint16_t nm, Tick t,
               std::uint64_t id)
    {
        push(Record{t, id, trk, nm, RecordKind::AsyncBegin});
    }

    void
    asyncEnd(std::uint32_t trk, std::uint16_t nm, Tick t,
             std::uint64_t id)
    {
        push(Record{t, id, trk, nm, RecordKind::AsyncEnd});
    }

    void counter(std::uint32_t trk, std::uint16_t nm, Tick t, double v);

    // -- export-side accessors ------------------------------------------
    struct TrackInfo
    {
        std::string process;
        std::string thread;
        unsigned category = 0;
    };

    const std::vector<TrackInfo> &tracks() const { return infos; }
    const std::vector<std::string> &names() const { return nameTable; }

    /** Records ever pushed (including overwritten ones). */
    std::uint64_t
    recorded() const
    {
        return recordedCount.load(std::memory_order_relaxed);
    }
    /** Records lost to ring overwrite, totalled over all tracks. */
    std::uint64_t dropped() const;
    std::uint64_t droppedOn(std::uint32_t trk) const
    {
        return rings[trk].overwritten;
    }

    /** Visit a track's surviving records, oldest first. */
    void forEachRecord(std::uint32_t trk,
                       const std::function<void(const Record &)> &fn) const;

  private:
    struct Ring
    {
        std::vector<Record> buf;
        std::size_t head = 0; ///< Oldest record once the ring is full.
        std::uint64_t overwritten = 0;
    };

    void
    push(const Record &r)
    {
        // Rings are single-writer (each track belongs to exactly one
        // shard); only the global tally and the async-id counter are
        // shared across shards, and both are relaxed atomics.
        recordedCount.fetch_add(1, std::memory_order_relaxed);
        Ring &ring = rings[r.track];
        if (ring.buf.size() < cap) {
            ring.buf.push_back(r);
            return;
        }
        ring.buf[ring.head] = r;
        ring.head = (ring.head + 1) % cap;
        ++ring.overwritten;
    }

    unsigned cats;
    std::size_t cap;
    std::vector<TrackInfo> infos;
    std::vector<Ring> rings;
    std::vector<std::string> nameTable;
    std::atomic<std::uint64_t> recordedCount{0};
    std::atomic<std::uint64_t> asyncSeq{0};
};

} // namespace obs
} // namespace dimmlink

#endif // DIMMLINK_OBS_TRACER_HH
