#include "obs/tracer.hh"

#include <cstring>

#include "common/log.hh"

namespace dimmlink {
namespace obs {

namespace {

struct CatName
{
    const char *name;
    unsigned bit;
};

constexpr CatName cat_names[] = {
    {"dram", CatDram},   {"noc", CatNoc},   {"dll", CatDll},
    {"core", CatCore},   {"host", CatHost}, {"counter", CatCounter},
};

} // namespace

unsigned
categoryMaskFromString(const std::string &list)
{
    if (list.empty() || list == "all")
        return CatAll;
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string tok = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask = CatAll;
            continue;
        }
        bool found = false;
        for (const CatName &cn : cat_names) {
            if (tok == cn.name) {
                mask |= cn.bit;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("obs.categories: unknown category '%s' (valid: "
                  "all, dram, noc, dll, core, host, counter)",
                  tok.c_str());
    }
    return mask;
}

const char *
categoryName(unsigned one_bit)
{
    for (const CatName &cn : cat_names)
        if (cn.bit == one_bit)
            return cn.name;
    return "?";
}

Tracer::Tracer(unsigned categories, std::size_t ring_capacity)
    : cats(categories), cap(ring_capacity)
{
    if (cap == 0)
        fatal("obs.ringCapacity must be > 0");
    // Name id 0 is reserved so a zero-initialised record is visibly
    // unnamed rather than aliasing a real event.
    nameTable.push_back("<none>");
}

std::uint32_t
Tracer::track(const std::string &process, const std::string &thread,
              unsigned cat)
{
    infos.push_back(TrackInfo{process, thread, cat});
    rings.emplace_back();
    return static_cast<std::uint32_t>(infos.size() - 1);
}

std::uint32_t
Tracer::track(const std::string &component_name, unsigned cat)
{
    const std::size_t dot = component_name.rfind('.');
    if (dot == std::string::npos)
        return track(component_name, component_name, cat);
    return track(component_name.substr(0, dot),
                 component_name.substr(dot + 1), cat);
}

std::uint16_t
Tracer::intern(const std::string &name)
{
    for (std::size_t i = 0; i < nameTable.size(); ++i)
        if (nameTable[i] == name)
            return static_cast<std::uint16_t>(i);
    if (nameTable.size() >= 0xffff)
        fatal("tracer string table overflow (%zu names)",
              nameTable.size());
    nameTable.push_back(name);
    return static_cast<std::uint16_t>(nameTable.size() - 1);
}

void
Tracer::counter(std::uint32_t trk, std::uint16_t nm, Tick t, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    push(Record{t, bits, trk, nm, RecordKind::Counter});
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t total = 0;
    for (const Ring &r : rings)
        total += r.overwritten;
    return total;
}

void
Tracer::forEachRecord(
    std::uint32_t trk,
    const std::function<void(const Record &)> &fn) const
{
    const Ring &ring = rings[trk];
    const std::size_t n = ring.buf.size();
    for (std::size_t i = 0; i < n; ++i)
        fn(ring.buf[(ring.head + i) % n]);
}

} // namespace obs
} // namespace dimmlink
