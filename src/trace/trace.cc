#include "trace/trace.hh"

#include <istream>
#include <ostream>

#include "common/log.hh"

namespace dimmlink {
namespace trace {

namespace {

constexpr std::uint32_t traceMagic = 0x444c5452; // "DLTR"
// Version 2 added the serving-request ops (ReqStart/ReqEnd).
// Version 3 added the reliability layer's ReqStart payload (shed
// horizon + home DIMM) and the HedgedMem op; older traces contain
// neither and still load.
constexpr std::uint32_t traceVersion = 3;

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        fatal("truncated trace stream");
    return v;
}

void
putRefs(std::ostream &os, const std::vector<MemRef> &refs)
{
    put(os, static_cast<std::uint32_t>(refs.size()));
    for (const MemRef &r : refs) {
        put(os, r.addr);
        put(os, r.bytes);
        put(os, static_cast<std::uint8_t>(r.isWrite));
        put(os, static_cast<std::uint8_t>(r.cls));
    }
}

std::vector<MemRef>
getRefs(std::istream &is)
{
    const auto n = get<std::uint32_t>(is);
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::uint32_t r = 0; r < n; ++r) {
        MemRef ref;
        ref.addr = get<Addr>(is);
        ref.bytes = get<std::uint16_t>(is);
        ref.isWrite = get<std::uint8_t>(is) != 0;
        ref.cls = static_cast<DataClass>(get<std::uint8_t>(is));
        refs.push_back(ref);
    }
    return refs;
}

} // namespace

void
ThreadTrace::save(std::ostream &os) const
{
    put(os, traceMagic);
    put(os, traceVersion);
    put(os, static_cast<std::uint64_t>(ops.size()));
    for (const Op &op : ops) {
        put(os, static_cast<std::uint8_t>(op.kind));
        switch (op.kind) {
          case Op::Kind::Compute:
            put(os, op.instructions);
            break;
          case Op::Kind::Mem:
            put(os, static_cast<std::uint8_t>(op.fenceAfter));
            putRefs(os, op.refs);
            break;
          case Op::Kind::HedgedMem:
            putRefs(os, op.refs);
            putRefs(os, op.hedge);
            break;
          case Op::Kind::Broadcast:
            put(os, op.bcastAddr);
            put(os, op.bcastBytes);
            break;
          case Op::Kind::ReqStart:
            put(os, op.tickArg);
            put(os, op.tickArg2);
            put(os, op.homeDimm);
            break;
          case Op::Kind::Barrier:
          case Op::Kind::Done:
          case Op::Kind::ReqEnd:
            break;
        }
    }
}

ThreadTrace
ThreadTrace::load(std::istream &is)
{
    if (get<std::uint32_t>(is) != traceMagic)
        fatal("not a DIMM-Link trace (bad magic)");
    const auto version = get<std::uint32_t>(is);
    if (version < 1 || version > traceVersion)
        fatal("unsupported trace version %u", version);
    const auto count = get<std::uint64_t>(is);

    ThreadTrace t;
    for (std::uint64_t i = 0; i < count; ++i) {
        Op op;
        op.kind = static_cast<Op::Kind>(get<std::uint8_t>(is));
        switch (op.kind) {
          case Op::Kind::Compute:
            op.instructions = get<std::uint64_t>(is);
            break;
          case Op::Kind::Mem:
            op.fenceAfter = get<std::uint8_t>(is) != 0;
            op.refs = getRefs(is);
            break;
          case Op::Kind::HedgedMem:
            op.refs = getRefs(is);
            op.hedge = getRefs(is);
            op.fenceAfter = true;
            break;
          case Op::Kind::Broadcast:
            op.bcastAddr = get<Addr>(is);
            op.bcastBytes = get<std::uint64_t>(is);
            break;
          case Op::Kind::ReqStart:
            op.tickArg = get<Tick>(is);
            if (version >= 3) {
                op.tickArg2 = get<Tick>(is);
                op.homeDimm = get<std::int32_t>(is);
            }
            break;
          case Op::Kind::Barrier:
          case Op::Kind::Done:
          case Op::Kind::ReqEnd:
            break;
        }
        t.ops.push_back(std::move(op));
    }
    return t;
}

bool
ThreadTrace::operator==(const ThreadTrace &o) const
{
    if (ops.size() != o.ops.size())
        return false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &a = ops[i];
        const Op &b = o.ops[i];
        if (a.kind != b.kind || a.instructions != b.instructions ||
            a.fenceAfter != b.fenceAfter ||
            a.bcastAddr != b.bcastAddr ||
            a.bcastBytes != b.bcastBytes ||
            a.tickArg != b.tickArg || a.tickArg2 != b.tickArg2 ||
            a.homeDimm != b.homeDimm ||
            a.refs.size() != b.refs.size() ||
            a.hedge.size() != b.hedge.size())
            return false;
        const auto sameRef = [](const MemRef &x, const MemRef &y) {
            return x.addr == y.addr && x.bytes == y.bytes &&
                   x.isWrite == y.isWrite && x.cls == y.cls;
        };
        for (std::size_t r = 0; r < a.refs.size(); ++r)
            if (!sameRef(a.refs[r], b.refs[r]))
                return false;
        for (std::size_t r = 0; r < a.hedge.size(); ++r)
            if (!sameRef(a.hedge[r], b.hedge[r]))
                return false;
    }
    return true;
}

std::uint64_t
ThreadTrace::memRefs() const
{
    std::uint64_t n = 0;
    for (const Op &op : ops)
        n += op.refs.size();
    return n;
}

std::uint64_t
ThreadTrace::instructions() const
{
    std::uint64_t n = 0;
    for (const Op &op : ops)
        if (op.kind == Op::Kind::Compute)
            n += op.instructions;
    return n;
}

} // namespace trace
} // namespace dimmlink
