/**
 * @file
 * Op-stream trace capture and replay. The paper's FPGA prototype
 * (Section V-A) is driven by pre-dumped memory traces; this module
 * provides the same capability for the simulator: record the op
 * stream a workload thread emits into a compact binary format, then
 * replay it later without the workload (useful for regression-exact
 * performance experiments and for feeding external tools).
 */

#ifndef DIMMLINK_TRACE_TRACE_HH
#define DIMMLINK_TRACE_TRACE_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dimm/op.hh"

namespace dimmlink {
namespace trace {

/** A fully materialized single-thread trace. */
class ThreadTrace
{
  public:
    void append(const Op &op) { ops.push_back(op); }

    std::size_t size() const { return ops.size(); }
    const Op &at(std::size_t i) const { return ops[i]; }

    /** Serialize to a stream (versioned binary format). */
    void save(std::ostream &os) const;

    /** Parse from a stream; fatal() on format errors. */
    static ThreadTrace load(std::istream &is);

    bool operator==(const ThreadTrace &o) const;

    /** Total memory references across all Mem ops. */
    std::uint64_t memRefs() const;

    /** Total Compute instructions. */
    std::uint64_t instructions() const;

  private:
    std::vector<Op> ops;
};

/**
 * Wraps a ThreadProgram and records everything it produces into a
 * ThreadTrace (observed through trace() after the run).
 */
class RecordingProgram : public ThreadProgram
{
  public:
    explicit RecordingProgram(std::unique_ptr<ThreadProgram> inner)
        : inner(std::move(inner)),
          trace_(std::make_shared<ThreadTrace>())
    {
    }

    Op
    next() override
    {
        Op op = inner->next();
        trace_->append(op);
        return op;
    }

    std::shared_ptr<ThreadTrace> trace() const { return trace_; }

  private:
    std::unique_ptr<ThreadProgram> inner;
    std::shared_ptr<ThreadTrace> trace_;
};

/** Replays a previously captured trace as a ThreadProgram. */
class ReplayProgram : public ThreadProgram
{
  public:
    explicit ReplayProgram(std::shared_ptr<const ThreadTrace> t)
        : trace_(std::move(t))
    {
    }

    Op
    next() override
    {
        if (pos >= trace_->size())
            return Op::done();
        return trace_->at(pos++);
    }

  private:
    std::shared_ptr<const ThreadTrace> trace_;
    std::size_t pos = 0;
};

} // namespace trace
} // namespace dimmlink

#endif // DIMMLINK_TRACE_TRACE_HH
