#include "dram/address_map.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {
namespace dram {

GlobalAddressMap::GlobalAddressMap(unsigned num_dimms,
                                   std::uint64_t dimm_capacity)
    : dimms(num_dimms), capacity(dimm_capacity)
{
    if (!isPow2(dimm_capacity))
        fatal("DIMM capacity must be a power of two");
    dimmShift = floorLog2(dimm_capacity);
}

DimmId
GlobalAddressMap::dimmOf(Addr global) const
{
    const auto id = static_cast<DimmId>(global >> dimmShift);
    if (id >= dimms)
        panic("global address 0x%llx maps past DIMM %u",
              static_cast<unsigned long long>(global), dimms - 1);
    return id;
}

Addr
GlobalAddressMap::localOf(Addr global) const
{
    return global & (capacity - 1);
}

Addr
GlobalAddressMap::globalOf(DimmId dimm, Addr local) const
{
    if (dimm >= dimms)
        panic("DIMM id %u out of range", dimm);
    if (local >= capacity)
        panic("local address 0x%llx exceeds DIMM capacity",
              static_cast<unsigned long long>(local));
    return (static_cast<Addr>(dimm) << dimmShift) | local;
}

LocalAddressMap::LocalAddressMap(const Timing &t, unsigned num_ranks,
                                 unsigned line_bytes)
    : line(line_bytes),
      lineBits(floorLog2(line_bytes)),
      bgBits(t.bankGroups > 1 ? floorLog2(t.bankGroups) : 0),
      bankBits(t.banksPerGroup > 1 ? floorLog2(t.banksPerGroup) : 0),
      rankBits(num_ranks > 1 ? floorLog2(num_ranks) : 0),
      rowBits(floorLog2(t.rows)),
      ranks(num_ranks),
      bankGroups(t.effGroups()),
      banksPerGroup(t.banksPerGroup),
      columns(t.columns),
      rows(t.rows)
{
    if (!isPow2(line_bytes))
        fatal("cache line size must be a power of two");
    // Column bits address line-sized chunks within a row:
    // row bytes = columns * device bus width; lines per row below.
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(columns) * t.deviceBusBytes;
    if (row_bytes < line)
        fatal("row smaller than a cache line");
    colBits = floorLog2(row_bytes / line);
}

DramCoord
LocalAddressMap::decode(Addr local) const
{
    // Layout (LSB to MSB): line offset | bank group | bank | rank |
    // column | row. Consecutive lines hit different bank groups so
    // streaming accesses pipeline at tCCD_S.
    Addr a = local >> lineBits;
    DramCoord c{};
    c.bankGroup = static_cast<unsigned>(bits(a, 0, bgBits));
    a >>= bgBits;
    c.bank = static_cast<unsigned>(bits(a, 0, bankBits));
    a >>= bankBits;
    c.rank = static_cast<unsigned>(bits(a, 0, rankBits));
    a >>= rankBits;
    c.column = static_cast<unsigned>(bits(a, 0, colBits));
    a >>= colBits;
    c.row = static_cast<unsigned>(a % rows);
    return c;
}

} // namespace dram
} // namespace dimmlink
