/**
 * @file
 * Address decomposition. Two mappers live here:
 *
 *  - GlobalAddressMap: splits a system-wide physical address into
 *    (DIMM id, DIMM-local offset). The paper stores the destination
 *    DIMM id in the high address bits (Section III-B: 42-bit addresses,
 *    37 bits stored in the packet after removing the DIMM id bits).
 *
 *  - LocalAddressMap: splits a DIMM-local offset into DRAM coordinates
 *    (rank, bank group, bank, row, column) using an RoBgBaRaCo layout
 *    that spreads consecutive cache lines across bank groups first.
 */

#ifndef DIMMLINK_DRAM_ADDRESS_MAP_HH
#define DIMMLINK_DRAM_ADDRESS_MAP_HH

#include "common/types.hh"
#include "dram/timing.hh"

namespace dimmlink {
namespace dram {

/** DRAM coordinates of one access. */
struct DramCoord
{
    unsigned rank;
    unsigned bankGroup;
    unsigned bank;
    unsigned row;
    unsigned column;

    /** Flat bank index within the DIMM. bankGroup is always 0 for a
     * groupless standard, so effGroups() keeps the index dense. */
    unsigned
    flatBank(const Timing &t) const
    {
        return (rank * t.effGroups() + bankGroup) * t.banksPerGroup
            + bank;
    }
};

/** System-wide address <-> (DIMM, local offset). */
class GlobalAddressMap
{
  public:
    GlobalAddressMap(unsigned num_dimms, std::uint64_t dimm_capacity);

    DimmId dimmOf(Addr global) const;
    Addr localOf(Addr global) const;
    Addr globalOf(DimmId dimm, Addr local) const;

    std::uint64_t dimmCapacity() const { return capacity; }
    unsigned numDimms() const { return dimms; }

  private:
    unsigned dimms;
    std::uint64_t capacity;
    unsigned dimmShift;
};

/** DIMM-local offset -> DRAM coordinates. */
class LocalAddressMap
{
  public:
    LocalAddressMap(const Timing &t, unsigned num_ranks,
                    unsigned line_bytes);

    DramCoord decode(Addr local) const;

    unsigned lineBytes() const { return line; }

  private:
    unsigned line;
    unsigned lineBits;
    unsigned bgBits;
    unsigned bankBits;
    unsigned rankBits;
    unsigned colBits;
    unsigned rowBits;
    unsigned ranks;
    unsigned bankGroups;
    unsigned banksPerGroup;
    unsigned columns;
    unsigned rows;
};

} // namespace dram
} // namespace dimmlink

#endif // DIMMLINK_DRAM_ADDRESS_MAP_HH
