#include "dram/sched_policy.hh"

#include "dram/dram_controller.hh"

namespace dimmlink {
namespace dram {

std::unique_ptr<SchedPolicy>
makeSchedPolicy(const std::string &name)
{
    return SchedPolicyFactory::instance().create(name);
}

namespace {

/**
 * FR-FCFS (the seed behavior): the oldest request whose row is open
 * and whose CAS is ready issues first; otherwise the oldest request
 * whose next step (ACT or PRE) is ready makes progress.
 */
class FrFcfs : public SchedPolicy
{
  public:
    std::size_t
    pick(const DramController &ctrl, const std::deque<QueuedReq> &q,
         Tick now, Tick &best_ready) const override
    {
        std::size_t hit_idx = npos;
        best_ready = maxTick;
        for (std::size_t i = 0; i < q.size(); ++i) {
            bool row_hit = false;
            const Tick step_ready = ctrl.stepReadyAt(q[i], now, row_hit);
            if (row_hit && step_ready <= now && hit_idx == npos)
                hit_idx = i;
            best_ready = std::min(best_ready, step_ready);
        }
        if (hit_idx != npos)
            return hit_idx;
        // No ready row hit: let the oldest request make progress if
        // its next step is ready now.
        for (std::size_t i = 0; i < q.size(); ++i) {
            bool row_hit = false;
            if (ctrl.stepReadyAt(q[i], now, row_hit) <= now)
                return i;
        }
        return npos;
    }
};

/** Strict in-order service: only the head of the queue may issue. */
class Fcfs : public SchedPolicy
{
  public:
    std::size_t
    pick(const DramController &ctrl, const std::deque<QueuedReq> &q,
         Tick now, Tick &best_ready) const override
    {
        best_ready = maxTick;
        if (q.empty())
            return npos;
        bool row_hit = false;
        best_ready = ctrl.stepReadyAt(q.front(), now, row_hit);
        return best_ready <= now ? 0 : npos;
    }
};

SchedPolicyFactory::Registrar regFrFcfs("FRFCFS", []()
    -> std::unique_ptr<SchedPolicy> {
    return std::make_unique<FrFcfs>();
});

SchedPolicyFactory::Registrar regFcfs("FCFS", []()
    -> std::unique_ptr<SchedPolicy> {
    return std::make_unique<Fcfs>();
});

} // namespace

} // namespace dram
} // namespace dimmlink
