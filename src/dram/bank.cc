#include "dram/bank.hh"

#include "common/log.hh"

namespace dimmlink {
namespace dram {

void
Bank::activate(Tick now, unsigned row, const Timing &t)
{
    if (isOpen())
        panic("ACT to open bank");
    if (now < nextAct)
        panic("ACT issued before tRC/tRP expired");
    openRow_ = row;
    // PRE legal after tRAS; CAS legal after tRCD.
    maxInto(nextPre, now + t.cyc(t.tRAS));
    maxInto(nextRead, now + t.cyc(t.tRCD));
    maxInto(nextWrite, now + t.cyc(t.tRCD));
    maxInto(nextAct, now + t.cyc(t.tRC));
}

void
Bank::precharge(Tick now, const Timing &t)
{
    if (!isOpen())
        panic("PRE to closed bank");
    if (now < nextPre)
        panic("PRE issued before tRAS/tWR/tRTP expired");
    openRow_ = noRow;
    maxInto(nextAct, now + t.cyc(t.tRP));
}

void
Bank::read(Tick now, const Timing &t)
{
    if (!isOpen())
        panic("RD to closed bank");
    if (now < nextRead)
        panic("RD issued before tRCD/tCCD expired");
    // Reading delays the earliest legal PRE to now + tRTP.
    maxInto(nextPre, now + t.cyc(t.tRTP));
}

void
Bank::write(Tick now, const Timing &t)
{
    if (!isOpen())
        panic("WR to closed bank");
    if (now < nextWrite)
        panic("WR issued before tRCD/tCCD expired");
    // Write recovery: PRE legal tCWL + tBL + tWR after the command.
    maxInto(nextPre, now + t.cyc(t.tCWL + t.tBL + t.tWR));
}

void
Bank::refresh(Tick until)
{
    openRow_ = noRow;
    maxInto(nextAct, until);
    maxInto(nextRead, until);
    maxInto(nextWrite, until);
    maxInto(nextPre, until);
}

} // namespace dram
} // namespace dimmlink
