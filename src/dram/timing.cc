#include "dram/timing.hh"

#include <algorithm>
#include <cctype>

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {
namespace dram {

void
Timing::check() const
{
    if (clkMHz <= 0)
        fatal("DRAM preset '%s': clock must be positive", name.c_str());
    if (tBL == 0)
        fatal("DRAM preset '%s': burst length must be positive",
              name.c_str());
    if (banksPerGroup == 0 || rows == 0 || columns == 0 ||
        deviceBusBytes == 0)
        fatal("DRAM preset '%s': geometry fields must be positive",
              name.c_str());
    if (bankGroups > 1 && !isPow2(bankGroups))
        fatal("DRAM preset '%s': bankGroups (%u) must be 0 or a power "
              "of two", name.c_str(), bankGroups);
    if (!isPow2(banksPerGroup))
        fatal("DRAM preset '%s': banksPerGroup (%u) must be a power "
              "of two", name.c_str(), banksPerGroup);
    if (subChannels == 0)
        fatal("DRAM preset '%s': subChannels must be positive",
              name.c_str());
    if (perBankRefresh && tRFCpb == 0)
        fatal("DRAM preset '%s': per-bank refresh needs tRFCpb",
              name.c_str());
}

Timing
Timing::preset(const std::string &name)
{
    // The factory fatal()s with the registered-name list on unknown
    // keys; presets registered at static-init time in
    // timing_presets.cc.
    return *TimingFactory::instance().create(name);
}

std::vector<std::string>
Timing::presets()
{
    return TimingFactory::instance().known();
}

std::string
Timing::resolveName(const std::string &name)
{
    const auto &factory = TimingFactory::instance();
    if (factory.contains(name))
        return name;
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    // Family alias -> default speed grade.
    static const std::pair<const char *, const char *> families[] = {
        {"ddr4", "DDR4_2400"},
        {"ddr5", "DDR5_4800"},
        {"lpddr5x", "LPDDR5X_8533"},
        {"hbm2", "HBM2_2000"},
    };
    for (const auto &[family, grade] : families)
        if (lower == family)
            return grade;
    return name;
}

std::string
Timing::familyOf(const std::string &name)
{
    const auto &factory = TimingFactory::instance();
    if (!factory.contains(name))
        return name;
    return factory.create(name)->standard;
}

} // namespace dram
} // namespace dimmlink
