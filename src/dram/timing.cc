#include "dram/timing.hh"

#include "common/log.hh"

namespace dimmlink {
namespace dram {

Timing
Timing::preset(const std::string &name)
{
    if (name == "DDR4_2400")
        return Timing{};

    if (name == "DDR4_3200") {
        // Scaled from the 2400 preset: same wall-clock latencies at a
        // 1600 MHz command clock.
        Timing t;
        t.name = "DDR4_3200";
        t.clkMHz = 1600.0;
        t.tRCD = 22;
        t.tRP = 22;
        t.tCL = 22;
        t.tCWL = 20;
        t.tRAS = 52;
        t.tRC = 74;
        t.tCCDl = 8;
        t.tRRDl = 8;
        t.tFAW = 34;
        t.tWR = 24;
        t.tWTRl = 12;
        t.tWTRs = 4;
        t.tRTP = 12;
        t.tREFI = 12480;
        t.tRFC = 560;
        return t;
    }

    fatal("unknown DRAM timing preset '%s'", name.c_str());
}

const std::vector<std::string> &
Timing::presets()
{
    static const std::vector<std::string> names = {
        "DDR4_2400", "DDR4_3200",
    };
    return names;
}

} // namespace dram
} // namespace dimmlink
