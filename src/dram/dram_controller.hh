/**
 * @file
 * A cycle-level memory controller with FR-FCFS scheduling, write
 * draining, per-rank tFAW tracking, CAS-to-CAS bus constraints and
 * refresh. The controller is standard-agnostic: every constraint is
 * read from the Timing table and degrades cleanly when a standard
 * lacks it (tFAW=0 means no activate window, bankGroups=0 collapses
 * the tCCD/tRRD L/S split, perBankRefresh refreshes one bank per
 * REFsb instead of blocking the rank, subChannels>1 runs independent
 * data-bus lanes). One controller instance models the DRAM devices of
 * one DIMM (driven by the DIMM's Local MC in NMP mode, or by a host
 * channel in Host-Access mode).
 */

#ifndef DIMMLINK_DRAM_DRAM_CONTROLLER_HH
#define DIMMLINK_DRAM_DRAM_CONTROLLER_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/sched_policy.hh"
#include "dram/timing.hh"
#include "sim/clocked.hh"
#include "sim/event_callback.hh"

namespace dimmlink {

namespace obs {
class Tracer;
} // namespace obs

namespace dram {

/** One line-sized DRAM access. */
struct DramRequest
{
    Addr local = 0;
    bool isWrite = false;
    /** Invoked when the data burst completes. EventCallback (not
     * std::function): completions are scheduled directly into the
     * event kernel, and the SBO representation keeps the per-request
     * hot path allocation-free even for large captures. */
    EventCallback done;
};

/** A request waiting in a controller queue, as scheduling sees it. */
struct QueuedReq
{
    DramRequest req;
    DramCoord coord;
    Tick arrival;
};

/**
 * The controller. Accepts line-granularity requests via enqueue() and
 * calls each request's completion callback when its burst finishes.
 */
class DramController : public Clocked
{
  public:
    DramController(EventQueue &eq, std::string name, const Timing &timing,
                   unsigned num_ranks, unsigned line_bytes,
                   stats::Group &stats_group,
                   const std::string &sched_policy = "FRFCFS");

    /**
     * Queue a request. @return false when the read or write queue is
     * full; the caller must retry (it is notified via onUnblock).
     */
    bool enqueue(DramRequest req);

    /** True when a request of the given kind would be rejected. */
    bool
    full(bool is_write) const
    {
        return is_write ? writeQ.size() >= writeQCap
                        : readQ.size() >= readQCap;
    }

    /** Registered by the owner; called when queue space frees up. */
    void setUnblockCallback(std::function<void()> cb)
    {
        onUnblock = std::move(cb);
    }

    /** Outstanding requests (both queues + in flight). */
    std::size_t pending() const
    {
        return readQ.size() + writeQ.size();
    }

    bool idle() const { return pending() == 0; }

    unsigned readQueueCapacity() const { return readQCap; }
    unsigned writeQueueCapacity() const { return writeQCap; }

    const Timing &timing() const { return spec; }

    /**
     * Earliest tick the next command toward @p qr (CAS on a row hit,
     * ACT on a closed bank, PRE on a conflict) could issue, never
     * before @p now. Sets @p row_hit when the bank has qr's row open.
     * This is the timing oracle SchedPolicy implementations pick from.
     */
    Tick stepReadyAt(const QueuedReq &qr, Tick now, bool &row_hit) const;

  private:
    /** Schedule (or reschedule) the issue event at tick @p when. */
    void scheduleIssue(Tick when);

    /** Main scheduling loop: issue the best legal command now. */
    void tick();

    /** Earliest tick the CAS for @p qr could issue, given bank state. */
    Tick casReadyAt(const QueuedReq &qr, Tick now) const;

    /** Earliest tick an ACT for @p qr could issue (tFAW, tRRD, ...). */
    Tick actReadyAt(const QueuedReq &qr, Tick now) const;

    /** Issue ACT/PRE progress toward @p qr; true if CAS was issued. */
    bool advance(QueuedReq &qr, Tick now);

    /** Kick the per-rank refresh machinery. */
    void scheduleRefresh(unsigned rank);
    void doRefresh(unsigned rank);

    Bank &bankOf(const DramCoord &c)
    {
        return banks[c.flatBank(spec)];
    }
    const Bank &bankOf(const DramCoord &c) const
    {
        return banks[c.flatBank(spec)];
    }

    /** Data-bus lane serving @p c (trivially lane 0 with a single
     * data bus). A whole bank group lives on one lane — sub-channels
     * are independent halves of the device, not an interleave — and a
     * groupless standard stripes flat banks across lanes instead. */
    unsigned
    laneOf(const DramCoord &c) const
    {
        if (spec.subChannels == 1)
            return 0;
        return (spec.hasBankGroups() ? c.bankGroup : c.bank) %
               spec.subChannels;
    }

    /** Index into the per-(rank, lane) constraint tables. Sub-channels
     * (DDR5) and pseudo-channels (HBM2) have independent command and
     * data paths, so tFAW / tRRD / turnaround apply per lane, not per
     * rank; with one lane this degenerates to plain rank indexing. */
    unsigned
    rankLane(unsigned rank, unsigned lane) const
    {
        return rank * spec.subChannels + lane;
    }

    Timing spec;
    LocalAddressMap map;
    unsigned ranks;
    std::vector<Bank> banks;
    std::unique_ptr<SchedPolicy> sched;

    std::deque<QueuedReq> readQ;
    std::deque<QueuedReq> writeQ;
    unsigned readQCap = 64;
    unsigned writeQCap = 64;
    unsigned writeHighWatermark = 48;
    unsigned writeLowWatermark = 16;
    bool drainingWrites = false;

    /** Sliding window of the last four ACT ticks (tFAW), per
     * (rank, lane); unused when the standard has no window (tFAW ==
     * 0). */
    std::vector<std::deque<Tick>> actWindow;
    /** Earliest next CAS per (same-bank-group? tCCD_L : tCCD_S).
     * tCCD_S paces each lane's command stream independently —
     * sub-channels have their own command/data paths. */
    std::vector<Tick> nextCasAnyGroup; ///< indexed by lane.
    std::vector<Tick> nextCasSameGroup; ///< indexed rank*effGroups.
    /** Turnaround constraints (tWTR / tRTW), per (rank, lane). */
    std::vector<Tick> nextRdCas;
    std::vector<Tick> nextWrCas;
    /** ACT-to-ACT spacing (tRRD_S per (rank, lane), tRRD_L per bank
     * group). */
    std::vector<Tick> nextActRank;
    std::vector<Tick> nextActGroup;
    /** Per-lane data-bus busy-until (one burst at a time per
     * sub-channel; single entry for a one-bus standard). */
    std::vector<Tick> dataBusFreeAt;
    /** Bus turnaround bookkeeping. */
    Tick lastReadEnd = 0;
    Tick lastWriteEnd = 0;
    /** All-bank refresh blocks the whole rank; REFsb leaves this at
     * zero and cycles refreshCursor over the rank's banks instead. */
    std::vector<Tick> rankBlockedUntil;
    std::vector<unsigned> refreshCursor;

    bool issueScheduled = false;
    Tick issueAt = 0;
    std::uint64_t issueEventId = 0;

    std::function<void()> onUnblock;

    stats::Scalar &statReads;
    stats::Scalar &statWrites;
    stats::Scalar &statActs;
    stats::Scalar &statPres;
    stats::Scalar &statRowHits;
    stats::Scalar &statRefreshes;
    stats::Distribution &statLatency;

    obs::Tracer *tr = nullptr; ///< Null unless dram tracing is on.
    std::uint32_t trk = 0;
    std::uint16_t nmRd = 0, nmWr = 0, nmAct = 0, nmPre = 0,
                  nmRef = 0, nmFaw = 0;
};

} // namespace dram
} // namespace dimmlink

#endif // DIMMLINK_DRAM_DRAM_CONTROLLER_HH
