/**
 * @file
 * Device timing as a standard-agnostic parameter table. A memory
 * standard (DDR4, DDR5, LPDDR5X, HBM2) is *data*, not code: every
 * speed grade registers a fully-populated Timing through the generic
 * Factory machinery (see timing_presets.cc), and the controller
 * consults the table for the constraints a standard actually has —
 * tFAW=0 disables the four-activate window, bankGroups=0 collapses
 * the tCCD_L/S split, perBankRefresh swaps all-bank REFab for
 * round-robin REFsb, and subChannels>1 splits the data bus into
 * independently-timed lanes (DDR5 sub-channels / HBM pseudo-channels).
 *
 * The defaults below are the DDR4-2400 LRDIMM grammar of the paper's
 * Table V (Micron datasheet values).
 */

#ifndef DIMMLINK_DRAM_TIMING_HH
#define DIMMLINK_DRAM_TIMING_HH

#include <string>
#include <vector>

#include "common/factory.hh"
#include "common/types.hh"

namespace dimmlink {
namespace dram {

/**
 * All values in command-clock cycles unless suffixed Ps. DDR4-2400
 * runs the command clock at 1200 MHz (tCK = 833 ps), moving data on
 * both edges (2400 MT/s).
 */
struct Timing
{
    std::string name = "DDR4_2400";
    /** Standard family this grade belongs to (ddr4, ddr5, ...). */
    std::string standard = "ddr4";
    double clkMHz = 1200.0;

    unsigned tRCD = 17;   ///< ACT to RD/WR.
    unsigned tRP = 17;    ///< PRE to ACT.
    unsigned tCL = 17;    ///< RD to first data.
    unsigned tCWL = 16;   ///< WR to first data.
    unsigned tRAS = 39;   ///< ACT to PRE.
    unsigned tRC = 56;    ///< ACT to ACT, same bank.
    unsigned tBL = 4;     ///< Line burst occupies this many clocks.
    unsigned tCCDs = 4;   ///< CAS to CAS, different bank group.
    unsigned tCCDl = 6;   ///< CAS to CAS, same bank group.
    unsigned tRRDs = 4;   ///< ACT to ACT, different bank group.
    unsigned tRRDl = 6;   ///< ACT to ACT, same bank group.
    unsigned tFAW = 26;   ///< Four-activate window; 0 = no window.
    unsigned tWR = 18;    ///< Write recovery (last data to PRE).
    unsigned tWTRs = 3;   ///< Write-to-read, different bank group.
    unsigned tWTRl = 9;   ///< Write-to-read, same bank group.
    unsigned tRTP = 9;    ///< Read to PRE.
    unsigned tRTW = 8;    ///< Read-to-write turnaround on the bus.
    unsigned tREFI = 9360; ///< Refresh command interval (7.8 us).
    unsigned tRFC = 420;  ///< All-bank refresh cycle (350 ns, 16 Gb).
    unsigned tCS = 2;     ///< Rank-to-rank switch penalty.

    /** Geometry. bankGroups == 0 means the standard has no bank-group
     * split (LPDDR5X 8-bank mode): the L-variant constraints are
     * ignored and banksPerGroup counts the flat banks of a rank. */
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rows = 65536;
    unsigned columns = 1024;
    unsigned deviceBusBytes = 8; ///< Bytes per column (per lane).

    /** Independently-timed data-bus lanes: DDR5 sub-channels or HBM
     * pseudo-channels. Banks are statically striped across lanes. */
    unsigned subChannels = 1;
    /** Extra burst clocks a write carries for on-die write CRC. */
    unsigned wrCrcCycles = 0;
    /** Same-bank refresh: REFsb cycles one bank per tREFI instead of
     * blocking the whole rank for tRFC. */
    bool perBankRefresh = false;
    unsigned tRFCpb = 0; ///< Per-bank refresh cycle time (REFsb).

    /** Per-standard energy coefficients, relative to the paper's DDR4
     * constants in cfg.energy (1.0 leaves them untouched). */
    double energyRdWrScale = 1.0;
    double energyActScale = 1.0;

    /** One command-clock period in ticks. */
    Tick clkPeriod() const { return periodFromMHz(clkMHz); }

    /** Ticks for n command clocks. */
    Tick cyc(unsigned n) const { return n * clkPeriod(); }

    /** Bank-group count with the groupless case folded to one. */
    unsigned effGroups() const { return bankGroups ? bankGroups : 1; }

    bool hasBankGroups() const { return bankGroups > 0; }

    unsigned banksPerRank() const
    {
        return effGroups() * banksPerGroup;
    }

    /** Die on an inconsistent table (bad geometry, zero clocks). */
    void check() const;

    /**
     * Fetch a registered preset by name; fatal()s with the registered
     * names when unknown (the same factory error path every other
     * registry-keyed component uses).
     */
    static Timing preset(const std::string &name);

    /** The registered preset names, for validation and messages. */
    static std::vector<std::string> presets();

    /**
     * Resolve a `dram.standard` value: an exact preset name passes
     * through, a family alias (ddr4, ddr5, lpddr5x, hbm2 — case
     * insensitive) maps to that family's default speed grade, and
     * anything else is returned unchanged for validate() to report.
     */
    static std::string resolveName(const std::string &name);

    /** The family tag of a registered preset ("ddr4", ...); @p name
     * itself when it is not registered. */
    static std::string familyOf(const std::string &name);
};

using TimingFactory = Factory<Timing>;

} // namespace dram

template <>
struct FactoryTraits<dram::Timing>
{
    static constexpr const char *noun = "DRAM timing preset";
};

} // namespace dimmlink

#endif // DIMMLINK_DRAM_TIMING_HH
