/**
 * @file
 * DDR4 device timing parameters, expressed in command-clock cycles.
 * The preset values follow Micron's DDR4-2400 LRDIMM datasheet (the
 * source the paper's Table V cites).
 */

#ifndef DIMMLINK_DRAM_TIMING_HH
#define DIMMLINK_DRAM_TIMING_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace dimmlink {
namespace dram {

/**
 * All values in command-clock cycles unless suffixed Ps. DDR4-2400 runs
 * the command clock at 1200 MHz (tCK = 833 ps), moving data on both
 * edges (2400 MT/s).
 */
struct Timing
{
    std::string name = "DDR4_2400";
    double clkMHz = 1200.0;

    unsigned tRCD = 17;   ///< ACT to RD/WR.
    unsigned tRP = 17;    ///< PRE to ACT.
    unsigned tCL = 17;    ///< RD to first data.
    unsigned tCWL = 16;   ///< WR to first data.
    unsigned tRAS = 39;   ///< ACT to PRE.
    unsigned tRC = 56;    ///< ACT to ACT, same bank.
    unsigned tBL = 4;     ///< Burst length 8 occupies 4 clocks.
    unsigned tCCDs = 4;   ///< CAS to CAS, different bank group.
    unsigned tCCDl = 6;   ///< CAS to CAS, same bank group.
    unsigned tRRDs = 4;   ///< ACT to ACT, different bank group.
    unsigned tRRDl = 6;   ///< ACT to ACT, same bank group.
    unsigned tFAW = 26;   ///< Four-activate window per rank.
    unsigned tWR = 18;    ///< Write recovery (last data to PRE).
    unsigned tWTRs = 3;   ///< Write-to-read, different bank group.
    unsigned tWTRl = 9;   ///< Write-to-read, same bank group.
    unsigned tRTP = 9;    ///< Read to PRE.
    unsigned tRTW = 8;    ///< Read-to-write turnaround on the bus.
    unsigned tREFI = 9360; ///< Refresh interval (7.8 us).
    unsigned tRFC = 420;  ///< Refresh cycle time (350 ns, 16 Gb).
    unsigned tCS = 2;     ///< Rank-to-rank switch penalty.

    /** Geometry. */
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rows = 65536;
    unsigned columns = 1024;
    unsigned deviceBusBytes = 8; ///< 64-bit data bus.

    /** One command-clock period in ticks. */
    Tick clkPeriod() const { return periodFromMHz(clkMHz); }

    /** Ticks for n command clocks. */
    Tick cyc(unsigned n) const { return n * clkPeriod(); }

    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Fetch a preset by name; fatal() when unknown. */
    static Timing preset(const std::string &name);

    /** The known preset names, for validation and error messages. */
    static const std::vector<std::string> &presets();
};

} // namespace dram
} // namespace dimmlink

#endif // DIMMLINK_DRAM_TIMING_HH
