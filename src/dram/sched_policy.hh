/**
 * @file
 * DRAM command scheduling policies as registered implementations. A
 * policy only decides *which* queued request takes its next command;
 * the controller owns all timing state and exposes it through
 * DramController::stepReadyAt().
 */

#ifndef DIMMLINK_DRAM_SCHED_POLICY_HH
#define DIMMLINK_DRAM_SCHED_POLICY_HH

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

#include "common/factory.hh"
#include "common/types.hh"

namespace dimmlink {
namespace dram {

class DramController;
struct QueuedReq;

class SchedPolicy
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    virtual ~SchedPolicy() = default;

    /**
     * Pick the request in @p q whose next command should issue at
     * @p now, or npos when none is ready. @p best_ready must be set to
     * the earliest tick at which any considered request could take its
     * next step (maxTick when the queue is empty) — the controller
     * schedules its wakeup from it.
     */
    virtual std::size_t pick(const DramController &ctrl,
                             const std::deque<QueuedReq> &q, Tick now,
                             Tick &best_ready) const = 0;
};

using SchedPolicyFactory = Factory<SchedPolicy>;

/** Build the policy registered under @p name ("FRFCFS", "FCFS", ...). */
std::unique_ptr<SchedPolicy> makeSchedPolicy(const std::string &name);

} // namespace dram

template <>
struct FactoryTraits<dram::SchedPolicy>
{
    static constexpr const char *noun = "DRAM scheduling policy";
};

} // namespace dimmlink

#endif // DIMMLINK_DRAM_SCHED_POLICY_HH
