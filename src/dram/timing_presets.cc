/**
 * @file
 * The registered timing preset tables, one Registrar per speed grade.
 * Adding a memory standard is adding a table here (and nothing in the
 * controller): docs/dram_timing.md walks through the fields and which
 * controller constraints each standard exercises.
 *
 * Sources: DDR4 grades follow the Micron DDR4 LRDIMM datasheets the
 * paper's Table V cites; DDR5/LPDDR5X/HBM2 grades follow the JEDEC
 * core timings (JESD79-5, JESD209-5, JESD235) rounded to the command
 * clock, with geometry sized so one table models the devices behind
 * one rank-level controller.
 */

#include "dram/timing.hh"

namespace dimmlink {
namespace dram {
namespace {

std::unique_ptr<Timing>
reg(Timing t)
{
    t.check();
    return std::make_unique<Timing>(std::move(t));
}

/** The struct defaults are the DDR4-2400 table. */
TimingFactory::Registrar regDdr4_2400("DDR4_2400", []() {
    return reg(Timing{});
});

TimingFactory::Registrar regDdr4_3200("DDR4_3200", []() {
    // Scaled from the 2400 grade: same wall-clock latencies at a
    // 1600 MHz command clock.
    Timing t;
    t.name = "DDR4_3200";
    t.clkMHz = 1600.0;
    t.tRCD = 22;
    t.tRP = 22;
    t.tCL = 22;
    t.tCWL = 20;
    t.tRAS = 52;
    t.tRC = 74;
    t.tCCDl = 8;
    t.tRRDl = 8;
    t.tFAW = 34;
    t.tWR = 24;
    t.tWTRl = 12;
    t.tWTRs = 4;
    t.tRTP = 12;
    t.tREFI = 12480;
    t.tRFC = 560;
    return reg(std::move(t));
});

/** DDR5: two independent 32-bit sub-channels per module, each with
 * its own devices (8 bank groups x 4 banks per sub-channel, 16
 * groups controller-wide), BL16 per sub-channel, write CRC extending
 * write bursts. */
Timing
ddr5_4800()
{
    Timing t;
    t.name = "DDR5_4800";
    t.standard = "ddr5";
    t.clkMHz = 2400.0;
    t.tRCD = 39;
    t.tRP = 39;
    t.tCL = 40;
    t.tCWL = 38;
    t.tRAS = 77;
    t.tRC = 116;
    t.tBL = 8; // BL16, one 64-byte line per sub-channel burst.
    t.tCCDs = 8;
    t.tCCDl = 12;
    t.tRRDs = 8;
    t.tRRDl = 12;
    t.tFAW = 32;
    t.tWR = 72;
    t.tWTRs = 8;
    t.tWTRl = 24;
    t.tRTP = 18;
    t.tRTW = 16;
    t.tREFI = 9360; // tREFI1 = 3.9 us.
    t.tRFC = 708;   // tRFC1 = 295 ns (16 Gb).
    t.tCS = 2;
    t.bankGroups = 16; // 8 groups per sub-channel x 2 sub-channels.
    t.banksPerGroup = 4;
    t.rows = 65536;
    t.columns = 1024;
    t.deviceBusBytes = 8;
    t.subChannels = 2;
    t.wrCrcCycles = 2; // BL16 -> BL18 with write CRC on.
    t.energyRdWrScale = 0.75;
    t.energyActScale = 0.9;
    return t;
}

TimingFactory::Registrar regDdr5_4800("DDR5_4800", []() {
    return reg(ddr5_4800());
});

TimingFactory::Registrar regDdr5_6400("DDR5_6400", []() {
    // Same wall-clock core timings at a 3200 MHz command clock.
    Timing t = ddr5_4800();
    t.name = "DDR5_6400";
    t.clkMHz = 3200.0;
    t.tRCD = 52;
    t.tRP = 52;
    t.tCL = 52;
    t.tCWL = 50;
    t.tRAS = 102;
    t.tRC = 154;
    t.tCCDl = 16;
    t.tRRDl = 16;
    t.tFAW = 42;
    t.tWR = 96;
    t.tWTRs = 11;
    t.tWTRl = 32;
    t.tRTP = 24;
    t.tRTW = 20;
    t.tREFI = 12480;
    t.tRFC = 944;
    return reg(std::move(t));
});

/** LPDDR5X in 16-bank / BL32 mode: no bank groups (the
 * tCCD/tRRD/tWTR L/S split collapses), no four-activate window, and
 * per-bank REFpb refresh. Two 16-bit channels model one package, 16
 * flat banks each (32 controller-wide). */
TimingFactory::Registrar regLpddr5x_8533("LPDDR5X_8533", []() {
    Timing t;
    t.name = "LPDDR5X_8533";
    t.standard = "lpddr5x";
    t.clkMHz = 4266.0;
    t.tRCD = 77;  // 18 ns.
    t.tRP = 90;   // 21 ns.
    t.tCL = 81;   // RL ~19 ns.
    t.tCWL = 47;  // WL ~11 ns.
    t.tRAS = 179; // 42 ns.
    t.tRC = 269;
    t.tBL = 8;    // BL32 on a 16-bit lane: 64-byte line per burst.
    t.tCCDs = 8;
    t.tCCDl = 8;  // No bank groups: single CAS-to-CAS spacing.
    t.tRRDs = 21; // 5 ns.
    t.tRRDl = 21;
    t.tFAW = 0;   // Relaxed in BL32 mode: no window.
    t.tWR = 147;  // 34.5 ns.
    t.tWTRs = 43; // 10 ns.
    t.tWTRl = 43;
    t.tRTP = 32;  // 7.5 ns.
    t.tRTW = 34;
    t.tREFI = 520;  // REFpb every 122 ns (3.9 us / 32 banks).
    t.tRFC = 898;   // tRFCab = 210 ns, kept for reference.
    t.tCS = 4;
    t.bankGroups = 0;    // 16-bank mode: flat bank space.
    t.banksPerGroup = 32; // 16 banks per channel x 2 channels.
    t.rows = 65536;
    t.columns = 512;
    t.deviceBusBytes = 4;
    t.subChannels = 2;
    t.perBankRefresh = true;
    t.tRFCpb = 598; // 140 ns.
    t.energyRdWrScale = 0.35;
    t.energyActScale = 0.6;
    return reg(std::move(t));
});

/** HBM2: four pseudo-channels per rank-level controller (eight per
 * two-rank stack), each pseudo-channel with its own 16 banks in 4
 * groups (16 groups controller-wide), per-bank refresh, short BL4
 * bursts on wide buses. */
TimingFactory::Registrar regHbm2_2000("HBM2_2000", []() {
    Timing t;
    t.name = "HBM2_2000";
    t.standard = "hbm2";
    t.clkMHz = 1000.0;
    t.tRCD = 14;
    t.tRP = 14;
    t.tCL = 14;
    t.tCWL = 7;
    t.tRAS = 33;
    t.tRC = 47;
    t.tBL = 2; // BL4 on a 128-bit pseudo-channel.
    t.tCCDs = 2;
    t.tCCDl = 4;
    t.tRRDs = 4;
    t.tRRDl = 6;
    t.tFAW = 16;
    t.tWR = 16;
    t.tWTRs = 3;
    t.tWTRl = 8;
    t.tRTP = 5;
    t.tRTW = 6;
    t.tREFI = 61;  // REFsb every 61 ns (3.9 us / 64 banks).
    t.tRFC = 260;
    t.tCS = 2;
    t.bankGroups = 16; // 4 groups per pseudo-channel x 4 channels.
    t.banksPerGroup = 4;
    t.rows = 32768;
    t.columns = 128;
    t.deviceBusBytes = 16;
    t.subChannels = 4;
    t.perBankRefresh = true;
    t.tRFCpb = 160;
    t.energyRdWrScale = 0.28;
    t.energyActScale = 0.5;
    return reg(std::move(t));
});

} // namespace
} // namespace dram
} // namespace dimmlink
